//! # mastro
//!
//! The OBDA system facade, in the style of the Mastro system the paper's
//! work plugs into: an ontology (TBox) used as "a conceptual view over
//! the underlying data sources", linked to a relational database through
//! GAV mappings, answering conjunctive queries via query rewriting.
//!
//! * [`query`]: CQs/UCQs with a datalog-style concrete syntax;
//! * [`rewrite::perfectref`]: the classic PerfectRef UCQ rewriting,
//!   extended with the qualified-existential pair rule;
//! * [`rewrite::presto`]: Presto-style classification-aware rewriting
//!   into a small view program (this is where the paper's graph-based
//!   classification pays off at query time);
//! * [`rewrite::ndl`]: compilation of the Presto view program into
//!   nonrecursive datalog, evaluated natively over the ABox index with
//!   shared, epoch-memoized view extents (or as one shared-subplan SQL
//!   statement on the virtual path);
//! * [`rewrite::unfold`]: unfolding into flat SQL joins over the mappings
//!   with template-prefix pruning and typed suffix pushdown;
//! * [`answer`]: reference CQ evaluation over a concrete ABox;
//! * [`delta`]: the streaming write path — [`AboxDelta`] batches applied
//!   incrementally to the ABox index and the memoized NDL view extents;
//! * [`consistency`]: NI-violation and unsat-emptiness checking;
//! * [`sparql`]: a SPARQL front-end for the conjunctive fragment (the
//!   endpoint syntax Quest-style systems expose);
//! * [`system`]: the [`ObdaSystem`] facade (rewriting × data-access
//!   modes) and the simpler [`AboxSystem`];
//! * [`engine`]: the unified [`QueryEngine`] trait both systems
//!   implement, plus the typed [`SystemBuilder`];
//! * [`error`]: structured [`ObdaError`] with phase-attributed SQL
//!   failures;
//! * [`demo`]: wiring for the generated university scenario.

pub mod answer;
pub mod config;
pub mod consistency;
pub mod delta;
pub mod demo;
pub mod ebox;
pub mod engine;
pub mod error;
pub mod query;
pub mod rewrite;
pub mod shard;
pub mod sparql;
pub mod system;

pub use answer::{
    evaluate_cq, evaluate_cq_indexed, evaluate_ucq, evaluate_ucq_indexed, evaluate_ucq_parallel,
    AboxIndex, AnswerTerm, Answers,
};
pub use config::{EngineConfig, ENGINE_CONFIG_KEYS};
pub use consistency::{check_consistency, Violation};
pub use delta::{AboxDelta, DeltaObject, DeltaStatement, DeltaSummary};
pub use ebox::{infer_from_index, infer_from_mappings, EboxMode};
pub use engine::{EngineStats, QueryEngine, QueryLang, ShardStats, SystemBuilder};
pub use error::{ErrorPhase, ObdaError};
pub use query::{
    parse_cq, print_cq, Atom, ConjunctiveQuery, QueryParseError, Term, Ucq, ValueTerm,
};
pub use rewrite::ndl::{ndl_compile, DataEpoch, NdlProgram};
pub use rewrite::perfectref::{perfect_ref, perfect_ref_scan, perfect_ref_with_index};
pub use rewrite::presto::{presto_rewrite, PrestoRewriting};
pub use rewrite::subsume::{prune_ucq, subsumes};
pub use shard::{shard_of, ShardedAboxSystem};
pub use sparql::{parse_sparql, SparqlQuery};
pub use system::{
    AboxSystem, DataMode, MaterializedAbox, ObdaSystem, RewriteCacheStats, RewritingMode,
};
