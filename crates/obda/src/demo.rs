//! Wiring for the generated university scenario (`obda-genont`): loads
//! tables into `obda-sqlstore`, converts mapping specs, and assembles an
//! [`ObdaSystem`]. Used by the examples and the OBDA benchmarks.

use obda_genont::{Cell, HeadAtom, UniversityScenario};
use obda_mapping::{IriTemplate, MappingAssertion, MappingHead, MappingSet};
use obda_sqlstore::{ColumnType, Database, SqlError, SqlValue};

use crate::error::ErrorPhase;
use crate::system::{ObdaError, ObdaSystem};

/// Loads the scenario's tables into a fresh database (with hash indexes
/// on every first column, as a deployment would).
pub fn load_database(scenario: &UniversityScenario) -> Result<Database, ObdaError> {
    load_database_sql(scenario).map_err(|e| ObdaError::sql(ErrorPhase::Load, e))
}

fn load_database_sql(scenario: &UniversityScenario) -> Result<Database, SqlError> {
    let mut db = Database::new();
    for t in &scenario.tables {
        let columns = t
            .columns
            .iter()
            .enumerate()
            .map(|(i, name)| {
                // Column types inferred from the first row (default Int).
                let ty = t
                    .rows
                    .first()
                    .map(|r| match &r[i] {
                        Cell::Int(_) => ColumnType::Int,
                        Cell::Text(_) => ColumnType::Text,
                    })
                    .unwrap_or(ColumnType::Int);
                (name.clone(), ty)
            })
            .collect();
        db.create_table(&t.name, columns)?;
        for row in &t.rows {
            let values = row
                .iter()
                .map(|c| match c {
                    Cell::Int(i) => SqlValue::Int(*i),
                    Cell::Text(s) => SqlValue::Text(s.clone()),
                })
                .collect();
            db.insert(&t.name, values)?;
        }
        let first_col = t.columns[0].clone();
        db.create_index(&t.name, &first_col)?;
    }
    Ok(db)
}

/// Converts the scenario's mapping specs into a validated [`MappingSet`].
pub fn build_mappings(scenario: &UniversityScenario) -> MappingSet {
    let sig = &scenario.tbox.sig;
    let mut ms = MappingSet::new();
    for spec in &scenario.mappings {
        let heads = spec
            .head
            .iter()
            .map(|h| match h {
                HeadAtom::Concept { name, subject } => MappingHead::Concept {
                    concept: sig.find_concept(name).expect("declared concept"),
                    subject: IriTemplate {
                        prefix: subject.prefix.clone(),
                        column: subject.var.clone(),
                    },
                },
                HeadAtom::Role {
                    name,
                    subject,
                    object,
                } => MappingHead::Role {
                    role: sig.find_role(name).expect("declared role"),
                    subject: IriTemplate {
                        prefix: subject.prefix.clone(),
                        column: subject.var.clone(),
                    },
                    object: IriTemplate {
                        prefix: object.prefix.clone(),
                        column: object.var.clone(),
                    },
                },
                HeadAtom::Attribute {
                    name,
                    subject,
                    value_var,
                } => MappingHead::Attribute {
                    attribute: sig.find_attribute(name).expect("declared attribute"),
                    subject: IriTemplate {
                        prefix: subject.prefix.clone(),
                        column: subject.var.clone(),
                    },
                    value_column: value_var.clone(),
                },
            })
            .collect();
        ms.add(MappingAssertion {
            sql: spec.sql.clone(),
            heads,
        });
    }
    ms
}

/// Assembles the full OBDA system for a scenario.
pub fn build_system(scenario: &UniversityScenario) -> Result<ObdaSystem, ObdaError> {
    let db = load_database(scenario)?;
    let mappings = build_mappings(scenario);
    ObdaSystem::new(scenario.tbox.clone(), mappings, db)
}

/// Loads an explicit ABox into a triple-store-shaped database (one table
/// per predicate sort) with one mapping per predicate — turning any
/// (TBox, ABox) pair into a *virtual* OBDA system. Used by tests to
/// validate the whole rewrite-unfold-execute pipeline against direct ABox
/// evaluation, and handy for quickly serving an existing ABox through the
/// SQL engine.
pub fn system_from_abox(
    tbox: obda_dllite::Tbox,
    abox: &obda_dllite::Abox,
) -> Result<ObdaSystem, ObdaError> {
    use obda_dllite::{Assertion, Value};

    let db = abox_database(abox).map_err(|e| ObdaError::sql(ErrorPhase::Load, e))?;

    let ind = |col: &str| IriTemplate {
        prefix: String::new(),
        column: col.into(),
    };
    let mut ms = MappingSet::new();
    for c in tbox.sig.concepts() {
        ms.add(MappingAssertion {
            sql: format!("SELECT ind FROM concept_assert WHERE cid = {}", c.0),
            heads: vec![MappingHead::Concept {
                concept: c,
                subject: ind("ind"),
            }],
        });
    }
    for p in tbox.sig.roles() {
        ms.add(MappingAssertion {
            sql: format!("SELECT s, o FROM role_assert WHERE rid = {}", p.0),
            heads: vec![MappingHead::Role {
                role: p,
                subject: ind("s"),
                object: ind("o"),
            }],
        });
    }
    for u in tbox.sig.attributes() {
        for table in ["attr_int", "attr_text"] {
            ms.add(MappingAssertion {
                sql: format!("SELECT s, v FROM {table} WHERE aid = {}", u.0),
                heads: vec![MappingHead::Attribute {
                    attribute: u,
                    subject: ind("s"),
                    value_column: "v".into(),
                }],
            });
        }
    }
    return ObdaSystem::new(tbox, ms, db);

    fn abox_database(abox: &obda_dllite::Abox) -> Result<Database, SqlError> {
        let mut db = Database::new();
        db.create_table(
            "concept_assert",
            vec![
                ("cid".into(), ColumnType::Int),
                ("ind".into(), ColumnType::Text),
            ],
        )?;
        db.create_table(
            "role_assert",
            vec![
                ("rid".into(), ColumnType::Int),
                ("s".into(), ColumnType::Text),
                ("o".into(), ColumnType::Text),
            ],
        )?;
        db.create_table(
            "attr_int",
            vec![
                ("aid".into(), ColumnType::Int),
                ("s".into(), ColumnType::Text),
                ("v".into(), ColumnType::Int),
            ],
        )?;
        db.create_table(
            "attr_text",
            vec![
                ("aid".into(), ColumnType::Int),
                ("s".into(), ColumnType::Text),
                ("v".into(), ColumnType::Text),
            ],
        )?;
        for a in abox.assertions() {
            match a {
                Assertion::Concept(c, i) => db.insert(
                    "concept_assert",
                    vec![
                        SqlValue::Int(c.0 as i64),
                        SqlValue::Text(abox.individual_name(*i).to_owned()),
                    ],
                )?,
                Assertion::Role(p, s, o) => db.insert(
                    "role_assert",
                    vec![
                        SqlValue::Int(p.0 as i64),
                        SqlValue::Text(abox.individual_name(*s).to_owned()),
                        SqlValue::Text(abox.individual_name(*o).to_owned()),
                    ],
                )?,
                Assertion::Attribute(u, s, v) => {
                    let (table, value) = match v {
                        Value::Int(i) => ("attr_int", SqlValue::Int(*i)),
                        Value::Text(t) => ("attr_text", SqlValue::Text(t.clone())),
                    };
                    db.insert(
                        table,
                        vec![
                            SqlValue::Int(u.0 as i64),
                            SqlValue::Text(abox.individual_name(*s).to_owned()),
                            value,
                        ],
                    )?;
                }
            }
        }
        db.create_index("concept_assert", "cid")?;
        db.create_index("role_assert", "rid")?;
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_genont::university_scenario;

    #[test]
    fn university_system_builds_and_is_consistent() {
        let scenario = university_scenario(1, 42);
        let sys = build_system(&scenario).unwrap();
        let violations = sys.check_consistency().unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        // Every student (grad + undergrad) is an answer to q1.
        let answers = sys.answer("q(x) :- Student(x)").unwrap();
        assert!(!answers.is_empty());
    }

    #[test]
    fn mapping_specs_validate() {
        let scenario = university_scenario(1, 7);
        let db = load_database(&scenario).unwrap();
        let ms = build_mappings(&scenario);
        ms.validate(&db).unwrap();
        // Abstract predicates (Person, Student, Professor, University,
        // memberOf, subOrganizationOf) are intentionally populated only
        // through the ontology, not through direct mappings.
        let unmapped = ms.unmapped_predicates(&scenario.tbox.sig);
        assert_eq!(unmapped.len(), 6, "{unmapped:?}");
        assert!(unmapped.contains(&"Person".to_owned()));
    }
}
