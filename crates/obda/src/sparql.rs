//! A SPARQL front-end for the conjunctive fragment — the query syntax
//! OBDA endpoints actually expose (the paper contrasts Mastro with Quest,
//! which "provides SPARQL query answering under the OWL 2 QL … entailment
//! regimes"). Supported grammar:
//!
//! ```text
//! SELECT ?x ?n WHERE {
//!   ?x rdf:type :Student .
//!   ?x :takesCourse ?y .
//!   ?x :personName ?n .
//!   ?y rdf:type <course/7> .
//! }
//! SELECT * WHERE { … }
//! ASK WHERE { … }
//! ```
//!
//! Triple patterns map onto the CQ model: `?s rdf:type C` → concept atom,
//! `?s :role ?o` → role atom, `?s :attr ?v` → attribute atom (value
//! position: variable, quoted string, or integer). IRIs may be written
//! `:name`, `<iri>` or bare; variables start with `?`.

// lint: allow-file(R1.index, "hand-rolled byte lexer: every `bytes[i]`/`bytes[j]` read is guarded by a `< bytes.len()` check in the scan loop, and every slice start/end comes from a previously guarded ASCII position")

use obda_dllite::{Signature, Value};

use crate::query::{Atom, ConjunctiveQuery, QueryParseError, Term, ValueTerm};

/// A parsed SPARQL query: the CQ plus whether it was an ASK (boolean).
#[derive(Debug, Clone, PartialEq)]
pub struct SparqlQuery {
    /// The underlying conjunctive query (`ASK` has an empty head).
    pub cq: ConjunctiveQuery,
    /// Whether the query was `ASK` (answers are ∅ or {()}).
    pub ask: bool,
}

fn qerr<T>(m: impl Into<String>) -> Result<T, QueryParseError> {
    Err(QueryParseError { message: m.into() })
}

/// One token of the triple-pattern language.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Var(String),
    Iri(String),
    Str(String),
    Int(i64),
    Dot,
    LBrace,
    RBrace,
    Star,
    Word(String), // SELECT / ASK / WHERE / rdf:type
}

fn tokenize(src: &str) -> Result<Vec<Tok>, QueryParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '?' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                if j == start {
                    return qerr("empty variable name after `?`");
                }
                out.push(Tok::Var(src[start..j].to_owned()));
                i = j;
            }
            '<' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'>' {
                    j += 1;
                }
                if j == bytes.len() {
                    return qerr("unterminated IRI");
                }
                out.push(Tok::Iri(src[start..j].to_owned()));
                i = j + 1;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j == bytes.len() {
                    return qerr("unterminated string literal");
                }
                out.push(Tok::Str(src[start..j].to_owned()));
                i = j + 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                match src[start..i].parse() {
                    Ok(n) => out.push(Tok::Int(n)),
                    Err(_) => return qerr(format!("bad integer `{}`", &src[start..i])),
                }
            }
            ':' => {
                // Prefixed name with empty prefix.
                let start = i + 1;
                let mut j = start;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'/')
                {
                    j += 1;
                }
                out.push(Tok::Iri(src[start..j].to_owned()));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b':'
                        || bytes[i] == b'/')
                {
                    i += 1;
                }
                let word = &src[start..i];
                if word.eq_ignore_ascii_case("select")
                    || word.eq_ignore_ascii_case("ask")
                    || word.eq_ignore_ascii_case("where")
                    || word == "rdf:type"
                    || word == "a"
                {
                    out.push(Tok::Word(word.to_owned()));
                } else {
                    out.push(Tok::Iri(word.to_owned()));
                }
            }
            other => return qerr(format!("unexpected character `{other}`")),
        }
    }
    Ok(out)
}

/// Parses a SPARQL query against a DL-Lite signature.
pub fn parse_sparql(src: &str, sig: &Signature) -> Result<SparqlQuery, QueryParseError> {
    let toks = tokenize(src)?;
    let mut pos = 0usize;
    let ask = match toks.first() {
        Some(Tok::Word(w)) if w.eq_ignore_ascii_case("select") => false,
        Some(Tok::Word(w)) if w.eq_ignore_ascii_case("ask") => true,
        _ => return qerr("query must start with SELECT or ASK"),
    };
    pos += 1;
    // Projection.
    let mut head: Vec<String> = Vec::new();
    let mut star = false;
    if !ask {
        loop {
            match toks.get(pos) {
                Some(Tok::Var(v)) => {
                    head.push(v.clone());
                    pos += 1;
                }
                Some(Tok::Star) => {
                    star = true;
                    pos += 1;
                    break;
                }
                _ => break,
            }
        }
        if head.is_empty() && !star {
            return qerr("SELECT needs at least one variable or `*`");
        }
    }
    match toks.get(pos) {
        Some(Tok::Word(w)) if w.eq_ignore_ascii_case("where") => pos += 1,
        _ => return qerr("expected WHERE"),
    }
    if toks.get(pos) != Some(&Tok::LBrace) {
        return qerr("expected `{`");
    }
    pos += 1;

    // Triple patterns.
    let mut atoms: Vec<Atom> = Vec::new();
    loop {
        match toks.get(pos) {
            Some(Tok::RBrace) => {
                pos += 1;
                break;
            }
            None => return qerr("unterminated `{`"),
            _ => {}
        }
        // Subject.
        let subject = match toks.get(pos) {
            Some(Tok::Var(v)) => Term::Var(v.clone()),
            Some(Tok::Iri(iri)) => Term::Const(iri.clone()),
            other => return qerr(format!("expected subject, found {other:?}")),
        };
        pos += 1;
        // Predicate.
        let predicate = match toks.get(pos) {
            Some(Tok::Word(w)) if w == "rdf:type" || w == "a" => None,
            Some(Tok::Iri(p)) => Some(p.clone()),
            other => return qerr(format!("expected predicate, found {other:?}")),
        };
        pos += 1;
        // Object and atom construction.
        match predicate {
            None => {
                // rdf:type — object must be a concept name.
                let class = match toks.get(pos) {
                    Some(Tok::Iri(c)) => c.clone(),
                    other => return qerr(format!("expected class IRI, found {other:?}")),
                };
                pos += 1;
                let c = sig.find_concept(&class).ok_or_else(|| QueryParseError {
                    message: format!("unknown concept `{class}`"),
                })?;
                atoms.push(Atom::Concept(c, subject));
            }
            Some(pred) => {
                if let Some(p) = sig.find_role(&pred) {
                    let object = match toks.get(pos) {
                        Some(Tok::Var(v)) => Term::Var(v.clone()),
                        Some(Tok::Iri(iri)) => Term::Const(iri.clone()),
                        other => return qerr(format!("expected object, found {other:?}")),
                    };
                    pos += 1;
                    atoms.push(Atom::Role(p, subject, object));
                } else if let Some(u) = sig.find_attribute(&pred) {
                    let value = match toks.get(pos) {
                        Some(Tok::Var(v)) => ValueTerm::Var(v.clone()),
                        Some(Tok::Str(s)) => ValueTerm::Lit(Value::Text(s.clone())),
                        Some(Tok::Int(n)) => ValueTerm::Lit(Value::Int(*n)),
                        other => return qerr(format!("expected value, found {other:?}")),
                    };
                    pos += 1;
                    atoms.push(Atom::Attribute(u, subject, value));
                } else {
                    return qerr(format!("unknown predicate `{pred}`"));
                }
            }
        }
        // Optional trailing dot.
        if toks.get(pos) == Some(&Tok::Dot) {
            pos += 1;
        }
    }
    if pos != toks.len() {
        return qerr("trailing tokens after `}`");
    }
    if atoms.is_empty() {
        return qerr("empty basic graph pattern");
    }

    let cq_probe = ConjunctiveQuery {
        head: vec![],
        atoms: atoms.clone(),
    };
    let head = if ask {
        Vec::new()
    } else if star {
        cq_probe
            .body_vars()
            .into_iter()
            .map(str::to_owned)
            .collect()
    } else {
        head
    };
    let cq = ConjunctiveQuery { head, atoms };
    if !cq.is_safe() {
        return qerr("projected variable missing from the pattern");
    }
    Ok(SparqlQuery { cq, ask })
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::parse_tbox;

    fn sig() -> Signature {
        parse_tbox("concept Student Course\nrole takesCourse\nattribute personName")
            .unwrap()
            .sig
    }

    #[test]
    fn select_with_type_role_and_attribute() {
        let q = parse_sparql(
            "SELECT ?x ?n WHERE {\n  ?x rdf:type :Student .\n  ?x :takesCourse ?y .\n  ?x :personName ?n .\n}",
            &sig(),
        )
        .unwrap();
        assert!(!q.ask);
        assert_eq!(q.cq.head, vec!["x", "n"]);
        assert_eq!(q.cq.atoms.len(), 3);
    }

    #[test]
    fn a_is_rdf_type_shorthand() {
        let q = parse_sparql("SELECT ?x WHERE { ?x a Student }", &sig()).unwrap();
        assert!(matches!(q.cq.atoms[0], Atom::Concept(_, _)));
    }

    #[test]
    fn select_star_projects_all_variables() {
        let q = parse_sparql(
            "SELECT * WHERE { ?x :takesCourse ?y . ?x :personName ?n }",
            &sig(),
        )
        .unwrap();
        assert_eq!(q.cq.head, vec!["x", "y", "n"]);
    }

    #[test]
    fn ask_queries_are_boolean() {
        let q = parse_sparql("ASK WHERE { ?x rdf:type Student }", &sig()).unwrap();
        assert!(q.ask);
        assert!(q.cq.head.is_empty());
    }

    #[test]
    fn iri_constants_and_literals() {
        let q = parse_sparql(
            "SELECT ?x WHERE { ?x :takesCourse <course/7> . ?x :personName \"ada\" }",
            &sig(),
        )
        .unwrap();
        assert!(matches!(
            &q.cq.atoms[0],
            Atom::Role(_, _, Term::Const(c)) if c == "course/7"
        ));
        assert!(matches!(
            &q.cq.atoms[1],
            Atom::Attribute(_, _, ValueTerm::Lit(Value::Text(s))) if s == "ada"
        ));
    }

    #[test]
    fn rejects_bad_queries() {
        let s = sig();
        assert!(parse_sparql("SELECT ?x WHERE { ?x rdf:type Nope }", &s).is_err());
        assert!(parse_sparql("SELECT ?z WHERE { ?x a Student }", &s).is_err());
        assert!(parse_sparql("SELECT WHERE { ?x a Student }", &s).is_err());
        assert!(parse_sparql("FETCH ?x WHERE { ?x a Student }", &s).is_err());
        assert!(parse_sparql("SELECT ?x WHERE { ?x a Student", &s).is_err());
    }

    #[test]
    fn integer_values() {
        let t = parse_tbox("concept C\nattribute age").unwrap();
        let q = parse_sparql("SELECT ?x WHERE { ?x :age 42 }", &t.sig).unwrap();
        assert!(matches!(
            &q.cq.atoms[0],
            Atom::Attribute(_, _, ValueTerm::Lit(Value::Int(42)))
        ));
    }
}
