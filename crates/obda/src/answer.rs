//! CQ/UCQ evaluation over a concrete [`Abox`] ("ABox mode").
//!
//! A straightforward backtracking join, atom by atom, with bindings over
//! individuals and values. This is both the execution engine for
//! materialized OBDA and the reference evaluator the rewriting tests
//! compare against.
//!
//! The engine runs off an [`AboxIndex`]: per-predicate fact lists plus
//! secondary hash indexes (role facts by subject and by object,
//! attribute facts by subject, concept membership sets), so a join step
//! with a bound term probes a hash bucket instead of scanning the
//! predicate's whole extension. The index is a standalone value —
//! [`crate::system::ObdaSystem`] builds it once per ABox epoch and
//! reuses it across queries; the plain [`evaluate_cq`]/[`evaluate_ucq`]
//! entry points build a throwaway one per call.
//!
//! [`evaluate_ucq_parallel`] shards a UCQ's disjuncts across scoped
//! threads (std-only, like `quonto`'s parallel closure). Answers land in
//! a [`BTreeSet`] so the merged result is byte-identical to the
//! sequential evaluation regardless of thread count or scheduling.

use std::collections::{BTreeSet, HashMap, HashSet};

use obda_dllite::{Abox, Assertion, IndividualId, Value};

use crate::query::{Atom, ConjunctiveQuery, Term, Ucq, ValueTerm};

/// One answer component: an individual (by name) or a data value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnswerTerm {
    /// Individual IRI.
    Iri(String),
    /// Data value.
    Value(Value),
}

impl std::fmt::Display for AnswerTerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnswerTerm::Iri(s) => f.write_str(s),
            AnswerTerm::Value(v) => write!(f, "{v}"),
        }
    }
}

/// A set of answer tuples (sorted, deduplicated).
pub type Answers = BTreeSet<Vec<AnswerTerm>>;

#[derive(Debug, Clone, PartialEq)]
enum Binding {
    Ind(IndividualId),
    Val(Value),
}

/// Concept extension: member list (for free-variable iteration) plus a
/// membership set (for bound-term probes).
#[derive(Debug, Clone, Default)]
pub(crate) struct ConceptFacts {
    pub(crate) members: Vec<IndividualId>,
    pub(crate) set: HashSet<IndividualId>,
}

/// Role extension: the pair list plus subject→objects and
/// object→subjects hash indexes.
#[derive(Debug, Clone, Default)]
pub(crate) struct RoleFacts {
    pub(crate) pairs: Vec<(IndividualId, IndividualId)>,
    pub(crate) by_subject: HashMap<IndividualId, Vec<IndividualId>>,
    pub(crate) by_object: HashMap<IndividualId, Vec<IndividualId>>,
}

/// Attribute extension: the pair list plus a subject→values index.
#[derive(Debug, Clone, Default)]
pub(crate) struct AttrFacts {
    pub(crate) pairs: Vec<(IndividualId, Value)>,
    pub(crate) by_subject: HashMap<IndividualId, Vec<Value>>,
}

/// Per-predicate fact index with secondary hash indexes, so each atom
/// scans only its own predicate's facts and bound join terms probe hash
/// buckets (the naive all-assertions scan made materialized-mode
/// answering quadratic at data scale).
///
/// Build it once per ABox version and reuse across queries; rebuilding
/// is only needed after the ABox changes.
#[derive(Debug, Clone, Default)]
pub struct AboxIndex {
    pub(crate) concepts: HashMap<u32, ConceptFacts>,
    pub(crate) roles: HashMap<u32, RoleFacts>,
    pub(crate) attributes: HashMap<u32, AttrFacts>,
}

impl AboxIndex {
    /// Indexes every assertion of `abox`.
    pub fn build(abox: &Abox) -> Self {
        let mut ix = AboxIndex::default();
        for a in abox.assertions() {
            match a {
                Assertion::Concept(c, i) => {
                    let f = ix.concepts.entry(c.0).or_default();
                    f.members.push(*i);
                    f.set.insert(*i);
                }
                Assertion::Role(p, s, o) => {
                    let f = ix.roles.entry(p.0).or_default();
                    f.pairs.push((*s, *o));
                    f.by_subject.entry(*s).or_default().push(*o);
                    f.by_object.entry(*o).or_default().push(*s);
                }
                Assertion::Attribute(u, s, v) => {
                    let f = ix.attributes.entry(u.0).or_default();
                    f.pairs.push((*s, v.clone()));
                    f.by_subject.entry(*s).or_default().push(v.clone());
                }
            }
        }
        ix
    }

    /// Patches one freshly added assertion into the index, mirroring
    /// what [`AboxIndex::build`] would have done for it. The caller must
    /// only pass assertions that are *new* to the underlying ABox
    /// ([`Abox::add`] returned `true`) — the fact lists carry no
    /// duplicate detection of their own.
    pub(crate) fn insert_assertion(&mut self, a: &Assertion) {
        match a {
            Assertion::Concept(c, i) => {
                let f = self.concepts.entry(c.0).or_default();
                f.members.push(*i);
                f.set.insert(*i);
            }
            Assertion::Role(p, s, o) => {
                let f = self.roles.entry(p.0).or_default();
                f.pairs.push((*s, *o));
                f.by_subject.entry(*s).or_default().push(*o);
                f.by_object.entry(*o).or_default().push(*s);
            }
            Assertion::Attribute(u, s, v) => {
                let f = self.attributes.entry(u.0).or_default();
                f.pairs.push((*s, v.clone()));
                f.by_subject.entry(*s).or_default().push(v.clone());
            }
        }
    }

    /// Removes one assertion from the index. The caller must only pass
    /// assertions that were actually present ([`Abox::remove`] returned
    /// `true`), so every bucket holds exactly one copy.
    ///
    /// Ordering inside fact lists is *not* preserved (`swap_remove`) —
    /// sound because every evaluation path lands answers in a sorted
    /// `BTreeSet`. Hash-bucket keys whose list empties are removed
    /// outright: the NDL view extents derive `∃q` / attribute-domain
    /// membership from `by_subject`/`by_object` *keys*, so a lingering
    /// empty bucket would break the key-set = extension invariant.
    pub(crate) fn remove_assertion(&mut self, a: &Assertion) {
        fn drop_from<K: std::hash::Hash + Eq, V: PartialEq>(
            map: &mut HashMap<K, Vec<V>>,
            key: &K,
            value: &V,
        ) {
            if let Some(bucket) = map.get_mut(key) {
                if let Some(pos) = bucket.iter().position(|x| x == value) {
                    bucket.swap_remove(pos);
                }
                if bucket.is_empty() {
                    map.remove(key);
                }
            }
        }
        match a {
            Assertion::Concept(c, i) => {
                if let Some(f) = self.concepts.get_mut(&c.0) {
                    if let Some(pos) = f.members.iter().position(|m| m == i) {
                        f.members.swap_remove(pos);
                    }
                    f.set.remove(i);
                }
            }
            Assertion::Role(p, s, o) => {
                if let Some(f) = self.roles.get_mut(&p.0) {
                    if let Some(pos) = f.pairs.iter().position(|x| x == &(*s, *o)) {
                        f.pairs.swap_remove(pos);
                    }
                    drop_from(&mut f.by_subject, s, o);
                    drop_from(&mut f.by_object, o, s);
                }
            }
            Assertion::Attribute(u, s, v) => {
                if let Some(f) = self.attributes.get_mut(&u.0) {
                    if let Some(pos) = f.pairs.iter().position(|(ps, pv)| ps == s && pv == v) {
                        f.pairs.swap_remove(pos);
                    }
                    drop_from(&mut f.by_subject, s, v);
                }
            }
        }
    }

    /// Total number of indexed facts (diagnostics).
    pub fn num_facts(&self) -> usize {
        self.concepts
            .values()
            .map(|f| f.members.len())
            .sum::<usize>()
            + self.roles.values().map(|f| f.pairs.len()).sum::<usize>()
            + self
                .attributes
                .values()
                .map(|f| f.pairs.len())
                .sum::<usize>()
    }
}

/// Evaluates a CQ over an ABox (builds a throwaway [`AboxIndex`]).
pub fn evaluate_cq(q: &ConjunctiveQuery, abox: &Abox) -> Answers {
    let index = AboxIndex::build(abox);
    evaluate_cq_indexed(q, abox, &index)
}

/// Evaluates a UCQ (builds a throwaway [`AboxIndex`]).
pub fn evaluate_ucq(u: &Ucq, abox: &Abox) -> Answers {
    let index = AboxIndex::build(abox);
    evaluate_ucq_indexed(u, abox, &index)
}

/// Evaluates a CQ against a prebuilt index. The index must have been
/// built from this `abox`.
pub fn evaluate_cq_indexed(q: &ConjunctiveQuery, abox: &Abox, index: &AboxIndex) -> Answers {
    let mut answers = Answers::new();
    let mut bindings: HashMap<String, Binding> = HashMap::new();
    eval_rec(q, abox, index, 0, &mut bindings, &mut answers);
    answers
}

/// Evaluates a UCQ against a prebuilt index (union of the disjuncts'
/// answers).
pub fn evaluate_ucq_indexed(u: &Ucq, abox: &Abox, index: &AboxIndex) -> Answers {
    let mut out = Answers::new();
    for q in &u.disjuncts {
        let mut bindings: HashMap<String, Binding> = HashMap::new();
        eval_rec(q, abox, index, 0, &mut bindings, &mut out);
    }
    out
}

/// Evaluates a set of disjuncts (borrowed from one or more UCQs)
/// against a prebuilt index, unioning their answers. This is the
/// shard-side evaluation primitive of the scatter-gather engine: the
/// coordinator routes each disjunct to the shards that can contain its
/// matches and each shard runs exactly this over its own index.
pub fn evaluate_disjuncts_indexed(
    disjuncts: &[&ConjunctiveQuery],
    abox: &Abox,
    index: &AboxIndex,
) -> Answers {
    let mut out = Answers::new();
    for q in disjuncts {
        let mut bindings: HashMap<String, Binding> = HashMap::new();
        eval_rec(q, abox, index, 0, &mut bindings, &mut out);
    }
    out
}

/// [`evaluate_ucq_parallel`] under an `eval` trace span. Exactly one
/// span is recorded, from the coordinating thread, with the resolved
/// thread count as a counter — so a trace's phase set is identical for
/// every `threads` value.
pub fn evaluate_ucq_parallel_traced(
    u: &Ucq,
    abox: &Abox,
    index: &AboxIndex,
    threads: usize,
    ctx: &obda_obs::TraceCtx,
) -> Answers {
    let guard = obda_obs::span!(ctx, "eval");
    guard.count("threads", threads.clamp(1, u.disjuncts.len().max(1)) as u64);
    guard.count("disjuncts", u.len() as u64);
    evaluate_ucq_parallel(u, abox, index, threads)
}

/// Evaluates a UCQ with the disjuncts sharded round-robin over
/// `threads` scoped threads. Each shard accumulates into its own
/// [`Answers`] set; the ordered merge makes the result identical to
/// [`evaluate_ucq_indexed`] for every thread count.
pub fn evaluate_ucq_parallel(u: &Ucq, abox: &Abox, index: &AboxIndex, threads: usize) -> Answers {
    let shard_count = threads.clamp(1, u.disjuncts.len().max(1));
    if shard_count <= 1 {
        return evaluate_ucq_indexed(u, abox, index);
    }
    let mut shards: Vec<Vec<&ConjunctiveQuery>> = vec![Vec::new(); shard_count];
    for (i, q) in u.disjuncts.iter().enumerate() {
        // lint: allow(R1.index, "i % shard_count < shard_count == shards.len() by the vec! above")
        shards[i % shard_count].push(q);
    }
    let mut out = Answers::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                scope.spawn(move || {
                    let mut acc = Answers::new();
                    for q in shard {
                        let mut bindings: HashMap<String, Binding> = HashMap::new();
                        eval_rec(q, abox, index, 0, &mut bindings, &mut acc);
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            // lint: allow(R1.expect, "join() only fails if the shard panicked; re-raising hands the panic to the serving layer's per-request catch_unwind instead of silently dropping answers")
            out.extend(h.join().expect("UCQ evaluation shard panicked"));
        }
    });
    out
}

fn eval_rec(
    q: &ConjunctiveQuery,
    abox: &Abox,
    index: &AboxIndex,
    atom_idx: usize,
    bindings: &mut HashMap<String, Binding>,
    answers: &mut Answers,
) {
    if atom_idx == q.atoms.len() {
        let mut tuple = Vec::with_capacity(q.head.len());
        for h in &q.head {
            match bindings.get(h) {
                Some(Binding::Ind(i)) => {
                    tuple.push(AnswerTerm::Iri(abox.individual_name(*i).to_owned()))
                }
                Some(Binding::Val(v)) => tuple.push(AnswerTerm::Value(v.clone())),
                None => return, // unsafe query guard; parser prevents this
            }
        }
        answers.insert(tuple);
        return;
    }
    // lint: allow(R1.index, "recursion invariant: atom_idx < q.atoms.len() is checked by the base case above")
    let atom = &q.atoms[atom_idx];
    // Resolve a term against current bindings: Some(required) or None
    // (free — the variable binds per candidate fact).
    let resolve =
        |t: &Term, bindings: &HashMap<String, Binding>| -> Result<Option<IndividualId>, ()> {
            match t {
                Term::Const(name) => match abox.find_individual(name) {
                    Some(i) => Ok(Some(i)),
                    None => Err(()), // constant absent from the ABox: no match
                },
                Term::Var(v) => match bindings.get(v) {
                    Some(Binding::Ind(i)) => Ok(Some(*i)),
                    Some(Binding::Val(_)) => Err(()), // sort clash
                    None => Ok(None),
                },
            }
        };
    match atom {
        Atom::Concept(c, t) => {
            let want = match resolve(t, bindings) {
                Ok(w) => w,
                Err(()) => return,
            };
            let Some(facts) = index.concepts.get(&c.0) else {
                return;
            };
            match want {
                // Bound term: a membership probe instead of a scan.
                Some(w) => {
                    if facts.set.contains(&w) {
                        eval_rec(q, abox, index, atom_idx + 1, bindings, answers);
                    }
                }
                None => {
                    for &ai in &facts.members {
                        with_binding(t, Binding::Ind(ai), bindings, |b| {
                            eval_rec(q, abox, index, atom_idx + 1, b, answers)
                        });
                    }
                }
            }
        }
        Atom::Role(p, s, o) => {
            let want_s = match resolve(s, bindings) {
                Ok(w) => w,
                Err(()) => return,
            };
            let want_o = match resolve(o, bindings) {
                Ok(w) => w,
                Err(()) => return,
            };
            let Some(facts) = index.roles.get(&p.0) else {
                return;
            };
            match (want_s, want_o) {
                // Both ends fixed: a containment probe.
                (Some(ws), Some(wo)) => {
                    if facts
                        .by_subject
                        .get(&ws)
                        .is_some_and(|objs| objs.contains(&wo))
                    {
                        eval_rec(q, abox, index, atom_idx + 1, bindings, answers);
                    }
                }
                // Subject fixed: walk its adjacency list. `o` is an
                // unbound variable distinct from any bound one.
                (Some(ws), None) => {
                    for &aobj in facts.by_subject.get(&ws).map(Vec::as_slice).unwrap_or(&[]) {
                        with_binding(o, Binding::Ind(aobj), bindings, |b| {
                            eval_rec(q, abox, index, atom_idx + 1, b, answers)
                        });
                    }
                }
                // Object fixed: reverse adjacency.
                (None, Some(wo)) => {
                    for &asub in facts.by_object.get(&wo).map(Vec::as_slice).unwrap_or(&[]) {
                        with_binding(s, Binding::Ind(asub), bindings, |b| {
                            eval_rec(q, abox, index, atom_idx + 1, b, answers)
                        });
                    }
                }
                // Both free: scan the pair list. Bind subject, then
                // object (same variable in both positions must match).
                (None, None) => {
                    for (asub, aobj) in &facts.pairs {
                        with_binding(s, Binding::Ind(*asub), bindings, |b| {
                            let consistent = match o {
                                Term::Var(v) => match b.get(v) {
                                    Some(Binding::Ind(i)) => i == aobj,
                                    Some(Binding::Val(_)) => false,
                                    None => true,
                                },
                                Term::Const(_) => true, // unreachable: want_o would be Some
                            };
                            if consistent {
                                with_binding(o, Binding::Ind(*aobj), b, |b2| {
                                    eval_rec(q, abox, index, atom_idx + 1, b2, answers)
                                });
                            }
                        });
                    }
                }
            }
        }
        Atom::Attribute(u, s, v) => {
            let want_s = match resolve(s, bindings) {
                Ok(w) => w,
                Err(()) => return,
            };
            let Some(facts) = index.attributes.get(&u.0) else {
                return;
            };
            let try_fact = |asub: IndividualId,
                            aval: &Value,
                            bindings: &mut HashMap<String, Binding>,
                            answers: &mut Answers| {
                let value_ok = match v {
                    ValueTerm::Lit(l) => l == aval,
                    ValueTerm::Var(x) => match bindings.get(x) {
                        Some(Binding::Val(bound)) => bound == aval,
                        Some(Binding::Ind(_)) => false,
                        None => true,
                    },
                };
                if !value_ok {
                    return;
                }
                with_binding(s, Binding::Ind(asub), bindings, |b| match v {
                    ValueTerm::Var(x) if !b.contains_key(x) => {
                        b.insert(x.clone(), Binding::Val(aval.clone()));
                        eval_rec(q, abox, index, atom_idx + 1, b, answers);
                        b.remove(x);
                    }
                    _ => eval_rec(q, abox, index, atom_idx + 1, b, answers),
                });
            };
            match want_s {
                // Bound subject: only its value bucket.
                Some(ws) => {
                    for aval in facts.by_subject.get(&ws).map(Vec::as_slice).unwrap_or(&[]) {
                        try_fact(ws, aval, bindings, answers);
                    }
                }
                None => {
                    for (asub, aval) in &facts.pairs {
                        try_fact(*asub, aval, bindings, answers);
                    }
                }
            }
        }
    }
}

/// Runs `f` with `t` bound (if it is an unbound variable), restoring the
/// binding map afterwards.
fn with_binding(
    t: &Term,
    b: Binding,
    bindings: &mut HashMap<String, Binding>,
    mut f: impl FnMut(&mut HashMap<String, Binding>),
) {
    match t {
        Term::Var(v) if !bindings.contains_key(v) => {
            // Only proceed if consistent (caller pre-checked want).
            bindings.insert(v.clone(), b);
            f(bindings);
            bindings.remove(v);
        }
        _ => f(bindings),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_cq;
    use obda_dllite::{parse_abox, parse_tbox};

    fn setup() -> (obda_dllite::Signature, Abox) {
        let t = parse_tbox("concept A B\nrole p\nattribute u").unwrap();
        let ab = parse_abox(
            "A(x1)\nA(x2)\nB(x2)\np(x1, x2)\np(x2, x2)\nu(x1, 5)\nu(x2, \"hi\")",
            &t.sig,
        )
        .unwrap();
        (t.sig, ab)
    }

    fn names(ans: &Answers) -> Vec<String> {
        ans.iter()
            .map(|t| {
                t.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect()
    }

    #[test]
    fn single_concept_atom() {
        let (sig, ab) = setup();
        let q = parse_cq("q(x) :- A(x)", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q, &ab)), vec!["x1", "x2"]);
    }

    #[test]
    fn join_across_atoms() {
        let (sig, ab) = setup();
        let q = parse_cq("q(x) :- A(x), p(x, y), B(y)", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q, &ab)), vec!["x1", "x2"]);
        let q2 = parse_cq("q(x) :- B(x), p(x, x)", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q2, &ab)), vec!["x2"]);
    }

    #[test]
    fn constants_restrict() {
        let (sig, ab) = setup();
        let q = parse_cq("q(y) :- p(\"x1\", y)", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q, &ab)), vec!["x2"]);
        let q2 = parse_cq("q(y) :- p(\"ghost\", y)", &sig).unwrap();
        assert!(evaluate_cq(&q2, &ab).is_empty());
    }

    #[test]
    fn attribute_values_and_literals() {
        let (sig, ab) = setup();
        let q = parse_cq("q(x, n) :- u(x, n)", &sig).unwrap();
        assert_eq!(evaluate_cq(&q, &ab).len(), 2);
        let q2 = parse_cq("q(x) :- u(x, 5)", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q2, &ab)), vec!["x1"]);
        let q3 = parse_cq("q(x) :- u(x, \"hi\")", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q3, &ab)), vec!["x2"]);
    }

    #[test]
    fn repeated_variable_in_role_atom() {
        let (sig, ab) = setup();
        let q = parse_cq("q(x) :- p(x, x)", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q, &ab)), vec!["x2"]);
    }

    #[test]
    fn shared_value_variable_joins() {
        let (sig, mut_ab) = setup();
        let mut ab = mut_ab;
        // Give x2 the same value 5 so a value join has a witness.
        let u = sig.find_attribute("u").unwrap();
        ab.assert_attribute(u, "x2", Value::Int(5));
        let q = parse_cq("q(x, y) :- u(x, n), u(y, n)", &sig).unwrap();
        let ans = evaluate_cq(&q, &ab);
        // (x1,x1), (x1,x2), (x2,x1), (x2,x2 via 5 and via "hi").
        assert_eq!(ans.len(), 4);
    }
}
