//! CQ/UCQ evaluation over a concrete [`Abox`] ("ABox mode").
//!
//! A straightforward backtracking join, atom by atom, with bindings over
//! individuals and values. This is both the execution engine for
//! materialized OBDA and the reference evaluator the rewriting tests
//! compare against.

use std::collections::{BTreeSet, HashMap};

use obda_dllite::{Abox, Assertion, IndividualId, Value};

use crate::query::{Atom, ConjunctiveQuery, Term, Ucq, ValueTerm};

/// One answer component: an individual (by name) or a data value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnswerTerm {
    /// Individual IRI.
    Iri(String),
    /// Data value.
    Value(Value),
}

impl std::fmt::Display for AnswerTerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnswerTerm::Iri(s) => f.write_str(s),
            AnswerTerm::Value(v) => write!(f, "{v}"),
        }
    }
}

/// A set of answer tuples (sorted, deduplicated).
pub type Answers = BTreeSet<Vec<AnswerTerm>>;

#[derive(Debug, Clone, PartialEq)]
enum Binding {
    Ind(IndividualId),
    Val(Value),
}

/// Per-predicate fact index, built once per query evaluation so each
/// atom scans only its own predicate's facts (the naive all-assertions
/// scan made materialized-mode answering quadratic at data scale).
struct AboxIndex {
    concepts: HashMap<u32, Vec<IndividualId>>,
    roles: HashMap<u32, Vec<(IndividualId, IndividualId)>>,
    attributes: HashMap<u32, Vec<(IndividualId, Value)>>,
}

impl AboxIndex {
    fn build(abox: &Abox) -> Self {
        let mut ix = AboxIndex {
            concepts: HashMap::new(),
            roles: HashMap::new(),
            attributes: HashMap::new(),
        };
        for a in abox.assertions() {
            match a {
                Assertion::Concept(c, i) => ix.concepts.entry(c.0).or_default().push(*i),
                Assertion::Role(p, s, o) => ix.roles.entry(p.0).or_default().push((*s, *o)),
                Assertion::Attribute(u, s, v) => {
                    ix.attributes.entry(u.0).or_default().push((*s, v.clone()))
                }
            }
        }
        ix
    }
}

/// Evaluates a CQ over an ABox.
pub fn evaluate_cq(q: &ConjunctiveQuery, abox: &Abox) -> Answers {
    let mut answers = Answers::new();
    let mut bindings: HashMap<String, Binding> = HashMap::new();
    let index = AboxIndex::build(abox);
    eval_rec(q, abox, &index, 0, &mut bindings, &mut answers);
    answers
}

/// Evaluates a UCQ (union of the disjuncts' answers).
pub fn evaluate_ucq(u: &Ucq, abox: &Abox) -> Answers {
    let mut out = Answers::new();
    let index = AboxIndex::build(abox);
    for q in &u.disjuncts {
        let mut bindings: HashMap<String, Binding> = HashMap::new();
        eval_rec(q, abox, &index, 0, &mut bindings, &mut out);
    }
    out
}

fn eval_rec(
    q: &ConjunctiveQuery,
    abox: &Abox,
    index: &AboxIndex,
    atom_idx: usize,
    bindings: &mut HashMap<String, Binding>,
    answers: &mut Answers,
) {
    if atom_idx == q.atoms.len() {
        let mut tuple = Vec::with_capacity(q.head.len());
        for h in &q.head {
            match bindings.get(h) {
                Some(Binding::Ind(i)) => {
                    tuple.push(AnswerTerm::Iri(abox.individual_name(*i).to_owned()))
                }
                Some(Binding::Val(v)) => tuple.push(AnswerTerm::Value(v.clone())),
                None => return, // unsafe query guard; parser prevents this
            }
        }
        answers.insert(tuple);
        return;
    }
    let atom = &q.atoms[atom_idx];
    // Resolve a term against current bindings: Some(required) or None
    // (free — the variable binds per candidate fact).
    let resolve =
        |t: &Term, bindings: &HashMap<String, Binding>| -> Result<Option<IndividualId>, ()> {
            match t {
                Term::Const(name) => match abox.find_individual(name) {
                    Some(i) => Ok(Some(i)),
                    None => Err(()), // constant absent from the ABox: no match
                },
                Term::Var(v) => match bindings.get(v) {
                    Some(Binding::Ind(i)) => Ok(Some(*i)),
                    Some(Binding::Val(_)) => Err(()), // sort clash
                    None => Ok(None),
                },
            }
        };
    match atom {
        Atom::Concept(c, t) => {
            let want = match resolve(t, bindings) {
                Ok(w) => w,
                Err(()) => return,
            };
            for &ai in index.concepts.get(&c.0).map(Vec::as_slice).unwrap_or(&[]) {
                if want.is_none_or(|w| w == ai) {
                    with_binding(t, Binding::Ind(ai), bindings, |b| {
                        eval_rec(q, abox, index, atom_idx + 1, b, answers)
                    });
                }
            }
        }
        Atom::Role(p, s, o) => {
            let want_s = match resolve(s, bindings) {
                Ok(w) => w,
                Err(()) => return,
            };
            let want_o = match resolve(o, bindings) {
                Ok(w) => w,
                Err(()) => return,
            };
            for &(asub, aobj) in index.roles.get(&p.0).map(Vec::as_slice).unwrap_or(&[]) {
                {
                    let (asub, aobj) = (&asub, &aobj);
                    if want_s.is_none_or(|w| w == *asub) && want_o.is_none_or(|w| w == *aobj) {
                        // Bind subject, then object (same variable in both
                        // positions must match).
                        with_binding(s, Binding::Ind(*asub), bindings, |b| {
                            let consistent = match o {
                                Term::Var(v) => match b.get(v) {
                                    Some(Binding::Ind(i)) => i == aobj,
                                    Some(Binding::Val(_)) => false,
                                    None => true,
                                },
                                Term::Const(_) => true, // checked via want_o
                            };
                            if consistent {
                                with_binding(o, Binding::Ind(*aobj), b, |b2| {
                                    eval_rec(q, abox, index, atom_idx + 1, b2, answers)
                                });
                            }
                        });
                    }
                }
            }
        }
        Atom::Attribute(u, s, v) => {
            let want_s = match resolve(s, bindings) {
                Ok(w) => w,
                Err(()) => return,
            };
            for (asub, aval) in index.attributes.get(&u.0).map(Vec::as_slice).unwrap_or(&[]) {
                {
                    if want_s.is_some_and(|w| w != *asub) {
                        continue;
                    }
                    let value_ok = match v {
                        ValueTerm::Lit(l) => l == aval,
                        ValueTerm::Var(x) => match bindings.get(x) {
                            Some(Binding::Val(bound)) => bound == aval,
                            Some(Binding::Ind(_)) => false,
                            None => true,
                        },
                    };
                    if !value_ok {
                        continue;
                    }
                    with_binding(s, Binding::Ind(*asub), bindings, |b| match v {
                        ValueTerm::Var(x) if !b.contains_key(x) => {
                            b.insert(x.clone(), Binding::Val(aval.clone()));
                            eval_rec(q, abox, index, atom_idx + 1, b, answers);
                            b.remove(x);
                        }
                        _ => eval_rec(q, abox, index, atom_idx + 1, b, answers),
                    });
                }
            }
        }
    }
}

/// Runs `f` with `t` bound (if it is an unbound variable), restoring the
/// binding map afterwards.
fn with_binding(
    t: &Term,
    b: Binding,
    bindings: &mut HashMap<String, Binding>,
    mut f: impl FnMut(&mut HashMap<String, Binding>),
) {
    match t {
        Term::Var(v) if !bindings.contains_key(v) => {
            // Only proceed if consistent (caller pre-checked want).
            bindings.insert(v.clone(), b);
            f(bindings);
            bindings.remove(v);
        }
        _ => f(bindings),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_cq;
    use obda_dllite::{parse_abox, parse_tbox};

    fn setup() -> (obda_dllite::Signature, Abox) {
        let t = parse_tbox("concept A B\nrole p\nattribute u").unwrap();
        let ab = parse_abox(
            "A(x1)\nA(x2)\nB(x2)\np(x1, x2)\np(x2, x2)\nu(x1, 5)\nu(x2, \"hi\")",
            &t.sig,
        )
        .unwrap();
        (t.sig, ab)
    }

    fn names(ans: &Answers) -> Vec<String> {
        ans.iter()
            .map(|t| {
                t.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect()
    }

    #[test]
    fn single_concept_atom() {
        let (sig, ab) = setup();
        let q = parse_cq("q(x) :- A(x)", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q, &ab)), vec!["x1", "x2"]);
    }

    #[test]
    fn join_across_atoms() {
        let (sig, ab) = setup();
        let q = parse_cq("q(x) :- A(x), p(x, y), B(y)", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q, &ab)), vec!["x1", "x2"]);
        let q2 = parse_cq("q(x) :- B(x), p(x, x)", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q2, &ab)), vec!["x2"]);
    }

    #[test]
    fn constants_restrict() {
        let (sig, ab) = setup();
        let q = parse_cq("q(y) :- p(\"x1\", y)", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q, &ab)), vec!["x2"]);
        let q2 = parse_cq("q(y) :- p(\"ghost\", y)", &sig).unwrap();
        assert!(evaluate_cq(&q2, &ab).is_empty());
    }

    #[test]
    fn attribute_values_and_literals() {
        let (sig, ab) = setup();
        let q = parse_cq("q(x, n) :- u(x, n)", &sig).unwrap();
        assert_eq!(evaluate_cq(&q, &ab).len(), 2);
        let q2 = parse_cq("q(x) :- u(x, 5)", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q2, &ab)), vec!["x1"]);
        let q3 = parse_cq("q(x) :- u(x, \"hi\")", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q3, &ab)), vec!["x2"]);
    }

    #[test]
    fn repeated_variable_in_role_atom() {
        let (sig, ab) = setup();
        let q = parse_cq("q(x) :- p(x, x)", &sig).unwrap();
        assert_eq!(names(&evaluate_cq(&q, &ab)), vec!["x2"]);
    }

    #[test]
    fn shared_value_variable_joins() {
        let (sig, mut_ab) = setup();
        let mut ab = mut_ab;
        // Give x2 the same value 5 so a value join has a witness.
        let u = sig.find_attribute("u").unwrap();
        ab.assert_attribute(u, "x2", Value::Int(5));
        let q = parse_cq("q(x, y) :- u(x, n), u(y, n)", &sig).unwrap();
        let ans = evaluate_cq(&q, &ab);
        // (x1,x1), (x1,x2), (x2,x1), (x2,x2 via 5 and via "hi").
        assert_eq!(ans.len(), 4);
    }
}
