//! OBDA consistency checking.
//!
//! A DL-Lite knowledge base is inconsistent exactly when some negative
//! inclusion is violated by the (virtual) data or some unsatisfiable
//! predicate is non-empty. Both reduce to boolean query answering:
//!
//! * for each (inverse-expanded) negative inclusion `S₁ ⊑ ¬S₂`, the
//!   boolean view query `∃x. V[S₁](x) ∧ V[S₂](x)` (or its role/attribute
//!   analog) must be empty — the views already close the positive
//!   hierarchy, mirroring how Mastro evaluates NI-violation queries over
//!   the rewriting;
//! * for each unsatisfiable predicate, its view must be empty.

use obda_dllite::{BasicRole, Tbox};
use obda_mapping::MappingSet;
use obda_sqlstore::{Database, SqlError};
use quonto::{Classification, NodeKind, NodeSort};

use crate::query::Term;
use crate::rewrite::presto::{ViewAtom, ViewQuery};
use crate::rewrite::unfold;

/// A consistency violation, described for the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A negative inclusion has a joint witness.
    NegativeInclusion {
        /// Rendered `S₁ ⊑ ¬S₂`.
        axiom: String,
    },
    /// An unsatisfiable predicate has at least one instance.
    UnsatisfiableNonEmpty {
        /// Predicate name.
        predicate: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NegativeInclusion { axiom } => {
                write!(f, "negative inclusion violated: {axiom}")
            }
            Violation::UnsatisfiableNonEmpty { predicate } => {
                write!(f, "unsatisfiable predicate `{predicate}` is non-empty")
            }
        }
    }
}

/// Checks consistency of the virtual knowledge base, returning all
/// violations (empty ⟺ consistent).
pub fn check_consistency(
    tbox: &Tbox,
    cls: &Classification,
    mappings: &MappingSet,
    db: &Database,
) -> Result<Vec<Violation>, SqlError> {
    let g = cls.graph();
    let mut out = Vec::new();
    let boolean = |atoms: Vec<ViewAtom>| ViewQuery {
        head: Vec::new(),
        atoms,
    };
    let x = || Term::Var("x".into());
    let y = || Term::Var("y".into());

    // Negative inclusions.
    for np in g.neg_pairs_expanded() {
        let vq = match g.node_sort(np.lhs) {
            NodeSort::Concept => boolean(vec![
                ViewAtom::ConceptView(g.node_as_concept(np.lhs), x()),
                ViewAtom::ConceptView(g.node_as_concept(np.rhs), x()),
            ]),
            NodeSort::Role => boolean(vec![
                ViewAtom::RoleView(g.node_as_role(np.lhs), x(), y()),
                ViewAtom::RoleView(g.node_as_role(np.rhs), x(), y()),
            ]),
            NodeSort::Attr => {
                let (u1, u2) = match (g.node_kind(np.lhs), g.node_kind(np.rhs)) {
                    (NodeKind::Attr(u1), NodeKind::Attr(u2)) => (u1, u2),
                    // lint: allow(R1.panic, "node_sort(lhs) == Attr implies both node_kinds are Attr by graph construction")
                    other => unreachable!("attr NI over {other:?}"),
                };
                boolean(vec![
                    ViewAtom::AttrView(u1, x(), crate::query::ValueTerm::Var("v".into())),
                    ViewAtom::AttrView(u2, x(), crate::query::ValueTerm::Var("v".into())),
                ])
            }
        };
        let rw = crate::rewrite::presto::PrestoRewriting { queries: vec![vq] };
        let answers = unfold::answer_presto_virtual(&rw, cls, mappings, db)?;
        if !answers.is_empty() {
            let axiom = render_pair(tbox, cls, np.lhs, np.rhs);
            out.push(Violation::NegativeInclusion { axiom });
        }
    }

    // Unsatisfiable predicates must be empty.
    for &v in cls.unsat().members() {
        let node = quonto::NodeId(v);
        let vq = match g.node_kind(node) {
            NodeKind::Concept(a) => boolean(vec![ViewAtom::ConceptView(
                obda_dllite::BasicConcept::Atomic(a),
                x(),
            )]),
            NodeKind::Role(p, false) => {
                boolean(vec![ViewAtom::RoleView(BasicRole::Direct(p), x(), y())])
            }
            NodeKind::Attr(u) => boolean(vec![ViewAtom::AttrView(
                u,
                x(),
                crate::query::ValueTerm::Var("v".into()),
            )]),
            // ∃P / P⁻ / δ(U) nodes are covered by their named cluster.
            _ => continue,
        };
        let rw = crate::rewrite::presto::PrestoRewriting { queries: vec![vq] };
        let answers = unfold::answer_presto_virtual(&rw, cls, mappings, db)?;
        if !answers.is_empty() {
            out.push(Violation::UnsatisfiableNonEmpty {
                predicate: render_node(tbox, cls, node),
            });
        }
    }
    Ok(out)
}

fn render_node(tbox: &Tbox, cls: &Classification, n: quonto::NodeId) -> String {
    let g = cls.graph();
    match g.node_sort(n) {
        NodeSort::Concept => obda_dllite::printer::basic_concept(
            g.node_as_concept(n),
            &tbox.sig,
            obda_dllite::printer::Style::Display,
        ),
        NodeSort::Role => obda_dllite::printer::basic_role(
            g.node_as_role(n),
            &tbox.sig,
            obda_dllite::printer::Style::Display,
        ),
        NodeSort::Attr => match g.node_kind(n) {
            NodeKind::Attr(u) => tbox.sig.attribute_name(u).to_owned(),
            // lint: allow(R1.panic, "node_sort(n) == Attr implies node_kind(n) is Attr by graph construction")
            other => unreachable!("{other:?}"),
        },
    }
}

fn render_pair(
    tbox: &Tbox,
    cls: &Classification,
    lhs: quonto::NodeId,
    rhs: quonto::NodeId,
) -> String {
    format!(
        "{} ⊑ ¬{}",
        render_node(tbox, cls, lhs),
        render_node(tbox, cls, rhs)
    )
}
