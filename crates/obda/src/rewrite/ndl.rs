//! **NDL rewriting target**: the Presto view skeletons compiled into a
//! stratified nonrecursive-datalog program, evaluated with *shared* view
//! extents instead of a per-skeleton cross-product of members.
//!
//! Presto already keeps the number of *skeletons* small, but our
//! evaluation path expanded each view atom into the union of its member
//! predicates per skeleton — re-deriving the same view extension once per
//! occurrence, and (on the PerfectRef path) exploding into a UCQ that the
//! `PRUNE_DISJUNCT_CAP` has to cap. Bienvenu et al. show this gap is
//! inherent: UCQ rewritings are exponential in the worst case while
//! NDL rewritings stay polynomial. The NDL program makes the sharing
//! explicit:
//!
//! * **stratum 0** — one rule per view member: `V_S(x) :- B(x)` for every
//!   basic expression `B ⊑* S` in the classification closure;
//! * **stratum 1** — one rule per Presto skeleton, over the stratum-0
//!   view predicates.
//!
//! Each distinct view predicate appears **once** in the program, so
//! program size is `O(skeletons + Σ |members|)` — polynomial in the
//! TBox — and evaluation materializes each view extent exactly once:
//!
//! * **materialized mode**: [`build_extent`] computes the extent from the
//!   [`AboxIndex`], keyed by name so per-shard extents merge without
//!   re-interning; a [`ViewMemo`] caches extents per ABox epoch
//!   (`ndl_view_memo_{hit,miss}` registry counters), and
//!   [`eval_skeletons`] joins the strata bottom-up with a backtracking
//!   join mirroring the UCQ evaluator;
//! * **virtual mode**: [`answer_ndl_virtual_traced`] compiles the whole
//!   program into **one** SQL plan — each view extent is a
//!   [`Plan::SharedScan`] (CTE-style `WITH v AS (...)`) over the union of
//!   its member sources, with IRI templates concatenated into full-IRI
//!   text columns so skeleton joins are single-column string equality;
//!   every skeleton referencing a view reuses the same materialized
//!   intermediate within the statement.
//!
//! Memo keying note: the memo key is the view predicate alone, not
//! (predicate, binding pattern) — an extent carries its own secondary
//! indexes (by-subject / by-object / membership set), so one
//! materialization serves every binding pattern that arises during the
//! join. Invalidation is keyed on a [`DataEpoch`] — the pair of the
//! TBox epoch and an ABox version: a TBox change or a wholesale ABox
//! swap moves the epoch and the memo self-clears on next access, while
//! the incremental write path ([`crate::delta`]) *patches* memoized
//! extents in place and restamps the memo at the new ABox version.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::{Arc, Mutex};

use obda_dllite::{Abox, AttributeId, BasicConcept, BasicRole, Value};
use obda_mapping::MappingSet;
use obda_obs::TraceCtx;
use obda_sqlstore::plan::{CompiledCmp, Source};
use obda_sqlstore::sql::ast::{
    CmpOp, Comparison, Join, Operand, SelectCore, SelectItem, SelectQuery,
};
use obda_sqlstore::{
    execute_traced, plan_query, ComputeExpr, Database, Plan, PlannedQuery, SqlError, SqlValue,
};
use quonto::sync::lock_or_recover;
use quonto::Classification;

use crate::answer::{AboxIndex, AnswerTerm, Answers};
use crate::error::{ErrorPhase, ObdaError};
use crate::query::{ConjunctiveQuery, Term, ValueTerm};
use crate::rewrite::presto::{
    attr_view_members, concept_view_members, presto_rewrite, role_view_members, ViewAtom, ViewQuery,
};
use crate::rewrite::unfold::{view_atom_sources, ArgBinding, FlatSource};

/// A stratum-0 intensional predicate: the view of one basic expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ViewPred {
    /// Unary concept view `V_S(x)`.
    Concept(BasicConcept),
    /// Binary role view `V_Q(x, y)` (orientation included).
    Role(BasicRole),
    /// Attribute view `V_U(x, v)`.
    Attr(AttributeId),
}

/// A view predicate plus its member rules (one rule per member).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewDef {
    /// Concept view: members are basic concepts `B ⊑* S`.
    Concept {
        /// The view's target expression.
        target: BasicConcept,
        /// Subsumee members, sorted and deduplicated.
        members: Vec<BasicConcept>,
    },
    /// Role view: members are basic roles `Q' ⊑* Q`.
    Role {
        /// The view's target role (with orientation).
        target: BasicRole,
        /// Subsumee members, sorted and deduplicated.
        members: Vec<BasicRole>,
    },
    /// Attribute view: members are attributes `U' ⊑* U`.
    Attr {
        /// The view's target attribute.
        target: AttributeId,
        /// Subsumee members, sorted and deduplicated.
        members: Vec<AttributeId>,
    },
}

impl ViewDef {
    /// The predicate this definition defines.
    pub fn pred(&self) -> ViewPred {
        match self {
            ViewDef::Concept { target, .. } => ViewPred::Concept(*target),
            ViewDef::Role { target, .. } => ViewPred::Role(*target),
            ViewDef::Attr { target, .. } => ViewPred::Attr(*target),
        }
    }

    /// Number of stratum-0 rules (one per member).
    pub fn num_members(&self) -> usize {
        match self {
            ViewDef::Concept { members, .. } => members.len(),
            ViewDef::Role { members, .. } => members.len(),
            ViewDef::Attr { members, .. } => members.len(),
        }
    }
}

/// A compiled NDL program: shared stratum-0 view definitions plus the
/// stratum-1 skeleton rules over them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdlProgram {
    /// Distinct view predicates, in deterministic (sorted) order.
    pub views: Vec<ViewDef>,
    /// Skeleton rules (shape shared with the Presto rewriting).
    pub queries: Vec<ViewQuery>,
    /// Total rule count: one per view member plus one per skeleton.
    pub num_rules: usize,
}

impl NdlProgram {
    /// Number of skeleton rules.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the program has no skeletons (unsatisfiable query shape).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

// Registry counters for the NDL path, resolved once.
obda_obs::counter_handle!(fn ndl_rules_total, "ndl_rules");
obda_obs::counter_handle!(fn ndl_memo_hit_total, "ndl_view_memo_hit");
obda_obs::counter_handle!(fn ndl_memo_miss_total, "ndl_view_memo_miss");

/// Compiles `q` into an NDL program: Presto skeletons plus one shared
/// view definition per distinct view predicate they mention.
pub fn ndl_compile(q: &ConjunctiveQuery, cls: &Classification) -> NdlProgram {
    ndl_compile_ebox(q, cls, None)
}

/// [`ndl_compile`] with EBox member pruning: each view definition keeps
/// only members with non-empty, non-subsumed asserted extensions
/// (counted `ebox_pruned_views`). Extents built from the pruned members
/// stay correct under delta maintenance because `maintain_memo` patches
/// against the *full* classification-derived member list: an insert
/// into a pruned member lands in the extent through its kept subsumer's
/// containment, revalidated (or retracted) by the write path first.
pub(crate) fn ndl_compile_ebox(
    q: &ConjunctiveQuery,
    cls: &Classification,
    ebox: Option<&obda_mapping::Ebox>,
) -> NdlProgram {
    use crate::rewrite::eboxprune::{
        prune_attr_members, prune_concept_members, prune_role_members,
    };
    let presto = presto_rewrite(q, cls);
    let mut preds: BTreeSet<ViewPred> = BTreeSet::new();
    for vq in &presto.queries {
        for atom in &vq.atoms {
            preds.insert(match atom {
                ViewAtom::ConceptView(s, _) => ViewPred::Concept(*s),
                ViewAtom::RoleView(r, _, _) => ViewPred::Role(*r),
                ViewAtom::AttrView(u, _, _) => ViewPred::Attr(*u),
            });
        }
    }
    let views: Vec<ViewDef> = preds
        .into_iter()
        .map(|p| match p {
            ViewPred::Concept(s) => ViewDef::Concept {
                target: s,
                members: match ebox {
                    Some(e) => prune_concept_members(concept_view_members(cls, s), e),
                    None => concept_view_members(cls, s),
                },
            },
            ViewPred::Role(r) => ViewDef::Role {
                target: r,
                members: match ebox {
                    Some(e) => prune_role_members(role_view_members(cls, r), e),
                    None => role_view_members(cls, r),
                },
            },
            ViewPred::Attr(u) => ViewDef::Attr {
                target: u,
                members: match ebox {
                    Some(e) => prune_attr_members(attr_view_members(cls, u), e),
                    None => attr_view_members(cls, u),
                },
            },
        })
        .collect();
    let num_rules = views.iter().map(ViewDef::num_members).sum::<usize>() + presto.queries.len();
    NdlProgram {
        views,
        queries: presto.queries,
        num_rules,
    }
}

/// Traced [`ndl_compile`]: child span `ndl` (under the engine's
/// `rewrite` span) with rule/view/skeleton counters, plus the
/// process-wide `ndl_rules` registry counter.
pub fn ndl_compile_traced(
    q: &ConjunctiveQuery,
    cls: &Classification,
    ctx: &TraceCtx,
) -> NdlProgram {
    ndl_compile_traced_ebox(q, cls, ctx, None)
}

/// [`ndl_compile_traced`] with EBox member pruning (see
/// [`ndl_compile_ebox`]).
pub(crate) fn ndl_compile_traced_ebox(
    q: &ConjunctiveQuery,
    cls: &Classification,
    ctx: &TraceCtx,
    ebox: Option<&obda_mapping::Ebox>,
) -> NdlProgram {
    let guard = ctx.span("ndl");
    let prog = ndl_compile_ebox(q, cls, ebox);
    guard.count("rules", prog.num_rules as u64);
    guard.count("views", prog.views.len() as u64);
    guard.count("skeletons", prog.queries.len() as u64);
    ndl_rules_total().add(prog.num_rules as u64);
    prog
}

// ---------------------------------------------------------------------------
// Native evaluation: name-keyed view extents + memo + backtracking join.
// ---------------------------------------------------------------------------

/// A materialized view extent, keyed by individual *name* so per-shard
/// extents (whose `IndividualId`s are shard-local) merge directly.
/// Carries the same secondary indexes as [`AboxIndex`], so one extent
/// serves every binding pattern.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewExtent {
    /// Unary members (concept views), sorted and deduplicated.
    pub members: Vec<String>,
    /// Membership set for bound-term probes (unary views).
    pub member_set: HashSet<String>,
    /// Binary pairs (role views: IRI/IRI; attribute views: IRI/value
    /// with the value in [`ExtTerm::Val`]), sorted and deduplicated.
    pub pairs: Vec<(String, ExtTerm)>,
    /// Subject → objects index over `pairs`.
    pub by_subject: HashMap<String, Vec<ExtTerm>>,
    /// Object → subjects index (role views only; values don't join on
    /// the object side through this index).
    pub by_object: HashMap<ExtTerm, Vec<String>>,
}

/// Second component of a binary extent pair: an IRI or a data value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExtTerm {
    /// Individual IRI.
    Iri(String),
    /// Attribute value.
    Val(Value),
}

impl ViewExtent {
    pub(crate) fn from_members(mut members: Vec<String>) -> ViewExtent {
        members.sort();
        members.dedup();
        let member_set = members.iter().cloned().collect();
        ViewExtent {
            members,
            member_set,
            ..ViewExtent::default()
        }
    }

    pub(crate) fn from_pairs(mut pairs: Vec<(String, ExtTerm)>) -> ViewExtent {
        pairs.sort();
        pairs.dedup();
        let mut by_subject: HashMap<String, Vec<ExtTerm>> = HashMap::new();
        let mut by_object: HashMap<ExtTerm, Vec<String>> = HashMap::new();
        for (s, o) in &pairs {
            by_subject.entry(s.clone()).or_default().push(o.clone());
            by_object.entry(o.clone()).or_default().push(s.clone());
        }
        ViewExtent {
            pairs,
            by_subject,
            by_object,
            ..ViewExtent::default()
        }
    }

    /// Adds one member in place (unary extents), keeping `members`
    /// sorted/deduplicated and `member_set` consistent. Duplicates are
    /// no-ops. The write path patches extents with this instead of
    /// rebuilding them, so a delta's memo cost is O(batch · log extent)
    /// plus the insertion memmoves — not a clone of the extent.
    pub(crate) fn add_member(&mut self, name: String) {
        if self.member_set.contains(&name) {
            return;
        }
        let pos = self
            .members
            .binary_search(&name)
            .expect_err("member_set said absent");
        self.members.insert(pos, name.clone());
        self.member_set.insert(name);
    }

    /// Removes one member in place; absent names are no-ops.
    pub(crate) fn remove_member(&mut self, name: &str) {
        if !self.member_set.remove(name) {
            return;
        }
        if let Ok(pos) = self.members.binary_search_by(|m| m.as_str().cmp(name)) {
            self.members.remove(pos);
        }
    }

    /// Adds one pair in place (binary extents), keeping `pairs` and the
    /// secondary-index buckets in the same sorted order a from-scratch
    /// [`ViewExtent::from_pairs`] build produces. Duplicates are no-ops.
    pub(crate) fn add_pair(&mut self, s: String, o: ExtTerm) {
        let pair = (s, o);
        let Err(pos) = self.pairs.binary_search(&pair) else {
            return;
        };
        self.pairs.insert(pos, pair.clone());
        let (s, o) = pair;
        let bucket = self.by_subject.entry(s.clone()).or_default();
        let at = bucket.binary_search(&o).unwrap_or_else(|e| e);
        bucket.insert(at, o.clone());
        let bucket = self.by_object.entry(o).or_default();
        let at = bucket.binary_search(&s).unwrap_or_else(|e| e);
        bucket.insert(at, s);
    }

    /// Removes one pair in place, dropping emptied index buckets;
    /// absent pairs are no-ops.
    pub(crate) fn remove_pair(&mut self, s: &str, o: &ExtTerm) {
        let found = self
            .pairs
            .binary_search_by(|(ps, po)| ps.as_str().cmp(s).then_with(|| po.cmp(o)));
        let Ok(pos) = found else { return };
        self.pairs.remove(pos);
        if let Some(bucket) = self.by_subject.get_mut(s) {
            if let Ok(at) = bucket.binary_search(o) {
                bucket.remove(at);
            }
            if bucket.is_empty() {
                self.by_subject.remove(s);
            }
        }
        if let Some(bucket) = self.by_object.get_mut(o) {
            if let Ok(at) = bucket.binary_search_by(|x| x.as_str().cmp(s)) {
                bucket.remove(at);
            }
            if bucket.is_empty() {
                self.by_object.remove(o);
            }
        }
    }

    /// Number of tuples in the extent.
    pub fn len(&self) -> usize {
        self.members.len() + self.pairs.len()
    }

    /// True when the extent is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty() && self.pairs.is_empty()
    }
}

/// Builds one view extent from the fact index (stratum-0 evaluation:
/// the union over the view's members of their direct extensions).
pub fn build_extent(def: &ViewDef, abox: &Abox, index: &AboxIndex) -> ViewExtent {
    let name = |i| abox.individual_name(i).to_string();
    match def {
        ViewDef::Concept { members, .. } => {
            let mut out = Vec::new();
            for m in members {
                match m {
                    BasicConcept::Atomic(a) => {
                        if let Some(f) = index.concepts.get(&a.0) {
                            out.extend(f.members.iter().map(|&i| name(i)));
                        }
                    }
                    BasicConcept::Exists(q) => {
                        if let Some(f) = index.roles.get(&q.role().0) {
                            let keys = if q.is_inverse() {
                                f.by_object.keys()
                            } else {
                                f.by_subject.keys()
                            };
                            out.extend(keys.map(|&i| name(i)));
                        }
                    }
                    BasicConcept::AttrDomain(u) => {
                        if let Some(f) = index.attributes.get(&u.0) {
                            out.extend(f.by_subject.keys().map(|&i| name(i)));
                        }
                    }
                }
            }
            ViewExtent::from_members(out)
        }
        ViewDef::Role { members, .. } => {
            let mut out = Vec::new();
            for m in members {
                if let Some(f) = index.roles.get(&m.role().0) {
                    for &(s, o) in &f.pairs {
                        let (s, o) = if m.is_inverse() { (o, s) } else { (s, o) };
                        out.push((name(s), ExtTerm::Iri(name(o))));
                    }
                }
            }
            ViewExtent::from_pairs(out)
        }
        ViewDef::Attr { members, .. } => {
            let mut out = Vec::new();
            for m in members {
                if let Some(f) = index.attributes.get(&m.0) {
                    for (s, v) in &f.pairs {
                        out.push((name(*s), ExtTerm::Val(v.clone())));
                    }
                }
            }
            ViewExtent::from_pairs(out)
        }
    }
}

/// Merges per-shard partial extents into one (ordered concatenation
/// then sort + dedup — byte-identical regardless of shard count).
pub fn merge_extents(parts: &[Arc<ViewExtent>]) -> ViewExtent {
    if parts.iter().any(|p| !p.members.is_empty()) {
        let mut members = Vec::new();
        for p in parts {
            members.extend(p.members.iter().cloned());
        }
        ViewExtent::from_members(members)
    } else {
        let mut pairs = Vec::new();
        for p in parts {
            pairs.extend(p.pairs.iter().cloned());
        }
        ViewExtent::from_pairs(pairs)
    }
}

/// The pair of epochs data-derived caches depend on. The rewrite cache
/// is keyed on the TBox epoch alone (rewritings never read the ABox);
/// memoized view extents depend on both components — `tbox` moves on
/// schema-level invalidation, `abox` is a monotone per-system version
/// counter bumped by every ABox change (wholesale swap *or* incremental
/// delta).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataEpoch {
    /// TBox / classification epoch (rewrite-cache generation).
    pub tbox: u64,
    /// ABox version within that TBox epoch.
    pub abox: u64,
}

/// Epoch-guarded memo of materialized view extents. Shared by the
/// unsharded systems (whole-ABox extents), each shard (shard-local
/// partial extents) and the sharded coordinator (merged extents).
#[derive(Debug, Default)]
pub struct ViewMemo {
    epoch: DataEpoch,
    extents: HashMap<ViewPred, Arc<ViewExtent>>,
}

impl ViewMemo {
    /// Drops every memoized extent (ABox refresh without an epoch bump).
    pub fn clear(&mut self) {
        self.extents.clear();
    }

    /// The epoch the memoized extents were built at.
    pub(crate) fn epoch(&self) -> DataEpoch {
        self.epoch
    }

    /// Restamps the memo (the write path patches extents in place and
    /// then declares them current at the new ABox version).
    pub(crate) fn set_epoch(&mut self, epoch: DataEpoch) {
        self.epoch = epoch;
    }

    /// The currently memoized view predicates.
    pub(crate) fn preds(&self) -> Vec<ViewPred> {
        self.extents.keys().cloned().collect()
    }

    /// Replaces the memoized extent of `pred`.
    pub(crate) fn insert(&mut self, pred: ViewPred, ext: Arc<ViewExtent>) {
        self.extents.insert(pred, ext);
    }

    /// Removes and returns the memoized extent of `pred`. The write
    /// path takes the extent *out* of the map before patching so the
    /// memo's own reference is gone: `Arc::make_mut` then mutates in
    /// place whenever no in-flight query still holds the snapshot, and
    /// copies only when one does.
    pub(crate) fn take(&mut self, pred: &ViewPred) -> Option<Arc<ViewExtent>> {
        self.extents.remove(pred)
    }

    /// Drops one memoized extent (targeted invalidation). Returns
    /// whether it was present.
    pub(crate) fn remove(&mut self, pred: &ViewPred) -> bool {
        self.extents.remove(pred).is_some()
    }
}

/// Looks up `pred` in the memo for `epoch`, building (outside the lock)
/// and inserting on miss. A stale epoch clears the memo first. Returns
/// the extent and whether it was a memo hit; bumps the
/// `ndl_view_memo_{hit,miss}` registry counters.
pub fn memoized_extent(
    memo: &Mutex<ViewMemo>,
    epoch: DataEpoch,
    pred: ViewPred,
    build: impl FnOnce() -> ViewExtent,
) -> (Arc<ViewExtent>, bool) {
    {
        let mut m = lock_or_recover(memo);
        if m.epoch != epoch {
            m.extents.clear();
            m.epoch = epoch;
        } else if let Some(e) = m.extents.get(&pred) {
            ndl_memo_hit_total().add(1);
            return (Arc::clone(e), true);
        }
    }
    // Build outside the lock; a concurrent builder of the same extent
    // produces an identical value, so last-insert-wins is harmless.
    let built = Arc::new(build());
    let mut m = lock_or_recover(memo);
    if m.epoch == epoch {
        m.extents.insert(pred, Arc::clone(&built));
    }
    ndl_memo_miss_total().add(1);
    (built, false)
}

/// A skeleton-atom argument, uniform across the three atom shapes.
enum SkArg<'a> {
    IriConst(&'a str),
    IriVar(&'a str),
    ValLit(&'a Value),
    ValVar(&'a str),
}

fn atom_args(atom: &ViewAtom) -> (ViewPred, Vec<SkArg<'_>>) {
    fn conv(t: &Term) -> SkArg<'_> {
        match t {
            Term::Var(v) => SkArg::IriVar(v),
            Term::Const(c) => SkArg::IriConst(c),
        }
    }
    match atom {
        ViewAtom::ConceptView(s, t) => (ViewPred::Concept(*s), vec![conv(t)]),
        ViewAtom::RoleView(r, s, o) => (ViewPred::Role(*r), vec![conv(s), conv(o)]),
        ViewAtom::AttrView(u, s, v) => (
            ViewPred::Attr(*u),
            vec![
                conv(s),
                match v {
                    ValueTerm::Var(x) => SkArg::ValVar(x),
                    ValueTerm::Lit(l) => SkArg::ValLit(l),
                },
            ],
        ),
    }
}

/// Evaluates the stratum-1 skeletons over materialized view extents:
/// a backtracking join (mirroring the UCQ evaluator's structure) with
/// name bindings, answers merged into a [`BTreeSet`].
pub fn eval_skeletons(
    queries: &[ViewQuery],
    extents: &HashMap<ViewPred, Arc<ViewExtent>>,
) -> Answers {
    let mut answers = Answers::new();
    for vq in queries {
        let atoms: Vec<(ViewPred, Vec<SkArg<'_>>)> = vq.atoms.iter().map(atom_args).collect();
        let mut bindings: HashMap<String, ExtTerm> = HashMap::new();
        eval_rec(vq, &atoms, 0, extents, &mut bindings, &mut answers);
    }
    answers
}

/// Resolves an IRI-position argument to a concrete name, if bound.
/// `Err(())` means a sort clash (the variable is bound to a value).
fn resolve_iri(a: &SkArg<'_>, bindings: &HashMap<String, ExtTerm>) -> Result<Option<String>, ()> {
    match a {
        SkArg::IriConst(c) => Ok(Some((*c).to_string())),
        SkArg::IriVar(v) => match bindings.get(*v) {
            Some(ExtTerm::Iri(s)) => Ok(Some(s.clone())),
            Some(ExtTerm::Val(_)) => Err(()),
            None => Ok(None),
        },
        _ => Err(()),
    }
}

#[allow(clippy::too_many_arguments)]
fn with_binding(
    var: &str,
    val: ExtTerm,
    vq: &ViewQuery,
    atoms: &[(ViewPred, Vec<SkArg<'_>>)],
    idx: usize,
    extents: &HashMap<ViewPred, Arc<ViewExtent>>,
    bindings: &mut HashMap<String, ExtTerm>,
    answers: &mut Answers,
) {
    bindings.insert(var.to_string(), val);
    eval_rec(vq, atoms, idx + 1, extents, bindings, answers);
    bindings.remove(var);
}

#[allow(clippy::too_many_arguments)]
fn eval_rec(
    vq: &ViewQuery,
    atoms: &[(ViewPred, Vec<SkArg<'_>>)],
    idx: usize,
    extents: &HashMap<ViewPred, Arc<ViewExtent>>,
    bindings: &mut HashMap<String, ExtTerm>,
    answers: &mut Answers,
) {
    if idx == atoms.len() {
        let mut tuple = Vec::with_capacity(vq.head.len());
        for h in &vq.head {
            match bindings.get(h) {
                Some(ExtTerm::Iri(s)) => tuple.push(AnswerTerm::Iri(s.clone())),
                Some(ExtTerm::Val(v)) => tuple.push(AnswerTerm::Value(v.clone())),
                None => return, // unsafe head var; cannot happen on parsed queries
            }
        }
        answers.insert(tuple);
        return;
    }
    // lint: allow(R1.index, "idx == atoms.len() returned above and eval_rec only increments by 1")
    let (pred, args) = &atoms[idx];
    let Some(ext) = extents.get(pred) else { return };
    match args.as_slice() {
        [t] => {
            let Ok(want) = resolve_iri(t, bindings) else {
                return;
            };
            match want {
                Some(n) => {
                    if ext.member_set.contains(&n) {
                        eval_rec(vq, atoms, idx + 1, extents, bindings, answers);
                    }
                }
                None => {
                    let SkArg::IriVar(v) = t else { return };
                    for n in &ext.members {
                        with_binding(
                            v,
                            ExtTerm::Iri(n.clone()),
                            vq,
                            atoms,
                            idx,
                            extents,
                            bindings,
                            answers,
                        );
                    }
                }
            }
        }
        [s, o] => {
            let Ok(ws) = resolve_iri(s, bindings) else {
                return;
            };
            // Object side: IRI (role view) or value (attribute view).
            let wo: Option<ExtTerm> = match o {
                SkArg::IriConst(c) => Some(ExtTerm::Iri((*c).to_string())),
                SkArg::ValLit(l) => Some(ExtTerm::Val((*l).clone())),
                SkArg::IriVar(v) | SkArg::ValVar(v) => bindings.get(*v).cloned(),
            };
            let obj_var = match o {
                SkArg::IriVar(v) | SkArg::ValVar(v) => Some(*v),
                _ => None,
            };
            match (ws, wo) {
                (Some(sn), Some(ob)) => {
                    if ext
                        .by_subject
                        .get(&sn)
                        .is_some_and(|objs| objs.contains(&ob))
                    {
                        eval_rec(vq, atoms, idx + 1, extents, bindings, answers);
                    }
                }
                (Some(sn), None) => {
                    let Some(v) = obj_var else { return };
                    if let Some(objs) = ext.by_subject.get(&sn) {
                        for ob in objs.clone() {
                            with_binding(v, ob, vq, atoms, idx, extents, bindings, answers);
                        }
                    }
                }
                (None, Some(ob)) => {
                    let SkArg::IriVar(v) = s else { return };
                    if let Some(subs) = ext.by_object.get(&ob) {
                        for sn in subs.clone() {
                            with_binding(
                                v,
                                ExtTerm::Iri(sn),
                                vq,
                                atoms,
                                idx,
                                extents,
                                bindings,
                                answers,
                            );
                        }
                    }
                }
                (None, None) => {
                    let SkArg::IriVar(sv) = s else { return };
                    let Some(ov) = obj_var else { return };
                    for (sn, ob) in ext.pairs.clone() {
                        if *sv == ov {
                            // Same variable on both sides: require equality.
                            if ExtTerm::Iri(sn.clone()) != ob {
                                continue;
                            }
                            with_binding(
                                sv,
                                ExtTerm::Iri(sn),
                                vq,
                                atoms,
                                idx,
                                extents,
                                bindings,
                                answers,
                            );
                        } else {
                            bindings.insert(sv.to_string(), ExtTerm::Iri(sn));
                            bindings.insert(ov.to_string(), ob);
                            eval_rec(vq, atoms, idx + 1, extents, bindings, answers);
                            bindings.remove(ov);
                            bindings.remove(*sv);
                        }
                    }
                }
            }
        }
        _ => {}
    }
}

/// Evaluates a compiled NDL program natively over the fact index, with
/// extents memoized in `memo` for `epoch`. Span `eval` carries
/// view/skeleton counters plus per-query memo hit/miss counts.
pub fn answer_ndl_indexed_traced(
    prog: &NdlProgram,
    abox: &Abox,
    index: &AboxIndex,
    memo: &Mutex<ViewMemo>,
    epoch: DataEpoch,
    ctx: &TraceCtx,
) -> Answers {
    let guard = ctx.span("eval");
    guard.count("views", prog.views.len() as u64);
    guard.count("skeletons", prog.queries.len() as u64);
    let mut extents: HashMap<ViewPred, Arc<ViewExtent>> = HashMap::new();
    for def in &prog.views {
        let (ext, hit) =
            memoized_extent(memo, epoch, def.pred(), || build_extent(def, abox, index));
        guard.count(
            if hit {
                "view_memo_hit"
            } else {
                "view_memo_miss"
            },
            1,
        );
        extents.insert(def.pred(), ext);
    }
    eval_skeletons(&prog.queries, &extents)
}

// ---------------------------------------------------------------------------
// Virtual evaluation: one SQL plan with CTE-style SharedScan view extents.
// ---------------------------------------------------------------------------

/// Output sort of one head position (drives answer reconstruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutKind {
    Iri,
    Val,
}

/// Builds the relational plan of one member source: project the
/// argument columns, then concatenate IRI template prefixes into
/// full-IRI text columns ([`ComputeExpr::Concat`]).
fn member_plan(db: &Database, src: &FlatSource) -> Result<Plan, SqlError> {
    let items: Vec<SelectItem> = src
        .args
        .iter()
        .enumerate()
        .map(|(i, a)| SelectItem {
            col: match a {
                ArgBinding::Iri { col, .. } | ArgBinding::Val { col } => col.clone(),
            },
            alias: Some(format!("c{i}")),
        })
        .collect();
    // Place each condition on the last table it references (the same
    // FROM/JOIN placement the UCQ unfolder uses), so the planner sees
    // equi-join keys instead of residual cross-join filters.
    let alias_pos: HashMap<&str, usize> = src
        .tables
        .iter()
        .enumerate()
        .map(|(i, t)| (t.alias.as_str(), i))
        .collect();
    let mut per_table: Vec<Vec<Comparison>> = vec![Vec::new(); src.tables.len()];
    for cmp in src.own_conditions.iter().chain(&src.filters).cloned() {
        let mut pos = 0;
        for op in [&cmp.lhs, &cmp.rhs] {
            if let Operand::Col(c) = op {
                if let Some(p) = c.qualifier.as_deref().and_then(|a| alias_pos.get(a)) {
                    pos = pos.max(*p);
                }
            }
        }
        // lint: allow(R1.index, "pos comes from alias_pos values, all < src.tables.len() == per_table.len()")
        per_table[pos].push(cmp);
    }
    let mut tables = src.tables.iter().cloned().enumerate();
    let Some((_, from)) = tables.next() else {
        return Err(SqlError::new("view source with no tables"));
    };
    let filter = std::mem::take(&mut per_table[0]);
    let joins: Vec<Join> = tables
        .map(|(pos, t)| Join {
            table: t,
            // lint: allow(R1.index, "pos enumerates src.tables, and per_table has one slot per table")
            on: std::mem::take(&mut per_table[pos]),
        })
        .collect();
    let q = SelectQuery {
        first: SelectCore {
            distinct: false,
            items,
            from,
            joins,
            filter,
        },
        rest: Vec::new(),
        order_by: Vec::new(),
        limit: None,
    };
    let planned = plan_query(db, &q)?;
    let exprs: Vec<ComputeExpr> = src
        .args
        .iter()
        .enumerate()
        .map(|(i, a)| match a {
            ArgBinding::Iri { prefix, .. } => ComputeExpr::Concat {
                prefix: prefix.clone(),
                col: i,
            },
            ArgBinding::Val { .. } => ComputeExpr::Col(i),
        })
        .collect();
    Ok(Plan::Compute {
        input: Box::new(planned.plan),
        exprs,
    })
}

/// Builds the shared extent plan of one view: the deduplicated union of
/// its member sources, wrapped in a [`Plan::SharedScan`] so every
/// skeleton that references the view reuses one materialization.
#[allow(clippy::too_many_arguments)]
fn view_plan(
    db: &Database,
    cls: &Classification,
    mappings: &MappingSet,
    def: &ViewDef,
    id: usize,
    counter: &mut usize,
    ebox: Option<&obda_mapping::Ebox>,
) -> Result<Plan, SqlError> {
    // Canonical atom: the terms are ignored by source expansion.
    let x = || Term::Var("x".to_string());
    let atom = match def {
        ViewDef::Concept { target, .. } => ViewAtom::ConceptView(*target, x()),
        ViewDef::Role { target, .. } => ViewAtom::RoleView(*target, x(), Term::Var("y".into())),
        ViewDef::Attr { target, .. } => {
            ViewAtom::AttrView(*target, x(), ValueTerm::Var("v".into()))
        }
    };
    let sources = view_atom_sources(&atom, cls, mappings, db, counter, ebox)?;
    let inputs: Vec<Plan> = sources
        .iter()
        .map(|s| member_plan(db, s))
        .collect::<Result<_, _>>()?;
    Ok(Plan::SharedScan {
        id,
        input: Box::new(Plan::Union { inputs, all: false }),
    })
}

/// Builds the join plan of one skeleton over the shared view extents.
fn skeleton_plan(vq: &ViewQuery, view_plans: &HashMap<ViewPred, Plan>) -> Result<Plan, SqlError> {
    let mut plan: Option<Plan> = None;
    let mut var_pos: HashMap<String, usize> = HashMap::new();
    let mut width = 0usize;
    for atom in &vq.atoms {
        let (pred, args) = atom_args(atom);
        let base = view_plans
            .get(&pred)
            .cloned()
            .ok_or_else(|| SqlError::new("skeleton references unknown view"))?;
        let arity = args.len();
        // Per-atom constant filters and intra-atom repeated variables.
        let mut predicates: Vec<CompiledCmp> = Vec::new();
        let mut new_vars: Vec<(String, usize)> = Vec::new();
        let eq = |i: usize, rhs: Source| CompiledCmp {
            lhs: Source::Col(i),
            op: CmpOp::Eq,
            rhs,
        };
        for (i, a) in args.iter().enumerate() {
            match a {
                SkArg::IriConst(c) => {
                    predicates.push(eq(i, Source::Lit(SqlValue::Text((*c).to_string()))));
                }
                SkArg::ValLit(v) => predicates.push(eq(i, Source::Lit(sql_value(v)))),
                SkArg::IriVar(v) | SkArg::ValVar(v) => {
                    match new_vars.iter().find(|(n, _)| n == v) {
                        Some(&(_, j)) => predicates.push(eq(i, Source::Col(j))),
                        None => new_vars.push(((*v).to_string(), i)),
                    }
                }
            }
        }
        let mut node = base;
        if !predicates.is_empty() {
            node = Plan::Filter {
                input: Box::new(node),
                predicates,
            };
        }
        match plan.take() {
            None => {
                plan = Some(node);
                for (v, j) in new_vars {
                    var_pos.entry(v).or_insert(j);
                }
                width = arity;
            }
            Some(left) => {
                let mut left_keys = Vec::new();
                let mut right_keys = Vec::new();
                for (v, j) in &new_vars {
                    if let Some(&p) = var_pos.get(v) {
                        left_keys.push(p);
                        right_keys.push(*j);
                    }
                }
                plan = Some(Plan::HashJoin {
                    left: Box::new(left),
                    right: Box::new(node),
                    left_keys,
                    right_keys,
                    residual: Vec::new(),
                });
                for (v, j) in new_vars {
                    var_pos.entry(v).or_insert(width + j);
                }
                width += arity;
            }
        }
    }
    let Some(joined) = plan else {
        return Err(SqlError::new("skeleton with no atoms"));
    };
    let cols: Vec<usize> = vq
        .head
        .iter()
        .map(|h| {
            var_pos
                .get(h)
                .copied()
                .ok_or_else(|| SqlError::new("unsafe head variable"))
        })
        .collect::<Result<_, _>>()?;
    Ok(Plan::Project {
        input: Box::new(joined),
        cols,
    })
}

fn sql_value(v: &Value) -> SqlValue {
    match v {
        Value::Int(i) => SqlValue::Int(*i),
        Value::Text(s) => SqlValue::Text(s.clone()),
    }
}

/// Head-position sorts, read off the first skeleton (sorts are
/// consistent across skeletons of one rewriting).
fn out_kinds(prog: &NdlProgram) -> Vec<OutKind> {
    let Some(vq) = prog.queries.first() else {
        return Vec::new();
    };
    vq.head
        .iter()
        .map(|h| {
            for atom in &vq.atoms {
                if let ViewAtom::AttrView(_, _, ValueTerm::Var(v)) = atom {
                    if v == h {
                        return OutKind::Val;
                    }
                }
            }
            OutKind::Iri
        })
        .collect()
}

/// Evaluates a compiled NDL program in virtual mode: one SQL statement
/// whose plan unions every skeleton join over [`Plan::SharedScan`] view
/// extents. Span `unfold` covers plan construction; execution runs
/// under the engine's SQL tracing (`rows_scanned`, `sql_statements`).
pub fn answer_ndl_virtual_traced(
    prog: &NdlProgram,
    cls: &Classification,
    mappings: &MappingSet,
    db: &Database,
    ctx: &TraceCtx,
    ebox: Option<&obda_mapping::Ebox>,
) -> Result<Answers, ObdaError> {
    let planned = {
        let guard = ctx.span("unfold");
        guard.count("views", prog.views.len() as u64);
        guard.count("skeletons", prog.queries.len() as u64);
        let mut counter = 0usize;
        let mut view_plans: HashMap<ViewPred, Plan> = HashMap::new();
        for (id, def) in prog.views.iter().enumerate() {
            let p = view_plan(db, cls, mappings, def, id, &mut counter, ebox)
                .map_err(|e| ObdaError::sql_in(ErrorPhase::Unfold, "ndl view", e))?;
            view_plans.insert(def.pred(), p);
        }
        let inputs: Vec<Plan> = prog
            .queries
            .iter()
            .map(|vq| skeleton_plan(vq, &view_plans))
            .collect::<Result<_, _>>()
            .map_err(|e| ObdaError::sql_in(ErrorPhase::Unfold, "ndl skeleton", e))?;
        let arity = prog.queries.first().map_or(0, |vq| vq.head.len());
        PlannedQuery {
            plan: Plan::Union { inputs, all: false },
            columns: (0..arity).map(|i| format!("o{i}")).collect(),
        }
    };
    let kinds = out_kinds(prog);
    let res = {
        let _guard = ctx.span("sql");
        ctx.count("sql_queries", 1);
        execute_traced(db, &planned, ctx)
            .map_err(|e| ObdaError::sql_in(ErrorPhase::Evaluate, "ndl program", e))?
    };
    let mut answers = Answers::new();
    'row: for row in &res.rows {
        let mut tuple = Vec::with_capacity(kinds.len());
        for (v, kind) in row.iter().zip(&kinds) {
            match (kind, v) {
                (_, SqlValue::Null) => continue 'row,
                (OutKind::Iri, SqlValue::Text(s)) => tuple.push(AnswerTerm::Iri(s.clone())),
                (OutKind::Iri, SqlValue::Int(i)) => tuple.push(AnswerTerm::Iri(i.to_string())),
                (OutKind::Val, SqlValue::Int(i)) => tuple.push(AnswerTerm::Value(Value::Int(*i))),
                (OutKind::Val, SqlValue::Text(s)) => {
                    tuple.push(AnswerTerm::Value(Value::Text(s.clone())))
                }
            }
        }
        answers.insert(tuple);
    }
    Ok(answers)
}
