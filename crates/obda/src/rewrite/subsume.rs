//! **UCQ subsumption pruning**: dropping disjuncts that are homomorphic
//! images of another disjunct before the (much more expensive) data
//! step.
//!
//! A disjunct `q₁` is redundant in a UCQ if some other disjunct `q₂`
//! *subsumes* it: there is a homomorphism from `q₂`'s body into `q₁`'s
//! body mapping `q₂`'s head variables position-wise onto `q₁`'s. Then
//! every answer of `q₁` over any ABox is already an answer of `q₂`, so
//! removing `q₁` never changes the union. PerfectRef routinely emits
//! such redundant disjuncts (reduce steps produce specializations of
//! CQs that are also kept), and each one costs a full unfolding + SQL
//! round or an ABox join — pruning is pure win on the evaluation side.
//!
//! The homomorphism check is the textbook backtracking search (CQ
//! containment is NP-complete, but rewriting disjuncts have a handful
//! of atoms). The unpruned path stays available — callers can evaluate
//! the raw UCQ and cross-check, which the property tests do against the
//! bounded chase.

use std::collections::HashMap;

use crate::query::{Atom, ConjunctiveQuery, Term, Ucq, ValueTerm};

/// Above this disjunct count the system skips pruning: the kept-list
/// algorithm is quadratic in the UCQ size, and rewritings this large
/// (deep-hierarchy root queries) would spend far longer pruning than
/// evaluating.
pub const PRUNE_DISJUNCT_CAP: usize = 512;

/// The effective pruning cap: `QUONTO_PRUNE_CAP` when set and numeric,
/// else [`PRUNE_DISJUNCT_CAP`].
pub fn prune_cap() -> usize {
    quonto::env::prune_cap().unwrap_or(PRUNE_DISJUNCT_CAP)
}

/// Removes every disjunct subsumed by another disjunct. Keeps the first
/// representative of hom-equivalent disjuncts (in input order), so the
/// output is deterministic for a canonicalized input.
///
/// Quadratic in the number of disjuncts — callers on unbounded
/// rewritings should gate on [`PRUNE_DISJUNCT_CAP`].
pub fn prune_ucq(u: &Ucq) -> Ucq {
    let mut kept: Vec<ConjunctiveQuery> = Vec::new();
    'outer: for q in &u.disjuncts {
        for k in &kept {
            if subsumes(k, q) {
                continue 'outer; // q is redundant
            }
        }
        // q survives; it may in turn subsume earlier survivors.
        kept.retain(|k| !subsumes(q, k));
        kept.push(q.clone());
    }
    Ucq { disjuncts: kept }
}

/// [`prune_ucq`] under a `prune` trace span recording the surviving
/// disjunct count.
pub fn prune_ucq_traced(u: &Ucq, ctx: &obda_obs::TraceCtx) -> Ucq {
    let guard = obda_obs::span!(ctx, "prune");
    let pruned = prune_ucq(u);
    guard.count("disjuncts", pruned.len() as u64);
    pruned
}

/// The sort a variable inhabits, read off its body occurrences: IRI
/// positions (concept/role arguments, attribute subjects) vs attribute
/// value positions. Well-sorted queries never mix the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarSort {
    Iri,
    Val,
    Mixed,
}

fn var_sorts(q: &ConjunctiveQuery) -> HashMap<&str, VarSort> {
    fn note<'a>(sorts: &mut HashMap<&'a str, VarSort>, v: Option<&'a str>, sort: VarSort) {
        let Some(v) = v else { return };
        sorts
            .entry(v)
            .and_modify(|s| {
                if *s != sort {
                    *s = VarSort::Mixed;
                }
            })
            .or_insert(sort);
    }
    let mut sorts: HashMap<&str, VarSort> = HashMap::new();
    for a in &q.atoms {
        match a {
            Atom::Concept(_, t) => note(&mut sorts, t.as_var(), VarSort::Iri),
            Atom::Role(_, s, o) => {
                note(&mut sorts, s.as_var(), VarSort::Iri);
                note(&mut sorts, o.as_var(), VarSort::Iri);
            }
            Atom::Attribute(_, s, v) => {
                note(&mut sorts, s.as_var(), VarSort::Iri);
                note(&mut sorts, v.as_var(), VarSort::Val);
            }
        }
    }
    sorts
}

/// Whether `general` subsumes `specific`: a homomorphism from
/// `general`'s body into `specific`'s body maps `general`'s head
/// variables position-wise onto `specific`'s (so
/// `answers(specific) ⊆ answers(general)` over every ABox). Requires
/// equal head arity.
pub fn subsumes(general: &ConjunctiveQuery, specific: &ConjunctiveQuery) -> bool {
    if general.head.len() != specific.head.len() {
        return false;
    }
    // Seed the mappings with the positional head correspondence, each
    // head variable in the map matching its body sort (a value-typed
    // head like `q(n) :- u(x, n)` is matched through `val_map`, the
    // same map the attribute value positions consult). A head variable
    // repeated in `general` must map consistently. Sort mismatches,
    // mixed-sort variables and head variables missing from the body are
    // conservatively not subsumed.
    let gen_sorts = var_sorts(general);
    let spec_sorts = var_sorts(specific);
    let mut iri_map: HashMap<String, Term> = HashMap::new();
    let mut val_map: HashMap<String, ValueTerm> = HashMap::new();
    for (g, s) in general.head.iter().zip(&specific.head) {
        match (gen_sorts.get(g.as_str()), spec_sorts.get(s.as_str())) {
            (Some(VarSort::Iri), Some(VarSort::Iri)) => match iri_map.get(g) {
                Some(Term::Var(prev)) if prev == s => {}
                Some(_) => return false,
                None => {
                    iri_map.insert(g.clone(), Term::Var(s.clone()));
                }
            },
            (Some(VarSort::Val), Some(VarSort::Val)) => match val_map.get(g) {
                Some(ValueTerm::Var(prev)) if prev == s => {}
                Some(_) => return false,
                None => {
                    val_map.insert(g.clone(), ValueTerm::Var(s.clone()));
                }
            },
            _ => return false,
        }
    }
    hom_search(
        &general.atoms,
        0,
        &specific.atoms,
        &mut iri_map,
        &mut val_map,
    )
}

fn hom_search(
    gen_atoms: &[Atom],
    idx: usize,
    spec_atoms: &[Atom],
    iri_map: &mut HashMap<String, Term>,
    val_map: &mut HashMap<String, ValueTerm>,
) -> bool {
    let Some(atom) = gen_atoms.get(idx) else {
        return true; // every atom mapped
    };
    for target in spec_atoms {
        let mut added_iri: Vec<String> = Vec::new();
        let mut added_val: Vec<String> = Vec::new();
        if map_atom(
            atom,
            target,
            iri_map,
            val_map,
            &mut added_iri,
            &mut added_val,
        ) && hom_search(gen_atoms, idx + 1, spec_atoms, iri_map, val_map)
        {
            return true;
        }
        for v in added_iri {
            iri_map.remove(&v);
        }
        for v in added_val {
            val_map.remove(&v);
        }
    }
    false
}

/// Tries to extend the mapping so that `atom` lands on `target`,
/// recording newly bound variables for backtracking. On failure the
/// maps may contain the recorded additions; the caller rolls them back.
fn map_atom(
    atom: &Atom,
    target: &Atom,
    iri_map: &mut HashMap<String, Term>,
    val_map: &mut HashMap<String, ValueTerm>,
    added_iri: &mut Vec<String>,
    added_val: &mut Vec<String>,
) -> bool {
    let mut map_term = |t: &Term, onto: &Term| -> bool {
        match t {
            Term::Const(c) => matches!(onto, Term::Const(c2) if c == c2),
            Term::Var(v) => match iri_map.get(v) {
                Some(bound) => bound == onto,
                None => {
                    iri_map.insert(v.clone(), onto.clone());
                    added_iri.push(v.clone());
                    true
                }
            },
        }
    };
    match (atom, target) {
        (Atom::Concept(c1, t1), Atom::Concept(c2, t2)) if c1 == c2 => map_term(t1, t2),
        (Atom::Role(p1, s1, o1), Atom::Role(p2, s2, o2)) if p1 == p2 => {
            map_term(s1, s2) && map_term(o1, o2)
        }
        (Atom::Attribute(u1, s1, v1), Atom::Attribute(u2, s2, v2)) if u1 == u2 => {
            if !map_term(s1, s2) {
                return false;
            }
            match v1 {
                ValueTerm::Lit(l) => matches!(v2, ValueTerm::Lit(l2) if l == l2),
                ValueTerm::Var(x) => match val_map.get(x) {
                    Some(bound) => bound == v2,
                    None => {
                        val_map.insert(x.clone(), v2.clone());
                        added_val.push(x.clone());
                        true
                    }
                },
            }
        }
        _ => false,
    }
}

/// `true` when the environment disables pruning (`QUONTO_NO_PRUNE=1`) —
/// the cross-checking escape hatch mirroring `QUONTO_CLOSURE`.
pub fn pruning_disabled() -> bool {
    quonto::env::no_prune()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_cq;
    use obda_dllite::parse_tbox;

    fn sig() -> obda_dllite::Signature {
        parse_tbox("concept A B\nrole p\nattribute u").unwrap().sig
    }

    #[test]
    fn specialization_is_pruned() {
        let s = sig();
        // p(x, y) subsumes p(x, x) (map y ↦ x) and p(x, y), A(y).
        let general = parse_cq("q(x) :- p(x, y)", &s).unwrap();
        let diag = parse_cq("q(x) :- p(x, x)", &s).unwrap();
        let narrowed = parse_cq("q(x) :- p(x, y), A(y)", &s).unwrap();
        assert!(subsumes(&general, &diag));
        assert!(subsumes(&general, &narrowed));
        assert!(!subsumes(&diag, &general));
        let pruned = prune_ucq(&Ucq {
            disjuncts: vec![general.clone(), diag, narrowed],
        });
        assert_eq!(pruned.disjuncts, vec![general]);
    }

    #[test]
    fn later_generalization_evicts_earlier_disjuncts() {
        let s = sig();
        let diag = parse_cq("q(x) :- p(x, x)", &s).unwrap();
        let general = parse_cq("q(x) :- p(x, y)", &s).unwrap();
        let pruned = prune_ucq(&Ucq {
            disjuncts: vec![diag, general.clone()],
        });
        assert_eq!(pruned.disjuncts, vec![general]);
    }

    #[test]
    fn head_positions_block_spurious_homomorphisms() {
        let s = sig();
        // q(x, y) :- p(x, y) does not subsume q(x, y) :- p(y, x): the
        // head correspondence pins x ↦ x, y ↦ y.
        let a = parse_cq("q(x, y) :- p(x, y)", &s).unwrap();
        let b = parse_cq("q(x, y) :- p(y, x)", &s).unwrap();
        assert!(!subsumes(&a, &b));
        let pruned = prune_ucq(&Ucq {
            disjuncts: vec![a, b],
        });
        assert_eq!(pruned.disjuncts.len(), 2);
    }

    #[test]
    fn constants_and_literals_must_match() {
        let s = sig();
        let with_const = parse_cq("q(x) :- p(x, \"iri/1\")", &s).unwrap();
        let with_other = parse_cq("q(x) :- p(x, \"iri/2\")", &s).unwrap();
        let with_var = parse_cq("q(x) :- p(x, y)", &s).unwrap();
        assert!(!subsumes(&with_const, &with_other));
        assert!(subsumes(&with_var, &with_const));
        let lit5 = parse_cq("q(x) :- u(x, 5)", &s).unwrap();
        let lit6 = parse_cq("q(x) :- u(x, 6)", &s).unwrap();
        let lit_var = parse_cq("q(x) :- u(x, n)", &s).unwrap();
        assert!(!subsumes(&lit5, &lit6));
        assert!(subsumes(&lit_var, &lit5));
        assert!(!subsumes(&lit5, &lit_var));
    }

    #[test]
    fn value_typed_head_positions_are_pinned() {
        let s = sig();
        // The reviewer's counterexample: over ABox {u(a,7), u(b,5),
        // B(b)} the second query answers 7 but the first answers 5 —
        // neither may subsume the other.
        let g = parse_cq("q(n) :- u(x, n), B(x)", &s).unwrap();
        let sp = parse_cq("q(m) :- u(y, m), u(z, 5), B(z)", &s).unwrap();
        assert!(!subsumes(&g, &sp));
        assert!(!subsumes(&sp, &g));
        // Genuine value-head subsumption still holds: dropping a body
        // atom generalizes.
        let wide = parse_cq("q(n) :- u(x, n)", &s).unwrap();
        let narrow = parse_cq("q(m) :- u(y, m), B(y)", &s).unwrap();
        assert!(subsumes(&wide, &narrow));
        assert!(!subsumes(&narrow, &wide));
        // A value head must not pin the value to a literal-carrying atom
        // of a different head variable.
        let lit_body = parse_cq("q(m) :- u(y, m), u(y, 5)", &s).unwrap();
        assert!(subsumes(&wide, &lit_body));
    }

    #[test]
    fn head_sort_mismatch_is_never_subsumption() {
        let s = sig();
        let iri_head = parse_cq("q(x) :- A(x)", &s).unwrap();
        let val_head = parse_cq("q(n) :- u(y, n)", &s).unwrap();
        assert!(!subsumes(&iri_head, &val_head));
        assert!(!subsumes(&val_head, &iri_head));
        let pruned = prune_ucq(&Ucq {
            disjuncts: vec![iri_head, val_head],
        });
        assert_eq!(pruned.disjuncts.len(), 2);
    }

    #[test]
    fn mixed_iri_and_value_head_maps_independently() {
        let s = sig();
        // q(x, n) :- u(x, n) — the legal mixed-head shape from the
        // module docs. Positional pinning keeps subject and value
        // aligned.
        let g = parse_cq("q(x, n) :- u(x, n)", &s).unwrap();
        let sp = parse_cq("q(y, m) :- u(y, m), B(y)", &s).unwrap();
        assert!(subsumes(&g, &sp));
        assert!(!subsumes(&sp, &g));
    }

    #[test]
    fn incomparable_disjuncts_survive() {
        let s = sig();
        let a = parse_cq("q(x) :- A(x)", &s).unwrap();
        let b = parse_cq("q(x) :- B(x)", &s).unwrap();
        let pruned = prune_ucq(&Ucq {
            disjuncts: vec![a, b],
        });
        assert_eq!(pruned.disjuncts.len(), 2);
    }

    #[test]
    fn repeated_head_variable_maps_consistently() {
        let s = sig();
        // q(x, x) :- p(x, x) vs q(x, y) :- p(x, y): arity matches but
        // the doubled head of the first must map both positions to the
        // same target variable.
        let doubled = parse_cq("q(x, x) :- p(x, x)", &s).unwrap();
        let pair = parse_cq("q(x, y) :- p(x, y)", &s).unwrap();
        assert!(!subsumes(&doubled, &pair));
        assert!(subsumes(&pair, &doubled));
    }
}
