//! **Unfolding**: translating a rewritten query into SQL over the sources
//! ("virtual mode" — the OBDA requirement of Section 7: query answering
//! "reduced to the evaluation of a first-order query (directly
//! translatable into SQL) over a database").
//!
//! Every query atom expands into its *sources*: flattened mapping bodies
//! (for the PerfectRef UCQ) or unions of subsumee sources (for the
//! Presto view program). One flat SQL join is built per choice of one
//! source per atom — the textbook UCQ-over-GAV unfolding — with two
//! template-level optimizations that real OBDA systems rely on:
//!
//! * **prefix pruning**: a variable shared between two atoms whose IRI
//!   templates have different prefixes can never join, so the combination
//!   is dropped at compile time;
//! * **suffix pushdown**: an IRI constant `person/7` against template
//!   `person/{id}` compiles to the SQL condition `id = 7` (typed by the
//!   column), not to string manipulation at runtime.

use std::collections::HashMap;

use obda_dllite::{AttributeId, ConceptId, RoleId, Value};
use obda_mapping::{Ebox, IriTemplate, MappingSet};
use obda_sqlstore::sql::ast::{
    CmpOp, ColRef, Comparison, Join, Operand, SelectCore, SelectItem, TableRef,
};
use obda_sqlstore::{Database, SqlError, SqlValue};
use quonto::Classification;

use crate::answer::{AnswerTerm, Answers};
use crate::error::{ErrorPhase, ObdaError};
use crate::query::{Atom, ConjunctiveQuery, Term, Ucq, ValueTerm};
use crate::rewrite::presto::{
    attr_view_members, concept_view_members, role_view_members, PrestoRewriting, ViewAtom,
    ViewQuery,
};

/// How one argument position of an atom is produced by a source.
#[derive(Debug, Clone)]
pub(crate) enum ArgBinding {
    /// IRI built as `prefix + column value`.
    Iri { prefix: String, col: ColRef },
    /// Raw value column (attribute value position).
    Val { col: ColRef },
}

/// A flattened mapping body ready for inlining into a larger join.
#[derive(Debug, Clone)]
pub(crate) struct FlatSource {
    pub(crate) tables: Vec<TableRef>,
    /// Join conditions among this source's own tables (from the mapping's
    /// own JOINs), fully qualified.
    pub(crate) own_conditions: Vec<Comparison>,
    /// WHERE conjuncts of the mapping body, fully qualified.
    pub(crate) filters: Vec<Comparison>,
    /// Argument bindings for the atom's positions.
    pub(crate) args: Vec<ArgBinding>,
}

/// Flattens one core of a mapping's SQL for inclusion under an alias
/// prefix, resolving the head's referenced output columns.
fn flatten_core(
    db: &Database,
    core: &SelectCore,
    alias_prefix: &str,
    wanted: &[ColumnWant],
) -> Result<FlatSource, SqlError> {
    // Alias renaming.
    let mut refs = vec![core.from.clone()];
    refs.extend(core.joins.iter().map(|j| j.table.clone()));
    let rename: HashMap<String, String> = refs
        .iter()
        .map(|r| (r.alias.clone(), format!("{alias_prefix}{}", r.alias)))
        .collect();
    // Column ownership for qualification of bare column names.
    let mut owners: HashMap<String, Vec<String>> = HashMap::new();
    for r in &refs {
        let t = db.table(&r.table)?;
        for c in t.columns() {
            owners
                .entry(c.name.clone())
                .or_default()
                .push(r.alias.clone());
        }
    }
    let qualify = |c: &ColRef| -> Result<ColRef, SqlError> {
        let alias = match &c.qualifier {
            Some(q) => q.clone(),
            None => match owners.get(&c.column).map(Vec::as_slice) {
                Some([one]) => one.clone(),
                Some(_) => {
                    return Err(SqlError::new(format!(
                        "ambiguous column `{}` in mapping body",
                        c.column
                    )))
                }
                None => {
                    return Err(SqlError::new(format!(
                        "unknown column `{}` in mapping body",
                        c.column
                    )))
                }
            },
        };
        let renamed = rename
            .get(&alias)
            .ok_or_else(|| SqlError::new(format!("unknown alias `{alias}`")))?;
        Ok(ColRef {
            qualifier: Some(renamed.clone()),
            column: c.column.clone(),
        })
    };
    let remap_cmp = |cmp: &Comparison| -> Result<Comparison, SqlError> {
        let side = |o: &Operand| -> Result<Operand, SqlError> {
            Ok(match o {
                Operand::Col(c) => Operand::Col(qualify(c)?),
                Operand::Lit(v) => Operand::Lit(v.clone()),
            })
        };
        Ok(Comparison {
            lhs: side(&cmp.lhs)?,
            op: cmp.op,
            rhs: side(&cmp.rhs)?,
        })
    };

    let tables: Vec<TableRef> = refs
        .iter()
        .map(|r| TableRef {
            table: r.table.clone(),
            // lint: allow(R1.index, "`rename` was built from this same `refs` list, so every alias is a key")
            alias: rename[&r.alias].clone(),
        })
        .collect();
    let mut own_conditions = Vec::new();
    for j in &core.joins {
        for cmp in &j.on {
            own_conditions.push(remap_cmp(cmp)?);
        }
    }
    let mut filters = Vec::new();
    for cmp in &core.filter {
        filters.push(remap_cmp(cmp)?);
    }

    // Resolve an output-column name to the qualified underlying column.
    let resolve_output = |name: &str| -> Result<ColRef, SqlError> {
        if core.items.is_empty() {
            // SELECT *: the output name is the bare column name.
            return qualify(&ColRef {
                qualifier: None,
                column: name.to_owned(),
            });
        }
        for item in &core.items {
            let out_name = item.alias.as_deref().unwrap_or(&item.col.column);
            if out_name == name {
                return qualify(&item.col);
            }
        }
        Err(SqlError::new(format!(
            "mapping head references `{name}` not in SELECT list"
        )))
    };

    let mut args = Vec::new();
    for w in wanted {
        match w {
            ColumnWant::Iri { prefix, column } => args.push(ArgBinding::Iri {
                prefix: prefix.clone(),
                col: resolve_output(column)?,
            }),
            ColumnWant::Val { column } => args.push(ArgBinding::Val {
                col: resolve_output(column)?,
            }),
        }
    }
    Ok(FlatSource {
        tables,
        own_conditions,
        filters,
        args,
    })
}

/// What an atom position needs from the mapping's output.
enum ColumnWant {
    Iri { prefix: String, column: String },
    Val { column: String },
}

fn template_want(t: &IriTemplate) -> ColumnWant {
    ColumnWant::Iri {
        prefix: t.prefix.clone(),
        column: t.column.clone(),
    }
}

/// All sources of a plain signature atom (PerfectRef mode: direct
/// mappings only).
fn atom_sources(
    atom: &Atom,
    mappings: &MappingSet,
    db: &Database,
    counter: &mut usize,
) -> Result<Vec<FlatSource>, SqlError> {
    let mut out = Vec::new();
    let mut add =
        |sql: &str, wants: Vec<ColumnWant>, counter: &mut usize| -> Result<(), SqlError> {
            let q = obda_sqlstore::parse_query(sql)?;
            let mut cores = vec![&q.first];
            cores.extend(q.rest.iter().map(|(_, c)| c));
            if q.limit.is_some() || !q.order_by.is_empty() {
                return Err(SqlError::new(
                    "mapping bodies must not use ORDER BY / LIMIT",
                ));
            }
            for core in cores {
                *counter += 1;
                out.push(flatten_core(db, core, &format!("m{counter}_"), &wants)?);
            }
            Ok(())
        };
    match atom {
        Atom::Concept(c, _) => {
            for (m, subject) in mappings.concept_sources(*c) {
                add(&m.sql, vec![template_want(subject)], counter)?;
            }
        }
        Atom::Role(p, _, _) => {
            for (m, subject, object) in mappings.role_sources(*p) {
                add(
                    &m.sql,
                    vec![template_want(subject), template_want(object)],
                    counter,
                )?;
            }
        }
        Atom::Attribute(u, _, _) => {
            for (m, subject, value_col) in mappings.attribute_sources(*u) {
                add(
                    &m.sql,
                    vec![
                        template_want(subject),
                        ColumnWant::Val {
                            column: value_col.to_owned(),
                        },
                    ],
                    counter,
                )?;
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Flat-source containment (EBox union pruning + mapping-level inference).
// ---------------------------------------------------------------------------

/// A comparison operand with aliases canonicalized to table positions,
/// so two flattenings of the same mapping body compare equal regardless
/// of the alias counter they were flattened under.
#[derive(PartialEq)]
enum CanonOperand {
    Col(usize, String),
    Lit(SqlValue),
    /// A column whose alias is not one of the source's own tables —
    /// malformed for containment purposes; never equal to anything.
    Foreign,
}

fn canon_operand(o: &Operand, pos: &HashMap<&str, usize>) -> CanonOperand {
    match o {
        Operand::Lit(v) => CanonOperand::Lit(v.clone()),
        Operand::Col(c) => match c.qualifier.as_deref().and_then(|q| pos.get(q)) {
            Some(i) => CanonOperand::Col(*i, c.column.clone()),
            None => CanonOperand::Foreign,
        },
    }
}

fn canon_cmp(cmp: &Comparison, pos: &HashMap<&str, usize>) -> (CanonOperand, CmpOp, CanonOperand) {
    (
        canon_operand(&cmp.lhs, pos),
        cmp.op,
        canon_operand(&cmp.rhs, pos),
    )
}

/// Whether two canonical comparisons assert the same thing (equality is
/// symmetric, so `a = b` matches `b = a`).
fn cmp_matches(
    a: &(CanonOperand, CmpOp, CanonOperand),
    b: &(CanonOperand, CmpOp, CanonOperand),
) -> bool {
    if matches!(a.0, CanonOperand::Foreign) || matches!(a.2, CanonOperand::Foreign) {
        return false;
    }
    (a.1 == b.1 && a.0 == b.0 && a.2 == b.2)
        || (a.1 == CmpOp::Eq && b.1 == CmpOp::Eq && a.0 == b.2 && a.2 == b.0)
}

fn alias_positions(src: &FlatSource) -> HashMap<&str, usize> {
    src.tables
        .iter()
        .enumerate()
        .map(|(i, t)| (t.alias.as_str(), i))
        .collect()
}

/// Whether every row `specific` produces is also produced by `general`:
/// both scan the same tables in the same order and bind the same
/// argument columns, and every condition `general` imposes is also
/// imposed by `specific` (which may impose more). Purely syntactic, so
/// it holds for **every** source database state.
pub(crate) fn flat_source_contains(general: &FlatSource, specific: &FlatSource) -> bool {
    if general.tables.len() != specific.tables.len() || general.args.len() != specific.args.len() {
        return false;
    }
    if general
        .tables
        .iter()
        .zip(&specific.tables)
        .any(|(g, s)| g.table != s.table)
    {
        return false;
    }
    let gpos = alias_positions(general);
    let spos = alias_positions(specific);
    for (g, s) in general.args.iter().zip(&specific.args) {
        let same = match (g, s) {
            (
                ArgBinding::Iri {
                    prefix: gp,
                    col: gc,
                },
                ArgBinding::Iri {
                    prefix: sp,
                    col: sc,
                },
            ) => {
                gp == sp
                    && canon_operand(&Operand::Col(gc.clone()), &gpos)
                        == canon_operand(&Operand::Col(sc.clone()), &spos)
            }
            (ArgBinding::Val { col: gc }, ArgBinding::Val { col: sc }) => {
                canon_operand(&Operand::Col(gc.clone()), &gpos)
                    == canon_operand(&Operand::Col(sc.clone()), &spos)
            }
            _ => false,
        };
        if !same {
            return false;
        }
    }
    let spec_cmps: Vec<_> = specific
        .own_conditions
        .iter()
        .chain(&specific.filters)
        .map(|c| canon_cmp(c, &spos))
        .collect();
    general
        .own_conditions
        .iter()
        .chain(&general.filters)
        .map(|c| canon_cmp(c, &gpos))
        .all(|g| spec_cmps.iter().any(|s| cmp_matches(&g, s)))
}

/// Drops union members (per-atom flat sources) whose rows are provably
/// produced by another kept member. Returns the kept list and the
/// number pruned.
fn prune_flat_sources(sources: Vec<FlatSource>) -> (Vec<FlatSource>, u64) {
    let mut kept: Vec<FlatSource> = Vec::new();
    let mut pruned = 0u64;
    'next: for s in sources {
        for k in &kept {
            if flat_source_contains(k, &s) {
                pruned += 1;
                continue 'next;
            }
        }
        kept.retain(|k| {
            let drop = flat_source_contains(&s, k);
            if drop {
                pruned += 1;
            }
            !drop
        });
        kept.push(s);
    }
    (kept, pruned)
}

/// Every flat source of one named predicate, under a throwaway alias
/// counter (canonical containment ignores alias numbering).
fn named_sources(
    atom: &Atom,
    mappings: &MappingSet,
    db: &Database,
) -> Result<Vec<FlatSource>, SqlError> {
    let mut counter = 0usize;
    atom_sources(atom, mappings, db, &mut counter)
}

fn sources_contained(sub: &Atom, sup: &Atom, mappings: &MappingSet, db: &Database) -> bool {
    let (Ok(subs), Ok(sups)) = (
        named_sources(sub, mappings, db),
        named_sources(sup, mappings, db),
    ) else {
        return false; // conservative: unparseable mapping ⇒ no constraint
    };
    subs.iter()
        .all(|s| sups.iter().any(|g| flat_source_contains(g, s)))
}

fn var(n: &str) -> Term {
    Term::Var(n.to_owned())
}

/// Whether concept `sub`'s virtual extension is contained in `sup`'s in
/// every source database state (each of `sub`'s mapping sources is a
/// syntactic specialization of one of `sup`'s).
pub(crate) fn concept_sources_contained(
    mappings: &MappingSet,
    db: &Database,
    sub: ConceptId,
    sup: ConceptId,
) -> bool {
    sources_contained(
        &Atom::Concept(sub, var("x")),
        &Atom::Concept(sup, var("x")),
        mappings,
        db,
    )
}

/// Role analogue of [`concept_sources_contained`] (same orientation).
pub(crate) fn role_sources_contained(
    mappings: &MappingSet,
    db: &Database,
    sub: RoleId,
    sup: RoleId,
) -> bool {
    sources_contained(
        &Atom::Role(sub, var("x"), var("y")),
        &Atom::Role(sup, var("x"), var("y")),
        mappings,
        db,
    )
}

/// Attribute analogue of [`concept_sources_contained`].
pub(crate) fn attr_sources_contained(
    mappings: &MappingSet,
    db: &Database,
    sub: AttributeId,
    sup: AttributeId,
) -> bool {
    sources_contained(
        &Atom::Attribute(sub, var("x"), ValueTerm::Var("v".to_owned())),
        &Atom::Attribute(sup, var("x"), ValueTerm::Var("v".to_owned())),
        mappings,
        db,
    )
}

/// All sources of a view atom (Presto mode: union over subsumee members).
/// With an EBox, members with provably empty or subsumed virtual
/// extensions are skipped before their sources are flattened (counted
/// `ebox_pruned_views`).
pub(crate) fn view_atom_sources(
    atom: &ViewAtom,
    cls: &Classification,
    mappings: &MappingSet,
    db: &Database,
    counter: &mut usize,
    ebox: Option<&Ebox>,
) -> Result<Vec<FlatSource>, SqlError> {
    use obda_dllite::{BasicConcept, BasicRole};
    let mut out = Vec::new();
    let add = |sql: &str,
               wants: Vec<ColumnWant>,
               counter: &mut usize,
               out: &mut Vec<FlatSource>|
     -> Result<(), SqlError> {
        let q = obda_sqlstore::parse_query(sql)?;
        if q.limit.is_some() || !q.order_by.is_empty() {
            return Err(SqlError::new(
                "mapping bodies must not use ORDER BY / LIMIT",
            ));
        }
        let mut cores = vec![&q.first];
        cores.extend(q.rest.iter().map(|(_, c)| c));
        for core in cores {
            *counter += 1;
            out.push(flatten_core(db, core, &format!("m{counter}_"), &wants)?);
        }
        Ok(())
    };
    use crate::rewrite::eboxprune::{
        prune_attr_members, prune_concept_members, prune_role_members,
    };
    match atom {
        ViewAtom::ConceptView(s, _) => {
            let members = match ebox {
                Some(e) => prune_concept_members(concept_view_members(cls, *s), e),
                None => concept_view_members(cls, *s),
            };
            for member in members {
                match member {
                    BasicConcept::Atomic(a) => {
                        for (m, subject) in mappings.concept_sources(a) {
                            add(&m.sql, vec![template_want(subject)], counter, &mut out)?;
                        }
                    }
                    BasicConcept::Exists(BasicRole::Direct(p)) => {
                        for (m, subject, _) in mappings.role_sources(p) {
                            add(&m.sql, vec![template_want(subject)], counter, &mut out)?;
                        }
                    }
                    BasicConcept::Exists(BasicRole::Inverse(p)) => {
                        for (m, _, object) in mappings.role_sources(p) {
                            add(&m.sql, vec![template_want(object)], counter, &mut out)?;
                        }
                    }
                    BasicConcept::AttrDomain(u) => {
                        for (m, subject, _) in mappings.attribute_sources(u) {
                            add(&m.sql, vec![template_want(subject)], counter, &mut out)?;
                        }
                    }
                }
            }
        }
        ViewAtom::RoleView(q, _, _) => {
            let members = match ebox {
                Some(e) => prune_role_members(role_view_members(cls, *q), e),
                None => role_view_members(cls, *q),
            };
            for member in members {
                let p = member.role();
                for (m, subject, object) in mappings.role_sources(p) {
                    let wants = if member.is_inverse() {
                        vec![template_want(object), template_want(subject)]
                    } else {
                        vec![template_want(subject), template_want(object)]
                    };
                    add(&m.sql, wants, counter, &mut out)?;
                }
            }
        }
        ViewAtom::AttrView(u, _, _) => {
            let members = match ebox {
                Some(e) => prune_attr_members(attr_view_members(cls, *u), e),
                None => attr_view_members(cls, *u),
            };
            for member in members {
                for (m, subject, value_col) in mappings.attribute_sources(member) {
                    add(
                        &m.sql,
                        vec![
                            template_want(subject),
                            ColumnWant::Val {
                                column: value_col.to_owned(),
                            },
                        ],
                        counter,
                        &mut out,
                    )?;
                }
            }
        }
    }
    Ok(out)
}

/// Argument terms of an atom, in binding order.
fn atom_args(atom: &Atom) -> Vec<ArgTerm> {
    match atom {
        Atom::Concept(_, t) => vec![ArgTerm::Iri(t.clone())],
        Atom::Role(_, s, o) => vec![ArgTerm::Iri(s.clone()), ArgTerm::Iri(o.clone())],
        Atom::Attribute(_, s, v) => vec![ArgTerm::Iri(s.clone()), ArgTerm::Val(v.clone())],
    }
}

fn view_atom_args(atom: &ViewAtom) -> Vec<ArgTerm> {
    match atom {
        ViewAtom::ConceptView(_, t) => vec![ArgTerm::Iri(t.clone())],
        ViewAtom::RoleView(_, s, o) => vec![ArgTerm::Iri(s.clone()), ArgTerm::Iri(o.clone())],
        ViewAtom::AttrView(_, s, v) => vec![ArgTerm::Iri(s.clone()), ArgTerm::Val(v.clone())],
    }
}

#[derive(Debug, Clone)]
enum ArgTerm {
    Iri(Term),
    Val(ValueTerm),
}

/// How an answer column is reconstructed from a SQL output column.
#[derive(Debug, Clone)]
pub enum OutBinding {
    /// IRI: prefix + column value.
    Iri {
        /// Template prefix.
        prefix: String,
        /// Output position in the SQL result.
        position: usize,
    },
    /// Plain value.
    Val {
        /// Output position in the SQL result.
        position: usize,
    },
}

/// One flat SQL query plus the recipe to rebuild answer tuples.
#[derive(Debug, Clone)]
pub struct ComboQuery {
    /// The flat join query.
    pub core: SelectCore,
    /// Answer reconstruction, one entry per head variable.
    pub out: Vec<OutBinding>,
}

/// Builds the flat SQL queries for one CQ given per-atom source lists.
fn build_combos(
    head: &[String],
    atoms_args: &[Vec<ArgTerm>],
    sources_per_atom: &[Vec<FlatSource>],
    db: &Database,
) -> Result<Vec<ComboQuery>, SqlError> {
    let mut combos = Vec::new();
    let mut choice = vec![0usize; sources_per_atom.len()];
    if sources_per_atom.iter().any(Vec::is_empty) {
        return Ok(combos); // some atom has no source: no answers
    }
    loop {
        if let Some(combo) = build_one(head, atoms_args, sources_per_atom, &choice, db)? {
            combos.push(combo);
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == choice.len() {
                return Ok(combos);
            }
            // lint: allow(R1.index, "i < choice.len() checked above; choice and sources_per_atom have equal length by construction")
            choice[i] += 1;
            // lint: allow(R1.index, "i < choice.len() == sources_per_atom.len(); the odometer never exceeds either")
            if choice[i] < sources_per_atom[i].len() {
                break;
            }
            // lint: allow(R1.index, "i < choice.len() checked above")
            choice[i] = 0;
            i += 1;
        }
    }
}

/// Column type lookup for typed suffix pushdown.
fn column_literal(db: &Database, col: &ColRef, text: &str) -> SqlValue {
    // Find the column's type through its (renamed) alias: alias format is
    // `m{k}_{orig}`, but the table name is carried in the TableRef, so we
    // resolve lazily at condition-build time where the TableRef list is
    // in scope. Fallback: integers parse as Int, everything else Text.
    let _ = (db, col);
    match text.parse::<i64>() {
        Ok(n) => SqlValue::Int(n),
        Err(_) => SqlValue::Text(text.to_owned()),
    }
}

fn build_one(
    head: &[String],
    atoms_args: &[Vec<ArgTerm>],
    sources_per_atom: &[Vec<FlatSource>],
    choice: &[usize],
    db: &Database,
) -> Result<Option<ComboQuery>, SqlError> {
    let picked: Vec<&FlatSource> = sources_per_atom
        .iter()
        .zip(choice)
        // lint: allow(R1.index, "the odometer keeps every choice[k] < sources_per_atom[k].len()")
        .map(|(v, &i)| &v[i])
        .collect();

    // Gather variable bindings and constant conditions.
    let mut var_iri: HashMap<&str, Vec<(usize, &ArgBinding)>> = HashMap::new(); // atom idx for join placement
    let mut var_val: HashMap<&str, Vec<(usize, &ArgBinding)>> = HashMap::new();
    let mut const_conditions: Vec<(usize, Comparison)> = Vec::new();
    for (ai, (args, src)) in atoms_args.iter().zip(&picked).enumerate() {
        if args.len() != src.args.len() {
            return Err(SqlError::new("arity mismatch between atom and source"));
        }
        for (term, binding) in args.iter().zip(&src.args) {
            match (term, binding) {
                (ArgTerm::Iri(Term::Var(v)), b @ ArgBinding::Iri { .. }) => {
                    var_iri.entry(v).or_default().push((ai, b));
                }
                (ArgTerm::Iri(Term::Const(iri)), ArgBinding::Iri { prefix, col }) => {
                    match iri.strip_prefix(prefix.as_str()) {
                        None => return Ok(None), // constant can't match template
                        Some(suffix) => const_conditions.push((
                            ai,
                            Comparison {
                                lhs: Operand::Col(col.clone()),
                                op: CmpOp::Eq,
                                rhs: Operand::Lit(column_literal(db, col, suffix)),
                            },
                        )),
                    }
                }
                (ArgTerm::Val(ValueTerm::Var(v)), b @ ArgBinding::Val { .. }) => {
                    var_val.entry(v.as_str()).or_default().push((ai, b));
                }
                (ArgTerm::Val(ValueTerm::Lit(l)), ArgBinding::Val { col }) => {
                    let lit = match l {
                        Value::Int(i) => SqlValue::Int(*i),
                        Value::Text(s) => SqlValue::Text(s.clone()),
                    };
                    const_conditions.push((
                        ai,
                        Comparison {
                            lhs: Operand::Col(col.clone()),
                            op: CmpOp::Eq,
                            rhs: Operand::Lit(lit),
                        },
                    ));
                }
                _ => return Err(SqlError::new("binding sort mismatch")),
            }
        }
    }
    // A variable name used in both IRI and value positions never joins.
    for v in var_iri.keys() {
        if var_val.contains_key(*v) {
            return Ok(None);
        }
    }

    // Prefix pruning + join conditions per shared variable.
    let mut join_conditions: Vec<(usize, Comparison)> = Vec::new();
    for bindings in var_iri.values() {
        let first_prefix = match bindings[0].1 {
            ArgBinding::Iri { prefix, .. } => prefix,
            // lint: allow(R1.panic, "var_iri only ever receives ArgBinding::Iri entries (partitioned at insert above)")
            _ => unreachable!(),
        };
        for (_, b) in bindings {
            if let ArgBinding::Iri { prefix, .. } = b {
                if prefix != first_prefix {
                    return Ok(None); // different templates never join
                }
            }
        }
        for w in bindings.windows(2) {
            let (a0, b0) = (&w[0], &w[1]);
            let (c0, c1) = match (b0.1, a0.1) {
                (ArgBinding::Iri { col: c1, .. }, ArgBinding::Iri { col: c0, .. }) => (c0, c1),
                // lint: allow(R1.panic, "var_iri only ever receives ArgBinding::Iri entries (partitioned at insert above)")
                _ => unreachable!(),
            };
            join_conditions.push((
                a0.0.max(b0.0),
                Comparison {
                    lhs: Operand::Col(c0.clone()),
                    op: CmpOp::Eq,
                    rhs: Operand::Col(c1.clone()),
                },
            ));
        }
    }
    for bindings in var_val.values() {
        for w in bindings.windows(2) {
            let (a0, b0) = (&w[0], &w[1]);
            let (c0, c1) = match (a0.1, b0.1) {
                (ArgBinding::Val { col: c0 }, ArgBinding::Val { col: c1 }) => (c0, c1),
                // lint: allow(R1.panic, "var_val only ever receives ArgBinding::Val entries (partitioned at insert above)")
                _ => unreachable!(),
            };
            join_conditions.push((
                a0.0.max(b0.0),
                Comparison {
                    lhs: Operand::Col(c0.clone()),
                    op: CmpOp::Eq,
                    rhs: Operand::Col(c1.clone()),
                },
            ));
        }
    }

    // Assemble the flat core: tables in atom order. Each condition is
    // attached to the ON clause of the last table it references (so every
    // column it mentions is already in scope), or to WHERE when it only
    // touches the leading FROM table.
    let mut tables: Vec<TableRef> = Vec::new();
    let mut conditions: Vec<Comparison> = Vec::new();
    for src in &picked {
        tables.extend(src.tables.iter().cloned());
        conditions.extend(src.own_conditions.iter().cloned());
        conditions.extend(src.filters.iter().cloned());
    }
    conditions.extend(const_conditions.into_iter().map(|(_, c)| c));
    conditions.extend(join_conditions.into_iter().map(|(_, c)| c));

    let alias_pos: HashMap<&str, usize> = tables
        .iter()
        .enumerate()
        .map(|(i, t)| (t.alias.as_str(), i))
        .collect();
    let placement = |cmp: &Comparison| -> Result<usize, SqlError> {
        let mut pos = 0usize;
        for op in [&cmp.lhs, &cmp.rhs] {
            if let Operand::Col(c) = op {
                let alias = c
                    .qualifier
                    .as_deref()
                    .ok_or_else(|| SqlError::new("unfolding produced an unqualified column"))?;
                let p = alias_pos
                    .get(alias)
                    .ok_or_else(|| SqlError::new(format!("unknown alias `{alias}`")))?;
                pos = pos.max(*p);
            }
        }
        Ok(pos)
    };
    let mut per_table: Vec<Vec<Comparison>> = vec![Vec::new(); tables.len()];
    for cmp in conditions {
        let pos = placement(&cmp)?;
        // lint: allow(R1.index, "placement() returns a max over alias positions, all < tables.len() == per_table.len()")
        per_table[pos].push(cmp);
    }

    let mut iter = tables.into_iter().enumerate();
    let Some((_, from)) = iter.next() else {
        return Err(SqlError::new("empty source"));
    };
    let filters: Vec<Comparison> = std::mem::take(&mut per_table[0]);
    let mut joins: Vec<Join> = Vec::new();
    for (pos, t) in iter {
        joins.push(Join {
            table: t,
            // lint: allow(R1.index, "pos enumerates tables, and per_table was sized to tables.len()")
            on: std::mem::take(&mut per_table[pos]),
        });
    }

    // Head projection.
    let mut items: Vec<SelectItem> = Vec::new();
    let mut out: Vec<OutBinding> = Vec::new();
    for (i, h) in head.iter().enumerate() {
        if let Some(bindings) = var_iri.get(h.as_str()) {
            if let ArgBinding::Iri { prefix, col } = bindings[0].1 {
                items.push(SelectItem {
                    col: col.clone(),
                    alias: Some(format!("o{i}")),
                });
                out.push(OutBinding::Iri {
                    prefix: prefix.clone(),
                    position: items.len() - 1,
                });
                continue;
            }
        }
        if let Some(bindings) = var_val.get(h.as_str()) {
            if let ArgBinding::Val { col } = bindings[0].1 {
                items.push(SelectItem {
                    col: col.clone(),
                    alias: Some(format!("o{i}")),
                });
                out.push(OutBinding::Val {
                    position: items.len() - 1,
                });
                continue;
            }
        }
        return Err(SqlError::new(format!("unsafe head variable `{h}`")));
    }
    if items.is_empty() {
        // Boolean query: project something so the core is well-formed.
        let col = {
            let t = db.table(&from.table)?;
            ColRef {
                qualifier: Some(from.alias.clone()),
                column: t.columns()[0].name.clone(),
            }
        };
        items.push(SelectItem {
            col,
            alias: Some("o0".into()),
        });
    }

    Ok(Some(ComboQuery {
        core: SelectCore {
            distinct: false,
            items,
            from,
            joins,
            filter: filters,
        },
        out,
    }))
}

/// Executes combo queries, reconstructing answer tuples.
/// Reconstructs answer tuples from one flat-SQL result set. Rows with a
/// NULL in any output position are dropped: a NULL means the source had
/// no value for that answer term, so no fact is derived.
fn collect_rows(rs: obda_sqlstore::exec::ResultSet, combo: &ComboQuery, answers: &mut Answers) {
    for row in rs.rows {
        let mut tuple = Vec::with_capacity(combo.out.len());
        let mut skip = false;
        for ob in &combo.out {
            match ob {
                OutBinding::Iri { prefix, position } => {
                    // lint: allow(R1.index, "OutBinding positions index the SELECT items built alongside them; every result row has exactly that arity")
                    if row[*position].is_null() {
                        skip = true;
                        break;
                    }
                    // lint: allow(R1.index, "same SELECT-arity invariant as the null check above")
                    tuple.push(AnswerTerm::Iri(format!("{prefix}{}", row[*position])));
                }
                // lint: allow(R1.index, "OutBinding positions index the SELECT items built alongside them; every result row has exactly that arity")
                OutBinding::Val { position } => match &row[*position] {
                    SqlValue::Null => {
                        skip = true;
                        break;
                    }
                    SqlValue::Int(i) => tuple.push(AnswerTerm::Value(Value::Int(*i))),
                    SqlValue::Text(s) => tuple.push(AnswerTerm::Value(Value::Text(s.clone()))),
                },
            }
        }
        if !skip {
            answers.insert(tuple);
        }
    }
}

fn run_combos(combos: &[ComboQuery], db: &Database) -> Result<Answers, SqlError> {
    let mut answers = Answers::new();
    for combo in combos {
        let q = obda_sqlstore::SelectQuery {
            first: combo.core.clone(),
            rest: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        };
        let planned = obda_sqlstore::plan_query(db, &q)?;
        let rs = obda_sqlstore::exec::execute(db, &planned)?;
        collect_rows(rs, combo, &mut answers);
    }
    Ok(answers)
}

/// Traced variant of [`run_combos`]: executes under an `sql` span, with
/// per-statement scan counters on the trace and errors attributed to the
/// evaluation phase carrying the failing flat-SQL fragment.
fn run_combos_traced(
    combos: &[ComboQuery],
    db: &Database,
    ctx: &obda_obs::TraceCtx,
) -> Result<Answers, ObdaError> {
    let guard = obda_obs::span!(ctx, "sql");
    guard.count("sql_queries", combos.len() as u64);
    let mut answers = Answers::new();
    for combo in combos {
        let q = obda_sqlstore::SelectQuery {
            first: combo.core.clone(),
            rest: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        };
        let planned = obda_sqlstore::plan_query(db, &q).map_err(|e| {
            ObdaError::sql_in(
                ErrorPhase::Evaluate,
                obda_sqlstore::print_select_core(&combo.core),
                e,
            )
        })?;
        let rs = obda_sqlstore::exec::execute_traced(db, &planned, ctx).map_err(|e| {
            ObdaError::sql_in(
                ErrorPhase::Evaluate,
                obda_sqlstore::print_select_core(&combo.core),
                e,
            )
        })?;
        collect_rows(rs, combo, &mut answers);
    }
    Ok(answers)
}

/// Unfolds and executes a PerfectRef UCQ over the mappings and sources.
pub fn answer_ucq_virtual(
    ucq: &Ucq,
    mappings: &MappingSet,
    db: &Database,
) -> Result<Answers, SqlError> {
    let mut answers = Answers::new();
    for cq in &ucq.disjuncts {
        answers.extend(answer_cq_virtual(cq, mappings, db)?);
    }
    Ok(answers)
}

fn answer_cq_virtual(
    cq: &ConjunctiveQuery,
    mappings: &MappingSet,
    db: &Database,
) -> Result<Answers, SqlError> {
    let combos = unfold_cq(cq, mappings, db)?;
    run_combos(&combos, db)
}

/// Traced variant of [`answer_ucq_virtual`]: unfolds every disjunct
/// under an `unfold` span, then executes all flat SQL queries under an
/// `sql` span, with errors attributed to the failing phase.
pub fn answer_ucq_virtual_traced(
    ucq: &Ucq,
    mappings: &MappingSet,
    db: &Database,
    ctx: &obda_obs::TraceCtx,
    ebox: Option<&Ebox>,
) -> Result<Answers, ObdaError> {
    let combos = {
        let _guard = obda_obs::span!(ctx, "unfold");
        let mut all = Vec::new();
        for cq in &ucq.disjuncts {
            all.extend(
                unfold_cq_ebox(cq, mappings, db, ebox)
                    .map_err(|e| ObdaError::sql(ErrorPhase::Unfold, e))?,
            );
        }
        all
    };
    run_combos_traced(&combos, db, ctx)
}

/// Builds (without executing) the flat SQL queries a CQ unfolds into —
/// the EXPLAIN view of PerfectRef-mode answering.
pub fn unfold_cq(
    cq: &ConjunctiveQuery,
    mappings: &MappingSet,
    db: &Database,
) -> Result<Vec<ComboQuery>, SqlError> {
    unfold_cq_ebox(cq, mappings, db, None)
}

/// [`unfold_cq`] with EBox union pruning: per-atom source unions drop
/// members whose rows another kept member provably produces (counted
/// `ebox_pruned_unions`).
pub(crate) fn unfold_cq_ebox(
    cq: &ConjunctiveQuery,
    mappings: &MappingSet,
    db: &Database,
    ebox: Option<&Ebox>,
) -> Result<Vec<ComboQuery>, SqlError> {
    let mut counter = 0usize;
    let mut sources = Vec::with_capacity(cq.atoms.len());
    let mut pruned = 0u64;
    for atom in &cq.atoms {
        let srcs = atom_sources(atom, mappings, db, &mut counter)?;
        sources.push(if ebox.is_some() {
            let (kept, n) = prune_flat_sources(srcs);
            pruned += n;
            kept
        } else {
            srcs
        });
    }
    if pruned > 0 {
        crate::ebox::ebox_pruned_unions_total().add(pruned);
    }
    let args: Vec<Vec<ArgTerm>> = cq.atoms.iter().map(atom_args).collect();
    build_combos(&cq.head, &args, &sources, db)
}

/// Unfolds and executes a Presto view program over the mappings.
pub fn answer_presto_virtual(
    rw: &PrestoRewriting,
    cls: &Classification,
    mappings: &MappingSet,
    db: &Database,
) -> Result<Answers, SqlError> {
    let mut answers = Answers::new();
    for vq in &rw.queries {
        answers.extend(answer_view_query_virtual(vq, cls, mappings, db)?);
    }
    Ok(answers)
}

fn answer_view_query_virtual(
    vq: &ViewQuery,
    cls: &Classification,
    mappings: &MappingSet,
    db: &Database,
) -> Result<Answers, SqlError> {
    let combos = unfold_view_query(vq, cls, mappings, db)?;
    run_combos(&combos, db)
}

/// Traced variant of [`answer_presto_virtual`]: same `unfold` / `sql`
/// span structure as the PerfectRef path.
pub fn answer_presto_virtual_traced(
    rw: &PrestoRewriting,
    cls: &Classification,
    mappings: &MappingSet,
    db: &Database,
    ctx: &obda_obs::TraceCtx,
    ebox: Option<&Ebox>,
) -> Result<Answers, ObdaError> {
    let combos = {
        let _guard = obda_obs::span!(ctx, "unfold");
        let mut all = Vec::new();
        for vq in &rw.queries {
            all.extend(
                unfold_view_query_ebox(vq, cls, mappings, db, ebox)
                    .map_err(|e| ObdaError::sql(ErrorPhase::Unfold, e))?,
            );
        }
        all
    };
    run_combos_traced(&combos, db, ctx)
}

/// Builds (without executing) the flat SQL queries a Presto view query
/// unfolds into — the EXPLAIN view of Presto-mode answering.
pub fn unfold_view_query(
    vq: &ViewQuery,
    cls: &Classification,
    mappings: &MappingSet,
    db: &Database,
) -> Result<Vec<ComboQuery>, SqlError> {
    unfold_view_query_ebox(vq, cls, mappings, db, None)
}

/// [`unfold_view_query`] with EBox pruning at both levels: view members
/// are dropped before flattening (`ebox_pruned_views`) and the
/// remaining flat unions deduplicated by containment
/// (`ebox_pruned_unions`).
pub(crate) fn unfold_view_query_ebox(
    vq: &ViewQuery,
    cls: &Classification,
    mappings: &MappingSet,
    db: &Database,
    ebox: Option<&Ebox>,
) -> Result<Vec<ComboQuery>, SqlError> {
    let mut counter = 0usize;
    let mut sources = Vec::with_capacity(vq.atoms.len());
    let mut pruned = 0u64;
    for atom in &vq.atoms {
        let srcs = view_atom_sources(atom, cls, mappings, db, &mut counter, ebox)?;
        sources.push(if ebox.is_some() {
            let (kept, n) = prune_flat_sources(srcs);
            pruned += n;
            kept
        } else {
            srcs
        });
    }
    if pruned > 0 {
        crate::ebox::ebox_pruned_unions_total().add(pruned);
    }
    let args: Vec<Vec<ArgTerm>> = vq.atoms.iter().map(view_atom_args).collect();
    build_combos(&vq.head, &args, &sources, db)
}

/// Number of flat SQL queries the unfolding would produce (rewriting-size
/// metric for the A2 ablation).
pub fn count_ucq_combos(
    ucq: &Ucq,
    mappings: &MappingSet,
    db: &Database,
) -> Result<usize, SqlError> {
    let mut total = 0usize;
    for cq in &ucq.disjuncts {
        let mut counter = 0usize;
        let mut sources = Vec::with_capacity(cq.atoms.len());
        for atom in &cq.atoms {
            sources.push(atom_sources(atom, mappings, db, &mut counter)?);
        }
        let args: Vec<Vec<ArgTerm>> = cq.atoms.iter().map(atom_args).collect();
        total += build_combos(&cq.head, &args, &sources, db)?.len();
    }
    Ok(total)
}
