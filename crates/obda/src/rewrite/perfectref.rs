//! **PerfectRef**: the classic UCQ rewriting algorithm for DL-Lite
//! (Calvanese, De Giacomo, Lembo, Lenzerini, Rosati), extended with the
//! pair rule for the qualified existentials of the paper's dialect.
//!
//! Given a CQ `q` and a TBox `T`, the rewriting is a UCQ `q'` such that
//! evaluating `q'` over any ABox alone returns exactly the certain
//! answers of `q` over `(T, ABox)`. The loop alternates two steps until
//! no new (canonicalized) CQ appears:
//!
//! * **applicability** — a positive inclusion is applied backwards to one
//!   atom: `A(x)` with `B ⊑ A` becomes the atom of `B` on `x`;
//!   `P(x, _)` with `B ⊑ ∃P` (or `B ⊑ ∃P.C`) becomes the atom of `B` on
//!   `x`; role/attribute inclusions rewrite role/attribute atoms; the
//!   **pair rule** rewrites `{Q(x, y), A(y)}` with `y` local to the pair
//!   into the atom of `B` for an axiom `B ⊑ ∃Q.A`;
//! * **reduce** — two unifiable atoms are merged by their most general
//!   unifier, which can turn bound variables into unbound ones and enable
//!   further applicability steps.
//!
//! Completeness is property-tested against the bounded chase in the
//! crate's integration tests.

use std::collections::{HashMap, HashSet, VecDeque};

use obda_dllite::{Axiom, BasicConcept, BasicRole, GeneralConcept, GeneralRole, PiIndex, Tbox};

use crate::query::{Atom, ConjunctiveQuery, Term, Ucq, ValueTerm};

/// Where the rewriting loop finds candidate axioms for an atom: either
/// the original axiom-scanning loop (every positive inclusion, for
/// every atom — kept as the differential-testing baseline) or the
/// predicate-indexed applicability map, which only yields axioms whose
/// right-hand side mentions the atom's predicate.
enum AxiomSource<'a> {
    Scan(&'a Tbox),
    Indexed(&'a PiIndex),
}

impl<'a> AxiomSource<'a> {
    /// Candidate axioms for step (a) on `atom`.
    fn applicable(&self, atom: &Atom) -> Box<dyn Iterator<Item = &'a Axiom> + 'a> {
        match self {
            AxiomSource::Scan(t) => Box::new(t.positive_inclusions()),
            AxiomSource::Indexed(ix) => match atom {
                Atom::Concept(c, _) => Box::new(ix.for_concept_atom(*c).iter()),
                Atom::Role(p, _, _) => Box::new(ix.for_role_atom(*p).iter()),
                Atom::Attribute(u, _, _) => Box::new(ix.for_attribute_atom(*u).iter()),
            },
        }
    }

    /// Candidate qualified axioms for the pair rule on a role atom of
    /// `p`.
    fn qual_candidates(&self, p: obda_dllite::RoleId) -> Box<dyn Iterator<Item = &'a Axiom> + 'a> {
        match self {
            AxiomSource::Scan(t) => Box::new(t.positive_inclusions()),
            AxiomSource::Indexed(ix) => Box::new(ix.quals_for_role(p).iter()),
        }
    }
}

/// Rewrites a CQ into the PerfectRef UCQ, using the predicate-indexed
/// applicability map (the fast path).
pub fn perfect_ref(q: &ConjunctiveQuery, tbox: &Tbox) -> Ucq {
    let ix = tbox.pi_index();
    perfect_ref_with_index(q, &ix)
}

/// [`perfect_ref`] under a `perfectref` trace span recording the raw
/// disjunct count.
pub fn perfect_ref_traced(q: &ConjunctiveQuery, tbox: &Tbox, ctx: &obda_obs::TraceCtx) -> Ucq {
    let guard = obda_obs::span!(ctx, "perfectref");
    let u = perfect_ref(q, tbox);
    guard.count("disjuncts", u.len() as u64);
    u
}

/// Rewrites against a pre-built [`PiIndex`] (callers that rewrite many
/// queries over one TBox build the index once).
pub fn perfect_ref_with_index(q: &ConjunctiveQuery, ix: &PiIndex) -> Ucq {
    perfect_ref_loop(q, &AxiomSource::Indexed(ix))
}

/// The original axiom-scanning rewriting loop: every positive inclusion
/// is tried against every atom of every candidate CQ. Kept public as
/// the baseline the indexed rewriter is differentially tested (and
/// benchmarked) against.
pub fn perfect_ref_scan(q: &ConjunctiveQuery, tbox: &Tbox) -> Ucq {
    perfect_ref_loop(q, &AxiomSource::Scan(tbox))
}

fn perfect_ref_loop(q: &ConjunctiveQuery, src: &AxiomSource<'_>) -> Ucq {
    let mut seen: HashSet<ConjunctiveQuery> = HashSet::new();
    let mut out: Vec<ConjunctiveQuery> = Vec::new();
    let mut queue: VecDeque<ConjunctiveQuery> = VecDeque::new();
    let start = q.canonical();
    seen.insert(start.clone());
    out.push(start.clone());
    queue.push_back(start);
    let mut fresh = 0usize;

    while let Some(cur) = queue.pop_front() {
        // Step (a): applicability of each positive inclusion to each atom.
        for (i, atom) in cur.atoms.iter().enumerate() {
            for ax in src.applicable(atom) {
                for replacement in apply_pi(ax, atom, &cur, &mut fresh) {
                    let mut atoms = cur.atoms.clone();
                    // lint: allow(R1.index, "i enumerates cur.atoms and atoms is a clone of it")
                    atoms[i] = replacement;
                    push(
                        ConjunctiveQuery {
                            head: cur.head.clone(),
                            atoms,
                        },
                        &mut seen,
                        &mut out,
                        &mut queue,
                    );
                }
            }
        }
        // Step (a'): the qualified pair rule.
        for (i, g1) in cur.atoms.iter().enumerate() {
            let Atom::Role(p, s, o) = g1 else { continue };
            for (j, g2) in cur.atoms.iter().enumerate() {
                if i == j {
                    continue;
                }
                let Atom::Concept(a2, t2) = g2 else { continue };
                // The pair {Q(x, y), A(y)} in both orientations of g1.
                for (q_role, x, y) in [
                    (BasicRole::Direct(*p), s, o),
                    (BasicRole::Inverse(*p), o, s),
                ] {
                    let Term::Var(yv) = y else { continue };
                    if t2 != y {
                        continue;
                    }
                    // y must occur only in these two atoms and not in the
                    // head.
                    if cur.head.iter().any(|h| h == yv) {
                        continue;
                    }
                    let occurrences: usize = cur
                        .atoms
                        .iter()
                        .map(|a| a.vars().iter().filter(|v| **v == yv).count())
                        .sum();
                    if occurrences != 2 {
                        continue;
                    }
                    for ax in src.qual_candidates(*p) {
                        let Axiom::ConceptIncl(b, GeneralConcept::QualExists(q0, a0)) = ax else {
                            continue;
                        };
                        if *q0 != q_role || a0 != a2 {
                            continue;
                        }
                        let mut atoms: Vec<Atom> = cur
                            .atoms
                            .iter()
                            .enumerate()
                            .filter(|(k, _)| *k != i && *k != j)
                            .map(|(_, a)| a.clone())
                            .collect();
                        atoms.push(atom_of_basic(*b, x.clone(), &mut fresh));
                        push(
                            ConjunctiveQuery {
                                head: cur.head.clone(),
                                atoms,
                            },
                            &mut seen,
                            &mut out,
                            &mut queue,
                        );
                    }
                }
            }
        }
        // Step (b): reduce — unify pairs of atoms.
        for i in 0..cur.atoms.len() {
            for j in (i + 1)..cur.atoms.len() {
                // lint: allow(R1.index, "i < j < cur.atoms.len() by the loop bounds")
                if let Some((subst, vsubst)) = unify(&cur.atoms[i], &cur.atoms[j], &cur.head) {
                    let reduced = cur.substitute_full(&subst, &vsubst);
                    push(reduced, &mut seen, &mut out, &mut queue);
                }
            }
        }
    }
    Ucq { disjuncts: out }
}

fn push(
    q: ConjunctiveQuery,
    seen: &mut HashSet<ConjunctiveQuery>,
    out: &mut Vec<ConjunctiveQuery>,
    queue: &mut VecDeque<ConjunctiveQuery>,
) {
    let c = q.canonical();
    if seen.insert(c.clone()) {
        out.push(c.clone());
        queue.push_back(c);
    }
}

/// The atom asserting membership of `t` in the basic concept `b`,
/// inventing a fresh unbound variable where needed.
fn atom_of_basic(b: BasicConcept, t: Term, fresh: &mut usize) -> Atom {
    let mut new_var = || {
        *fresh += 1;
        Term::Var(format!("_pr{fresh}"))
    };
    match b {
        BasicConcept::Atomic(a) => Atom::Concept(a, t),
        BasicConcept::Exists(BasicRole::Direct(p)) => Atom::Role(p, t, new_var()),
        BasicConcept::Exists(BasicRole::Inverse(p)) => Atom::Role(p, new_var(), t),
        BasicConcept::AttrDomain(u) => {
            *fresh += 1;
            Atom::Attribute(u, t, ValueTerm::Var(format!("_pr{fresh}")))
        }
    }
}

/// Applies a positive inclusion backwards to a single atom, returning the
/// replacement atoms (possibly several orientations).
fn apply_pi(ax: &Axiom, atom: &Atom, q: &ConjunctiveQuery, fresh: &mut usize) -> Vec<Atom> {
    let unbound = |t: &Term| -> bool {
        match t {
            Term::Var(v) => q.is_unbound(v),
            Term::Const(_) => false,
        }
    };
    let mut out = Vec::new();
    match (ax, atom) {
        // B ⊑ A applied to A(x).
        (
            Axiom::ConceptIncl(b, GeneralConcept::Basic(BasicConcept::Atomic(a))),
            Atom::Concept(c, t),
        ) if a == c => out.push(atom_of_basic(*b, t.clone(), fresh)),
        // B ⊑ ∃Q (or ⊑ ∃Q.C) applied to a role atom whose object side is
        // unbound, in the orientation matching Q.
        (
            Axiom::ConceptIncl(b, GeneralConcept::Basic(BasicConcept::Exists(qr))),
            Atom::Role(p, s, o),
        )
        | (Axiom::ConceptIncl(b, GeneralConcept::QualExists(qr, _)), Atom::Role(p, s, o)) => {
            match qr {
                BasicRole::Direct(pp) if pp == p && unbound(o) => {
                    out.push(atom_of_basic(*b, s.clone(), fresh))
                }
                BasicRole::Inverse(pp) if pp == p && unbound(s) => {
                    out.push(atom_of_basic(*b, o.clone(), fresh))
                }
                _ => {}
            }
        }
        // B ⊑ ∃Q.A applied to A(x) with x unbound: every B instance has a
        // Q-successor in A, so A is populated whenever B is — the atom
        // weakens to B on a fresh unbound variable. (This is what the
        // standard normalization B ⊑ ∃Q', Q' ⊑ Q, ∃Q'⁻ ⊑ A yields after
        // two applicability steps on the auxiliary role Q'.)
        (Axiom::ConceptIncl(b, GeneralConcept::QualExists(_, a0)), Atom::Concept(c, t))
            if a0 == c && unbound(t) =>
        {
            *fresh += 1;
            let witness = Term::Var(format!("_pr{fresh}"));
            out.push(atom_of_basic(*b, witness, fresh));
        }
        // B ⊑ δ(u) applied to u(x, v) with v unbound.
        (
            Axiom::ConceptIncl(b, GeneralConcept::Basic(BasicConcept::AttrDomain(ua))),
            Atom::Attribute(u, s, ValueTerm::Var(x)),
        ) if ua == u && q.is_unbound(x) => {
            out.push(atom_of_basic(*b, s.clone(), fresh));
        }
        // Q1 ⊑ Q2 applied to a role atom of Q2 (both orientations).
        (Axiom::RoleIncl(q1, GeneralRole::Basic(q2)), Atom::Role(p, s, o)) => {
            // View the atom as q2 in its two orientations.
            let orientations = [
                (BasicRole::Direct(*p), s.clone(), o.clone()),
                (BasicRole::Inverse(*p), o.clone(), s.clone()),
            ];
            for (view, x, y) in orientations {
                if view == *q2 {
                    // Replace with q1(x, y).
                    let replaced = match q1 {
                        BasicRole::Direct(p1) => Atom::Role(*p1, x, y),
                        BasicRole::Inverse(p1) => Atom::Role(*p1, y, x),
                    };
                    out.push(replaced);
                }
            }
            // Both orientations coincide when q2's role == p in both
            // direct and inverse view only if the atom is symmetric —
            // duplicates are deduplicated by canonicalization.
        }
        // U1 ⊑ U2 applied to u2(x, v).
        (Axiom::AttrIncl(u1, u2), Atom::Attribute(u, s, v)) if u2 == u => {
            out.push(Atom::Attribute(*u1, s.clone(), v.clone()));
        }
        _ => {}
    }
    out
}

/// Most general unifier of two atoms (same predicate), oriented to keep
/// head variables as representatives. Returns the IRI-position and
/// value-position substitutions, or `None` if not unifiable.
fn unify(
    a: &Atom,
    b: &Atom,
    head: &[String],
) -> Option<(HashMap<String, Term>, HashMap<String, obda_dllite::Value>)> {
    let mut subst: HashMap<String, Term> = HashMap::new();
    let mut vsubst: HashMap<String, obda_dllite::Value> = HashMap::new();
    let pairs: Vec<(Term, Term)> = match (a, b) {
        (Atom::Concept(c1, t1), Atom::Concept(c2, t2)) if c1 == c2 => {
            vec![(t1.clone(), t2.clone())]
        }
        (Atom::Role(p1, s1, o1), Atom::Role(p2, s2, o2)) if p1 == p2 => {
            vec![(s1.clone(), s2.clone()), (o1.clone(), o2.clone())]
        }
        (Atom::Attribute(u1, s1, v1), Atom::Attribute(u2, s2, v2)) if u1 == u2 => {
            // Value positions: variables unify with anything of value
            // sort; literals must be equal.
            match (v1, v2) {
                (ValueTerm::Lit(l1), ValueTerm::Lit(l2)) if l1 != l2 => return None,
                (ValueTerm::Var(x), ValueTerm::Lit(l)) | (ValueTerm::Lit(l), ValueTerm::Var(x)) => {
                    vsubst.insert(x.clone(), l.clone());
                }
                _ => {}
            }
            let mut pairs = vec![(s1.clone(), s2.clone())];
            if let (ValueTerm::Var(x), ValueTerm::Var(y)) = (v1, v2) {
                if x != y {
                    pairs.push((Term::Var(x.clone()), Term::Var(y.clone())));
                }
            }
            pairs
        }
        _ => return None,
    };
    for (t1, t2) in pairs {
        let r1 = resolve(&t1, &subst);
        let r2 = resolve(&t2, &subst);
        match (r1, r2) {
            (Term::Var(x), Term::Var(y)) if x == y => {}
            (Term::Var(x), Term::Var(y)) => {
                // Keep head variables as representatives.
                if head.contains(&x) {
                    subst.insert(y, Term::Var(x));
                } else {
                    subst.insert(x, Term::Var(y));
                }
            }
            (Term::Var(x), t) | (t, Term::Var(x)) => {
                subst.insert(x, t);
            }
            (Term::Const(c1), Term::Const(c2)) => {
                if c1 != c2 {
                    return None;
                }
            }
        }
    }
    Some((subst, vsubst))
}

fn resolve(t: &Term, subst: &HashMap<String, Term>) -> Term {
    let mut cur = t.clone();
    let mut fuel = 64;
    while let Term::Var(v) = &cur {
        match subst.get(v) {
            Some(next) if fuel > 0 => {
                fuel -= 1;
                cur = next.clone();
            }
            _ => break,
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{parse_cq, print_cq};
    use obda_dllite::parse_tbox;

    fn rewrite(tbox_src: &str, query: &str) -> (Tbox, Vec<String>) {
        let t = parse_tbox(tbox_src).unwrap();
        let q = parse_cq(query, &t.sig).unwrap();
        let ucq = perfect_ref(&q, &t);
        let mut strings: Vec<String> = ucq.disjuncts.iter().map(|d| print_cq(d, &t.sig)).collect();
        strings.sort();
        (t, strings)
    }

    #[test]
    fn concept_hierarchy_expands() {
        let (_, rw) = rewrite("concept A B C\nB [= A\nC [= B", "q(x) :- A(x)");
        assert_eq!(
            rw,
            vec!["q(v0) :- A(v0)", "q(v0) :- B(v0)", "q(v0) :- C(v0)"]
        );
    }

    #[test]
    fn existential_elimination() {
        // ∃p ⊒ Student via Student ⊑ ∃p: q(x) :- p(x, y) gains Student(x).
        let (_, rw) = rewrite(
            "concept Student\nrole p\nStudent [= exists p",
            "q(x) :- p(x, y)",
        );
        assert!(rw.contains(&"q(v0) :- Student(v0)".to_owned()), "{rw:?}");
        assert_eq!(rw.len(), 2);
    }

    #[test]
    fn existential_not_applicable_when_bound() {
        // y is bound (head variable): no elimination.
        let (_, rw) = rewrite(
            "concept Student\nrole p\nStudent [= exists p",
            "q(x, y) :- p(x, y)",
        );
        assert_eq!(rw.len(), 1);
    }

    #[test]
    fn role_hierarchy_and_inverse() {
        let (_, rw) = rewrite("role p r\np [= inv(r)", "q(x, y) :- r(x, y)");
        // p ⊑ r⁻ rewrites r(x, y) to p(y, x).
        assert!(rw.contains(&"q(v0, v1) :- r(v0, v1)".to_owned()));
        assert!(rw.contains(&"q(v0, v1) :- p(v1, v0)".to_owned()), "{rw:?}");
    }

    #[test]
    fn qualified_pair_rule() {
        // GradStudent ⊑ ∃advisor.Professor; q(x) :- advisor(x,y), Professor(y).
        let (_, rw) = rewrite(
            "concept GradStudent Professor\nrole advisor\nGradStudent [= exists advisor . Professor",
            "q(x) :- advisor(x, y), Professor(y)",
        );
        assert!(
            rw.contains(&"q(v0) :- GradStudent(v0)".to_owned()),
            "{rw:?}"
        );
    }

    #[test]
    fn qualified_acts_as_unqualified_too() {
        let (_, rw) = rewrite(
            "concept G P\nrole advisor\nG [= exists advisor . P",
            "q(x) :- advisor(x, y)",
        );
        assert!(rw.contains(&"q(v0) :- G(v0)".to_owned()), "{rw:?}");
    }

    #[test]
    fn qualified_existential_populates_concept() {
        // G ⊑ ∃advisor.P entails that P is nonempty whenever G is, so
        // P(y) with y unbound must rewrite to G on a fresh variable.
        let (_, rw) = rewrite(
            "concept G P\nrole advisor\nG [= exists advisor . P",
            "q(x) :- G(x), P(y)",
        );
        assert!(
            rw.iter()
                .any(|d| d == "q(v0) :- G(v0)" || d == "q(v0) :- G(v0), G(v1)"),
            "{rw:?}"
        );
    }

    #[test]
    fn reduce_enables_applicability() {
        // Classic: q(x) :- p(x, y), p(z, y). Reduce unifies the atoms,
        // making y unbound, then A ⊑ ∃p applies.
        let (_, rw) = rewrite(
            "concept A\nrole p\nA [= exists p",
            "q(x) :- p(x, y), p(z, y)",
        );
        assert!(rw.iter().any(|d| d.contains("A(")), "{rw:?}");
    }

    #[test]
    fn attribute_rewriting() {
        let (_, rw) = rewrite(
            "concept Person\nattribute name nick\nPerson [= domain(name)\nnick [= name",
            "q(x) :- name(x, n)",
        );
        assert!(rw.contains(&"q(v0) :- Person(v0)".to_owned()), "{rw:?}");
        assert!(rw.contains(&"q(v0) :- nick(v0, v1)".to_owned()), "{rw:?}");
    }

    #[test]
    fn attribute_literal_blocks_domain_rewriting() {
        let (_, rw) = rewrite(
            "concept Person\nattribute name\nPerson [= domain(name)",
            "q(x) :- name(x, \"ada\")",
        );
        // The value is a literal, so Person ⊑ δ(name) must not apply.
        assert_eq!(rw.len(), 1);
    }

    #[test]
    fn no_inclusions_means_identity() {
        let (_, rw) = rewrite("concept A\nrole p", "q(x) :- A(x), p(x, y)");
        assert_eq!(rw.len(), 1);
    }

    #[test]
    fn indexed_matches_scanning_loop() {
        let cases = [
            ("concept A B C\nB [= A\nC [= B", "q(x) :- A(x)"),
            (
                "concept G P\nrole advisor p\nG [= exists advisor . P\nP [= exists p",
                "q(x) :- advisor(x, y), P(y)",
            ),
            (
                "concept Person\nattribute name nick\nPerson [= domain(name)\nnick [= name",
                "q(x) :- name(x, n)",
            ),
            ("role p r\np [= inv(r)", "q(x, y) :- r(x, y)"),
        ];
        for (tbox_src, query) in cases {
            let t = parse_tbox(tbox_src).unwrap();
            let q = parse_cq(query, &t.sig).unwrap();
            let mut indexed: Vec<ConjunctiveQuery> = perfect_ref(&q, &t)
                .disjuncts
                .into_iter()
                .map(|d| d.canonical())
                .collect();
            let mut scanned: Vec<ConjunctiveQuery> = perfect_ref_scan(&q, &t)
                .disjuncts
                .into_iter()
                .map(|d| d.canonical())
                .collect();
            indexed.sort();
            scanned.sort();
            assert_eq!(indexed, scanned, "{tbox_src} / {query}");
        }
    }

    #[test]
    fn constants_survive_rewriting() {
        let (_, rw) = rewrite("concept A B\nB [= A", "q(x) :- A(x), A(\"iri/1\")");
        assert!(rw.iter().any(|d| d.contains("\"iri/1\"")));
        // Four combinations (A/B × A/B) plus reduce-merged variants.
        assert!(rw.len() >= 4, "{rw:?}");
    }
}
