//! Query rewriting: PerfectRef, Presto-style views, NDL compilation,
//! and SQL unfolding.

pub mod eboxprune;
pub mod ndl;
pub mod perfectref;
pub mod presto;
pub mod subsume;
pub mod unfold;
