//! Query rewriting: PerfectRef, Presto-style views, and SQL unfolding.

pub mod perfectref;
pub mod presto;
pub mod subsume;
pub mod unfold;
