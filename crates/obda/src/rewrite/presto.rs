//! **Presto-style rewriting**: classification-aware rewriting into a
//! small non-recursive program of *view atoms*, avoiding PerfectRef's
//! CQ explosion.
//!
//! Presto (Rosati & Almatelli 2010) — cited by the paper as the consumer
//! of QuOnto's classification — rewrites into non-recursive datalog whose
//! intensional predicates denote unions of subsumees. We reproduce that
//! architecture:
//!
//! * a **view atom** `V[S](x)` denotes the union, over all basic
//!   expressions `B ⊑* S` (read off the classification closure), of `B`'s
//!   direct extension — so the ontology's hierarchy lives in the *views*,
//!   computed once from the transitive closure, instead of being unfolded
//!   into exponentially many CQs;
//! * the rewriting loop only rewrites the query's *skeleton*: collapsing
//!   role atoms with unbound sides into domain views, eliminating
//!   qualified-existential pairs against the *maximal* witnesses (the
//!   asserted qualified axioms and the range-forcing `∃Q₀` nodes), and
//!   PerfectRef-style reduction — so the number of produced skeletons
//!   stays small.
//!
//! The answers of the view program equal the answers of the PerfectRef
//! UCQ (cross-checked in the integration tests and the A2 ablation).

use std::collections::{HashSet, VecDeque};

use obda_dllite::{AttributeId, BasicConcept, BasicRole, RoleId};
use quonto::{Classification, NodeId, NodeKind};

use crate::query::{Atom, ConjunctiveQuery, Term, ValueTerm};

/// An atom over a *view* of the classified ontology.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ViewAtom {
    /// `x` belongs to some basic concept subsumed by the target.
    ConceptView(BasicConcept, Term),
    /// `(x, y)` belongs to some basic role subsumed by the target.
    RoleView(BasicRole, Term, Term),
    /// `(x, v)` belongs to some attribute subsumed by the target.
    AttrView(AttributeId, Term, ValueTerm),
}

impl ViewAtom {
    /// Variables of the atom.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        match self {
            ViewAtom::ConceptView(_, t) => {
                if let Some(v) = t.as_var() {
                    out.push(v);
                }
            }
            ViewAtom::RoleView(_, s, o) => {
                for t in [s, o] {
                    if let Some(v) = t.as_var() {
                        out.push(v);
                    }
                }
            }
            ViewAtom::AttrView(_, s, v) => {
                if let Some(x) = s.as_var() {
                    out.push(x);
                }
                if let Some(x) = v.as_var() {
                    out.push(x);
                }
            }
        }
        out
    }
}

/// A conjunctive query over view atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewQuery {
    /// Answer variables.
    pub head: Vec<String>,
    /// View atoms.
    pub atoms: Vec<ViewAtom>,
}

impl ViewQuery {
    fn is_unbound(&self, var: &str) -> bool {
        if self.head.iter().any(|h| h == var) {
            return false;
        }
        let occ: usize = self
            .atoms
            .iter()
            .map(|a| a.vars().iter().filter(|v| **v == var).count())
            .sum();
        occ == 1
    }

    /// Canonical renaming for duplicate detection.
    fn canonical(&self) -> ViewQuery {
        let mut cur = self.clone();
        for _ in 0..4 {
            let mut names: std::collections::HashMap<String, String> =
                std::collections::HashMap::new();
            let mut fresh = 0usize;
            let mut rename = |v: &str, names: &mut std::collections::HashMap<String, String>| {
                names
                    .entry(v.to_owned())
                    .or_insert_with(|| {
                        let n = format!("v{fresh}");
                        fresh += 1;
                        n
                    })
                    .clone()
            };
            let term = |t: &Term,
                        names: &mut std::collections::HashMap<String, String>,
                        rename: &mut dyn FnMut(
                &str,
                &mut std::collections::HashMap<String, String>,
            ) -> String|
             -> Term {
                match t {
                    Term::Var(v) => Term::Var(rename(v, names)),
                    Term::Const(_) => t.clone(),
                }
            };
            let mut head = Vec::new();
            for h in &cur.head {
                head.push(rename(h, &mut names));
            }
            let mut atoms: Vec<ViewAtom> = cur
                .atoms
                .iter()
                .map(|a| match a {
                    ViewAtom::ConceptView(s, t) => {
                        ViewAtom::ConceptView(*s, term(t, &mut names, &mut rename))
                    }
                    ViewAtom::RoleView(q, s, o) => ViewAtom::RoleView(
                        *q,
                        term(s, &mut names, &mut rename),
                        term(o, &mut names, &mut rename),
                    ),
                    ViewAtom::AttrView(u, s, v) => {
                        let s = term(s, &mut names, &mut rename);
                        let v = match v {
                            ValueTerm::Var(x) => ValueTerm::Var(rename(x, &mut names)),
                            ValueTerm::Lit(_) => v.clone(),
                        };
                        ViewAtom::AttrView(*u, s, v)
                    }
                })
                .collect();
            atoms.sort();
            atoms.dedup();
            let next = ViewQuery { head, atoms };
            if next == cur {
                break;
            }
            cur = next;
        }
        cur
    }
}

/// The Presto-style rewriting: a small set of view queries.
#[derive(Debug, Clone)]
pub struct PrestoRewriting {
    /// Skeleton queries over views.
    pub queries: Vec<ViewQuery>,
}

impl PrestoRewriting {
    /// Number of skeletons (compare with the PerfectRef disjunct count in
    /// the A2 ablation).
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// [`presto_rewrite`] under a `presto` trace span recording the view
/// skeleton count.
pub fn presto_rewrite_traced(
    q: &ConjunctiveQuery,
    cls: &Classification,
    ctx: &obda_obs::TraceCtx,
) -> PrestoRewriting {
    let guard = obda_obs::span!(ctx, "presto");
    let rw = presto_rewrite(q, cls);
    guard.count("disjuncts", rw.len() as u64);
    rw
}

/// Rewrites a CQ using the classification (Presto-style).
pub fn presto_rewrite(q: &ConjunctiveQuery, cls: &Classification) -> PrestoRewriting {
    // Initial conversion: every atom becomes the view of its predicate.
    let start = ViewQuery {
        head: q.head.clone(),
        atoms: q
            .atoms
            .iter()
            .map(|a| match a {
                Atom::Concept(c, t) => ViewAtom::ConceptView(BasicConcept::Atomic(*c), t.clone()),
                Atom::Role(p, s, o) => {
                    ViewAtom::RoleView(BasicRole::Direct(*p), s.clone(), o.clone())
                }
                Atom::Attribute(u, s, v) => ViewAtom::AttrView(*u, s.clone(), v.clone()),
            })
            .collect(),
    }
    .canonical();

    let mut seen: HashSet<ViewQuery> = HashSet::new();
    let mut out: Vec<ViewQuery> = Vec::new();
    let mut queue: VecDeque<ViewQuery> = VecDeque::new();
    seen.insert(start.clone());
    out.push(start.clone());
    queue.push_back(start);
    // Witness lookup is a scan over the classification's qualified
    // axioms plus every role (closure probes each); the same
    // (role, filler) pattern recurs across skeletons, so memoize per
    // rewrite call.
    let mut qual_memo: std::collections::HashMap<(BasicRole, BasicConcept), Vec<BasicConcept>> =
        std::collections::HashMap::new();
    let mut lone_memo: std::collections::HashMap<BasicConcept, Vec<BasicConcept>> =
        std::collections::HashMap::new();

    while let Some(cur) = queue.pop_front() {
        // Collapse: role atom with an unbound side → domain view.
        for (i, atom) in cur.atoms.iter().enumerate() {
            let replacement = match atom {
                ViewAtom::RoleView(qr, s, o) => {
                    let o_unbound = matches!(o, Term::Var(v) if cur.is_unbound(v));
                    let s_unbound = matches!(s, Term::Var(v) if cur.is_unbound(v));
                    if o_unbound {
                        Some(ViewAtom::ConceptView(BasicConcept::Exists(*qr), s.clone()))
                    } else if s_unbound {
                        Some(ViewAtom::ConceptView(
                            BasicConcept::Exists(qr.inverse()),
                            o.clone(),
                        ))
                    } else {
                        None
                    }
                }
                ViewAtom::AttrView(u, s, ValueTerm::Var(v)) if cur.is_unbound(v) => Some(
                    ViewAtom::ConceptView(BasicConcept::AttrDomain(*u), s.clone()),
                ),
                _ => None,
            };
            if let Some(r) = replacement {
                let mut atoms = cur.atoms.clone();
                // lint: allow(R1.index, "i enumerates cur.atoms and atoms is a clone of it")
                atoms[i] = r;
                push(
                    ViewQuery {
                        head: cur.head.clone(),
                        atoms,
                    },
                    &mut seen,
                    &mut out,
                    &mut queue,
                );
            }
        }
        // Qualified pair elimination against maximal witnesses.
        for (i, g1) in cur.atoms.iter().enumerate() {
            let ViewAtom::RoleView(p, s, o) = g1 else {
                continue;
            };
            for (j, g2) in cur.atoms.iter().enumerate() {
                if i == j {
                    continue;
                }
                let ViewAtom::ConceptView(target_c, t2) = g2 else {
                    continue;
                };
                for (q_view, x, y) in [(*p, s, o), (p.inverse(), o, s)] {
                    let Term::Var(yv) = y else { continue };
                    if t2 != y || cur.head.iter().any(|h| h == yv) {
                        continue;
                    }
                    let occ: usize = cur
                        .atoms
                        .iter()
                        .map(|a| a.vars().iter().filter(|v| **v == yv).count())
                        .sum();
                    if occ != 2 {
                        continue;
                    }
                    // Maximal witnesses for the pattern ∃q_view.target_c.
                    let witnesses = qual_memo
                        .entry((q_view, *target_c))
                        .or_insert_with(|| maximal_qual_witnesses(cls, q_view, *target_c))
                        .clone();
                    for w in witnesses {
                        let mut atoms: Vec<ViewAtom> = cur
                            .atoms
                            .iter()
                            .enumerate()
                            .filter(|(k, _)| *k != i && *k != j)
                            .map(|(_, a)| a.clone())
                            .collect();
                        atoms.push(ViewAtom::ConceptView(w, x.clone()));
                        push(
                            ViewQuery {
                                head: cur.head.clone(),
                                atoms,
                            },
                            &mut seen,
                            &mut out,
                            &mut queue,
                        );
                    }
                }
            }
        }
        // Lone qualified elimination: a concept view on an unbound
        // variable is also witnessed by the *anonymous* individuals
        // qualified axioms generate — `W ⊑ ∃Q.A₀` with `A₀ ⊑* s` puts a
        // fresh `s`-member next to every `W` instance, so the atom
        // weakens to the witness's view on the same (still unbound)
        // variable. This is the unbound-atom case of PerfectRef's
        // qualified-existential rule; unlike the pair elimination above
        // the role is unconstrained (any anonymous witness certifies
        // the existential), so the witness scan ranges over all roles.
        for (i, atom) in cur.atoms.iter().enumerate() {
            let ViewAtom::ConceptView(s, Term::Var(v)) = atom else {
                continue;
            };
            if !cur.is_unbound(v) {
                continue;
            }
            let witnesses = lone_memo
                .entry(*s)
                .or_insert_with(|| lone_qual_witnesses(cls, *s))
                .clone();
            for w in witnesses {
                let mut atoms = cur.atoms.clone();
                // lint: allow(R1.index, "i enumerates cur.atoms and atoms is a clone of it")
                atoms[i] = ViewAtom::ConceptView(w, Term::Var(v.clone()));
                push(
                    ViewQuery {
                        head: cur.head.clone(),
                        atoms,
                    },
                    &mut seen,
                    &mut out,
                    &mut queue,
                );
            }
        }
        // Reduce: unify same-target atoms (minimal variant sufficient to
        // unlock collapses, mirroring PerfectRef's reduce).
        for i in 0..cur.atoms.len() {
            for j in (i + 1)..cur.atoms.len() {
                if let Some(next) = reduce_pair(&cur, i, j) {
                    push(next, &mut seen, &mut out, &mut queue);
                }
            }
        }
        // Intersection reduction: two views over the same (unified)
        // arguments with *different* targets merge into one view per
        // maximal common subsumee — the Presto counterpart of
        // PerfectRef's "rewrite both into B, then merge", which unblocks
        // existential eliminations by lowering variable occurrence
        // counts. The original conjunction skeleton is kept (it covers
        // witnesses reached through different members of each view).
        for i in 0..cur.atoms.len() {
            for j in (i + 1)..cur.atoms.len() {
                for next in intersect_pair(&cur, i, j, cls) {
                    push(next, &mut seen, &mut out, &mut queue);
                }
            }
        }
    }
    PrestoRewriting { queries: out }
}

/// Maximal common subsumees of two same-sort nodes: nodes `B` with
/// `B ⊑* S₁` and `B ⊑* S₂`, keeping only those not strictly below
/// another common one.
fn maximal_common_nodes(cls: &Classification, n1: NodeId, n2: NodeId) -> Vec<NodeId> {
    let g = cls.graph();
    let closure = cls.closure();
    let mut set1: std::collections::HashSet<u32> = quonto::closure::predecessors_reflexive(g, n1)
        .into_iter()
        .collect();
    let common: Vec<NodeId> = quonto::closure::predecessors_reflexive(g, n2)
        .into_iter()
        .filter(|v| set1.remove(v))
        .map(NodeId)
        .collect();
    common
        .iter()
        .copied()
        .filter(|&m| {
            !common
                .iter()
                .any(|&m2| m2 != m && closure.reaches(m, m2) && !closure.reaches(m2, m))
        })
        .collect()
}

/// Intersection reduction over a pair of view atoms (see the loop in
/// [`presto_rewrite`]).
fn intersect_pair(q: &ViewQuery, i: usize, j: usize, cls: &Classification) -> Vec<ViewQuery> {
    let g = cls.graph();
    let mut results = Vec::new();
    let mut emit = |replacement: ViewAtom, subst: std::collections::HashMap<String, Term>| {
        let term = |t: &Term| match t {
            Term::Var(v) => subst.get(v).cloned().unwrap_or_else(|| t.clone()),
            Term::Const(_) => t.clone(),
        };
        let map_atom = |a: &ViewAtom| match a {
            ViewAtom::ConceptView(s, t) => ViewAtom::ConceptView(*s, term(t)),
            ViewAtom::RoleView(p, s, o) => ViewAtom::RoleView(*p, term(s), term(o)),
            ViewAtom::AttrView(u, s, v) => {
                let v = match v {
                    ValueTerm::Var(x) => match subst.get(x) {
                        Some(Term::Var(w)) => ValueTerm::Var(w.clone()),
                        _ => v.clone(),
                    },
                    ValueTerm::Lit(_) => v.clone(),
                };
                ViewAtom::AttrView(*u, term(s), v)
            }
        };
        let mut atoms: Vec<ViewAtom> = q
            .atoms
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != i && *k != j)
            .map(|(_, a)| map_atom(a))
            .collect();
        atoms.push(map_atom(&replacement));
        results.push(ViewQuery {
            head: q.head.clone(),
            atoms,
        });
    };
    let unify_terms =
        |pairs: &[(&Term, &Term)]| -> Option<std::collections::HashMap<String, Term>> {
            let mut subst: std::collections::HashMap<String, Term> =
                std::collections::HashMap::new();
            for (t1, t2) in pairs {
                let r1 = match t1 {
                    Term::Var(v) => subst
                        .get(v.as_str())
                        .cloned()
                        .unwrap_or_else(|| (*t1).clone()),
                    _ => (*t1).clone(),
                };
                let r2 = match t2 {
                    Term::Var(v) => subst
                        .get(v.as_str())
                        .cloned()
                        .unwrap_or_else(|| (*t2).clone()),
                    _ => (*t2).clone(),
                };
                match (r1, r2) {
                    (Term::Var(x), Term::Var(y)) if x == y => {}
                    (Term::Var(x), Term::Var(y)) => {
                        if q.head.contains(&x) {
                            subst.insert(y, Term::Var(x));
                        } else {
                            subst.insert(x, Term::Var(y));
                        }
                    }
                    (Term::Var(x), c @ Term::Const(_)) | (c @ Term::Const(_), Term::Var(x)) => {
                        subst.insert(x, c);
                    }
                    (Term::Const(a), Term::Const(b)) => {
                        if a != b {
                            return None;
                        }
                    }
                }
            }
            Some(subst)
        };
    // lint: allow(R1.index, "the only caller iterates i < j < q.atoms.len() (rewrite driver loop)")
    match (&q.atoms[i], &q.atoms[j]) {
        (ViewAtom::ConceptView(s1, t1), ViewAtom::ConceptView(s2, t2)) if s1 != s2 => {
            if let Some(subst) = unify_terms(&[(t1, t2)]) {
                for m in maximal_common_nodes(cls, g.concept_node(*s1), g.concept_node(*s2)) {
                    emit(
                        ViewAtom::ConceptView(g.node_as_concept(m), t1.clone()),
                        subst.clone(),
                    );
                }
            }
        }
        (ViewAtom::RoleView(p1, s1, o1), ViewAtom::RoleView(p2, s2, o2)) => {
            // Same orientation.
            if p1 != p2 {
                if let Some(subst) = unify_terms(&[(s1, s2), (o1, o2)]) {
                    for m in maximal_common_nodes(cls, g.role_node(*p1), g.role_node(*p2)) {
                        emit(
                            ViewAtom::RoleView(g.node_as_role(m), s1.clone(), o1.clone()),
                            subst.clone(),
                        );
                    }
                }
            }
            // Opposite orientation: members of p1 ∩ p2⁻.
            if *p1 != p2.inverse() {
                if let Some(subst) = unify_terms(&[(s1, o2), (o1, s2)]) {
                    for m in maximal_common_nodes(cls, g.role_node(*p1), g.role_node(p2.inverse()))
                    {
                        emit(
                            ViewAtom::RoleView(g.node_as_role(m), s1.clone(), o1.clone()),
                            subst.clone(),
                        );
                    }
                }
            }
        }
        (ViewAtom::AttrView(u1, s1, v1), ViewAtom::AttrView(u2, s2, v2)) if u1 != u2 => {
            let values_compatible = match (v1, v2) {
                (ValueTerm::Lit(a), ValueTerm::Lit(b)) => a == b,
                _ => true,
            };
            if values_compatible {
                if let Some(mut subst) = unify_terms(&[(s1, s2)]) {
                    if let (ValueTerm::Var(x), ValueTerm::Var(y)) = (v1, v2) {
                        if x != y {
                            subst.insert(x.clone(), Term::Var(y.clone()));
                        }
                    }
                    for m in maximal_common_nodes(cls, g.attr_node(*u1), g.attr_node(*u2)) {
                        if let NodeKind::Attr(w) = g.node_kind(m) {
                            emit(ViewAtom::AttrView(w, s1.clone(), v1.clone()), subst.clone());
                        }
                    }
                }
            }
        }
        _ => {}
    }
    results
}

/// Maximal basic concepts `W` with `W ⊑ ∃Q.C` whose views jointly cover
/// every such basic concept: the left sides of matching asserted
/// qualified axioms, and `∃Q₀` for subroles `Q₀ ⊑* Q` whose range is
/// forced into a subsumee of `C`.
fn maximal_qual_witnesses(
    cls: &Classification,
    q: BasicRole,
    target_c: BasicConcept,
) -> Vec<BasicConcept> {
    let g = cls.graph();
    let closure = cls.closure();
    let target_role = g.role_node(q);
    let target_c_node = g.concept_node(target_c);
    let mut out = Vec::new();
    // Asserted qualified axioms B ⊑ ∃Q₀.A₀ with Q₀ ⊑* Q and A₀ ⊑* C. The
    // *axiom's own LHS view* covers every B' ⊑* B.
    for qa in &g.qual_axioms {
        if closure.reaches(g.role_node(qa.role), target_role)
            && closure.reaches(g.atomic_node(qa.filler), target_c_node)
        {
            out.push(g.node_as_concept(qa.lhs));
        }
    }
    // Range forcing: Q₀ ⊑* Q with ∃Q₀⁻ ⊑* C ⟹ ∃Q₀ ⊑ ∃Q.C.
    for p in 0..g.num_roles() {
        for q0 in [BasicRole::Direct(RoleId(p)), BasicRole::Inverse(RoleId(p))] {
            if closure.reaches(g.role_node(q0), target_role)
                && closure.reaches(g.role_exists_node(q0.inverse()), target_c_node)
            {
                out.push(BasicConcept::Exists(q0));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Witnesses for a lone concept view on an unbound variable: basic
/// concepts `W` whose instances force an anonymous `s`-member into the
/// canonical model. Two sources, mirroring [`maximal_qual_witnesses`]
/// with the role constraint dropped: asserted qualified axioms
/// `W ⊑ ∃Q.A₀` with `A₀ ⊑* s`, and `∃Q₀` for roles whose range is
/// forced into a subsumee of `s` (`∃Q₀⁻ ⊑* s`) — the latter's view
/// members cover every `B ⊑* ∃Q₀`, qualified or not.
fn lone_qual_witnesses(cls: &Classification, target: BasicConcept) -> Vec<BasicConcept> {
    let g = cls.graph();
    let closure = cls.closure();
    let target_node = g.concept_node(target);
    let mut out = Vec::new();
    for qa in &g.qual_axioms {
        if closure.reaches(g.atomic_node(qa.filler), target_node) {
            out.push(g.node_as_concept(qa.lhs));
        }
    }
    for p in 0..g.num_roles() {
        for q0 in [BasicRole::Direct(RoleId(p)), BasicRole::Inverse(RoleId(p))] {
            if closure.reaches(g.role_exists_node(q0.inverse()), target_node) {
                out.push(BasicConcept::Exists(q0));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn push(
    q: ViewQuery,
    seen: &mut HashSet<ViewQuery>,
    out: &mut Vec<ViewQuery>,
    queue: &mut VecDeque<ViewQuery>,
) {
    let c = q.canonical();
    if seen.insert(c.clone()) {
        out.push(c.clone());
        queue.push_back(c);
    }
}

/// Unifies two same-target atoms by mapping the second's variables to the
/// first's (keeping head variables as representatives), or `None`.
fn reduce_pair(q: &ViewQuery, i: usize, j: usize) -> Option<ViewQuery> {
    use std::collections::HashMap;
    let mut subst: HashMap<String, Term> = HashMap::new();
    let bind = |t1: &Term, t2: &Term, head: &[String], subst: &mut HashMap<String, Term>| -> bool {
        match (t1, t2) {
            (Term::Var(x), Term::Var(y)) if x == y => true,
            (Term::Var(x), Term::Var(y)) => {
                if head.iter().any(|h| h == x) {
                    subst.insert(y.clone(), Term::Var(x.clone()));
                } else {
                    subst.insert(x.clone(), Term::Var(y.clone()));
                }
                true
            }
            (Term::Var(x), c @ Term::Const(_)) | (c @ Term::Const(_), Term::Var(x)) => {
                subst.insert(x.clone(), c.clone());
                true
            }
            (Term::Const(a), Term::Const(b)) => a == b,
        }
    };
    // lint: allow(R1.index, "the only caller iterates i < j < q.atoms.len() (rewrite driver loop)")
    let ok = match (&q.atoms[i], &q.atoms[j]) {
        (ViewAtom::ConceptView(s1, t1), ViewAtom::ConceptView(s2, t2)) if s1 == s2 => {
            bind(t1, t2, &q.head, &mut subst)
        }
        (ViewAtom::RoleView(p1, s1, o1), ViewAtom::RoleView(p2, s2, o2)) if p1 == p2 => {
            bind(s1, s2, &q.head, &mut subst) && bind(o1, o2, &q.head, &mut subst)
        }
        (ViewAtom::AttrView(u1, s1, v1), ViewAtom::AttrView(u2, s2, v2)) if u1 == u2 => {
            let values_ok = match (v1, v2) {
                (ValueTerm::Lit(a), ValueTerm::Lit(b)) => a == b,
                _ => true,
            };
            values_ok && bind(s1, s2, &q.head, &mut subst)
        }
        _ => false,
    };
    if !ok || subst.is_empty() {
        return None;
    }
    let term = |t: &Term| match t {
        Term::Var(v) => subst.get(v).cloned().unwrap_or_else(|| t.clone()),
        Term::Const(_) => t.clone(),
    };
    let atoms = q
        .atoms
        .iter()
        .map(|a| match a {
            ViewAtom::ConceptView(s, t) => ViewAtom::ConceptView(*s, term(t)),
            ViewAtom::RoleView(p, s, o) => ViewAtom::RoleView(*p, term(s), term(o)),
            ViewAtom::AttrView(u, s, v) => {
                let v = match v {
                    ValueTerm::Var(x) => match subst.get(x) {
                        Some(Term::Var(w)) => ValueTerm::Var(w.clone()),
                        _ => v.clone(),
                    },
                    ValueTerm::Lit(_) => v.clone(),
                };
                ViewAtom::AttrView(*u, term(s), v)
            }
        })
        .collect();
    Some(ViewQuery {
        head: q.head.clone(),
        atoms,
    })
}

/// Expands a view target into the basic expressions it covers: every
/// basic concept `B ⊑* S` (including `S`).
pub fn concept_view_members(cls: &Classification, s: BasicConcept) -> Vec<BasicConcept> {
    let g = cls.graph();
    let node = g.concept_node(s);
    let mut out = vec![s];
    for p in quonto::closure::predecessors_reflexive(g, node) {
        let n = NodeId(p);
        if n == node {
            continue;
        }
        out.push(g.node_as_concept(n));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Basic roles subsumed by the target (including it).
pub fn role_view_members(cls: &Classification, q: BasicRole) -> Vec<BasicRole> {
    let g = cls.graph();
    let node = g.role_node(q);
    let mut out = vec![q];
    for p in quonto::closure::predecessors_reflexive(g, node) {
        let n = NodeId(p);
        if n == node {
            continue;
        }
        out.push(g.node_as_role(n));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Attributes subsumed by the target (including it).
pub fn attr_view_members(cls: &Classification, u: AttributeId) -> Vec<AttributeId> {
    let g = cls.graph();
    let node = g.attr_node(u);
    let mut out = vec![u];
    for p in quonto::closure::predecessors_reflexive(g, node) {
        let n = NodeId(p);
        if n == node {
            continue;
        }
        if let NodeKind::Attr(w) = g.node_kind(n) {
            out.push(w);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Evaluates a view query directly over an ABox (ABox-mode Presto
/// answering; also the test oracle for the SQL unfolding).
pub fn evaluate_view_query(
    vq: &ViewQuery,
    cls: &Classification,
    abox: &obda_dllite::Abox,
) -> crate::answer::Answers {
    evaluate_view_query_ebox(vq, cls, abox, None)
}

/// [`evaluate_view_query`] with EBox member pruning: members with
/// provably empty or subsumed asserted extensions are skipped before
/// the cross-product is built (counted `ebox_pruned_views`), which the
/// evaluation-level containments keep answer-preserving.
pub(crate) fn evaluate_view_query_ebox(
    vq: &ViewQuery,
    cls: &Classification,
    abox: &obda_dllite::Abox,
    ebox: Option<&obda_mapping::Ebox>,
) -> crate::answer::Answers {
    use crate::rewrite::eboxprune::{
        prune_attr_members, prune_concept_members, prune_role_members,
    };
    // Expand each view atom into a UCQ-of-basics and evaluate the cross
    // product of choices through the plain CQ evaluator.
    let mut disjuncts: Vec<ConjunctiveQuery> = vec![ConjunctiveQuery {
        head: vq.head.clone(),
        atoms: Vec::new(),
    }];
    let mut fresh = 0usize;
    for atom in &vq.atoms {
        let choices: Vec<Vec<Atom>> = match atom {
            ViewAtom::ConceptView(s, t) => {
                let members = match ebox {
                    Some(e) => prune_concept_members(concept_view_members(cls, *s), e),
                    None => concept_view_members(cls, *s),
                };
                members
                    .into_iter()
                    .map(|b| {
                        fresh += 1;
                        vec![basic_membership_atom(b, t.clone(), fresh)]
                    })
                    .collect()
            }
            ViewAtom::RoleView(q, s, o) => {
                let members = match ebox {
                    Some(e) => prune_role_members(role_view_members(cls, *q), e),
                    None => role_view_members(cls, *q),
                };
                members
                    .into_iter()
                    .map(|q2| {
                        vec![match q2 {
                            BasicRole::Direct(p) => Atom::Role(p, s.clone(), o.clone()),
                            BasicRole::Inverse(p) => Atom::Role(p, o.clone(), s.clone()),
                        }]
                    })
                    .collect()
            }
            ViewAtom::AttrView(u, s, v) => {
                let members = match ebox {
                    Some(e) => prune_attr_members(attr_view_members(cls, *u), e),
                    None => attr_view_members(cls, *u),
                };
                members
                    .into_iter()
                    .map(|u2| vec![Atom::Attribute(u2, s.clone(), v.clone())])
                    .collect()
            }
        };
        let mut next = Vec::with_capacity(disjuncts.len() * choices.len());
        for d in &disjuncts {
            for choice in &choices {
                let mut atoms = d.atoms.clone();
                atoms.extend(choice.iter().cloned());
                next.push(ConjunctiveQuery {
                    head: d.head.clone(),
                    atoms,
                });
            }
        }
        disjuncts = next;
    }
    let mut answers = crate::answer::Answers::new();
    for d in &disjuncts {
        answers.extend(crate::answer::evaluate_cq(d, abox));
    }
    answers
}

fn basic_membership_atom(b: BasicConcept, t: Term, fresh: usize) -> Atom {
    match b {
        BasicConcept::Atomic(a) => Atom::Concept(a, t),
        BasicConcept::Exists(BasicRole::Direct(p)) => {
            Atom::Role(p, t, Term::Var(format!("_vw{fresh}")))
        }
        BasicConcept::Exists(BasicRole::Inverse(p)) => {
            Atom::Role(p, Term::Var(format!("_vw{fresh}")), t)
        }
        BasicConcept::AttrDomain(u) => Atom::Attribute(u, t, ValueTerm::Var(format!("_vw{fresh}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_cq;
    use obda_dllite::parse_tbox;

    #[test]
    fn skeleton_count_stays_small_on_hierarchies() {
        // A deep hierarchy: PerfectRef would emit one CQ per subsumee;
        // Presto keeps a single skeleton.
        let mut src = String::from("concept A0");
        for i in 1..30 {
            src.push_str(&format!(" A{i}"));
        }
        src.push('\n');
        for i in 1..30 {
            src.push_str(&format!("A{i} [= A{}\n", i - 1));
        }
        let t = parse_tbox(&src).unwrap();
        let cls = Classification::classify(&t);
        let q = parse_cq("q(x) :- A0(x)", &t.sig).unwrap();
        let rw = presto_rewrite(&q, &cls);
        assert_eq!(rw.len(), 1);
        // But the view covers all 30 concepts.
        let a0 = t.sig.find_concept("A0").unwrap();
        assert_eq!(
            concept_view_members(&cls, BasicConcept::Atomic(a0)).len(),
            30
        );
    }

    #[test]
    fn collapse_unbound_role_side() {
        let t = parse_tbox("concept A\nrole p\nA [= exists p").unwrap();
        let cls = Classification::classify(&t);
        let q = parse_cq("q(x) :- p(x, y)", &t.sig).unwrap();
        let rw = presto_rewrite(&q, &cls);
        // Skeletons: the role view and the collapsed ∃p view.
        assert_eq!(rw.len(), 2);
        let p = t.sig.find_role("p").unwrap();
        let members = concept_view_members(&cls, BasicConcept::exists(p));
        // ∃p's view includes A.
        let a = t.sig.find_concept("A").unwrap();
        assert!(members.contains(&BasicConcept::Atomic(a)));
    }

    #[test]
    fn qualified_pair_elimination_uses_maximal_witnesses() {
        let t =
            parse_tbox("concept G G2 P\nrole advisor\nG [= exists advisor . P\nG2 [= G").unwrap();
        let cls = Classification::classify(&t);
        let q = parse_cq("q(x) :- advisor(x, y), P(y)", &t.sig).unwrap();
        let rw = presto_rewrite(&q, &cls);
        let g_id = t.sig.find_concept("G").unwrap();
        // One skeleton must contain the view of G (which covers G2).
        let has_g_view = rw.queries.iter().any(|vq| {
            vq.atoms.iter().any(
                |a| matches!(a, ViewAtom::ConceptView(BasicConcept::Atomic(c), _) if *c == g_id),
            )
        });
        assert!(has_g_view, "{rw:?}");
        let members = concept_view_members(&cls, BasicConcept::Atomic(g_id));
        assert_eq!(members.len(), 2);
    }

    #[test]
    fn view_evaluation_answers_hierarchy_queries() {
        let t = parse_tbox("concept Student Grad\nrole takes\nGrad [= Student").unwrap();
        let cls = Classification::classify(&t);
        let ab = obda_dllite::parse_abox("Grad(g1)\nStudent(s1)\ntakes(s1, c1)", &t.sig).unwrap();
        let q = parse_cq("q(x) :- Student(x)", &t.sig).unwrap();
        let rw = presto_rewrite(&q, &cls);
        let mut answers = crate::answer::Answers::new();
        for vq in &rw.queries {
            answers.extend(evaluate_view_query(vq, &cls, &ab));
        }
        assert_eq!(answers.len(), 2);
    }
}
