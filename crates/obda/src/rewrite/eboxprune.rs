//! **EBox-aware pruning**: the rewrite-side consumers of the
//! extensional constraints in [`obda_mapping::Ebox`].
//!
//! Three prunings, in decreasing order of generality:
//!
//! * [`prune_ucq_ebox`] drops UCQ disjuncts that mention a provably
//!   empty predicate, then runs the kept-list subsumption of
//!   `subsume::prune_ucq` with a *relaxed* homomorphism: an atom of the
//!   general disjunct may land on a target atom of a different
//!   predicate when the EBox proves the target's asserted extension is
//!   contained in the general atom's;
//! * [`prune_concept_members`] (and role/attr analogues) shrink the
//!   member lists of Presto/NDL views — a member with an empty or
//!   subsumed asserted extension contributes no rows to the union;
//! * [`exact_covers`] is the exact-predicate short-circuit: when every
//!   predicate of the original query is exact (its asserted extension
//!   already contains every certain member) and no join travels through
//!   a non-head variable, the whole rewriting collapses to the original
//!   query.
//!
//! **Soundness.** The constraints speak only about *asserted* data, and
//! every evaluation path (index joins, view extents, unfolded SQL)
//! ranges over exactly that data — so the first two prunings are
//! justified at the evaluation level with no extra condition: a dropped
//! disjunct's matches are matches of the kept subsumer, a dropped view
//! member's rows are rows of a kept member. The exact short-circuit is
//! the one rule that reasons about *certain answers*, and it is unsound
//! for queries that join through an existential witness (e.g.
//! `q(x) :- p(x,y), A(y)` under `B ⊑ ∃p.A`: the witness `y` is
//! anonymous, so the asserted extension of `A` cannot cover it even
//! when every named certain member is asserted). The gate therefore
//! requires every non-head variable to occur exactly once in the body —
//! head variables range over named individuals and may join freely.

use std::collections::{HashMap, HashSet};

use obda_dllite::{BasicConcept, BasicRole};
use obda_mapping::{Ebox, EboxPredicate};

use crate::ebox::ebox_pruned_views_total;
use crate::query::{Atom, ConjunctiveQuery, Term, Ucq, ValueTerm};
use crate::rewrite::subsume::prune_cap;

/// The EBox predicate an atom's matches are drawn from.
fn atom_pred(a: &Atom) -> EboxPredicate {
    match a {
        Atom::Concept(c, _) => EboxPredicate::Concept(BasicConcept::Atomic(*c)),
        Atom::Role(p, _, _) => EboxPredicate::Role(BasicRole::Direct(*p)),
        Atom::Attribute(u, _, _) => EboxPredicate::Attribute(*u),
    }
}

/// Whether some atom of `q` reads a provably empty extension (the
/// disjunct can never match).
fn mentions_empty(q: &ConjunctiveQuery, ebox: &Ebox) -> bool {
    q.atoms.iter().any(|a| ebox.is_empty_pred(atom_pred(a)))
}

/// Body variables of `q` that occur exactly once in the body and not in
/// the head — the variables whose only job is "some value exists",
/// which the relaxed homomorphism may witness through an EBox
/// domain/range containment instead of a concrete binding.
fn free_vars(q: &ConjunctiveQuery) -> HashSet<String> {
    fn note<'a>(count: &mut HashMap<&'a str, usize>, v: Option<&'a str>) {
        if let Some(v) = v {
            *count.entry(v).or_insert(0) += 1;
        }
    }
    let mut count: HashMap<&str, usize> = HashMap::new();
    for a in &q.atoms {
        match a {
            Atom::Concept(_, t) => note(&mut count, t.as_var()),
            Atom::Role(_, s, o) => {
                note(&mut count, s.as_var());
                note(&mut count, o.as_var());
            }
            Atom::Attribute(_, s, v) => {
                note(&mut count, s.as_var());
                note(&mut count, v.as_var());
            }
        }
    }
    count
        .into_iter()
        .filter(|(v, n)| *n == 1 && !q.head.iter().any(|h| h == v))
        .map(|(v, _)| v.to_owned())
        .collect()
}

/// `sub ⊑ₑ sup` over basic concepts.
fn c_in(ebox: &Ebox, sub: BasicConcept, sup: BasicConcept) -> bool {
    ebox.contains(EboxPredicate::Concept(sub), EboxPredicate::Concept(sup))
}

/// Relaxed subsumption: `general` subsumes `specific` *over the data
/// states the EBox describes*. Extends `subsume::subsumes` in two ways:
/// an atom may land on a target atom of a different predicate when the
/// EBox contains the target's extension in the atom's, and an atom with
/// a free variable (single body occurrence, non-head) may be witnessed
/// by a domain/range containment without binding the free variable.
pub(crate) fn ebox_subsumes(
    general: &ConjunctiveQuery,
    specific: &ConjunctiveQuery,
    ebox: &Ebox,
) -> bool {
    if general.head.len() != specific.head.len() {
        return false;
    }
    // Positional head seeding — identical to `subsume::subsumes`.
    let gen_sorts = var_sorts(general);
    let spec_sorts = var_sorts(specific);
    let mut iri_map: HashMap<String, Term> = HashMap::new();
    let mut val_map: HashMap<String, ValueTerm> = HashMap::new();
    for (g, s) in general.head.iter().zip(&specific.head) {
        match (gen_sorts.get(g.as_str()), spec_sorts.get(s.as_str())) {
            (Some(VarSort::Iri), Some(VarSort::Iri)) => match iri_map.get(g) {
                Some(Term::Var(prev)) if prev == s => {}
                Some(_) => return false,
                None => {
                    iri_map.insert(g.clone(), Term::Var(s.clone()));
                }
            },
            (Some(VarSort::Val), Some(VarSort::Val)) => match val_map.get(g) {
                Some(ValueTerm::Var(prev)) if prev == s => {}
                Some(_) => return false,
                None => {
                    val_map.insert(g.clone(), ValueTerm::Var(s.clone()));
                }
            },
            _ => return false,
        }
    }
    let free = free_vars(general);
    hom_search(
        &general.atoms,
        0,
        &specific.atoms,
        ebox,
        &free,
        &mut iri_map,
        &mut val_map,
    )
}

// Local copy of the sort classification (private in `subsume`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarSort {
    Iri,
    Val,
    Mixed,
}

fn var_sorts(q: &ConjunctiveQuery) -> HashMap<&str, VarSort> {
    fn note<'a>(sorts: &mut HashMap<&'a str, VarSort>, v: Option<&'a str>, sort: VarSort) {
        let Some(v) = v else { return };
        sorts
            .entry(v)
            .and_modify(|s| {
                if *s != sort {
                    *s = VarSort::Mixed;
                }
            })
            .or_insert(sort);
    }
    let mut sorts: HashMap<&str, VarSort> = HashMap::new();
    for a in &q.atoms {
        match a {
            Atom::Concept(_, t) => note(&mut sorts, t.as_var(), VarSort::Iri),
            Atom::Role(_, s, o) => {
                note(&mut sorts, s.as_var(), VarSort::Iri);
                note(&mut sorts, o.as_var(), VarSort::Iri);
            }
            Atom::Attribute(_, s, v) => {
                note(&mut sorts, s.as_var(), VarSort::Iri);
                note(&mut sorts, v.as_var(), VarSort::Val);
            }
        }
    }
    sorts
}

#[allow(clippy::too_many_arguments)]
fn hom_search(
    gen_atoms: &[Atom],
    idx: usize,
    spec_atoms: &[Atom],
    ebox: &Ebox,
    free: &HashSet<String>,
    iri_map: &mut HashMap<String, Term>,
    val_map: &mut HashMap<String, ValueTerm>,
) -> bool {
    let Some(atom) = gen_atoms.get(idx) else {
        return true;
    };
    for target in spec_atoms {
        let mut added_iri: Vec<String> = Vec::new();
        let mut added_val: Vec<String> = Vec::new();
        if map_atom_ebox(
            atom,
            target,
            ebox,
            free,
            iri_map,
            val_map,
            &mut added_iri,
            &mut added_val,
        ) && hom_search(gen_atoms, idx + 1, spec_atoms, ebox, free, iri_map, val_map)
        {
            return true;
        }
        for v in added_iri {
            iri_map.remove(&v);
        }
        for v in added_val {
            val_map.remove(&v);
        }
    }
    false
}

/// Whether the term is a free variable of the general query that the
/// mapping has not (and will not) bind.
fn is_free(t: &Term, free: &HashSet<String>) -> bool {
    matches!(t, Term::Var(v) if free.contains(v))
}

/// Extends the mapping so `atom` (general) lands on `target`
/// (specific), allowing EBox-justified predicate changes and free-var
/// witnessing. Newly bound variables are recorded for rollback.
#[allow(clippy::too_many_arguments)]
fn map_atom_ebox(
    atom: &Atom,
    target: &Atom,
    ebox: &Ebox,
    free: &HashSet<String>,
    iri_map: &mut HashMap<String, Term>,
    val_map: &mut HashMap<String, ValueTerm>,
    added_iri: &mut Vec<String>,
    added_val: &mut Vec<String>,
) -> bool {
    fn map_term(
        iri_map: &mut HashMap<String, Term>,
        added_iri: &mut Vec<String>,
        t: &Term,
        onto: &Term,
    ) -> bool {
        match t {
            Term::Const(c) => matches!(onto, Term::Const(c2) if c == c2),
            Term::Var(v) => match iri_map.get(v) {
                Some(bound) => bound == onto,
                None => {
                    iri_map.insert(v.clone(), onto.clone());
                    added_iri.push(v.clone());
                    true
                }
            },
        }
    }
    match (atom, target) {
        // --- Same-shape with relaxed predicate -------------------------
        (Atom::Concept(c1, t1), Atom::Concept(c2, t2)) => {
            if c1 == c2 || c_in(ebox, BasicConcept::Atomic(*c2), BasicConcept::Atomic(*c1)) {
                return map_term(iri_map, added_iri, t1, t2);
            }
            false
        }
        (Atom::Role(p1, s1, o1), Atom::Role(p2, s2, o2)) => {
            let direct = p1 == p2
                || ebox.contains(
                    EboxPredicate::Role(BasicRole::Direct(*p2)),
                    EboxPredicate::Role(BasicRole::Direct(*p1)),
                );
            if direct {
                let mut cp_iri = iri_map.clone();
                let mut cp_added = added_iri.clone();
                if map_term(&mut cp_iri, &mut cp_added, s1, s2)
                    && map_term(&mut cp_iri, &mut cp_added, o1, o2)
                {
                    *iri_map = cp_iri;
                    *added_iri = cp_added;
                    return true;
                }
            }
            // `p2(s2,o2)` also witnesses `p1(o2,s2)` when the inverse
            // orientation of `p2` is contained in `p1`.
            let inverse = ebox.contains(
                EboxPredicate::Role(BasicRole::Inverse(*p2)),
                EboxPredicate::Role(BasicRole::Direct(*p1)),
            );
            if inverse
                && map_term(iri_map, added_iri, s1, o2)
                && map_term(iri_map, added_iri, o1, s2)
            {
                return true;
            }
            // Free-end witnessing against a role target: the target's
            // subject (resp. object) is in the general role's domain.
            if is_free(o1, free) {
                if c_in(ebox, BasicConcept::exists(*p2), BasicConcept::exists(*p1))
                    && map_term(iri_map, added_iri, s1, s2)
                {
                    return true;
                }
                if c_in(
                    ebox,
                    BasicConcept::exists_inv(*p2),
                    BasicConcept::exists(*p1),
                ) && map_term(iri_map, added_iri, s1, o2)
                {
                    return true;
                }
            }
            if is_free(s1, free) {
                if c_in(
                    ebox,
                    BasicConcept::exists(*p2),
                    BasicConcept::exists_inv(*p1),
                ) && map_term(iri_map, added_iri, o1, s2)
                {
                    return true;
                }
                if c_in(
                    ebox,
                    BasicConcept::exists_inv(*p2),
                    BasicConcept::exists_inv(*p1),
                ) && map_term(iri_map, added_iri, o1, o2)
                {
                    return true;
                }
            }
            false
        }
        (Atom::Attribute(u1, s1, v1), Atom::Attribute(u2, s2, v2)) => {
            if u1 == u2
                || ebox.contains(EboxPredicate::Attribute(*u2), EboxPredicate::Attribute(*u1))
            {
                if !map_term(iri_map, added_iri, s1, s2) {
                    return false;
                }
                return match v1 {
                    ValueTerm::Lit(l) => matches!(v2, ValueTerm::Lit(l2) if l == l2),
                    ValueTerm::Var(x) => match val_map.get(x) {
                        Some(bound) => bound == v2,
                        None => {
                            val_map.insert(x.clone(), v2.clone());
                            added_val.push(x.clone());
                            true
                        }
                    },
                };
            }
            // Domain witnessing when the value is free.
            if matches!(v1, ValueTerm::Var(x) if free.contains(x))
                && c_in(
                    ebox,
                    BasicConcept::AttrDomain(*u2),
                    BasicConcept::AttrDomain(*u1),
                )
            {
                return map_term(iri_map, added_iri, s1, s2);
            }
            false
        }
        // --- Cross-shape witnessing ------------------------------------
        // Concept atom witnessed by a role/attribute target: the
        // target's end is in the concept's extension. A concept atom
        // has a single term, so no free-var condition is needed.
        (Atom::Concept(c1, t1), Atom::Role(p2, s2, o2)) => {
            let c1 = BasicConcept::Atomic(*c1);
            (c_in(ebox, BasicConcept::exists(*p2), c1) && map_term(iri_map, added_iri, t1, s2))
                || (c_in(ebox, BasicConcept::exists_inv(*p2), c1)
                    && map_term(iri_map, added_iri, t1, o2))
        }
        (Atom::Concept(c1, t1), Atom::Attribute(u2, s2, _)) => {
            c_in(
                ebox,
                BasicConcept::AttrDomain(*u2),
                BasicConcept::Atomic(*c1),
            ) && map_term(iri_map, added_iri, t1, s2)
        }
        // Role atom with a free end witnessed by a concept/attribute
        // target: every member of the target's extension has the
        // required successor in the asserted data.
        (Atom::Role(p1, s1, o1), Atom::Concept(c2, t2)) => {
            let c2 = BasicConcept::Atomic(*c2);
            if is_free(o1, free) && c_in(ebox, c2, BasicConcept::exists(*p1)) {
                return map_term(iri_map, added_iri, s1, t2);
            }
            if is_free(s1, free) && c_in(ebox, c2, BasicConcept::exists_inv(*p1)) {
                return map_term(iri_map, added_iri, o1, t2);
            }
            false
        }
        (Atom::Role(p1, s1, o1), Atom::Attribute(u2, s2, _)) => {
            let dom = BasicConcept::AttrDomain(*u2);
            if is_free(o1, free) && c_in(ebox, dom, BasicConcept::exists(*p1)) {
                return map_term(iri_map, added_iri, s1, s2);
            }
            if is_free(s1, free) && c_in(ebox, dom, BasicConcept::exists_inv(*p1)) {
                return map_term(iri_map, added_iri, o1, s2);
            }
            false
        }
        // Attribute atom with a free value witnessed by a concept/role
        // target through the attribute's domain.
        (Atom::Attribute(u1, s1, v1), Atom::Concept(c2, t2)) => {
            matches!(v1, ValueTerm::Var(x) if free.contains(x))
                && c_in(
                    ebox,
                    BasicConcept::Atomic(*c2),
                    BasicConcept::AttrDomain(*u1),
                )
                && map_term(iri_map, added_iri, s1, t2)
        }
        (Atom::Attribute(u1, s1, v1), Atom::Role(p2, s2, o2)) => {
            if !matches!(v1, ValueTerm::Var(x) if free.contains(x)) {
                return false;
            }
            let dom = BasicConcept::AttrDomain(*u1);
            (c_in(ebox, BasicConcept::exists(*p2), dom) && map_term(iri_map, added_iri, s1, s2))
                || (c_in(ebox, BasicConcept::exists_inv(*p2), dom)
                    && map_term(iri_map, added_iri, s1, o2))
        }
    }
}

/// EBox disjunct pruning: drops disjuncts that mention a provably empty
/// predicate (linear, always applied), then — when the survivor count
/// is within the pruning cap — runs the kept-list algorithm under
/// [`ebox_subsumes`]. Returns the pruned UCQ and the number of dropped
/// disjuncts.
pub(crate) fn prune_ucq_ebox(u: &Ucq, ebox: &Ebox) -> (Ucq, u64) {
    let before = u.disjuncts.len();
    let survivors: Vec<&ConjunctiveQuery> = u
        .disjuncts
        .iter()
        .filter(|q| !mentions_empty(q, ebox))
        .collect();
    let kept: Vec<ConjunctiveQuery> = if survivors.len() <= prune_cap() {
        let mut kept: Vec<ConjunctiveQuery> = Vec::new();
        'outer: for q in survivors {
            for k in &kept {
                if ebox_subsumes(k, q, ebox) {
                    continue 'outer;
                }
            }
            kept.retain(|k| !ebox_subsumes(q, k, ebox));
            kept.push(q.clone());
        }
        kept
    } else {
        survivors.into_iter().cloned().collect()
    };
    let dropped = (before - kept.len()) as u64;
    (Ucq { disjuncts: kept }, dropped)
}

/// The exact-predicate short-circuit gate: `true` when evaluating the
/// *original* query over the asserted data already yields every certain
/// answer, so the whole UCQ rewriting can be replaced by `{q}`.
///
/// Requires every atom's predicate to be exact (its asserted extension
/// contains all named certain members, per the EBox's validated
/// support) and every non-head variable to occur exactly once in the
/// body: a repeated non-head variable joins through a possibly
/// anonymous witness, which exactness of the individual predicates
/// cannot cover (see module docs for the counterexample). Head
/// variables range over named answer tuples and may repeat freely.
pub(crate) fn exact_covers(q: &ConjunctiveQuery, ebox: &Ebox) -> bool {
    if !q
        .atoms
        .iter()
        .all(|a| ebox.is_exact(atom_pred(a).source_predicate()))
    {
        return false;
    }
    let free = free_vars(q);
    let mut ok = true;
    let mut check = |v: Option<&str>| {
        if let Some(v) = v {
            if !q.head.iter().any(|h| h == v) && !free.contains(v) {
                ok = false;
            }
        }
    };
    for a in &q.atoms {
        match a {
            Atom::Concept(_, t) => check(t.as_var()),
            Atom::Role(_, s, o) => {
                check(s.as_var());
                check(o.as_var());
            }
            Atom::Attribute(_, s, v) => {
                check(s.as_var());
                check(v.as_var());
            }
        }
    }
    ok
}

/// Drops view members with provably empty or subsumed extensions: a
/// member `m` contributes nothing when another kept member `m'` has
/// `m ⊑ₑ m'` — its rows are already in the union. Counted
/// `ebox_pruned_views`.
pub(crate) fn prune_concept_members(members: Vec<BasicConcept>, ebox: &Ebox) -> Vec<BasicConcept> {
    prune_members(members, ebox, EboxPredicate::Concept)
}

/// Role analogue of [`prune_concept_members`].
pub(crate) fn prune_role_members(members: Vec<BasicRole>, ebox: &Ebox) -> Vec<BasicRole> {
    prune_members(members, ebox, EboxPredicate::Role)
}

/// Attribute analogue of [`prune_concept_members`].
pub(crate) fn prune_attr_members(
    members: Vec<obda_dllite::AttributeId>,
    ebox: &Ebox,
) -> Vec<obda_dllite::AttributeId> {
    prune_members(members, ebox, EboxPredicate::Attribute)
}

fn prune_members<T: Copy>(
    members: Vec<T>,
    ebox: &Ebox,
    pred: impl Fn(T) -> EboxPredicate,
) -> Vec<T> {
    let before = members.len();
    let mut kept: Vec<T> = Vec::new();
    'outer: for m in members {
        let mp = pred(m);
        if ebox.is_empty_pred(mp) {
            continue;
        }
        for k in &kept {
            if ebox.contains(mp, pred(*k)) {
                continue 'outer;
            }
        }
        kept.retain(|k| !ebox.contains(pred(*k), mp));
        kept.push(m);
    }
    let dropped = (before - kept.len()) as u64;
    if dropped > 0 {
        ebox_pruned_views_total().add(dropped);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_cq;
    use obda_dllite::parse_tbox;

    fn sig() -> obda_dllite::Signature {
        parse_tbox("concept A B C\nrole p q\nattribute u")
            .unwrap()
            .sig
    }

    fn pc(s: &obda_dllite::Signature, name: &str) -> EboxPredicate {
        EboxPredicate::Concept(BasicConcept::Atomic(s.find_concept(name).unwrap()))
    }

    #[test]
    fn relaxed_subsumption_uses_inclusions() {
        let s = sig();
        let mut e = Ebox::new();
        e.add_inclusion(pc(&s, "B"), pc(&s, "A"));
        let ga = parse_cq("q(x) :- A(x)", &s).unwrap();
        let gb = parse_cq("q(x) :- B(x)", &s).unwrap();
        // ext(B) ⊆ ext(A): every match of B(x) is a match of A(x).
        assert!(ebox_subsumes(&ga, &gb, &e));
        assert!(!ebox_subsumes(&gb, &ga, &e));
        let (pruned, dropped) = prune_ucq_ebox(
            &Ucq {
                disjuncts: vec![ga.clone(), gb],
            },
            &e,
        );
        assert_eq!(pruned.disjuncts, vec![ga]);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn empty_predicate_drops_disjunct() {
        let s = sig();
        let mut e = Ebox::new();
        e.set_empty(pc(&s, "C"));
        let qa = parse_cq("q(x) :- A(x)", &s).unwrap();
        let qc = parse_cq("q(x) :- C(x), p(x, y)", &s).unwrap();
        let (pruned, dropped) = prune_ucq_ebox(
            &Ucq {
                disjuncts: vec![qa.clone(), qc],
            },
            &e,
        );
        assert_eq!(pruned.disjuncts, vec![qa]);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn free_var_role_atom_witnessed_by_concept() {
        let s = sig();
        let p = s.find_role("p").unwrap();
        let mut e = Ebox::new();
        // Every asserted B has an asserted p-successor.
        e.add_inclusion(pc(&s, "B"), EboxPredicate::Concept(BasicConcept::exists(p)));
        let g = parse_cq("q(x) :- p(x, y)", &s).unwrap();
        let sp = parse_cq("q(x) :- B(x)", &s).unwrap();
        assert!(ebox_subsumes(&g, &sp, &e));
        // But not when the "free" variable is pinned by the head.
        let g2 = parse_cq("q(x, y) :- p(x, y)", &s).unwrap();
        let sp2 = parse_cq("q(x, y) :- B(x), p(x, y)", &s).unwrap();
        assert!(ebox_subsumes(&g2, &sp2, &e)); // plain hom via the p atom
        let sp3 = parse_cq("q(x, x) :- B(x)", &s).unwrap();
        assert!(!ebox_subsumes(&g2, &sp3, &e)); // no p atom to land on
    }

    #[test]
    fn free_var_witnessing_requires_single_occurrence() {
        let s = sig();
        let p = s.find_role("p").unwrap();
        let mut e = Ebox::new();
        e.add_inclusion(pc(&s, "B"), EboxPredicate::Concept(BasicConcept::exists(p)));
        // y joins p and A: it is NOT free, so B(x) alone cannot witness
        // the pair of atoms (the reviewer counterexample from the
        // module docs).
        let g = parse_cq("q(x) :- p(x, y), A(y)", &s).unwrap();
        let sp = parse_cq("q(x) :- B(x), A(x)", &s).unwrap();
        assert!(!ebox_subsumes(&g, &sp, &e));
    }

    #[test]
    fn exact_gate_blocks_nonhead_joins() {
        let s = sig();
        let mut e = Ebox::new();
        for n in ["A", "B", "C"] {
            e.set_exact(
                obda_dllite::NamedPredicate::Concept(s.find_concept(n).unwrap()),
                vec![],
            );
        }
        e.set_exact(
            obda_dllite::NamedPredicate::Role(s.find_role("p").unwrap()),
            vec![],
        );
        // Free non-head var: covered.
        assert!(exact_covers(&parse_cq("q(x) :- p(x, y)", &s).unwrap(), &e));
        // Head-var join: covered (answers are named).
        assert!(exact_covers(
            &parse_cq("q(x) :- A(x), p(x, x)", &s).unwrap(),
            &e
        ));
        // Non-head join variable: NOT covered.
        assert!(!exact_covers(
            &parse_cq("q(x) :- p(x, y), A(y)", &s).unwrap(),
            &e
        ));
        // Non-exact predicate: NOT covered.
        assert!(!exact_covers(&parse_cq("q(x) :- q(x, y)", &s).unwrap(), &e));
    }

    #[test]
    fn member_pruning_drops_empty_and_subsumed() {
        let s = sig();
        let a = BasicConcept::Atomic(s.find_concept("A").unwrap());
        let b = BasicConcept::Atomic(s.find_concept("B").unwrap());
        let c = BasicConcept::Atomic(s.find_concept("C").unwrap());
        let mut e = Ebox::new();
        e.add_inclusion(EboxPredicate::Concept(b), EboxPredicate::Concept(a));
        e.set_empty(EboxPredicate::Concept(c));
        let kept = prune_concept_members(vec![a, b, c], &e);
        assert_eq!(kept, vec![a]);
    }
}
