//! The unified answering API: the [`QueryEngine`] trait and the
//! [`SystemBuilder`].
//!
//! Before this module, [`crate::system::ObdaSystem`] and
//! [`crate::system::AboxSystem`] exposed two divergent answering
//! surfaces and the serving layer matched on an enum of them. Now both
//! implement [`QueryEngine`], so a server endpoint, a load generator,
//! or a bench holds a `Box<dyn QueryEngine>` and a third backend slots
//! in without touching the serving layer.
//!
//! Construction goes through [`SystemBuilder`]: evaluation threads,
//! cache toggles, and the trace sink are explicit builder options. Any
//! option left unset falls back to the environment knob it supersedes
//! (`QUONTO_THREADS`, `QUONTO_TIMINGS`) at build time — so knobs and
//! builder calls compose, with the builder winning.

use std::sync::Arc;

use obda_dllite::{Abox, Signature, Tbox};
use obda_mapping::MappingSet;
use obda_obs::{span, SinkKind, TraceCtx, TraceSink};
use obda_sqlstore::Database;

use crate::answer::Answers;
use crate::config::EngineConfig;
use crate::delta::{AboxDelta, DeltaSummary};
use crate::error::ObdaError;
use crate::query::ConjunctiveQuery;
use crate::system::{AboxSystem, DataMode, ObdaSystem, RewriteCacheStats, RewritingMode};

/// Query language of an answering request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryLang {
    /// Datalog-style conjunctive query syntax (`q(x) :- C(x), r(x, y)`).
    Cq,
    /// SPARQL conjunctive fragment (SELECT / ASK).
    Sparql,
}

impl QueryLang {
    pub fn as_str(self) -> &'static str {
        match self {
            QueryLang::Cq => "cq",
            QueryLang::Sparql => "sparql",
        }
    }
}

/// Engine-level counters surfaced through [`QueryEngine::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Rewriting algorithm name (`"PerfectRef"`, `"Presto"`).
    pub rewriting: &'static str,
    /// Data-access mode name (`"Virtual"`, `"Materialized"`, `"Abox"`).
    pub data: &'static str,
    /// Configured UCQ evaluation threads (0 = all cores).
    pub eval_threads: usize,
    /// TBox epoch (bumped by invalidation).
    pub tbox_epoch: u64,
    /// Rewrite-cache hit/miss counters. For a sharded engine this is
    /// the rollup of the coordinator and every shard, so dashboards
    /// that parse one hit/miss pair keep working unchanged.
    pub rewrite_cache: RewriteCacheStats,
    /// Evaluation shards (`1` = the unsharded fast path).
    pub shards: usize,
    /// EBox mode name (`"off"`, `"on"`, `"infer"`).
    pub ebox: &'static str,
    /// Live EBox constraints (inclusions + empties + exact
    /// annotations); `0` when the EBox is off.
    pub ebox_constraints: usize,
}

/// Per-shard serving counters, surfaced through
/// [`QueryEngine::shard_stats`] by sharded engines.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Shard index (`0..shards`).
    pub shard: usize,
    /// Individuals interned in this shard's ABox.
    pub individuals: usize,
    /// Indexed facts owned by this shard.
    pub facts: usize,
    /// Scatter evaluations routed to this shard.
    pub requests: u64,
    /// This shard's own rewrite-cache counters (direct access only —
    /// coordinator-routed queries rewrite once at the coordinator).
    pub rewrite_cache: RewriteCacheStats,
    /// Configured per-shard inflight cap (`0` = unbounded).
    pub max_inflight: usize,
    /// Highest concurrent inflight evaluations observed.
    pub inflight_high_water: usize,
    /// Scatter evaluations that had to wait at the shard gate.
    pub gate_waits: u64,
}

/// One loaded, thread-shareable query-answering engine.
///
/// The required methods are the engine-specific plumbing; callers use
/// the provided [`answer`](Self::answer) /
/// [`answer_traced`](Self::answer_traced) entry points, which handle
/// parsing, trace-context lifecycle, and sink emission uniformly.
pub trait QueryEngine: Send + Sync + std::fmt::Debug {
    /// The signature queries are parsed against.
    fn signature(&self) -> &Signature;

    /// The engine-level sink that untraced [`answer`](Self::answer)
    /// calls publish finished traces to.
    fn trace_sink(&self) -> Arc<dyn TraceSink>;

    /// Answers a parsed CQ, recording phase spans on `ctx`.
    fn answer_cq_traced(&self, q: &ConjunctiveQuery, ctx: &TraceCtx) -> Result<Answers, ObdaError>;

    /// Applies an ABox delta batch incrementally, recording
    /// `write.apply` / `write.index` / `write.views` spans on `ctx`.
    /// The default declines: engines without a writable store (e.g. a
    /// virtual-mode [`ObdaSystem`]) keep their read-only contract.
    fn apply_delta_traced(
        &self,
        delta: &AboxDelta,
        ctx: &TraceCtx,
    ) -> Result<DeltaSummary, ObdaError> {
        let _ = (delta, ctx);
        Err(ObdaError::unsupported(
            "ABox deltas (this engine has no writable store)",
        ))
    }

    /// Engine counters (cache hit rates, configuration).
    fn stats(&self) -> EngineStats;

    /// Drops derived state (cached rewritings, materialized data) so
    /// later queries recompute it. `&self`: callable on a shared
    /// engine; concurrent queries simply see a cold cache.
    fn invalidate(&self);

    /// Zeroes the resettable counters in [`stats`](Self::stats).
    fn reset_stats(&self);

    /// Per-shard serving counters; empty for unsharded engines (the
    /// default), one entry per shard for sharded ones.
    fn shard_stats(&self) -> Vec<ShardStats> {
        Vec::new()
    }

    /// Parses `text` under `lang` (recording a `parse` span) and
    /// answers it, recording the remaining phase spans on `ctx`. The
    /// caller owns the context: finishing and publishing the trace is
    /// its responsibility (the server does this per request).
    fn answer_traced(
        &self,
        lang: QueryLang,
        text: &str,
        ctx: &TraceCtx,
    ) -> Result<Answers, ObdaError> {
        let q = {
            let _parse = span!(ctx, "parse");
            match lang {
                QueryLang::Cq => crate::query::parse_cq(text, self.signature())?,
                QueryLang::Sparql => crate::sparql::parse_sparql(text, self.signature())?.cq,
            }
        };
        self.answer_cq_traced(&q, ctx)
    }

    /// Answers `text`, managing the trace lifecycle internally: a
    /// context is created iff the engine's sink is enabled, and the
    /// finished trace is published to the sink and the global ring.
    fn answer(&self, lang: QueryLang, text: &str) -> Result<Answers, ObdaError> {
        run_with_engine_trace(
            &self.trace_sink(),
            Some(text),
            |a: &Answers| a.len() as u64,
            |ctx| self.answer_traced(lang, text, ctx),
        )
    }

    /// Applies an ABox delta batch, managing the trace lifecycle the
    /// same way [`answer`](Self::answer) does (the finished trace's
    /// `rows` is the number of changed assertions).
    fn apply_delta(&self, delta: &AboxDelta) -> Result<DeltaSummary, ObdaError> {
        run_with_engine_trace(
            &self.trace_sink(),
            None,
            |s: &DeltaSummary| (s.inserted + s.deleted) as u64,
            |ctx| self.apply_delta_traced(delta, ctx),
        )
    }
}

/// Runs `f` under a fresh engine-level trace context (enabled iff the
/// sink is) and publishes the finished trace, whose `rows` field comes
/// from `rows(&ok_value)`. Shared by the trait's provided `answer` /
/// `apply_delta` and the systems' legacy inherent entry points.
pub(crate) fn run_with_engine_trace<T>(
    sink: &Arc<dyn TraceSink>,
    text: Option<&str>,
    rows: impl FnOnce(&T) -> u64,
    f: impl FnOnce(&TraceCtx) -> Result<T, ObdaError>,
) -> Result<T, ObdaError> {
    let ctx = if sink.enabled() {
        TraceCtx::new()
    } else {
        TraceCtx::disabled()
    };
    if let Some(text) = text {
        ctx.set_query(text);
    }
    let res = f(&ctx);
    let (status, rows) = match &res {
        Ok(value) => ("ok", rows(value)),
        Err(_) => ("error", 0),
    };
    if let Some(trace) = ctx.finish(status, rows) {
        obda_obs::submit(trace, &**sink);
    }
    res
}

/// Typed construction for both engine shapes — now a thin wrapper over
/// [`EngineConfig`], which is the one configuration surface (typed
/// setters, config-file keys, env knobs, one validation pass). Unset
/// options still default from the environment knobs at build time and
/// set options still win, because those are `EngineConfig`'s semantics.
///
/// The setters are kept as deprecated shims (pinned by
/// `tests/builder.rs`) so existing callers keep compiling; new code
/// should use [`EngineConfig`] directly.
#[derive(Debug, Clone, Default)]
pub struct SystemBuilder {
    cfg: EngineConfig,
}

impl SystemBuilder {
    pub fn new() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// Wraps an already-assembled [`EngineConfig`].
    pub fn from_config(cfg: EngineConfig) -> SystemBuilder {
        SystemBuilder { cfg }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Deprecated shim for [`EngineConfig::rewriting`].
    #[deprecated(note = "use EngineConfig::rewriting")]
    pub fn rewriting(mut self, mode: RewritingMode) -> Self {
        self.cfg.rewriting = Some(mode);
        self
    }

    /// Deprecated shim for [`EngineConfig::data_mode`].
    #[deprecated(note = "use EngineConfig::data_mode")]
    pub fn data_mode(mut self, mode: DataMode) -> Self {
        self.cfg.data = Some(mode);
        self
    }

    /// Deprecated shim for [`EngineConfig::eval_threads`].
    #[deprecated(note = "use EngineConfig::eval_threads")]
    pub fn eval_threads(mut self, threads: usize) -> Self {
        self.cfg.eval_threads = Some(threads);
        self
    }

    /// Deprecated shim for [`EngineConfig::rewrite_cache`].
    #[deprecated(note = "use EngineConfig::rewrite_cache")]
    pub fn rewrite_cache(mut self, enabled: bool) -> Self {
        self.cfg.rewrite_cache = Some(enabled);
        self
    }

    /// Deprecated shim for [`EngineConfig::shards`].
    #[deprecated(note = "use EngineConfig::shards")]
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = Some(shards);
        self
    }

    /// Deprecated shim for [`EngineConfig::shard_max_inflight`].
    #[deprecated(note = "use EngineConfig::shard_max_inflight")]
    pub fn shard_max_inflight(mut self, cap: usize) -> Self {
        self.cfg.shard_max_inflight = Some(cap);
        self
    }

    /// Deprecated shim for [`EngineConfig::trace_sink`].
    #[deprecated(note = "use EngineConfig::trace_sink")]
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.cfg.sink = Some(sink);
        self
    }

    /// Deprecated shim for [`EngineConfig::trace`].
    #[deprecated(note = "use EngineConfig::trace")]
    pub fn trace(mut self, kind: SinkKind) -> Self {
        self.cfg.sink = Some(obda_obs::sink::named(kind));
        self
    }

    /// Builds a full OBDA system (mappings + SQL sources).
    pub fn build_obda(
        &self,
        tbox: Tbox,
        mappings: MappingSet,
        db: Database,
    ) -> Result<ObdaSystem, ObdaError> {
        self.cfg.build_obda(tbox, mappings, db)
    }

    /// Builds an ABox-backed system (no mappings/SQL).
    pub fn build_abox(&self, tbox: Tbox, abox: Abox) -> AboxSystem {
        self.cfg.build_abox(tbox, abox)
    }

    /// The shard count [`build_abox_engine`](Self::build_abox_engine)
    /// will use (see [`EngineConfig::resolved_shards`]).
    pub fn resolved_shards(&self) -> usize {
        self.cfg.resolved_shards()
    }

    /// Builds an ABox-backed engine, sharded or not (see
    /// [`EngineConfig::build_abox_engine`]).
    pub fn build_abox_engine(&self, tbox: Tbox, abox: Abox) -> Box<dyn QueryEngine> {
        self.cfg.build_abox_engine(tbox, abox)
    }
}
