//! The unified answering API: the [`QueryEngine`] trait and the
//! [`SystemBuilder`].
//!
//! Before this module, [`crate::system::ObdaSystem`] and
//! [`crate::system::AboxSystem`] exposed two divergent answering
//! surfaces and the serving layer matched on an enum of them. Now both
//! implement [`QueryEngine`], so a server endpoint, a load generator,
//! or a bench holds a `Box<dyn QueryEngine>` and a third backend slots
//! in without touching the serving layer.
//!
//! Construction goes through [`SystemBuilder`]: evaluation threads,
//! cache toggles, and the trace sink are explicit builder options. Any
//! option left unset falls back to the environment knob it supersedes
//! (`QUONTO_THREADS`, `QUONTO_TIMINGS`) at build time — so knobs and
//! builder calls compose, with the builder winning.

use std::sync::Arc;

use obda_dllite::{Abox, Signature, Tbox};
use obda_mapping::MappingSet;
use obda_obs::{span, SinkKind, TraceCtx, TraceSink};
use obda_sqlstore::Database;

use crate::answer::Answers;
use crate::delta::{AboxDelta, DeltaSummary};
use crate::error::ObdaError;
use crate::query::ConjunctiveQuery;
use crate::system::{AboxSystem, DataMode, ObdaSystem, RewriteCacheStats, RewritingMode};

/// Query language of an answering request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryLang {
    /// Datalog-style conjunctive query syntax (`q(x) :- C(x), r(x, y)`).
    Cq,
    /// SPARQL conjunctive fragment (SELECT / ASK).
    Sparql,
}

impl QueryLang {
    pub fn as_str(self) -> &'static str {
        match self {
            QueryLang::Cq => "cq",
            QueryLang::Sparql => "sparql",
        }
    }
}

/// Engine-level counters surfaced through [`QueryEngine::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Rewriting algorithm name (`"PerfectRef"`, `"Presto"`).
    pub rewriting: &'static str,
    /// Data-access mode name (`"Virtual"`, `"Materialized"`, `"Abox"`).
    pub data: &'static str,
    /// Configured UCQ evaluation threads (0 = all cores).
    pub eval_threads: usize,
    /// TBox epoch (bumped by invalidation).
    pub tbox_epoch: u64,
    /// Rewrite-cache hit/miss counters. For a sharded engine this is
    /// the rollup of the coordinator and every shard, so dashboards
    /// that parse one hit/miss pair keep working unchanged.
    pub rewrite_cache: RewriteCacheStats,
    /// Evaluation shards (`1` = the unsharded fast path).
    pub shards: usize,
}

/// Per-shard serving counters, surfaced through
/// [`QueryEngine::shard_stats`] by sharded engines.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Shard index (`0..shards`).
    pub shard: usize,
    /// Individuals interned in this shard's ABox.
    pub individuals: usize,
    /// Indexed facts owned by this shard.
    pub facts: usize,
    /// Scatter evaluations routed to this shard.
    pub requests: u64,
    /// This shard's own rewrite-cache counters (direct access only —
    /// coordinator-routed queries rewrite once at the coordinator).
    pub rewrite_cache: RewriteCacheStats,
    /// Configured per-shard inflight cap (`0` = unbounded).
    pub max_inflight: usize,
    /// Highest concurrent inflight evaluations observed.
    pub inflight_high_water: usize,
    /// Scatter evaluations that had to wait at the shard gate.
    pub gate_waits: u64,
}

/// One loaded, thread-shareable query-answering engine.
///
/// The required methods are the engine-specific plumbing; callers use
/// the provided [`answer`](Self::answer) /
/// [`answer_traced`](Self::answer_traced) entry points, which handle
/// parsing, trace-context lifecycle, and sink emission uniformly.
pub trait QueryEngine: Send + Sync + std::fmt::Debug {
    /// The signature queries are parsed against.
    fn signature(&self) -> &Signature;

    /// The engine-level sink that untraced [`answer`](Self::answer)
    /// calls publish finished traces to.
    fn trace_sink(&self) -> Arc<dyn TraceSink>;

    /// Answers a parsed CQ, recording phase spans on `ctx`.
    fn answer_cq_traced(&self, q: &ConjunctiveQuery, ctx: &TraceCtx) -> Result<Answers, ObdaError>;

    /// Applies an ABox delta batch incrementally, recording
    /// `write.apply` / `write.index` / `write.views` spans on `ctx`.
    /// The default declines: engines without a writable store (e.g. a
    /// virtual-mode [`ObdaSystem`]) keep their read-only contract.
    fn apply_delta_traced(
        &self,
        delta: &AboxDelta,
        ctx: &TraceCtx,
    ) -> Result<DeltaSummary, ObdaError> {
        let _ = (delta, ctx);
        Err(ObdaError::unsupported(
            "ABox deltas (this engine has no writable store)",
        ))
    }

    /// Engine counters (cache hit rates, configuration).
    fn stats(&self) -> EngineStats;

    /// Drops derived state (cached rewritings, materialized data) so
    /// later queries recompute it. `&self`: callable on a shared
    /// engine; concurrent queries simply see a cold cache.
    fn invalidate(&self);

    /// Zeroes the resettable counters in [`stats`](Self::stats).
    fn reset_stats(&self);

    /// Per-shard serving counters; empty for unsharded engines (the
    /// default), one entry per shard for sharded ones.
    fn shard_stats(&self) -> Vec<ShardStats> {
        Vec::new()
    }

    /// Parses `text` under `lang` (recording a `parse` span) and
    /// answers it, recording the remaining phase spans on `ctx`. The
    /// caller owns the context: finishing and publishing the trace is
    /// its responsibility (the server does this per request).
    fn answer_traced(
        &self,
        lang: QueryLang,
        text: &str,
        ctx: &TraceCtx,
    ) -> Result<Answers, ObdaError> {
        let q = {
            let _parse = span!(ctx, "parse");
            match lang {
                QueryLang::Cq => crate::query::parse_cq(text, self.signature())?,
                QueryLang::Sparql => crate::sparql::parse_sparql(text, self.signature())?.cq,
            }
        };
        self.answer_cq_traced(&q, ctx)
    }

    /// Answers `text`, managing the trace lifecycle internally: a
    /// context is created iff the engine's sink is enabled, and the
    /// finished trace is published to the sink and the global ring.
    fn answer(&self, lang: QueryLang, text: &str) -> Result<Answers, ObdaError> {
        run_with_engine_trace(
            &self.trace_sink(),
            Some(text),
            |a: &Answers| a.len() as u64,
            |ctx| self.answer_traced(lang, text, ctx),
        )
    }

    /// Applies an ABox delta batch, managing the trace lifecycle the
    /// same way [`answer`](Self::answer) does (the finished trace's
    /// `rows` is the number of changed assertions).
    fn apply_delta(&self, delta: &AboxDelta) -> Result<DeltaSummary, ObdaError> {
        run_with_engine_trace(
            &self.trace_sink(),
            None,
            |s: &DeltaSummary| (s.inserted + s.deleted) as u64,
            |ctx| self.apply_delta_traced(delta, ctx),
        )
    }
}

/// Runs `f` under a fresh engine-level trace context (enabled iff the
/// sink is) and publishes the finished trace, whose `rows` field comes
/// from `rows(&ok_value)`. Shared by the trait's provided `answer` /
/// `apply_delta` and the systems' legacy inherent entry points.
pub(crate) fn run_with_engine_trace<T>(
    sink: &Arc<dyn TraceSink>,
    text: Option<&str>,
    rows: impl FnOnce(&T) -> u64,
    f: impl FnOnce(&TraceCtx) -> Result<T, ObdaError>,
) -> Result<T, ObdaError> {
    let ctx = if sink.enabled() {
        TraceCtx::new()
    } else {
        TraceCtx::disabled()
    };
    if let Some(text) = text {
        ctx.set_query(text);
    }
    let res = f(&ctx);
    let (status, rows) = match &res {
        Ok(value) => ("ok", rows(value)),
        Err(_) => ("error", 0),
    };
    if let Some(trace) = ctx.finish(status, rows) {
        obda_obs::submit(trace, &**sink);
    }
    res
}

/// Typed construction for both engine shapes. Unset options default
/// from the environment knobs at build time; set options always win.
#[derive(Debug, Clone, Default)]
pub struct SystemBuilder {
    rewriting: Option<RewritingMode>,
    data: Option<DataMode>,
    eval_threads: Option<usize>,
    rewrite_cache: Option<bool>,
    shards: Option<usize>,
    shard_max_inflight: Option<usize>,
    sink: Option<Arc<dyn TraceSink>>,
}

impl SystemBuilder {
    pub fn new() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// Rewriting algorithm (default: Presto for [`ObdaSystem`],
    /// PerfectRef for [`AboxSystem`]). On the ABox tier Presto folds
    /// into PerfectRef (there are no mappings to unfold against);
    /// [`RewritingMode::Ndl`] selects the shared-view NDL evaluator on
    /// every engine shape.
    pub fn rewriting(mut self, mode: RewritingMode) -> Self {
        self.rewriting = Some(mode);
        self
    }

    /// Data-access mode (default: virtual). Ignored by
    /// [`build_abox`](Self::build_abox).
    pub fn data_mode(mut self, mode: DataMode) -> Self {
        self.data = Some(mode);
        self
    }

    /// UCQ evaluation threads, `0` = all cores (default:
    /// `QUONTO_THREADS`, else 1).
    pub fn eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = Some(threads);
        self
    }

    /// Enables/disables the rewrite cache (default: enabled).
    pub fn rewrite_cache(mut self, enabled: bool) -> Self {
        self.rewrite_cache = Some(enabled);
        self
    }

    /// ABox evaluation shards for
    /// [`build_abox_engine`](Self::build_abox_engine), `0` = all cores
    /// (default: `QUONTO_SHARDS`, else 1 = unsharded).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Per-shard cap on concurrent scatter evaluations (`0` =
    /// unbounded, the default). Only meaningful for sharded engines.
    pub fn shard_max_inflight(mut self, cap: usize) -> Self {
        self.shard_max_inflight = Some(cap);
        self
    }

    /// Trace sink for untraced `answer` calls (default: selected by
    /// `QUONTO_TIMINGS`).
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Convenience for the built-in sinks.
    pub fn trace(self, kind: SinkKind) -> Self {
        let sink = obda_obs::sink::named(kind);
        self.trace_sink(sink)
    }

    /// Builds a full OBDA system (mappings + SQL sources).
    pub fn build_obda(
        &self,
        tbox: Tbox,
        mappings: MappingSet,
        db: Database,
    ) -> Result<ObdaSystem, ObdaError> {
        let mut sys = ObdaSystem::new(tbox, mappings, db)?;
        if let Some(mode) = self.rewriting {
            sys = sys.with_rewriting(mode);
        }
        if let Some(mode) = self.data {
            sys = sys.with_data_mode(mode);
        }
        if let Some(threads) = self.eval_threads {
            sys = sys.with_eval_threads(threads);
        }
        if let Some(enabled) = self.rewrite_cache {
            sys = sys.with_rewrite_cache(enabled);
        }
        if let Some(sink) = &self.sink {
            sys = sys.with_trace_sink(Arc::clone(sink));
        }
        Ok(sys)
    }

    /// Builds an ABox-backed system (no mappings/SQL).
    pub fn build_abox(&self, tbox: Tbox, abox: Abox) -> AboxSystem {
        let mut sys = AboxSystem::new(tbox, abox);
        if let Some(mode) = self.rewriting {
            sys = sys.with_rewriting(mode);
        }
        if let Some(threads) = self.eval_threads {
            sys = sys.with_eval_threads(threads);
        }
        if let Some(enabled) = self.rewrite_cache {
            sys = sys.with_rewrite_cache(enabled);
        }
        if let Some(sink) = &self.sink {
            sys = sys.with_trace_sink(Arc::clone(sink));
        }
        sys
    }

    /// The shard count [`build_abox_engine`](Self::build_abox_engine)
    /// will use: the builder option, else `QUONTO_SHARDS`, else 1;
    /// `0` resolves to all available cores.
    pub fn resolved_shards(&self) -> usize {
        let n = self.shards.or_else(quonto::env::shards).unwrap_or(1);
        if n == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            n
        }
    }

    /// Builds an ABox-backed engine, sharded or not: the serving-layer
    /// entry point. With [`resolved_shards`](Self::resolved_shards)
    /// `<= 1` this is exactly [`build_abox`](Self::build_abox) boxed —
    /// the unsharded fast path stays byte-for-byte what it was.
    /// Otherwise the ABox is partitioned into a
    /// [`crate::shard::ShardedAboxSystem`] (which always evaluates each
    /// shard single-threaded — `eval_threads` does not apply; scatter
    /// parallelism comes from the shards themselves).
    pub fn build_abox_engine(&self, tbox: Tbox, abox: Abox) -> Box<dyn QueryEngine> {
        let n = self.resolved_shards();
        if n <= 1 {
            return Box::new(self.build_abox(tbox, abox));
        }
        let mut sys = crate::shard::ShardedAboxSystem::new(tbox, abox, n);
        if let Some(mode) = self.rewriting {
            sys = sys.with_rewriting(mode);
        }
        if let Some(enabled) = self.rewrite_cache {
            sys = sys.with_rewrite_cache(enabled);
        }
        if let Some(cap) = self.shard_max_inflight {
            sys = sys.with_shard_max_inflight(cap);
        }
        if let Some(sink) = &self.sink {
            sys = sys.with_trace_sink(Arc::clone(sink));
        }
        Box::new(sys)
    }
}
