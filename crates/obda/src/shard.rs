//! Sharded scatter-gather ABox evaluation: the serving tier that breaks
//! the single-core qps ceiling.
//!
//! [`ShardedAboxSystem`] partitions an ABox across N shards by a
//! deterministic FNV-1a hash of each assertion's **subject** name. Every
//! shard is a full [`AboxSystem`] — its own [`crate::AboxIndex`], its
//! own rewrite cache, its own epoch — so a shard is independently
//! answerable and independently invalidatable. The coordinator answers
//! a query by rewriting **once** (through its own epoch-guarded rewrite
//! cache, the same front door the unsharded systems use), routing each
//! UCQ disjunct, scattering evaluation across the shards on scoped
//! threads, and gathering with an ordered merge.
//!
//! ## The partitioning invariant
//!
//! Every assertion lands in the shard of its subject: `A(c)` and
//! `P(c, d)` and `U(c, v)` all hash `c`. Role objects are interned into
//! the subject's shard, so any fact reachable from `c` *as subject* is
//! co-located with `c`.
//!
//! A disjunct whose atoms all share one subject term (a *star* query —
//! the overwhelmingly common shape PerfectRef produces for DL-Lite) is
//! **shard-local**: any homomorphism maps that subject term to a single
//! individual, and every fact it matches has that individual as
//! subject, hence lives in one shard. The union of per-shard answers is
//! therefore exactly the global answer set. A star around a *constant*
//! routes to that constant's single shard; a star around a variable
//! scatters to all shards.
//!
//! Disjuncts joining across different subjects (`q(x) :- p(x, y),
//! C(y)`) can match facts from two shards at once and fall back to a
//! **gather-then-join** path: a union ABox + index is built lazily
//! (once per epoch, counted in `sharded.fallback_builds`) and the
//! disjunct evaluates there, unsharded. Correct always, sharded-fast
//! never — the registry counters make the ratio observable.
//!
//! ## Merge determinism
//!
//! [`crate::Answers`] is a `BTreeSet`, so the gather is an ordered
//! merge: the result is byte-identical to unsharded evaluation at any
//! shard count, thread count, or scheduling. The per-shard timing spans
//! are recorded *after* the merge, in shard order, via
//! [`obda_obs::TraceCtx::record_span`] — traces are deterministic in
//! structure too.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use obda_dllite::{Abox, Assertion, NamedPredicate, Tbox};
use obda_mapping::Ebox;
use obda_obs::{registry, span, Counter, TraceCtx, TraceSink};
use quonto::sync::{lock_or_recover, wait_timeout_or_recover};
use quonto::Classification;

use crate::answer::{evaluate_disjuncts_indexed, AboxIndex, Answers};
use crate::delta::{
    maintain_merged_memo, record_batch, resolve_delta, AboxDelta, DeltaSummary, ResolvedFact,
};
use crate::ebox::{ebox_retracted_total, EboxMode, EboxState};
use crate::engine::{run_with_engine_trace, EngineStats, QueryEngine, QueryLang, ShardStats};
use crate::error::ObdaError;
use crate::query::{Atom, ConjunctiveQuery, Term};
use crate::rewrite::ndl::{
    eval_skeletons, memoized_extent, merge_extents, DataEpoch, NdlProgram, ViewDef, ViewExtent,
    ViewMemo, ViewPred,
};
use crate::system::{
    query_metrics, rewrite_with_cache_traced, AboxSystem, CachedRewriting, MaterializedAbox,
    RewriteCache, RewritingMode,
};

/// FNV-1a over the subject name: deterministic across runs, platforms,
/// and std versions (unlike `DefaultHasher`, whose keys are randomized
/// per process) — the shard of an individual is a stable fact about the
/// deployment, not about one process run.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard owning an individual's facts (by subject name).
pub fn shard_of(name: &str, shards: usize) -> usize {
    (fnv1a(name) % shards.max(1) as u64) as usize
}

/// Partitions `abox` into `n` per-shard ABoxes by subject hash.
/// Individuals are re-interned by name per shard, so shard-local ids
/// are dense and shard evaluation never touches a foreign id space.
fn partition_abox(abox: &Abox, n: usize) -> Vec<Abox> {
    let mut parts = vec![Abox::new(); n];
    for a in abox.assertions() {
        match a {
            Assertion::Concept(c, i) => {
                let name = abox.individual_name(*i);
                // lint: allow(R1.index, "shard_of returns hash % n < n == parts.len() by the vec! above")
                parts[shard_of(name, n)].assert_concept(*c, name);
            }
            Assertion::Role(p, s, o) => {
                let sname = abox.individual_name(*s);
                // lint: allow(R1.index, "shard_of returns hash % n < n == parts.len() by the vec! above")
                parts[shard_of(sname, n)].assert_role(*p, sname, abox.individual_name(*o));
            }
            Assertion::Attribute(u, s, v) => {
                let name = abox.individual_name(*s);
                // lint: allow(R1.index, "shard_of returns hash % n < n == parts.len() by the vec! above")
                parts[shard_of(name, n)].assert_attribute(*u, name, v.clone());
            }
        }
    }
    parts
}

/// Where one disjunct's matches can live.
enum Route {
    /// Shard-local around a variable subject: evaluate on every shard.
    All,
    /// Shard-local around a constant subject: one shard holds it all.
    One(usize),
    /// Joins across subjects: gather-then-join fallback.
    Gather,
}

/// Classifies a disjunct: shard-local iff all atoms share one subject
/// term. (An empty-body disjunct is trivially local — every shard
/// yields the same boolean answer and the merge dedups it.)
fn route_disjunct(q: &ConjunctiveQuery, shards: usize) -> Route {
    let mut subject: Option<&Term> = None;
    for atom in &q.atoms {
        let s = match atom {
            Atom::Concept(_, t) => t,
            Atom::Role(_, s, _) => s,
            Atom::Attribute(_, s, _) => s,
        };
        match subject {
            None => subject = Some(s),
            Some(prev) if prev == s => {}
            Some(_) => return Route::Gather,
        }
    }
    match subject {
        Some(Term::Const(name)) => Route::One(shard_of(name, shards)),
        _ => Route::All,
    }
}

/// Per-shard inflight gate: admission control for scatter evaluation.
/// `cap == 0` disables gating (the default — the server's bounded job
/// queue is the primary admission point; this is the per-shard
/// backstop for deployments that want one).
#[derive(Debug)]
struct Gate {
    cap: usize,
    inflight: Mutex<usize>,
    freed: Condvar,
    high_water: AtomicUsize,
    waits: AtomicU64,
}

impl Gate {
    fn new(cap: usize) -> Gate {
        Gate {
            cap,
            inflight: Mutex::new(0),
            freed: Condvar::new(),
            high_water: AtomicUsize::new(0),
            waits: AtomicU64::new(0),
        }
    }

    fn acquire(&self) -> GatePermit<'_> {
        let mut n = lock_or_recover(&self.inflight);
        if self.cap > 0 {
            let mut waited = false;
            while *n >= self.cap {
                if !waited {
                    waited = true;
                    self.waits.fetch_add(1, Ordering::Relaxed);
                }
                let (guard, _) = wait_timeout_or_recover(&self.freed, n, Duration::from_millis(50));
                n = guard;
            }
        }
        *n += 1;
        self.high_water.fetch_max(*n, Ordering::Relaxed);
        drop(n);
        GatePermit { gate: self }
    }

    fn release(&self) {
        let mut n = lock_or_recover(&self.inflight);
        *n = n.saturating_sub(1);
        drop(n);
        self.freed.notify_one();
    }
}

/// RAII inflight permit; releases on drop (panic-safe: an unwinding
/// shard thread still frees its slot).
struct GatePermit<'a> {
    gate: &'a Gate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

/// One shard: a complete [`AboxSystem`] plus serving counters.
#[derive(Debug)]
struct ShardState {
    system: AboxSystem,
    /// Scatter evaluations routed to this shard.
    requests: AtomicU64,
    gate: Gate,
}

/// Registry handles for the scatter-gather counters, resolved once.
struct ShardMetrics {
    queries: Arc<Counter>,
    local_disjuncts: Arc<Counter>,
    cross_disjuncts: Arc<Counter>,
    fallback_builds: Arc<Counter>,
}

fn shard_metrics() -> &'static ShardMetrics {
    static METRICS: OnceLock<ShardMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ShardMetrics {
        queries: registry().counter("sharded.queries"),
        local_disjuncts: registry().counter("sharded.local_disjuncts"),
        cross_disjuncts: registry().counter("sharded.cross_shard_disjuncts"),
        fallback_builds: registry().counter("sharded.fallback_builds"),
    })
}

/// Span names must be `&'static str`; shards beyond the table share one
/// bucket name (the `shard` counter still identifies them exactly).
const SHARD_SPAN_NAMES: [&str; 16] = [
    "shard0", "shard1", "shard2", "shard3", "shard4", "shard5", "shard6", "shard7", "shard8",
    "shard9", "shard10", "shard11", "shard12", "shard13", "shard14", "shard15",
];

fn shard_span_name(i: usize) -> &'static str {
    SHARD_SPAN_NAMES.get(i).copied().unwrap_or("shard16+")
}

/// The sharded scatter-gather engine. See the module docs for the
/// partitioning invariant and the determinism argument.
#[derive(Debug)]
pub struct ShardedAboxSystem {
    /// The ontology TBox (shared by every shard).
    pub tbox: Tbox,
    /// The classification, computed once and cloned into the shards.
    pub classification: Classification,
    shards: Vec<ShardState>,
    /// Coordinator rewrite cache: one rewrite per query, shared by all
    /// shards. Shard-level caches exist too (each shard is a full
    /// `AboxSystem`) and serve direct per-shard access.
    rewrite_cache: Mutex<RewriteCache>,
    cache_enabled: bool,
    /// Rewriting mode: PerfectRef (default) or NDL; Presto folds into
    /// PerfectRef (no mappings on the ABox tier).
    rewriting: RewritingMode,
    /// Coordinator memo of *merged* NDL view extents; the per-shard
    /// partial extents are memoized inside each shard's own system.
    ndl_memo: Mutex<ViewMemo>,
    /// Coordinator ABox version: bumped by every delta batch (and by
    /// [`QueryEngine::invalidate`]), stamping the merged-extent memo's
    /// [`DataEpoch`] alongside the TBox epoch.
    version: AtomicU64,
    /// Lazily built union ABox + index for cross-shard disjuncts,
    /// dropped on [`QueryEngine::invalidate`] and by any delta batch
    /// that changes a fact.
    fallback: Mutex<Option<Arc<MaterializedAbox>>>,
    /// EBox knob, applied to every shard and to the coordinator.
    ebox_mode: EboxMode,
    /// Coordinator constraint set: the intersection of the per-shard
    /// EBoxes restricted to subject-local predicates — the forms whose
    /// extensions partition by subject shard, so per-shard validity
    /// implies global validity and a write routed to one shard can only
    /// falsify constraints that mention its predicates.
    ebox: Mutex<EboxState>,
    sink: Arc<dyn TraceSink>,
}

impl ShardedAboxSystem {
    /// Classifies the TBox once, partitions the ABox by subject hash,
    /// and builds one [`AboxSystem`] per shard (each evaluating
    /// single-threaded — parallelism lives across shards, not inside
    /// them).
    pub fn new(tbox: Tbox, abox: Abox, shards: usize) -> Self {
        let n = shards.max(1);
        let classification = Classification::classify(&tbox);
        let shards = partition_abox(&abox, n)
            .into_iter()
            .map(|part| ShardState {
                system: AboxSystem::with_classification(tbox.clone(), classification.clone(), part)
                    .with_eval_threads(1),
                requests: AtomicU64::new(0),
                gate: Gate::new(0),
            })
            .collect();
        ShardedAboxSystem {
            tbox,
            classification,
            shards,
            rewrite_cache: Mutex::new(RewriteCache::default()),
            cache_enabled: true,
            rewriting: RewritingMode::PerfectRef,
            ndl_memo: Mutex::new(ViewMemo::default()),
            version: AtomicU64::new(0),
            fallback: Mutex::new(None),
            ebox_mode: EboxMode::Off,
            ebox: Mutex::new(EboxState::default()),
            sink: obda_obs::sink::from_env(),
        }
    }

    /// Switches the EBox mode: every shard infers (or clears) its own
    /// constraint set, and the coordinator keeps the subject-local
    /// intersection for pruning the once-per-query rewriting.
    pub fn with_ebox_mode(mut self, mode: EboxMode) -> Self {
        self.ebox_mode = mode;
        self.shards = std::mem::take(&mut self.shards)
            .into_iter()
            .map(|s| ShardState {
                system: s.system.with_ebox_mode(mode),
                requests: s.requests,
                gate: s.gate,
            })
            .collect();
        self.ebox = Mutex::new(EboxState::new(self.coordinator_ebox()));
        self
    }

    /// The configured EBox mode.
    pub fn ebox_mode(&self) -> EboxMode {
        self.ebox_mode
    }

    /// Intersection of the per-shard EBoxes, restricted to
    /// subject-local constraint forms (see the `ebox` field docs).
    fn coordinator_ebox(&self) -> Ebox {
        if !self.ebox_mode.enabled() {
            return Ebox::new();
        }
        let mut acc: Option<Ebox> = None;
        for s in &self.shards {
            let local = s.system.ebox_current().restrict_subject_local();
            acc = Some(match acc {
                Some(a) => a.intersect(&local),
                None => local,
            });
        }
        acc.unwrap_or_default()
    }

    /// Enables/disables the coordinator rewrite cache.
    pub fn with_rewrite_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Switches the rewriting mode. Presto has no distinct evaluation
    /// path on the ABox tier and is answered via PerfectRef.
    pub fn with_rewriting(mut self, mode: RewritingMode) -> Self {
        self.rewriting = mode;
        self
    }

    /// The rewriting mode actually answered with (Presto folds into
    /// PerfectRef).
    fn effective_rewriting(&self) -> RewritingMode {
        match self.rewriting {
            RewritingMode::Ndl => RewritingMode::Ndl,
            _ => RewritingMode::PerfectRef,
        }
    }

    /// Replaces the trace sink used by untraced `answer` calls.
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Caps concurrent scatter evaluations per shard (`0` = unbounded,
    /// the default). Excess scatters block on the shard's gate; waits
    /// and high-water marks surface in [`QueryEngine::shard_stats`].
    pub fn with_shard_max_inflight(mut self, cap: usize) -> Self {
        for s in &mut self.shards {
            s.gate.cap = cap;
        }
        self
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Indexed fact count per shard (diagnostics; empty shards are 0).
    pub fn shard_fact_counts(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.system.with_data(|d| d.index.num_facts()))
            .collect()
    }

    /// Threads the scatter actually uses: one per shard with work,
    /// capped by the machine (more threads than cores only adds
    /// timeslicing latency — the A7 lesson).
    fn scatter_parallelism(&self, work_items: usize) -> usize {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        work_items.min(cores).max(1)
    }

    /// Evaluates routed disjuncts on one shard, under its gate.
    fn eval_on_shard(&self, i: usize, disjuncts: &[&ConjunctiveQuery]) -> Answers {
        // lint: allow(R1.index, "i comes from routing over 0..self.shards.len()")
        let shard = &self.shards[i];
        shard.requests.fetch_add(1, Ordering::Relaxed);
        let _permit = shard.gate.acquire();
        shard
            .system
            .with_data(|d| evaluate_disjuncts_indexed(disjuncts, &d.abox, &d.index))
    }

    /// The union ABox + index for cross-shard disjuncts, built on first
    /// use from the shards (the coordinator does not keep the original
    /// ABox alive). The build runs under the lock so concurrent first
    /// fallbacks wait instead of duplicating it.
    fn ensure_fallback(&self) -> Arc<MaterializedAbox> {
        let mut slot = lock_or_recover(&self.fallback);
        if let Some(fb) = slot.as_ref() {
            return Arc::clone(fb);
        }
        let mut union = Abox::new();
        for s in &self.shards {
            s.system.with_data(|d| {
                let part = &d.abox;
                for a in part.assertions() {
                    match a {
                        Assertion::Concept(c, i) => {
                            union.assert_concept(*c, part.individual_name(*i));
                        }
                        Assertion::Role(p, su, o) => {
                            union.assert_role(
                                *p,
                                part.individual_name(*su),
                                part.individual_name(*o),
                            );
                        }
                        Assertion::Attribute(u, su, v) => {
                            union.assert_attribute(*u, part.individual_name(*su), v.clone());
                        }
                    }
                }
            });
        }
        let index = AboxIndex::build(&union);
        let fb = Arc::new(MaterializedAbox { abox: union, index });
        *slot = Some(Arc::clone(&fb));
        shard_metrics().fallback_builds.add(1);
        fb
    }

    /// Scatters per-shard work onto scoped threads and gathers with an
    /// ordered merge. Per-shard timing spans are recorded after the
    /// merge, in shard order, so the trace is deterministic.
    fn scatter_eval(
        &self,
        per_shard: &[Vec<&ConjunctiveQuery>],
        ctx: &TraceCtx,
    ) -> (Answers, usize) {
        let work: Vec<usize> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, disjuncts)| !disjuncts.is_empty())
            .map(|(i, _)| i)
            .collect();
        if work.is_empty() {
            return (Answers::new(), 1);
        }
        let par = self.scatter_parallelism(work.len());
        // (shard, disjuncts, start_us, dur_us) per shard evaluated.
        let mut timings: Vec<(usize, usize, u64, u64)> = Vec::with_capacity(work.len());
        let mut merged = Answers::new();
        if par <= 1 {
            // Inline sequential path: on a 1-core host (or 1 busy
            // shard) thread spawn overhead would only slow things down.
            for &i in &work {
                let start_us = ctx.now_us();
                let t = Instant::now();
                // lint: allow(R1.index, "work holds indexes into per_shard by construction")
                let answers = self.eval_on_shard(i, &per_shard[i]);
                // lint: allow(R1.index, "work holds indexes into per_shard by construction")
                timings.push((i, per_shard[i].len(), start_us, elapsed_us(t)));
                merged.extend(answers);
            }
        } else {
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); par];
            for (k, &i) in work.iter().enumerate() {
                // lint: allow(R1.index, "k % par < par == groups.len() by the vec! above")
                groups[k % par].push(i);
            }
            let mut results: Vec<(usize, usize, u64, u64, Answers)> = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|group| {
                        scope.spawn(move || {
                            let mut local = Vec::with_capacity(group.len());
                            for &i in group {
                                let start_us = ctx.now_us();
                                let t = Instant::now();
                                // lint: allow(R1.index, "work holds indexes into per_shard by construction")
                                let answers = self.eval_on_shard(i, &per_shard[i]);
                                local.push((
                                    i,
                                    // lint: allow(R1.index, "work holds indexes into per_shard by construction")
                                    per_shard[i].len(),
                                    start_us,
                                    elapsed_us(t),
                                    answers,
                                ));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| {
                        // lint: allow(R1.expect, "join() only fails if the shard panicked; re-raising hands the panic to the serving layer's per-request catch_unwind instead of silently dropping answers")
                        h.join().expect("scatter shard panicked")
                    })
                    .collect()
            });
            results.sort_unstable_by_key(|r| r.0);
            for (i, d, start_us, dur_us, answers) in results {
                timings.push((i, d, start_us, dur_us));
                merged.extend(answers);
            }
        }
        for (i, disjuncts, start_us, dur_us) in timings {
            ctx.record_span(
                shard_span_name(i),
                start_us,
                dur_us,
                vec![("shard", i as u64), ("disjuncts", disjuncts as u64)],
            );
        }
        (merged, par)
    }

    /// Builds one view's partial extent on every shard (each memoized
    /// shard-locally) and returns them in shard order. Parallel across
    /// shards like [`Self::scatter_eval`]; the merge order is the shard
    /// order either way, so the merged extent is deterministic.
    fn scatter_extents(&self, def: &ViewDef) -> Vec<Arc<ViewExtent>> {
        let par = self.scatter_parallelism(self.shards.len());
        let build = |s: &ShardState| {
            s.requests.fetch_add(1, Ordering::Relaxed);
            let _permit = s.gate.acquire();
            s.system.ndl_partial_extent(def)
        };
        if par <= 1 {
            self.shards.iter().map(build).collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|s| scope.spawn(move || build(s)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        // lint: allow(R1.expect, "join() only fails if the shard panicked; re-raising hands the panic to the serving layer's per-request catch_unwind instead of silently dropping extent tuples")
                        h.join().expect("extent scatter shard panicked")
                    })
                    .collect()
            })
        }
    }

    /// NDL answering: merged view extents (scattered per shard, memoized
    /// at both tiers) joined at the coordinator. Per-shard *skeleton*
    /// evaluation would be unsound here — a concept view member like
    /// `∃p⁻` matches an individual through a fact stored in the
    /// *subject's* shard, breaking the subject-locality invariant the
    /// UCQ router relies on — so shards contribute extents, not answers.
    fn eval_ndl_traced(&self, prog: &NdlProgram, ctx: &TraceCtx) -> Answers {
        let guard = span!(ctx, "eval");
        guard.count("views", prog.views.len() as u64);
        guard.count("skeletons", prog.queries.len() as u64);
        guard.count("shards", self.shards.len() as u64);
        // Version first, shard snapshots second: a write landing in
        // between yields a merged extent *newer* than its stamp, which
        // the memo over-invalidates on the next query — never stale.
        let epoch = DataEpoch {
            tbox: lock_or_recover(&self.rewrite_cache).epoch,
            abox: self.version.load(Ordering::Relaxed),
        };
        let mut extents: std::collections::HashMap<ViewPred, Arc<ViewExtent>> =
            std::collections::HashMap::new();
        for def in &prog.views {
            let (ext, hit) = memoized_extent(&self.ndl_memo, epoch, def.pred(), || {
                merge_extents(&self.scatter_extents(def))
            });
            guard.count(
                if hit {
                    "view_memo_hit"
                } else {
                    "view_memo_miss"
                },
                1,
            );
            extents.insert(def.pred(), ext);
        }
        eval_skeletons(&prog.queries, &extents)
    }

    /// The traced answering core: rewrite once, route, scatter, gather.
    fn eval_cq_traced(&self, q: &ConjunctiveQuery, ctx: &TraceCtx) -> Answers {
        let started = Instant::now();
        let mode = self.effective_rewriting();
        ctx.tag("rewriting", mode.as_str());
        ctx.tag("data", "ShardedAbox");
        let (ebox, ebox_gen) = {
            let state = lock_or_recover(&self.ebox);
            (state.snapshot(), state.generation)
        };
        let rw = rewrite_with_cache_traced(
            &self.rewrite_cache,
            self.cache_enabled,
            mode,
            &self.tbox,
            &self.classification,
            q,
            ebox.as_deref(),
            ebox_gen,
            ctx,
        );
        let ucq = match &*rw {
            CachedRewriting::PerfectRef { ucq, .. } => ucq,
            CachedRewriting::Ndl(prog) => {
                let answers = self.eval_ndl_traced(prog, ctx);
                let m = shard_metrics();
                m.queries.add(1);
                let (queries, latency) = query_metrics();
                queries.add(1);
                latency.record(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                return answers;
            }
            CachedRewriting::Presto(_) => {
                // lint: allow(R1.panic, "this cache only ever receives PerfectRef or Ndl entries (inserted above); the Presto arm is unreachable by construction")
                unreachable!("ShardedAboxSystem never caches Presto rewritings")
            }
        };
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<&ConjunctiveQuery>> = vec![Vec::new(); n];
        let mut cross: Vec<&ConjunctiveQuery> = Vec::new();
        for d in &ucq.disjuncts {
            match route_disjunct(d, n) {
                Route::All => {
                    for bucket in &mut per_shard {
                        bucket.push(d);
                    }
                }
                // lint: allow(R1.index, "route_disjunct returns shard_of(..) % n < n")
                Route::One(i) => per_shard[i].push(d),
                Route::Gather => cross.push(d),
            }
        }
        let local = ucq.len() - cross.len();
        let guard = span!(ctx, "eval");
        guard.count("disjuncts", ucq.len() as u64);
        guard.count("shards", n as u64);
        guard.count("local_disjuncts", local as u64);
        guard.count("cross_shard_disjuncts", cross.len() as u64);
        let (mut answers, par) = self.scatter_eval(&per_shard, ctx);
        guard.count("threads", par as u64);
        if !cross.is_empty() {
            let fb = self.ensure_fallback();
            let g = span!(ctx, "gather_join");
            g.count("disjuncts", cross.len() as u64);
            answers.extend(evaluate_disjuncts_indexed(&cross, &fb.abox, &fb.index));
        }
        drop(guard);
        let m = shard_metrics();
        m.queries.add(1);
        m.local_disjuncts.add(local as u64);
        m.cross_disjuncts.add(cross.len() as u64);
        let (queries, latency) = query_metrics();
        queries.add(1);
        latency.record(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        answers
    }

    /// Answers a query (text) with PerfectRef scattered over the shards.
    pub fn answer(&self, text: &str) -> Result<Answers, ObdaError> {
        QueryEngine::answer(self, QueryLang::Cq, text)
    }

    /// Answers a SPARQL query (conjunctive fragment) over the shards.
    pub fn answer_sparql(&self, text: &str) -> Result<Answers, ObdaError> {
        QueryEngine::answer(self, QueryLang::Sparql, text)
    }

    /// Answers a parsed CQ.
    pub fn answer_cq(&self, q: &ConjunctiveQuery) -> Answers {
        run_with_engine_trace(
            &self.trace_sink(),
            None,
            |a: &Answers| a.len() as u64,
            |ctx| Ok(self.eval_cq_traced(q, ctx)),
        )
        .unwrap_or_default()
    }
}

fn elapsed_us(t: Instant) -> u64 {
    t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// The named predicate a resolved delta fact asserts — the coordinator
/// EBox retracts everything it mentions.
fn resolved_predicate(f: &ResolvedFact) -> NamedPredicate {
    match f {
        ResolvedFact::Concept(c, _) => NamedPredicate::Concept(*c),
        ResolvedFact::Role(p, _, _) => NamedPredicate::Role(*p),
        ResolvedFact::Attr(u, _, _) => NamedPredicate::Attribute(*u),
    }
}

impl QueryEngine for ShardedAboxSystem {
    fn signature(&self) -> &obda_dllite::Signature {
        &self.tbox.sig
    }

    fn trace_sink(&self) -> Arc<dyn TraceSink> {
        Arc::clone(&self.sink)
    }

    fn answer_cq_traced(&self, q: &ConjunctiveQuery, ctx: &TraceCtx) -> Result<Answers, ObdaError> {
        Ok(self.eval_cq_traced(q, ctx))
    }

    /// Applies a delta by routing each resolved fact to its subject's
    /// shard — the exact partitioning [`partition_abox`] uses, so a
    /// system grown by deltas is byte-identical to one partitioned from
    /// the final ABox. Each shard patches its own store and partial
    /// extent memo; the coordinator then maintains the merged-extent
    /// memo and drops the cross-shard union fallback if anything
    /// changed.
    fn apply_delta_traced(
        &self,
        delta: &AboxDelta,
        ctx: &TraceCtx,
    ) -> Result<DeltaSummary, ObdaError> {
        let guard = span!(ctx, "write.apply");
        let (inserts, deletes) = resolve_delta(&self.tbox.sig, delta)?;
        if self.ebox_mode.enabled() {
            // Conservative coordinator retraction *before* the facts
            // land: drop every coordinator constraint mentioning a
            // touched predicate (the per-shard EBoxes revalidate
            // precisely inside each shard's own write path). Probing
            // across shards would need the union index the coordinator
            // deliberately does not keep.
            let touched: std::collections::HashSet<NamedPredicate> = inserts
                .iter()
                .chain(&deletes)
                .map(resolved_predicate)
                .collect();
            let mut state = lock_or_recover(&self.ebox);
            if !state.ebox.is_empty() {
                let removed = Arc::make_mut(&mut state.ebox).retract_about(&touched) as u64;
                if removed > 0 {
                    state.generation += 1;
                    state.retracted += removed;
                    ebox_retracted_total().add(removed);
                    ctx.count("ebox_retracted", removed);
                }
            }
        }
        let n = self.shards.len();
        let mut routed: Vec<(Vec<ResolvedFact>, Vec<ResolvedFact>)> = vec![Default::default(); n];
        for f in &inserts {
            // lint: allow(R1.index, "shard_of returns hash % n < n == routed.len() by the vec! above")
            routed[shard_of(f.subject(), n)].0.push(f.clone());
        }
        for f in &deletes {
            // lint: allow(R1.index, "shard_of returns hash % n < n == routed.len() by the vec! above")
            routed[shard_of(f.subject(), n)].1.push(f.clone());
        }
        let mut summary = DeltaSummary::default();
        for (shard, (ins, del)) in self.shards.iter().zip(&routed) {
            if ins.is_empty() && del.is_empty() {
                continue;
            }
            shard.requests.fetch_add(1, Ordering::Relaxed);
            summary.absorb(shard.system.apply_resolved_traced(ins, del, ctx));
        }
        let version = self.version.fetch_add(1, Ordering::Relaxed) + 1;
        let epoch = DataEpoch {
            tbox: lock_or_recover(&self.rewrite_cache).epoch,
            abox: version,
        };
        let merged_fallbacks = {
            let g = span!(ctx, "write.views");
            let fb = maintain_merged_memo(
                &self.ndl_memo,
                epoch,
                &inserts,
                &deletes,
                &self.classification,
            );
            g.count("fallbacks", fb);
            fb
        };
        summary.fallbacks += merged_fallbacks;
        if summary.inserted + summary.deleted > 0 {
            *lock_or_recover(&self.fallback) = None;
        }
        guard.count("rows", (summary.inserted + summary.deleted) as u64);
        record_batch(&summary);
        Ok(summary)
    }

    fn stats(&self) -> EngineStats {
        let (epoch, coord) = {
            let cache = lock_or_recover(&self.rewrite_cache);
            (cache.epoch, cache.stats)
        };
        let mut rolled = coord;
        for s in &self.shards {
            let shard = s.system.rewrite_cache_stats();
            rolled.hits = rolled.hits.saturating_add(shard.hits);
            rolled.misses = rolled.misses.saturating_add(shard.misses);
        }
        EngineStats {
            rewriting: self.effective_rewriting().as_str(),
            data: "ShardedAbox",
            eval_threads: 1,
            tbox_epoch: epoch,
            rewrite_cache: rolled,
            shards: self.shards.len(),
            ebox: self.ebox_mode.as_str(),
            ebox_constraints: lock_or_recover(&self.ebox).ebox.constraint_count(),
        }
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardStats {
                shard: i,
                individuals: s.system.with_data(|d| d.abox.num_individuals()),
                facts: s.system.with_data(|d| d.index.num_facts()),
                requests: s.requests.load(Ordering::Relaxed),
                rewrite_cache: s.system.rewrite_cache_stats(),
                max_inflight: s.gate.cap,
                inflight_high_water: s.gate.high_water.load(Ordering::Relaxed),
                gate_waits: s.gate.waits.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Drops the coordinator cache, every shard's cache (bumping their
    /// epochs), and the gather-then-join fallback.
    fn invalidate(&self) {
        lock_or_recover(&self.rewrite_cache).invalidate();
        for s in &self.shards {
            s.system.invalidate();
        }
        lock_or_recover(&self.ndl_memo).clear();
        self.version.fetch_add(1, Ordering::Relaxed);
        *lock_or_recover(&self.fallback) = None;
    }

    fn reset_stats(&self) {
        lock_or_recover(&self.rewrite_cache).stats.reset();
        for s in &self.shards {
            s.system.reset_stats();
            s.requests.store(0, Ordering::Relaxed);
            s.gate.high_water.store(0, Ordering::Relaxed);
            s.gate.waits.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_cq;
    use obda_dllite::{parse_abox, parse_tbox};

    fn setup() -> (Tbox, Abox) {
        let t = parse_tbox("concept A B\nrole p\nattribute u\nA [= B").unwrap();
        let ab = parse_abox(
            "A(x1)\nA(x2)\nB(x3)\np(x1, x2)\np(x2, x3)\nu(x1, 5)\nu(x2, \"hi\")",
            &t.sig,
        )
        .unwrap();
        (t, ab)
    }

    #[test]
    fn partitioning_is_deterministic_and_complete() {
        let (_, ab) = setup();
        let a = partition_abox(&ab, 4);
        let b = partition_abox(&ab, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.assertions(), y.assertions());
        }
        let total: usize = a.iter().map(Abox::len).sum();
        assert_eq!(total, ab.len(), "no assertion may be lost or duplicated");
        // Every assertion sits in its subject's shard.
        for (i, part) in a.iter().enumerate() {
            for assertion in part.assertions() {
                let subject = match assertion {
                    Assertion::Concept(_, s) | Assertion::Role(_, s, _) => *s,
                    Assertion::Attribute(_, s, _) => *s,
                };
                assert_eq!(shard_of(part.individual_name(subject), 4), i);
            }
        }
    }

    #[test]
    fn routing_classifies_star_and_join_shapes() {
        let (t, _) = setup();
        let star = parse_cq("q(x) :- A(x), p(x, y), u(x, n)", &t.sig).unwrap();
        assert!(matches!(route_disjunct(&star, 4), Route::All));
        let constant = parse_cq("q(y) :- p(\"x1\", y)", &t.sig).unwrap();
        match route_disjunct(&constant, 4) {
            Route::One(i) => assert_eq!(i, shard_of("x1", 4)),
            _ => panic!("constant star must route to one shard"),
        }
        let join = parse_cq("q(x) :- p(x, y), B(y)", &t.sig).unwrap();
        assert!(matches!(route_disjunct(&join, 4), Route::Gather));
    }

    #[test]
    fn sharded_answers_match_unsharded_including_cross_shard_joins() {
        let (t, ab) = setup();
        let reference = AboxSystem::new(t.clone(), ab.clone()).with_eval_threads(1);
        for shards in [1usize, 2, 3, 8] {
            let sys = ShardedAboxSystem::new(t.clone(), ab.clone(), shards);
            for q in [
                "q(x) :- A(x)",
                "q(x) :- B(x)", // hierarchy: rewriting adds A(x)
                "q(x, y) :- p(x, y)",
                "q(x) :- p(x, y), B(y)", // cross-shard join
                "q(x, n) :- u(x, n)",    // value-typed head
                "q(y) :- p(\"x1\", y)",  // constant routing
                "q(y) :- p(\"ghost\", y)",
            ] {
                assert_eq!(
                    sys.answer(q).unwrap(),
                    reference.answer(q).unwrap(),
                    "shards={shards} query={q}"
                );
            }
        }
    }

    #[test]
    fn invalidate_clears_fallback_and_shard_epochs() {
        let (t, ab) = setup();
        let sys = ShardedAboxSystem::new(t, ab, 2);
        // Force the fallback build with a cross-shard join.
        sys.answer("q(x) :- p(x, y), B(y)").unwrap();
        assert!(lock_or_recover(&sys.fallback).is_some());
        let epoch_before = sys.stats().tbox_epoch;
        sys.invalidate();
        assert!(lock_or_recover(&sys.fallback).is_none());
        assert_eq!(sys.stats().tbox_epoch, epoch_before + 1);
        // A variable-subject star scatters to every shard, and the
        // per-shard serving counters show up in shard_stats().
        sys.answer("q(x) :- A(x)").unwrap();
        let per_shard = sys.shard_stats();
        assert_eq!(per_shard.len(), 2);
        let scattered: u64 = per_shard.iter().map(|s| s.requests).sum();
        assert!(scattered >= 2, "Route::All must visit every shard");
    }

    #[test]
    fn gate_blocks_at_cap_and_counts_waits() {
        let gate = Gate::new(1);
        let p1 = gate.acquire();
        assert_eq!(gate.high_water.load(Ordering::Relaxed), 1);
        std::thread::scope(|scope| {
            let h = scope.spawn(|| {
                let _p2 = gate.acquire();
            });
            std::thread::sleep(Duration::from_millis(30));
            drop(p1);
            h.join().unwrap();
        });
        assert!(gate.waits.load(Ordering::Relaxed) >= 1);
        assert_eq!(*lock_or_recover(&gate.inflight), 0);
    }
}
