//! Conjunctive queries (CQs) and unions thereof (UCQs) over a DL-Lite
//! signature, with a datalog-style concrete syntax:
//!
//! ```text
//! q(x, y) :- Professor(x), teacherOf(x, y), personName(x, "ada"), age(x, 42)
//! ```
//!
//! Variables are bare identifiers; IRI constants are double-quoted
//! strings in concept/role positions; attribute value positions accept a
//! variable, a quoted string or an integer literal.

use std::collections::HashMap;
use std::fmt;

use obda_dllite::{AttributeId, ConceptId, RoleId, Signature, Value};

/// A term in an individual (IRI) position.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(String),
    /// An IRI constant.
    Const(String),
}

impl Term {
    /// The variable name, if a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

/// A term in an attribute value position.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueTerm {
    /// A variable.
    Var(String),
    /// A literal value.
    Lit(Value),
}

impl ValueTerm {
    /// The variable name, if a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            ValueTerm::Var(v) => Some(v),
            ValueTerm::Lit(_) => None,
        }
    }
}

/// A query atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Atom {
    /// `A(t)`.
    Concept(ConceptId, Term),
    /// `p(t, t')`.
    Role(RoleId, Term, Term),
    /// `u(t, v)`.
    Attribute(AttributeId, Term, ValueTerm),
}

impl Atom {
    /// Variables occurring in the atom, in position order.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        match self {
            Atom::Concept(_, t) => {
                if let Some(v) = t.as_var() {
                    out.push(v);
                }
            }
            Atom::Role(_, s, o) => {
                for t in [s, o] {
                    if let Some(v) = t.as_var() {
                        out.push(v);
                    }
                }
            }
            Atom::Attribute(_, s, v) => {
                if let Some(x) = s.as_var() {
                    out.push(x);
                }
                if let Some(x) = v.as_var() {
                    out.push(x);
                }
            }
        }
        out
    }
}

/// A conjunctive query: head variables and body atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConjunctiveQuery {
    /// Distinguished (answer) variables, in head order.
    pub head: Vec<String>,
    /// Body atoms.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// All variables of the body (deduplicated, body order).
    pub fn body_vars(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for a in &self.atoms {
            for v in a.vars() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// How many times each variable occurs across body atom positions
    /// (head occurrences count once more, pinning them as bound).
    pub fn var_occurrences(&self) -> HashMap<&str, usize> {
        let mut occ: HashMap<&str, usize> = HashMap::new();
        for a in &self.atoms {
            for v in a.vars() {
                *occ.entry(v).or_insert(0) += 1;
            }
        }
        for v in &self.head {
            *occ.entry(v.as_str()).or_insert(0) += 1;
        }
        occ
    }

    /// Whether a variable is *unbound* in the PerfectRef sense: exactly
    /// one body occurrence and not a head variable.
    pub fn is_unbound(&self, var: &str) -> bool {
        self.var_occurrences().get(var).copied().unwrap_or(0) == 1
            && !self.head.iter().any(|h| h == var)
    }

    /// Safety check: every head variable occurs in the body.
    pub fn is_safe(&self) -> bool {
        let body: std::collections::HashSet<&str> = self.body_vars().into_iter().collect();
        self.head.iter().all(|h| body.contains(h.as_str()))
    }

    /// Canonical form for duplicate detection during rewriting: variables
    /// renamed to `v0, v1, …` in first-occurrence order, atoms sorted.
    pub fn canonical(&self) -> ConjunctiveQuery {
        // Two passes: establish renaming from sorted atoms is unstable, so
        // rename in head-then-body order first, then sort atoms, then
        // rename again until fixpoint (two rounds suffice in practice; we
        // iterate to a small cap for safety).
        let mut cur = self.clone();
        for _ in 0..4 {
            let mut names: HashMap<String, String> = HashMap::new();
            let mut fresh = 0usize;
            let mut rename = |v: &str, names: &mut HashMap<String, String>| -> String {
                names
                    .entry(v.to_owned())
                    .or_insert_with(|| {
                        let n = format!("v{fresh}");
                        fresh += 1;
                        n
                    })
                    .clone()
            };
            let mut head = Vec::new();
            for h in &cur.head {
                head.push(rename(h, &mut names));
            }
            let mut atoms: Vec<Atom> = cur
                .atoms
                .iter()
                .map(|a| rename_atom(a, &mut |v| rename(v, &mut names)))
                .collect();
            atoms.sort();
            atoms.dedup();
            let next = ConjunctiveQuery { head, atoms };
            if next == cur {
                break;
            }
            cur = next;
        }
        cur
    }

    /// Applies a variable substitution (IRI positions only).
    pub fn substitute(&self, subst: &HashMap<String, Term>) -> ConjunctiveQuery {
        self.substitute_full(subst, &HashMap::new())
    }

    /// Applies a substitution over IRI-position variables (`subst`) and
    /// value-position variables (`value_subst`) simultaneously.
    pub fn substitute_full(
        &self,
        subst: &HashMap<String, Term>,
        value_subst: &HashMap<String, Value>,
    ) -> ConjunctiveQuery {
        let term = |t: &Term| -> Term {
            match t {
                Term::Var(v) => subst.get(v).cloned().unwrap_or_else(|| t.clone()),
                Term::Const(_) => t.clone(),
            }
        };
        let vterm = |t: &ValueTerm| -> ValueTerm {
            match t {
                ValueTerm::Var(v) => {
                    if let Some(l) = value_subst.get(v) {
                        return ValueTerm::Lit(l.clone());
                    }
                    match subst.get(v) {
                        Some(Term::Var(w)) => ValueTerm::Var(w.clone()),
                        // IRI constants never flow into value positions;
                        // unification keeps the sorts apart.
                        _ => t.clone(),
                    }
                }
                ValueTerm::Lit(_) => t.clone(),
            }
        };
        ConjunctiveQuery {
            head: self
                .head
                .iter()
                .map(|h| match subst.get(h) {
                    Some(Term::Var(w)) => w.clone(),
                    _ => h.clone(),
                })
                .collect(),
            atoms: self
                .atoms
                .iter()
                .map(|a| match a {
                    Atom::Concept(c, t) => Atom::Concept(*c, term(t)),
                    Atom::Role(p, s, o) => Atom::Role(*p, term(s), term(o)),
                    Atom::Attribute(u, s, v) => Atom::Attribute(*u, term(s), vterm(v)),
                })
                .collect(),
        }
    }
}

fn rename_atom(a: &Atom, rename: &mut impl FnMut(&str) -> String) -> Atom {
    let term = |t: &Term, rename: &mut dyn FnMut(&str) -> String| match t {
        Term::Var(v) => Term::Var(rename(v)),
        Term::Const(_) => t.clone(),
    };
    match a {
        Atom::Concept(c, t) => Atom::Concept(*c, term(t, rename)),
        Atom::Role(p, s, o) => Atom::Role(*p, term(s, rename), term(o, rename)),
        Atom::Attribute(u, s, v) => {
            let s = term(s, rename);
            let v = match v {
                ValueTerm::Var(x) => ValueTerm::Var(rename(x)),
                ValueTerm::Lit(_) => v.clone(),
            };
            Atom::Attribute(*u, s, v)
        }
    }
}

/// A union of conjunctive queries (all disjuncts share the head arity).
#[derive(Debug, Clone, PartialEq)]
pub struct Ucq {
    /// Disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl Ucq {
    /// Head arity.
    pub fn arity(&self) -> usize {
        self.disjuncts.first().map(|q| q.head.len()).unwrap_or(0)
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// Whether there are no disjuncts.
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }
}

/// Query parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Description.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for QueryParseError {}

fn qerr<T>(m: impl Into<String>) -> Result<T, QueryParseError> {
    Err(QueryParseError { message: m.into() })
}

/// Parses `q(x, y) :- A(x), p(x, y), u(x, "lit")` against a signature.
pub fn parse_cq(src: &str, sig: &Signature) -> Result<ConjunctiveQuery, QueryParseError> {
    let (head_src, body_src) = match src.split_once(":-") {
        Some(parts) => parts,
        None => return qerr("missing `:-`"),
    };
    // Head: name(vars).
    let head_src = head_src.trim();
    let open = head_src.find('(').ok_or(QueryParseError {
        message: "missing `(` in head".into(),
    })?;
    if !head_src.ends_with(')') {
        return qerr("head must end with `)`");
    }
    // lint: allow(R1.index, "`open` is the byte offset of the `(` found above and the trailing `)` is checked, so open+1 <= len-1 and both bounds sit on ASCII char boundaries")
    let head: Vec<String> = head_src[open + 1..head_src.len() - 1]
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();

    // Body: split atoms at top-level commas (commas inside parens belong
    // to the atom).
    let mut atoms_src: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    let mut in_str = false;
    for ch in body_src.chars() {
        match ch {
            '"' => {
                in_str = !in_str;
                cur.push(ch);
            }
            '(' if !in_str => {
                depth += 1;
                cur.push(ch);
            }
            ')' if !in_str => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 && !in_str => {
                atoms_src.push(cur.trim().to_owned());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        atoms_src.push(cur.trim().to_owned());
    }
    if atoms_src.is_empty() {
        return qerr("empty body");
    }

    let parse_term = |s: &str| -> Result<Term, QueryParseError> {
        let s = s.trim();
        if let Some(stripped) = s.strip_prefix('"') {
            match stripped.strip_suffix('"') {
                Some(inner) => Ok(Term::Const(inner.to_owned())),
                None => qerr(format!("unterminated constant `{s}`")),
            }
        } else if s.is_empty() {
            qerr("empty term")
        } else {
            Ok(Term::Var(s.to_owned()))
        }
    };

    let mut atoms = Vec::new();
    for atom_src in &atoms_src {
        let open = atom_src.find('(').ok_or(QueryParseError {
            message: format!("atom `{atom_src}` missing `(`"),
        })?;
        if !atom_src.ends_with(')') {
            return qerr(format!("atom `{atom_src}` must end with `)`"));
        }
        // lint: allow(R1.index, "`open` is the byte offset of the `(` found above, an ASCII char boundary inside the string")
        let pred = atom_src[..open].trim();
        // lint: allow(R1.index, "`open` indexes the `(` found above and the trailing `)` is checked, so open+1 <= len-1 on ASCII boundaries")
        let args: Vec<&str> = atom_src[open + 1..atom_src.len() - 1]
            .split(',')
            .map(str::trim)
            .collect();
        if let Some(c) = sig.find_concept(pred) {
            if args.len() != 1 {
                return qerr(format!("concept `{pred}` takes one argument"));
            }
            atoms.push(Atom::Concept(c, parse_term(args[0])?));
        } else if let Some(p) = sig.find_role(pred) {
            if args.len() != 2 {
                return qerr(format!("role `{pred}` takes two arguments"));
            }
            atoms.push(Atom::Role(p, parse_term(args[0])?, parse_term(args[1])?));
        } else if let Some(u) = sig.find_attribute(pred) {
            if args.len() != 2 {
                return qerr(format!("attribute `{pred}` takes two arguments"));
            }
            let subject = parse_term(args[0])?;
            let value = {
                let s = args[1].trim();
                if let Some(stripped) = s.strip_prefix('"') {
                    match stripped.strip_suffix('"') {
                        Some(inner) => ValueTerm::Lit(Value::Text(inner.to_owned())),
                        None => return qerr(format!("unterminated literal `{s}`")),
                    }
                } else if let Ok(n) = s.parse::<i64>() {
                    ValueTerm::Lit(Value::Int(n))
                } else {
                    ValueTerm::Var(s.to_owned())
                }
            };
            atoms.push(Atom::Attribute(u, subject, value));
        } else {
            return qerr(format!("unknown predicate `{pred}`"));
        }
    }
    let q = ConjunctiveQuery { head, atoms };
    if !q.is_safe() {
        return qerr("unsafe query: head variable missing from body");
    }
    Ok(q)
}

/// Pretty-prints a CQ in the concrete syntax.
pub fn print_cq(q: &ConjunctiveQuery, sig: &Signature) -> String {
    let term = |t: &Term| match t {
        Term::Var(v) => v.clone(),
        Term::Const(c) => format!("{c:?}"),
    };
    let atoms: Vec<String> = q
        .atoms
        .iter()
        .map(|a| match a {
            Atom::Concept(c, t) => format!("{}({})", sig.concept_name(*c), term(t)),
            Atom::Role(p, s, o) => {
                format!("{}({}, {})", sig.role_name(*p), term(s), term(o))
            }
            Atom::Attribute(u, s, v) => {
                let v = match v {
                    ValueTerm::Var(x) => x.clone(),
                    ValueTerm::Lit(l) => l.to_string(),
                };
                format!("{}({}, {})", sig.attribute_name(*u), term(s), v)
            }
        })
        .collect();
    format!("q({}) :- {}", q.head.join(", "), atoms.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::parse_tbox;

    fn sig() -> Signature {
        parse_tbox("concept A B\nrole p\nattribute u").unwrap().sig
    }

    #[test]
    fn parses_mixed_atoms() {
        let q = parse_cq(
            "q(x, n) :- A(x), p(x, y), u(x, n), u(y, 42), B(\"iri/7\")",
            &sig(),
        )
        .unwrap();
        assert_eq!(q.head, vec!["x", "n"]);
        assert_eq!(q.atoms.len(), 5);
        assert!(matches!(&q.atoms[4], Atom::Concept(_, Term::Const(c)) if c == "iri/7"));
        assert!(matches!(
            &q.atoms[3],
            Atom::Attribute(_, _, ValueTerm::Lit(Value::Int(42)))
        ));
    }

    #[test]
    fn rejects_unsafe_and_unknown() {
        assert!(parse_cq("q(z) :- A(x)", &sig()).is_err());
        assert!(parse_cq("q(x) :- Nope(x)", &sig()).is_err());
        assert!(parse_cq("q(x) :- p(x)", &sig()).is_err());
    }

    #[test]
    fn unbound_detection() {
        let q = parse_cq("q(x) :- p(x, y), A(x)", &sig()).unwrap();
        assert!(q.is_unbound("y"));
        assert!(!q.is_unbound("x"));
        let q2 = parse_cq("q(x) :- p(x, y), p(y, z)", &sig()).unwrap();
        assert!(!q2.is_unbound("y"));
        assert!(q2.is_unbound("z"));
    }

    #[test]
    fn canonical_is_stable_under_renaming() {
        let s = sig();
        let q1 = parse_cq("q(x) :- A(x), p(x, y)", &s).unwrap();
        let q2 = parse_cq("q(foo) :- p(foo, bar), A(foo)", &s).unwrap();
        assert_eq!(q1.canonical(), q2.canonical());
    }

    #[test]
    fn substitution_renames_and_constants() {
        let s = sig();
        let q = parse_cq("q(x) :- p(x, y)", &s).unwrap();
        let mut subst = HashMap::new();
        subst.insert("y".to_owned(), Term::Const("iri/1".into()));
        let q2 = q.substitute(&subst);
        assert!(matches!(&q2.atoms[0], Atom::Role(_, _, Term::Const(c)) if c == "iri/1"));
    }

    #[test]
    fn roundtrip_print() {
        let s = sig();
        let q = parse_cq("q(x) :- A(x), p(x, y), u(x, n)", &s).unwrap();
        let printed = print_cq(&q, &s);
        let q2 = parse_cq(&printed, &s).unwrap();
        assert_eq!(q.canonical(), q2.canonical());
    }
}
