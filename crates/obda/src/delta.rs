//! The **write subsystem**: [`AboxDelta`] batches applied incrementally.
//!
//! The paper's deployments are operational settings where the extensional
//! data changes continuously. Before this module every ABox mutation was
//! wholesale: bump an epoch, drop the [`AboxIndex`], the materialized
//! ABox and every memoized NDL view extent, rebuild from scratch on the
//! next query. A delta batch instead:
//!
//! 1. **patches the store** — new assertions are appended to the ABox
//!    (deduplicated) and spliced into the index's subject/object hash
//!    buckets; removed assertions are dropped from both, with hash-bucket
//!    keys deleted when their bucket empties (the NDL `∃q` /
//!    attribute-domain extents are derived from bucket *keys*);
//! 2. **maintains the view memo** — inserts are monotone, so every
//!    memoized extent is patched in place by unioning in the new tuples
//!    the batch contributes to that view. Deletes are not *naively*
//!    sound to patch (removing `p(a,b)` need not remove `a` from `∃p` —
//!    another `p(a,c)` may remain), so each tuple a delete touches is
//!    *rechecked* against the already-patched [`AboxIndex`]: the tuple
//!    is evicted from the extent only when no member predicate of the
//!    view still supports it — exact, and O(1) per (tuple, member) via
//!    the index's hash buckets. Where no backing index exists (the
//!    sharded coordinator's *merged* memo spans all shards), a touched
//!    extent is invalidated instead and counted on the
//!    `delta_fallback` path;
//! 3. **keeps rewritings** — the rewrite cache is keyed on the TBox
//!    epoch only; a data-only change bumps the ABox *version* (the
//!    second component of [`DataEpoch`]) and leaves every cached
//!    rewriting valid.
//!
//! Batch semantics: within one [`AboxDelta`], **deletes apply first,
//! then inserts** — a batch carrying both for the same fact leaves it
//! present. Duplicate inserts and deletes of absent facts are no-ops
//! (only actually-changed rows count toward `delta_rows`).
//!
//! `QUONTO_WRITE_FALLBACK=1` disables incremental memo maintenance
//! entirely: every batch invalidates every memoized extent (each counted
//! as a fallback). This is the A/B lever the A10 experiment uses to
//! price the incremental path against rebuild-on-next-read.

use std::sync::{Arc, Mutex};

use obda_dllite::{
    Abox, Assertion, AttributeId, BasicConcept, BasicRole, ConceptId, IndividualId, RoleId,
    Signature, Value,
};
use quonto::sync::lock_or_recover;
use quonto::Classification;

use crate::answer::AboxIndex;
use crate::error::ObdaError;
use crate::query::QueryParseError;
use crate::rewrite::ndl::{DataEpoch, ExtTerm, ViewMemo, ViewPred};
use crate::rewrite::presto::{attr_view_members, concept_view_members, role_view_members};

/// One statement of a delta batch, with predicates by name (resolved
/// against the engine's signature at apply time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaStatement {
    /// `A(c)`: a concept membership.
    Unary {
        /// Concept name.
        predicate: String,
        /// Individual IRI.
        individual: String,
    },
    /// `p(c, d)` or `U(c, v)`: a role or attribute assertion — which of
    /// the two is decided by what `predicate` resolves to.
    Binary {
        /// Role or attribute name.
        predicate: String,
        /// Subject IRI.
        subject: String,
        /// Object: an IRI (role; or attribute, read as a text value) or
        /// an explicit data value (attribute only).
        object: DeltaObject,
    },
}

/// The object position of a binary delta statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaObject {
    /// An IRI — or, when the predicate resolves to an attribute, a text
    /// value.
    Iri(String),
    /// An explicit data value (attribute assertions only).
    Value(Value),
}

impl DeltaStatement {
    /// A concept statement `predicate(individual)`.
    pub fn unary(predicate: impl Into<String>, individual: impl Into<String>) -> DeltaStatement {
        DeltaStatement::Unary {
            predicate: predicate.into(),
            individual: individual.into(),
        }
    }

    /// A binary statement with an IRI/text object.
    pub fn binary(
        predicate: impl Into<String>,
        subject: impl Into<String>,
        object: impl Into<String>,
    ) -> DeltaStatement {
        DeltaStatement::Binary {
            predicate: predicate.into(),
            subject: subject.into(),
            object: DeltaObject::Iri(object.into()),
        }
    }

    /// A binary statement with an explicit data value.
    pub fn binary_value(
        predicate: impl Into<String>,
        subject: impl Into<String>,
        value: Value,
    ) -> DeltaStatement {
        DeltaStatement::Binary {
            predicate: predicate.into(),
            subject: subject.into(),
            object: DeltaObject::Value(value),
        }
    }
}

/// A batch of ABox changes. Deletes apply before inserts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AboxDelta {
    /// Assertions to add.
    pub inserts: Vec<DeltaStatement>,
    /// Assertions to remove.
    pub deletes: Vec<DeltaStatement>,
}

impl AboxDelta {
    /// An empty batch.
    pub fn new() -> AboxDelta {
        AboxDelta::default()
    }

    /// Adds an insert statement (builder style).
    pub fn insert(mut self, stmt: DeltaStatement) -> AboxDelta {
        self.inserts.push(stmt);
        self
    }

    /// Adds a delete statement (builder style).
    pub fn delete(mut self, stmt: DeltaStatement) -> AboxDelta {
        self.deletes.push(stmt);
        self
    }

    /// Total statement count.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when the batch carries no statements.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// What applying a batch actually changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Assertions newly added (duplicates of existing facts excluded).
    pub inserted: usize,
    /// Assertions actually removed (absent facts excluded).
    pub deleted: usize,
    /// Memoized view extents invalidated instead of patched (the
    /// unsound-to-patch delete path, or `QUONTO_WRITE_FALLBACK=1`).
    pub fallbacks: u64,
}

impl DeltaSummary {
    /// Accumulates a per-shard summary into a batch total.
    pub(crate) fn absorb(&mut self, other: DeltaSummary) {
        self.inserted += other.inserted;
        self.deleted += other.deleted;
        self.fallbacks += other.fallbacks;
    }
}

// Registry counters for the write path, resolved once: applied batches,
// changed assertions, extents invalidated instead of patched.
obda_obs::counter_handle!(pub(crate) fn delta_applied_total, "delta_applied");
obda_obs::counter_handle!(pub(crate) fn delta_rows_total, "delta_rows");
obda_obs::counter_handle!(pub(crate) fn delta_fallback_total, "delta_fallback");

/// Publishes a finished batch to the registry counters.
pub(crate) fn record_batch(summary: &DeltaSummary) {
    delta_applied_total().add(1);
    delta_rows_total().add((summary.inserted + summary.deleted) as u64);
    delta_fallback_total().add(summary.fallbacks);
}

/// A delta statement with its predicate resolved against a signature,
/// individuals still by name (interning is per-target ABox — the
/// sharded engine interns each fact in its subject's shard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ResolvedFact {
    Concept(ConceptId, String),
    Role(RoleId, String, String),
    Attr(AttributeId, String, Value),
}

impl ResolvedFact {
    /// The subject IRI (shard routing key).
    pub(crate) fn subject(&self) -> &str {
        match self {
            ResolvedFact::Concept(_, s)
            | ResolvedFact::Role(_, s, _)
            | ResolvedFact::Attr(_, s, _) => s,
        }
    }
}

fn unknown(kind: &str, name: &str) -> ObdaError {
    ObdaError::Query(QueryParseError {
        message: format!("unknown {kind} `{name}` in delta statement"),
    })
}

/// Resolves one statement's predicate. A binary statement's object sort
/// follows the predicate: role → IRI, attribute → value (a string
/// object is read as a text value).
pub(crate) fn resolve_statement(
    sig: &Signature,
    stmt: &DeltaStatement,
) -> Result<ResolvedFact, ObdaError> {
    match stmt {
        DeltaStatement::Unary {
            predicate,
            individual,
        } => sig
            .find_concept(predicate)
            .map(|c| ResolvedFact::Concept(c, individual.clone()))
            .ok_or_else(|| unknown("concept", predicate)),
        DeltaStatement::Binary {
            predicate,
            subject,
            object,
        } => {
            if let Some(p) = sig.find_role(predicate) {
                return match object {
                    DeltaObject::Iri(o) => Ok(ResolvedFact::Role(p, subject.clone(), o.clone())),
                    DeltaObject::Value(_) => Err(ObdaError::Query(QueryParseError {
                        message: format!("role `{predicate}` takes an IRI object, got a value"),
                    })),
                };
            }
            if let Some(u) = sig.find_attribute(predicate) {
                let v = match object {
                    DeltaObject::Iri(s) => Value::Text(s.clone()),
                    DeltaObject::Value(v) => v.clone(),
                };
                return Ok(ResolvedFact::Attr(u, subject.clone(), v));
            }
            Err(unknown("role or attribute", predicate))
        }
    }
}

/// Resolves a whole batch against `sig`. Fails atomically — a batch
/// with any unknown predicate changes nothing.
pub(crate) fn resolve_delta(
    sig: &Signature,
    delta: &AboxDelta,
) -> Result<(Vec<ResolvedFact>, Vec<ResolvedFact>), ObdaError> {
    let inserts = delta
        .inserts
        .iter()
        .map(|s| resolve_statement(sig, s))
        .collect::<Result<Vec<_>, _>>()?;
    let deletes = delta
        .deletes
        .iter()
        .map(|s| resolve_statement(sig, s))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((inserts, deletes))
}

/// The assertions a batch actually changed, for memo maintenance.
#[derive(Debug, Default)]
pub(crate) struct AppliedBatch {
    /// Newly added assertions ([`Abox::add`] returned `true`).
    pub(crate) inserted: Vec<Assertion>,
    /// Actually removed assertions ([`Abox::remove`] returned `true`).
    pub(crate) deleted: Vec<Assertion>,
}

fn to_assertion(abox: &mut Abox, fact: &ResolvedFact) -> Assertion {
    match fact {
        ResolvedFact::Concept(c, s) => Assertion::Concept(*c, abox.individual(s)),
        ResolvedFact::Role(p, s, o) => {
            let si = abox.individual(s);
            let oi = abox.individual(o);
            Assertion::Role(*p, si, oi)
        }
        ResolvedFact::Attr(u, s, v) => Assertion::Attribute(*u, abox.individual(s), v.clone()),
    }
}

/// Looks a fact up without interning (deletes must not mint ids).
fn find_assertion(abox: &Abox, fact: &ResolvedFact) -> Option<Assertion> {
    match fact {
        ResolvedFact::Concept(c, s) => Some(Assertion::Concept(*c, abox.find_individual(s)?)),
        ResolvedFact::Role(p, s, o) => Some(Assertion::Role(
            *p,
            abox.find_individual(s)?,
            abox.find_individual(o)?,
        )),
        ResolvedFact::Attr(u, s, v) => Some(Assertion::Attribute(
            *u,
            abox.find_individual(s)?,
            v.clone(),
        )),
    }
}

/// Applies a resolved batch to one (ABox, index) pair in place:
/// deletes first, then inserts, the index patched fact by fact.
pub(crate) fn apply_to_store(
    abox: &mut Abox,
    index: &mut AboxIndex,
    inserts: &[ResolvedFact],
    deletes: &[ResolvedFact],
) -> AppliedBatch {
    let mut applied = AppliedBatch::default();
    for fact in deletes {
        let Some(a) = find_assertion(abox, fact) else {
            continue; // unknown individual ⇒ the fact cannot be present
        };
        if abox.remove(&a) {
            index.remove_assertion(&a);
            applied.deleted.push(a);
        }
    }
    for fact in inserts {
        let a = to_assertion(abox, fact);
        if abox.add(a.clone()) {
            index.insert_assertion(&a);
            applied.inserted.push(a);
        }
    }
    applied
}

// ---------------------------------------------------------------------------
// View-memo maintenance.
// ---------------------------------------------------------------------------

/// Whether a deleted assertion can shrink the extent of a concept view.
fn concept_view_hit(members: &[BasicConcept], a: &Assertion) -> bool {
    members.iter().any(|m| match (m, a) {
        (BasicConcept::Atomic(c), Assertion::Concept(ac, _)) => c == ac,
        (BasicConcept::Exists(q), Assertion::Role(p, _, _)) => q.role() == *p,
        (BasicConcept::AttrDomain(u), Assertion::Attribute(au, _, _)) => u == au,
        _ => false,
    })
}

/// The individuals a batch of assertions contributes to (or withdraws
/// from) a concept view — one entry per matching (fact, member) pair.
fn concept_view_touched(members: &[BasicConcept], facts: &[Assertion]) -> Vec<IndividualId> {
    let mut out = Vec::new();
    for a in facts {
        for m in members {
            let id = match (m, a) {
                (BasicConcept::Atomic(c), Assertion::Concept(ac, i)) if c == ac => Some(*i),
                (BasicConcept::Exists(q), Assertion::Role(p, s, o)) if q.role() == *p => {
                    Some(if q.is_inverse() { *o } else { *s })
                }
                (BasicConcept::AttrDomain(u), Assertion::Attribute(au, s, _)) if u == au => {
                    Some(*s)
                }
                _ => None,
            };
            if let Some(i) = id {
                out.push(i);
            }
        }
    }
    out
}

/// Whether `i` still satisfies some member of a concept view, per the
/// post-batch index. Each probe is a hash lookup; `∃q` and
/// attribute-domain membership read bucket *keys*, which
/// [`AboxIndex::remove_assertion`] keeps exact by dropping emptied
/// buckets.
fn concept_still_member(members: &[BasicConcept], index: &AboxIndex, i: IndividualId) -> bool {
    members.iter().any(|m| match m {
        BasicConcept::Atomic(c) => index.concepts.get(&c.0).is_some_and(|f| f.set.contains(&i)),
        BasicConcept::Exists(q) => index.roles.get(&q.role().0).is_some_and(|f| {
            if q.is_inverse() {
                f.by_object.contains_key(&i)
            } else {
                f.by_subject.contains_key(&i)
            }
        }),
        BasicConcept::AttrDomain(u) => index
            .attributes
            .get(&u.0)
            .is_some_and(|f| f.by_subject.contains_key(&i)),
    })
}

/// The oriented pairs a batch of assertions contributes to (or
/// withdraws from) a role view.
fn role_view_touched(
    members: &[BasicRole],
    facts: &[Assertion],
) -> Vec<(IndividualId, IndividualId)> {
    let mut out = Vec::new();
    for a in facts {
        let Assertion::Role(p, s, o) = a else {
            continue;
        };
        for m in members {
            if m.role() != *p {
                continue;
            }
            out.push(if m.is_inverse() { (*o, *s) } else { (*s, *o) });
        }
    }
    out
}

/// Whether the oriented pair `(s, o)` is still derivable from some
/// member of a role view, per the post-batch index.
fn role_pair_still_member(
    members: &[BasicRole],
    index: &AboxIndex,
    s: IndividualId,
    o: IndividualId,
) -> bool {
    members.iter().any(|m| {
        let (a, b) = if m.is_inverse() { (o, s) } else { (s, o) };
        index
            .roles
            .get(&m.role().0)
            .is_some_and(|f| f.by_subject.get(&a).is_some_and(|objs| objs.contains(&b)))
    })
}

/// The (subject, value) pairs a batch of assertions contributes to (or
/// withdraws from) an attribute view.
fn attr_view_touched(members: &[AttributeId], facts: &[Assertion]) -> Vec<(IndividualId, Value)> {
    let mut out = Vec::new();
    for a in facts {
        let Assertion::Attribute(u, s, v) = a else {
            continue;
        };
        if members.contains(u) {
            out.push((*s, v.clone()));
        }
    }
    out
}

/// Whether `(s, v)` is still asserted under some member of an attribute
/// view, per the post-batch index.
fn attr_pair_still_member(
    members: &[AttributeId],
    index: &AboxIndex,
    s: IndividualId,
    v: &Value,
) -> bool {
    members.iter().any(|u| {
        index
            .attributes
            .get(&u.0)
            .is_some_and(|f| f.by_subject.get(&s).is_some_and(|vals| vals.contains(v)))
    })
}

/// The members a newly inserted assertion adds to a concept view.
fn concept_view_additions(
    members: &[BasicConcept],
    inserted: &[Assertion],
    abox: &Abox,
) -> Vec<String> {
    concept_view_touched(members, inserted)
        .into_iter()
        .map(|i| abox.individual_name(i).to_string())
        .collect()
}

/// The pairs a newly inserted assertion adds to a role view.
fn role_view_additions(
    members: &[BasicRole],
    inserted: &[Assertion],
    abox: &Abox,
) -> Vec<(String, ExtTerm)> {
    role_view_touched(members, inserted)
        .into_iter()
        .map(|(s, o)| {
            (
                abox.individual_name(s).to_string(),
                ExtTerm::Iri(abox.individual_name(o).to_string()),
            )
        })
        .collect()
}

/// The pairs a newly inserted assertion adds to an attribute view.
fn attr_view_additions(
    members: &[AttributeId],
    inserted: &[Assertion],
    abox: &Abox,
) -> Vec<(String, ExtTerm)> {
    attr_view_touched(members, inserted)
        .into_iter()
        .map(|(s, v)| (abox.individual_name(s).to_string(), ExtTerm::Val(v)))
        .collect()
}

/// Maintains a [`ViewMemo`] across an applied batch and restamps it at
/// `new_epoch`. Returns the number of extents invalidated instead of
/// patched (`delta_fallback`).
///
/// Only a memo that is exactly one ABox version behind (same TBox
/// epoch) is patched; anything else was already stale and is simply
/// cleared — the next query rebuilds lazily, no fallback counted.
/// On the patch path, per memoized view:
///
/// * tuples the batch's deletes touch are *rechecked* against `index`
///   (the already-patched post-batch [`AboxIndex`]) and evicted only
///   when no member predicate still supports them — exact maintenance,
///   O(1) hash probes per (tuple, member). With `index: None` (the
///   coordinator's merged memo, which has no single backing store) a
///   delete touching any member predicate invalidates the extent
///   instead, counted as a fallback;
/// * the tuples the batch's inserts contribute are unioned in;
/// * an untouched extent is kept as-is.
///
/// Patched extents are mutated *in place* ([`ViewMemo::take`] +
/// `Arc::make_mut`): the memo's reference is taken out of the map
/// first, so unless an in-flight query still holds the pre-batch
/// snapshot (which then keeps its consistent copy), no clone of the
/// extent is made — the memo cost of a batch is O(batch · log extent),
/// independent of the ABox size.
pub(crate) fn maintain_memo(
    memo: &Mutex<ViewMemo>,
    new_epoch: DataEpoch,
    applied: &AppliedBatch,
    cls: &Classification,
    abox: &Abox,
    index: Option<&AboxIndex>,
) -> u64 {
    let mut m = lock_or_recover(memo);
    let expected = DataEpoch {
        tbox: new_epoch.tbox,
        abox: new_epoch.abox.wrapping_sub(1),
    };
    if m.epoch() != expected {
        m.clear();
        m.set_epoch(new_epoch);
        return 0;
    }
    let mut fallbacks = 0u64;
    if quonto::env::write_fallback() {
        fallbacks = m.preds().len() as u64;
        m.clear();
        m.set_epoch(new_epoch);
        return fallbacks;
    }
    for pred in m.preds() {
        match &pred {
            ViewPred::Concept(target) => {
                let members = concept_view_members(cls, *target);
                let mut evicted: Vec<String> = Vec::new();
                if let Some(ix) = index {
                    let mut affected = concept_view_touched(&members, &applied.deleted);
                    affected.sort_unstable();
                    affected.dedup();
                    for i in affected {
                        if !concept_still_member(&members, ix, i) {
                            evicted.push(abox.individual_name(i).to_string());
                        }
                    }
                } else if applied
                    .deleted
                    .iter()
                    .any(|a| concept_view_hit(&members, a))
                {
                    m.remove(&pred);
                    fallbacks += 1;
                    continue;
                }
                let additions = concept_view_additions(&members, &applied.inserted, abox);
                if additions.is_empty() && evicted.is_empty() {
                    continue;
                }
                let Some(mut arc) = m.take(&pred) else {
                    continue;
                };
                let ext = Arc::make_mut(&mut arc);
                for n in evicted {
                    ext.remove_member(&n);
                }
                for n in additions {
                    ext.add_member(n);
                }
                m.insert(pred, arc);
            }
            ViewPred::Role(target) => {
                let members = role_view_members(cls, *target);
                let mut evicted: Vec<(String, ExtTerm)> = Vec::new();
                if let Some(ix) = index {
                    let mut affected = role_view_touched(&members, &applied.deleted);
                    affected.sort_unstable();
                    affected.dedup();
                    for (s, o) in affected {
                        if !role_pair_still_member(&members, ix, s, o) {
                            evicted.push((
                                abox.individual_name(s).to_string(),
                                ExtTerm::Iri(abox.individual_name(o).to_string()),
                            ));
                        }
                    }
                } else {
                    let hit = applied.deleted.iter().any(
                        |a| matches!(a, Assertion::Role(p, _, _) if members.iter().any(|q| q.role() == *p)),
                    );
                    if hit {
                        m.remove(&pred);
                        fallbacks += 1;
                        continue;
                    }
                }
                let additions = role_view_additions(&members, &applied.inserted, abox);
                if additions.is_empty() && evicted.is_empty() {
                    continue;
                }
                let Some(mut arc) = m.take(&pred) else {
                    continue;
                };
                let ext = Arc::make_mut(&mut arc);
                for (s, o) in &evicted {
                    ext.remove_pair(s, o);
                }
                for (s, o) in additions {
                    ext.add_pair(s, o);
                }
                m.insert(pred, arc);
            }
            ViewPred::Attr(target) => {
                let members = attr_view_members(cls, *target);
                let mut evicted: Vec<(String, ExtTerm)> = Vec::new();
                if let Some(ix) = index {
                    for (s, v) in attr_view_touched(&members, &applied.deleted) {
                        if !attr_pair_still_member(&members, ix, s, &v) {
                            evicted.push((abox.individual_name(s).to_string(), ExtTerm::Val(v)));
                        }
                    }
                } else {
                    let hit = applied
                        .deleted
                        .iter()
                        .any(|a| matches!(a, Assertion::Attribute(u, _, _) if members.contains(u)));
                    if hit {
                        m.remove(&pred);
                        fallbacks += 1;
                        continue;
                    }
                }
                let additions = attr_view_additions(&members, &applied.inserted, abox);
                if additions.is_empty() && evicted.is_empty() {
                    continue;
                }
                let Some(mut arc) = m.take(&pred) else {
                    continue;
                };
                let ext = Arc::make_mut(&mut arc);
                for (s, v) in &evicted {
                    ext.remove_pair(s, v);
                }
                for (s, v) in additions {
                    ext.add_pair(s, v);
                }
                m.insert(pred, arc);
            }
        }
    }
    m.set_epoch(new_epoch);
    fallbacks
}

/// Coordinator-tier variant of [`maintain_memo`] for the sharded
/// engine's *merged*-extent memo, which has no single backing ABox: the
/// resolved batch (names inline) is interned into a scratch ABox and
/// replayed through [`maintain_memo`] with no recheck index (there is
/// no merged [`AboxIndex`] to probe). This over-approximates the
/// applied batch — a duplicate insert patches an already-present tuple
/// (idempotent: extents deduplicate) and any delete invalidates the
/// views its predicate touches (over-invalidation, never staleness),
/// counted on the `delta_fallback` path.
pub(crate) fn maintain_merged_memo(
    memo: &Mutex<ViewMemo>,
    new_epoch: DataEpoch,
    inserts: &[ResolvedFact],
    deletes: &[ResolvedFact],
    cls: &Classification,
) -> u64 {
    let mut scratch = Abox::new();
    let applied = AppliedBatch {
        inserted: inserts
            .iter()
            .map(|f| to_assertion(&mut scratch, f))
            .collect(),
        deleted: deletes
            .iter()
            .map(|f| to_assertion(&mut scratch, f))
            .collect(),
    };
    maintain_memo(memo, new_epoch, &applied, cls, &scratch, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::Tbox;

    fn sig3() -> Signature {
        let mut t = Tbox::default();
        t.sig.concept("A");
        t.sig.role("p");
        t.sig.attribute("u");
        t.sig
    }

    #[test]
    fn resolution_follows_the_predicate_sort() {
        let sig = sig3();
        let c = resolve_statement(&sig, &DeltaStatement::unary("A", "x")).unwrap();
        assert!(matches!(c, ResolvedFact::Concept(_, ref s) if s == "x"));
        let r = resolve_statement(&sig, &DeltaStatement::binary("p", "x", "y")).unwrap();
        assert!(matches!(r, ResolvedFact::Role(_, _, ref o) if o == "y"));
        // A string object of an *attribute* predicate is a text value.
        let a = resolve_statement(&sig, &DeltaStatement::binary("u", "x", "hello")).unwrap();
        assert!(matches!(a, ResolvedFact::Attr(_, _, Value::Text(ref v)) if v == "hello"));
        let ai = resolve_statement(&sig, &DeltaStatement::binary_value("u", "x", Value::Int(7)))
            .unwrap();
        assert!(matches!(ai, ResolvedFact::Attr(_, _, Value::Int(7))));

        assert!(resolve_statement(&sig, &DeltaStatement::unary("Nope", "x")).is_err());
        assert!(resolve_statement(&sig, &DeltaStatement::binary("Nope", "x", "y")).is_err());
        assert!(
            resolve_statement(&sig, &DeltaStatement::binary_value("p", "x", Value::Int(1)))
                .is_err(),
            "a role must reject a value object"
        );
    }

    #[test]
    fn apply_patches_store_and_index_consistently() {
        let sig = sig3();
        let mut abox = Abox::new();
        let mut index = AboxIndex::build(&abox);
        let delta = AboxDelta::new()
            .insert(DeltaStatement::unary("A", "x"))
            .insert(DeltaStatement::binary("p", "x", "y"))
            .insert(DeltaStatement::binary("p", "x", "y")) // duplicate
            .insert(DeltaStatement::binary_value("u", "y", Value::Int(3)));
        let (ins, del) = resolve_delta(&sig, &delta).unwrap();
        let applied = apply_to_store(&mut abox, &mut index, &ins, &del);
        assert_eq!(applied.inserted.len(), 3, "duplicate insert is a no-op");
        assert_eq!(abox.len(), 3);
        // The patched index must equal a from-scratch rebuild in content.
        assert_eq!(index.num_facts(), AboxIndex::build(&abox).num_facts());

        // Delete the role fact; its subject bucket must disappear.
        let d2 = AboxDelta::new()
            .delete(DeltaStatement::binary("p", "x", "y"))
            .delete(DeltaStatement::binary("p", "ghost", "y")); // absent subject
        let (ins2, del2) = resolve_delta(&sig, &d2).unwrap();
        let applied2 = apply_to_store(&mut abox, &mut index, &ins2, &del2);
        assert_eq!(applied2.deleted.len(), 1);
        assert_eq!(index.num_facts(), 2);
        assert_eq!(index.num_facts(), AboxIndex::build(&abox).num_facts());
    }
}
