//! Structured errors for the OBDA facade.
//!
//! Every SQL-level failure carries the pipeline phase it happened in
//! (and, where one exists, the query fragment being processed), so a
//! serving layer can map errors to distinct machine-readable kinds
//! (`sql.unfold`, `sql.materialize`, …) instead of flattening
//! everything into one string. There is deliberately **no**
//! `From<SqlError>` impl: each conversion site names its phase.

use obda_sqlstore::SqlError;

use crate::query::QueryParseError;

/// The pipeline phase an SQL-level error is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorPhase {
    /// Mapping validation against the source schema (at load time).
    Validate,
    /// Source loading / scenario setup.
    Load,
    /// ABox materialization from the mappings.
    Materialize,
    /// Unfolding a rewriting into flat SQL.
    Unfold,
    /// Executing SQL / evaluating the rewriting over the data.
    Evaluate,
    /// The knowledge-base consistency check.
    Consistency,
}

impl ErrorPhase {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorPhase::Validate => "validate",
            ErrorPhase::Load => "load",
            ErrorPhase::Materialize => "materialize",
            ErrorPhase::Unfold => "unfold",
            ErrorPhase::Evaluate => "evaluate",
            ErrorPhase::Consistency => "consistency",
        }
    }
}

/// Errors surfaced by the system facade.
#[derive(Debug)]
pub enum ObdaError {
    /// Query text failed to parse.
    Query(QueryParseError),
    /// SQL-level failure, attributed to a pipeline phase.
    Sql {
        /// Where in the pipeline it failed.
        phase: ErrorPhase,
        /// The query/SQL fragment being processed, when known.
        fragment: Option<String>,
        /// The underlying store error.
        source: SqlError,
    },
    /// The operation is not supported by this engine configuration
    /// (e.g. an ABox delta against a virtual-mode system).
    Unsupported {
        /// What was attempted, for the error text.
        what: String,
    },
}

impl ObdaError {
    /// An SQL error attributed to `phase` with no fragment.
    pub fn sql(phase: ErrorPhase, source: SqlError) -> ObdaError {
        ObdaError::Sql {
            phase,
            fragment: None,
            source,
        }
    }

    /// An SQL error attributed to `phase` while processing `fragment`.
    pub fn sql_in(phase: ErrorPhase, fragment: impl Into<String>, source: SqlError) -> ObdaError {
        ObdaError::Sql {
            phase,
            fragment: Some(fragment.into()),
            source,
        }
    }

    /// An unsupported-operation error.
    pub fn unsupported(what: impl Into<String>) -> ObdaError {
        ObdaError::Unsupported { what: what.into() }
    }

    /// Machine-readable error kind for protocol responses.
    pub fn kind(&self) -> &'static str {
        match self {
            ObdaError::Query(_) => "parse",
            ObdaError::Unsupported { .. } => "unsupported",
            ObdaError::Sql { phase, .. } => match phase {
                ErrorPhase::Validate => "sql.validate",
                ErrorPhase::Load => "sql.load",
                ErrorPhase::Materialize => "sql.materialize",
                ErrorPhase::Unfold => "sql.unfold",
                ErrorPhase::Evaluate => "sql.evaluate",
                ErrorPhase::Consistency => "sql.consistency",
            },
        }
    }

    /// The failing phase (`None` for parse errors).
    pub fn phase(&self) -> Option<ErrorPhase> {
        match self {
            ObdaError::Query(_) | ObdaError::Unsupported { .. } => None,
            ObdaError::Sql { phase, .. } => Some(*phase),
        }
    }
}

impl std::fmt::Display for ObdaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObdaError::Query(e) => write!(f, "query error: {e}"),
            ObdaError::Sql {
                phase,
                fragment: Some(frag),
                source,
            } => write!(f, "sql error during {} ({frag}): {source}", phase.as_str()),
            ObdaError::Sql {
                phase,
                fragment: None,
                source,
            } => write!(f, "sql error during {}: {source}", phase.as_str()),
            ObdaError::Unsupported { what } => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for ObdaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObdaError::Query(_) | ObdaError::Unsupported { .. } => None,
            ObdaError::Sql { source, .. } => Some(source),
        }
    }
}

impl From<QueryParseError> for ObdaError {
    fn from(e: QueryParseError) -> Self {
        ObdaError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display_carry_the_phase() {
        let e = ObdaError::sql_in(
            ErrorPhase::Unfold,
            "q(x) :- Student(x)",
            SqlError::new("unknown column `x`"),
        );
        assert_eq!(e.kind(), "sql.unfold");
        assert_eq!(e.phase(), Some(ErrorPhase::Unfold));
        let text = e.to_string();
        assert!(text.contains("during unfold"));
        assert!(text.contains("q(x) :- Student(x)"));
        assert!(text.contains("unknown column"));

        let p = ObdaError::Query(QueryParseError {
            message: "nope".into(),
        });
        assert_eq!(p.kind(), "parse");
        assert_eq!(p.phase(), None);

        let bare = ObdaError::sql(ErrorPhase::Materialize, SqlError::new("boom"));
        assert_eq!(bare.kind(), "sql.materialize");
        assert_eq!(bare.to_string(), "sql error during materialize: boom");

        let u = ObdaError::unsupported("ABox writes on a virtual-mode system");
        assert_eq!(u.kind(), "unsupported");
        assert_eq!(u.phase(), None);
        assert!(u.to_string().contains("virtual-mode"));
    }

    #[test]
    fn source_chains_to_the_sql_error() {
        use std::error::Error as _;
        let e = ObdaError::sql(ErrorPhase::Evaluate, SqlError::new("boom"));
        assert!(e.source().is_some());
    }
}
