//! **EBox engine**: inference, write-path revalidation, and state
//! plumbing for the extensional constraints of
//! [`obda_mapping::Ebox`] (Hovland et al., PAPERS.md).
//!
//! The mapping crate owns the pure constraint *type*; this module owns
//! everything that needs the engine's data structures:
//!
//! * [`infer_from_index`] scans a materialized [`AboxIndex`] and
//!   records, for every TBox subsumption `B ⊑ S` the rewriter could
//!   expand, whether the *asserted* extensions also satisfy
//!   `B ⊑ₑ S` — plus empty extensions and exact-extension annotations;
//! * [`infer_from_mappings`] derives the static, schema-level subset
//!   for virtual mode: unmapped predicates are provably empty, and
//!   mapping sources that are syntactic specializations of another
//!   predicate's sources yield inclusions that hold for *every* source
//!   database state;
//! * [`revalidate`] keeps an inferred EBox sound across
//!   `apply_delta`: each applied fact is probed against the
//!   constraints that read its predicate, and violated constraints are
//!   retracted (counted in the `ebox_retracted` registry counter) so
//!   later rewritings fall back toward unconstrained — never unsound —
//!   pruning.
//!
//! Soundness note: every pruning decision the rewrite layer makes from
//! these constraints (see `crate::rewrite::eboxprune`) is justified at
//! the *evaluation* level — both the disjunct/view/union pruning rules
//! and the constraints themselves speak only about asserted data, which
//! is exactly what every evaluation path (index joins, view extents,
//! SQL unions) ranges over. The one rule that additionally reasons
//! about certain answers (the exact-predicate short-circuit) carries
//! its own gate, documented there.

use std::collections::HashSet;
use std::sync::Arc;

use obda_dllite::{Assertion, BasicConcept, BasicRole, IndividualId, NamedPredicate, Tbox, Value};
use obda_mapping::{Ebox, EboxInclusion, EboxPredicate, MappingSet};
use obda_sqlstore::Database;
use quonto::Classification;

use crate::answer::AboxIndex;
use crate::delta::AppliedBatch;
use crate::rewrite::presto::{attr_view_members, concept_view_members, role_view_members};

/// How the engine acquires and applies extensional constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EboxMode {
    /// No EBox: rewritings are pruned by logical subsumption only.
    #[default]
    Off,
    /// Static constraints only: mapping-level containments and
    /// scenario metadata (virtual/OBDA engines); a plain ABox engine
    /// has none and behaves as `Off`.
    On,
    /// `On` plus data-driven inference: scan the ABox index for
    /// containments that hold in the current data, revalidating them
    /// incrementally on every write batch.
    Infer,
}

impl EboxMode {
    pub fn as_str(self) -> &'static str {
        match self {
            EboxMode::Off => "off",
            EboxMode::On => "on",
            EboxMode::Infer => "infer",
        }
    }

    /// Whether any EBox machinery runs at all.
    pub fn enabled(self) -> bool {
        self != EboxMode::Off
    }
}

impl std::str::FromStr for EboxMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" | "0" => Ok(EboxMode::Off),
            "on" | "1" => Ok(EboxMode::On),
            "infer" => Ok(EboxMode::Infer),
            other => Err(format!(
                "unknown ebox mode `{other}` (expected `off`, `on`, or `infer`)"
            )),
        }
    }
}

impl std::fmt::Display for EboxMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// Registry counters for the pruning hooks and the write path.
obda_obs::counter_handle!(pub(crate) fn ebox_pruned_disjuncts_total, "ebox_pruned_disjuncts");
obda_obs::counter_handle!(pub(crate) fn ebox_pruned_views_total, "ebox_pruned_views");
obda_obs::counter_handle!(pub(crate) fn ebox_pruned_unions_total, "ebox_pruned_unions");
obda_obs::counter_handle!(pub(crate) fn ebox_retracted_total, "ebox_retracted");

/// The engine-side EBox state: the current constraint set (shared so a
/// query snapshot is an `Arc` clone) and a generation stamp bumped on
/// every retraction, which invalidates rewrite-cache entries computed
/// under the stronger constraint set.
#[derive(Debug, Clone, Default)]
pub(crate) struct EboxState {
    pub(crate) ebox: Arc<Ebox>,
    pub(crate) generation: u64,
    /// Total constraints retracted over this engine's lifetime.
    pub(crate) retracted: u64,
}

impl EboxState {
    pub(crate) fn new(ebox: Ebox) -> EboxState {
        EboxState {
            ebox: Arc::new(ebox),
            generation: 0,
            retracted: 0,
        }
    }

    /// The snapshot queries prune against: `None` when there is nothing
    /// to prune with, so the hot path skips the EBox pass entirely.
    pub(crate) fn snapshot(&self) -> Option<Arc<Ebox>> {
        if self.ebox.is_empty() {
            None
        } else {
            Some(Arc::clone(&self.ebox))
        }
    }
}

// ---------------------------------------------------------------------------
// Extension probes over the ABox index.
// ---------------------------------------------------------------------------

/// Whether `i` is in the asserted extension of the basic concept `b`.
pub(crate) fn unary_member(ix: &AboxIndex, b: BasicConcept, i: IndividualId) -> bool {
    match b {
        BasicConcept::Atomic(a) => ix.concepts.get(&a.0).is_some_and(|f| f.set.contains(&i)),
        BasicConcept::Exists(BasicRole::Direct(p)) => ix
            .roles
            .get(&p.0)
            .is_some_and(|f| f.by_subject.contains_key(&i)),
        BasicConcept::Exists(BasicRole::Inverse(p)) => ix
            .roles
            .get(&p.0)
            .is_some_and(|f| f.by_object.contains_key(&i)),
        BasicConcept::AttrDomain(u) => ix
            .attributes
            .get(&u.0)
            .is_some_and(|f| f.by_subject.contains_key(&i)),
    }
}

/// Whether the *oriented* pair `(s, o)` is in the asserted extension of
/// the basic role `q` (`Inverse(p)`'s extension holds `p`'s pairs
/// swapped).
fn role_member(ix: &AboxIndex, q: BasicRole, s: IndividualId, o: IndividualId) -> bool {
    let (p, sub, obj) = match q {
        BasicRole::Direct(p) => (p, s, o),
        BasicRole::Inverse(p) => (p, o, s),
    };
    ix.roles
        .get(&p.0)
        .and_then(|f| f.by_subject.get(&sub))
        .is_some_and(|objs| objs.contains(&obj))
}

fn attr_member(ix: &AboxIndex, u: obda_dllite::AttributeId, s: IndividualId, v: &Value) -> bool {
    ix.attributes
        .get(&u.0)
        .and_then(|f| f.by_subject.get(&s))
        .is_some_and(|vals| vals.contains(v))
}

/// The asserted extension of a basic concept, collected (inference is a
/// build-time scan, not a query-path operation).
fn unary_extension(ix: &AboxIndex, b: BasicConcept) -> Vec<IndividualId> {
    match b {
        BasicConcept::Atomic(a) => ix
            .concepts
            .get(&a.0)
            .map(|f| f.members.clone())
            .unwrap_or_default(),
        BasicConcept::Exists(BasicRole::Direct(p)) => ix
            .roles
            .get(&p.0)
            .map(|f| f.by_subject.keys().copied().collect())
            .unwrap_or_default(),
        BasicConcept::Exists(BasicRole::Inverse(p)) => ix
            .roles
            .get(&p.0)
            .map(|f| f.by_object.keys().copied().collect())
            .unwrap_or_default(),
        BasicConcept::AttrDomain(u) => ix
            .attributes
            .get(&u.0)
            .map(|f| f.by_subject.keys().copied().collect())
            .unwrap_or_default(),
    }
}

fn oriented_pairs(ix: &AboxIndex, q: BasicRole) -> Vec<(IndividualId, IndividualId)> {
    match q {
        BasicRole::Direct(p) => ix
            .roles
            .get(&p.0)
            .map(|f| f.pairs.clone())
            .unwrap_or_default(),
        BasicRole::Inverse(p) => ix
            .roles
            .get(&p.0)
            .map(|f| f.pairs.iter().map(|&(s, o)| (o, s)).collect())
            .unwrap_or_default(),
    }
}

fn unary_contained(ix: &AboxIndex, sub: BasicConcept, sup: BasicConcept) -> bool {
    unary_extension(ix, sub)
        .into_iter()
        .all(|i| unary_member(ix, sup, i))
}

fn role_contained(ix: &AboxIndex, sub: BasicRole, sup: BasicRole) -> bool {
    oriented_pairs(ix, sub)
        .into_iter()
        .all(|(s, o)| role_member(ix, sup, s, o))
}

fn attr_contained(
    ix: &AboxIndex,
    sub: obda_dllite::AttributeId,
    sup: obda_dllite::AttributeId,
) -> bool {
    ix.attributes
        .get(&sub.0)
        .is_none_or(|f| f.pairs.iter().all(|(s, v)| attr_member(ix, sup, *s, v)))
}

/// Every basic concept over the signature: the unary candidate space
/// for empties and inclusion targets.
fn unary_candidates(tbox: &Tbox) -> Vec<BasicConcept> {
    let sig = &tbox.sig;
    let mut out: Vec<BasicConcept> = sig.concepts().map(BasicConcept::Atomic).collect();
    for p in sig.roles() {
        out.push(BasicConcept::exists(p));
        out.push(BasicConcept::exists_inv(p));
    }
    out.extend(sig.attributes().map(BasicConcept::AttrDomain));
    out
}

// ---------------------------------------------------------------------------
// Inference.
// ---------------------------------------------------------------------------

/// Scans the ABox index and records every constraint the pruning layer
/// could use that actually holds in the current data:
///
/// * **empties** for every basic extension with no asserted facts;
/// * **inclusions** `B ⊑ₑ S` for every classification edge `B ⊑ S`
///   (the exact pairs PerfectRef specializes along and the view
///   expansions enumerate) whose asserted extensions are contained;
/// * **exact** annotations for named predicates all of whose basic
///   subsumees were just verified contained — recorded with that
///   support so a later retraction of any member drops the annotation.
///
/// Candidate generation is deliberately restricted to TBox-subsumption
/// pairs: those are the only containments the rewriter ever asks
/// about, and they keep the scan linear in `|closure| × |data|`.
pub fn infer_from_index(tbox: &Tbox, cls: &Classification, ix: &AboxIndex) -> Ebox {
    let mut ebox = Ebox::new();
    let sig = &tbox.sig;
    for b in unary_candidates(tbox) {
        if unary_extension(ix, b).is_empty() {
            ebox.set_empty(EboxPredicate::Concept(b));
        }
    }
    for p in sig.roles() {
        if ix.roles.get(&p.0).is_none_or(|f| f.pairs.is_empty()) {
            ebox.set_empty(EboxPredicate::Role(BasicRole::Direct(p)));
            ebox.set_empty(EboxPredicate::Role(BasicRole::Inverse(p)));
        }
    }
    for u in sig.attributes() {
        if ix.attributes.get(&u.0).is_none_or(|f| f.pairs.is_empty()) {
            ebox.set_empty(EboxPredicate::Attribute(u));
        }
    }
    for target in unary_candidates(tbox) {
        for m in concept_view_members(cls, target) {
            if m != target && unary_contained(ix, m, target) {
                ebox.add_inclusion(EboxPredicate::Concept(m), EboxPredicate::Concept(target));
            }
        }
    }
    for p in sig.roles() {
        for target in [BasicRole::Direct(p), BasicRole::Inverse(p)] {
            for m in role_view_members(cls, target) {
                if m != target && role_contained(ix, m, target) {
                    ebox.add_inclusion(EboxPredicate::Role(m), EboxPredicate::Role(target));
                }
            }
        }
    }
    for u in sig.attributes() {
        for m in attr_view_members(cls, u) {
            if m != u && attr_contained(ix, m, u) {
                ebox.add_inclusion(EboxPredicate::Attribute(m), EboxPredicate::Attribute(u));
            }
        }
    }
    infer_exact(&mut ebox, tbox, cls);
    ebox
}

/// Collects the support inclusions `sub ⊑ₑ target` for every member of
/// `members` other than `target` itself; `None` if any is missing from
/// the base set.
fn coverage_support(
    ebox: &Ebox,
    members: &[BasicConcept],
    target: BasicConcept,
) -> Option<Vec<EboxInclusion>> {
    let mut support = Vec::new();
    for &m in members {
        if m == target {
            continue;
        }
        let incl = EboxInclusion {
            sub: EboxPredicate::Concept(m),
            sup: EboxPredicate::Concept(target),
        };
        if !ebox.has_inclusion(incl) {
            return None;
        }
        support.push(incl);
    }
    Some(support)
}

/// Marks named predicates **exact** when the already-validated
/// inclusions prove the asserted extension contains every *named*
/// certain member:
///
/// * a concept `A` is exact when every basic subsumee's extension is
///   contained in `ext(A)` (in DL-Litephone, named certain members of
///   `A` arise only from asserted subsumee facts);
/// * a role `p` additionally needs domain and range coverage
///   (`S ⊑ ∃p` subsumees contained in `p`'s subjects, `S ⊑ ∃p⁻` in
///   its objects) so atoms with an existential end stay covered;
/// * an attribute `u` mirrors the role case through `δ(u)`.
fn infer_exact(ebox: &mut Ebox, tbox: &Tbox, cls: &Classification) {
    let sig = &tbox.sig;
    for a in sig.concepts() {
        let target = BasicConcept::Atomic(a);
        let members = concept_view_members(cls, target);
        if let Some(support) = coverage_support(ebox, &members, target) {
            ebox.set_exact(NamedPredicate::Concept(a), support);
        }
    }
    for p in sig.roles() {
        let dir = BasicRole::Direct(p);
        let mut support = Vec::new();
        let mut ok = true;
        for m in role_view_members(cls, dir) {
            if m == dir {
                continue;
            }
            let incl = EboxInclusion {
                sub: EboxPredicate::Role(m),
                sup: EboxPredicate::Role(dir),
            };
            if ebox.has_inclusion(incl) {
                support.push(incl);
            } else {
                ok = false;
                break;
            }
        }
        if ok {
            for target in [BasicConcept::exists(p), BasicConcept::exists_inv(p)] {
                let members = concept_view_members(cls, target);
                match coverage_support(ebox, &members, target) {
                    Some(mut s) => support.append(&mut s),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if ok {
            ebox.set_exact(NamedPredicate::Role(p), support);
        }
    }
    for u in sig.attributes() {
        let mut support = Vec::new();
        let mut ok = true;
        for m in attr_view_members(cls, u) {
            if m == u {
                continue;
            }
            let incl = EboxInclusion {
                sub: EboxPredicate::Attribute(m),
                sup: EboxPredicate::Attribute(u),
            };
            if ebox.has_inclusion(incl) {
                support.push(incl);
            } else {
                ok = false;
                break;
            }
        }
        if ok {
            let target = BasicConcept::AttrDomain(u);
            let members = concept_view_members(cls, target);
            match coverage_support(ebox, &members, target) {
                Some(mut s) => support.append(&mut s),
                None => ok = false,
            }
        }
        if ok {
            ebox.set_exact(NamedPredicate::Attribute(u), support);
        }
    }
}

/// Derives the *static* EBox of a virtual-mode system from its mapping
/// set: constraints that hold for every source database state, so they
/// never need revalidation.
///
/// * A predicate with no mapping assertion has a provably empty virtual
///   extension (`genont` scenarios encode abstract mid-hierarchy
///   predicates this way — see
///   `obda_genont::UniversityScenario::unmapped_predicate_names`);
/// * along each classification edge `B ⊑ S` of the same shape, `B`'s
///   virtual extension is contained in `S`'s when every flat source of
///   `B` is a syntactic specialization of some source of `S` (same
///   tables, same projected arguments, a superset of the conditions) —
///   checked by the unfolder's [`crate::rewrite::unfold`] source
///   containment, the same test the union pruning uses.
///
/// No exact annotations are inferred here: exactness quantifies over
/// the concrete data, which a schema-level pass cannot see.
pub fn infer_from_mappings(
    tbox: &Tbox,
    cls: &Classification,
    mappings: &MappingSet,
    db: &Database,
) -> Ebox {
    let mut ebox = Ebox::new();
    let sig = &tbox.sig;
    for a in sig.concepts() {
        if mappings.concept_sources(a).next().is_none() {
            ebox.set_empty(EboxPredicate::Concept(BasicConcept::Atomic(a)));
        }
    }
    for p in sig.roles() {
        if mappings.role_sources(p).next().is_none() {
            ebox.set_empty(EboxPredicate::Role(BasicRole::Direct(p)));
            ebox.set_empty(EboxPredicate::Role(BasicRole::Inverse(p)));
            ebox.set_empty(EboxPredicate::Concept(BasicConcept::exists(p)));
            ebox.set_empty(EboxPredicate::Concept(BasicConcept::exists_inv(p)));
        }
    }
    for u in sig.attributes() {
        if mappings.attribute_sources(u).next().is_none() {
            ebox.set_empty(EboxPredicate::Attribute(u));
            ebox.set_empty(EboxPredicate::Concept(BasicConcept::AttrDomain(u)));
        }
    }
    // Same-shape inclusions along classification edges. An empty sub
    // is contained in anything, and recording the base inclusion keeps
    // the constraint usable as exactness support by a later data-level
    // pass (uniform with `infer_from_index`).
    for a in sig.concepts() {
        let target = BasicConcept::Atomic(a);
        for m in concept_view_members(cls, target) {
            let BasicConcept::Atomic(b) = m else { continue };
            if b == a {
                continue;
            }
            let sub = EboxPredicate::Concept(m);
            if ebox.is_empty_pred(sub)
                || crate::rewrite::unfold::concept_sources_contained(mappings, db, b, a)
            {
                ebox.add_inclusion(sub, EboxPredicate::Concept(target));
            }
        }
    }
    for p in sig.roles() {
        let dir = BasicRole::Direct(p);
        for m in role_view_members(cls, dir) {
            let BasicRole::Direct(q) = m else { continue };
            if q == p {
                continue;
            }
            let sub = EboxPredicate::Role(m);
            if ebox.is_empty_pred(sub)
                || crate::rewrite::unfold::role_sources_contained(mappings, db, q, p)
            {
                ebox.add_inclusion(sub, EboxPredicate::Role(dir));
                // Same-orientation pair containment projects to both
                // ends: ∃q ⊑ₑ ∃p and ∃q⁻ ⊑ₑ ∃p⁻.
                ebox.add_inclusion(
                    EboxPredicate::Concept(BasicConcept::exists(q)),
                    EboxPredicate::Concept(BasicConcept::exists(p)),
                );
                ebox.add_inclusion(
                    EboxPredicate::Concept(BasicConcept::exists_inv(q)),
                    EboxPredicate::Concept(BasicConcept::exists_inv(p)),
                );
            }
        }
    }
    for u in sig.attributes() {
        for m in attr_view_members(cls, u) {
            if m == u {
                continue;
            }
            let sub = EboxPredicate::Attribute(m);
            if ebox.is_empty_pred(sub)
                || crate::rewrite::unfold::attr_sources_contained(mappings, db, m, u)
            {
                ebox.add_inclusion(sub, EboxPredicate::Attribute(u));
                ebox.add_inclusion(
                    EboxPredicate::Concept(BasicConcept::AttrDomain(m)),
                    EboxPredicate::Concept(BasicConcept::AttrDomain(u)),
                );
            }
        }
    }
    ebox
}

// ---------------------------------------------------------------------------
// Write-path revalidation.
// ---------------------------------------------------------------------------

/// The named predicate whose fact list an assertion belongs to.
fn assertion_predicate(a: &Assertion) -> NamedPredicate {
    match a {
        Assertion::Concept(c, _) => NamedPredicate::Concept(*c),
        Assertion::Role(p, _, _) => NamedPredicate::Role(*p),
        Assertion::Attribute(u, _, _) => NamedPredicate::Attribute(*u),
    }
}

/// The element `a` contributes to the extension of basic concept `b`
/// (`None` when `a`'s predicate is not `b`'s source).
fn unary_element(b: BasicConcept, a: &Assertion) -> Option<IndividualId> {
    match (b, a) {
        (BasicConcept::Atomic(c), Assertion::Concept(c2, i)) if c == *c2 => Some(*i),
        (BasicConcept::Exists(BasicRole::Direct(p)), Assertion::Role(p2, s, _)) if p == *p2 => {
            Some(*s)
        }
        (BasicConcept::Exists(BasicRole::Inverse(p)), Assertion::Role(p2, _, o)) if p == *p2 => {
            Some(*o)
        }
        (BasicConcept::AttrDomain(u), Assertion::Attribute(u2, s, _)) if u == *u2 => Some(*s),
        _ => None,
    }
}

/// Whether, after `a` was *inserted*, the inclusion no longer holds:
/// the new element of `sub`'s extension is probed against `sup` in the
/// already-patched index.
fn insert_violates(incl: &EboxInclusion, a: &Assertion, ix: &AboxIndex) -> bool {
    match (incl.sub, incl.sup) {
        (EboxPredicate::Concept(sb), EboxPredicate::Concept(sp)) => {
            unary_element(sb, a).is_some_and(|i| !unary_member(ix, sp, i))
        }
        (EboxPredicate::Role(qb), EboxPredicate::Role(qp)) => match (qb, a) {
            (BasicRole::Direct(p), Assertion::Role(p2, s, o)) if p == *p2 => {
                !role_member(ix, qp, *s, *o)
            }
            (BasicRole::Inverse(p), Assertion::Role(p2, s, o)) if p == *p2 => {
                !role_member(ix, qp, *o, *s)
            }
            _ => false,
        },
        (EboxPredicate::Attribute(ub), EboxPredicate::Attribute(up)) => match a {
            Assertion::Attribute(u2, s, v) if ub == *u2 => !attr_member(ix, up, *s, v),
            _ => false,
        },
        // Cross-sort inclusions are rejected at insertion time.
        _ => false,
    }
}

/// Whether, after `a` was *deleted* from `sup`'s source predicate, the
/// inclusion no longer holds: the element `a` used to contribute may
/// have left `sup`'s extension while still being in `sub`'s.
fn delete_violates(incl: &EboxInclusion, a: &Assertion, ix: &AboxIndex) -> bool {
    match (incl.sub, incl.sup) {
        (EboxPredicate::Concept(sb), EboxPredicate::Concept(sp)) => unary_element(sp, a)
            .is_some_and(|i| unary_member(ix, sb, i) && !unary_member(ix, sp, i)),
        (EboxPredicate::Role(qb), EboxPredicate::Role(qp)) => match (qp, a) {
            (BasicRole::Direct(p), Assertion::Role(p2, s, o)) if p == *p2 => {
                role_member(ix, qb, *s, *o) && !role_member(ix, qp, *s, *o)
            }
            (BasicRole::Inverse(p), Assertion::Role(p2, s, o)) if p == *p2 => {
                role_member(ix, qb, *o, *s) && !role_member(ix, qp, *o, *s)
            }
            _ => false,
        },
        (EboxPredicate::Attribute(ub), EboxPredicate::Attribute(up)) => match a {
            Assertion::Attribute(u2, s, v) if up == *u2 => {
                attr_member(ix, ub, *s, v) && !attr_member(ix, up, *s, v)
            }
            _ => false,
        },
        _ => false,
    }
}

/// Revalidates an EBox against one applied delta batch, probing each
/// changed fact against the constraints that read its predicate in the
/// *post-patch* index, and retracting exactly the violated ones (plus
/// exact annotations whose support they carried). Constraints the
/// probes re-confirm survive — a churn stream that respects the data
/// invariants keeps its pruning power. Returns the number of retracted
/// constraints (also added to the `ebox_retracted` counter by the
/// caller's state update).
///
/// Inserts can violate an *empty* (the predicate now has a fact) or an
/// inclusion through its `sub` side; deletes can only violate an
/// inclusion through its `sup` side. Deletes never violate empties,
/// and a predicate that *becomes* empty is not promoted — inference
/// strengthens only at (re)build points.
pub(crate) fn revalidate(ebox: &mut Ebox, applied: &AppliedBatch, ix: &AboxIndex) -> u64 {
    if ebox.is_empty() || (applied.inserted.is_empty() && applied.deleted.is_empty()) {
        return 0;
    }
    let mut bad_incl: HashSet<EboxInclusion> = HashSet::new();
    let mut bad_empty: HashSet<EboxPredicate> = HashSet::new();
    for a in &applied.inserted {
        let n = assertion_predicate(a);
        for p in ebox.empties() {
            if p.source_predicate() == n {
                bad_empty.insert(*p);
            }
        }
        for incl in ebox.inclusions() {
            if incl.sub.source_predicate() == n
                && !bad_incl.contains(incl)
                && insert_violates(incl, a, ix)
            {
                bad_incl.insert(*incl);
            }
        }
    }
    for a in &applied.deleted {
        let n = assertion_predicate(a);
        for incl in ebox.inclusions() {
            if incl.sup.source_predicate() == n
                && !bad_incl.contains(incl)
                && delete_violates(incl, a, ix)
            {
                bad_incl.insert(*incl);
            }
        }
    }
    ebox.retract_specific(&bad_incl, &bad_empty) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{parse_tbox, Abox};

    fn build(tbox_src: &str, facts: &[&str]) -> (Tbox, Classification, Abox, AboxIndex) {
        let tbox = parse_tbox(tbox_src).unwrap();
        let cls = Classification::classify(&tbox);
        let mut abox = Abox::new();
        for f in facts {
            // "A a" concept, "p a b" role, "u a 5" attribute (int).
            let parts: Vec<&str> = f.split_whitespace().collect();
            match parts.as_slice() {
                [c, i] => {
                    let cid = tbox.sig.find_concept(c).unwrap();
                    let ind = abox.individual(i);
                    abox.add(Assertion::Concept(cid, ind));
                }
                [p, s, o] => {
                    if let Some(pid) = tbox.sig.find_role(p) {
                        let si = abox.individual(s);
                        let oi = abox.individual(o);
                        abox.add(Assertion::Role(pid, si, oi));
                    } else {
                        let uid = tbox.sig.find_attribute(p).unwrap();
                        let si = abox.individual(s);
                        abox.add(Assertion::Attribute(
                            uid,
                            si,
                            Value::Int(o.parse().unwrap()),
                        ));
                    }
                }
                _ => panic!("bad fact {f}"),
            }
        }
        let ix = AboxIndex::build(&abox);
        (tbox, cls, abox, ix)
    }

    const TBOX: &str = "concept A B C\nrole p\nB [= A\nC [= A\nexists p [= A";

    #[test]
    fn infers_empties_inclusions_and_exact() {
        let (tbox, cls, _abox, ix) =
            build(TBOX, &["B x1", "A x1", "B x2", "A x2", "A x3", "p x3 y"]);
        let e = infer_from_index(&tbox, &cls, &ix);
        let b = EboxPredicate::Concept(BasicConcept::Atomic(tbox.sig.find_concept("B").unwrap()));
        let a = EboxPredicate::Concept(BasicConcept::Atomic(tbox.sig.find_concept("A").unwrap()));
        let c = EboxPredicate::Concept(BasicConcept::Atomic(tbox.sig.find_concept("C").unwrap()));
        let p = tbox.sig.find_role("p").unwrap();
        let ep = EboxPredicate::Concept(BasicConcept::exists(p));
        assert!(e.contains(b, a), "asserted B ⊆ asserted A");
        assert!(e.is_empty_pred(c), "C never asserted");
        assert!(e.contains(c, a), "empty C contained in anything");
        assert!(e.contains(ep, a), "p-subjects all carry A");
        // Every subsumee of A is covered, so A is exact.
        assert!(e.is_exact(NamedPredicate::Concept(tbox.sig.find_concept("A").unwrap())));
        // B has no subsumees at all: trivially exact.
        assert!(e.is_exact(NamedPredicate::Concept(tbox.sig.find_concept("B").unwrap())));
    }

    #[test]
    fn non_contained_data_yields_no_inclusion() {
        let (tbox, cls, _abox, ix) = build(TBOX, &["B x1", "A x2"]);
        let e = infer_from_index(&tbox, &cls, &ix);
        let b = EboxPredicate::Concept(BasicConcept::Atomic(tbox.sig.find_concept("B").unwrap()));
        let a = EboxPredicate::Concept(BasicConcept::Atomic(tbox.sig.find_concept("A").unwrap()));
        assert!(!e.contains(b, a), "x1 is a B but not an A");
        assert!(!e.is_exact(NamedPredicate::Concept(tbox.sig.find_concept("A").unwrap())));
    }

    #[test]
    fn revalidation_retracts_violated_and_keeps_confirmed() {
        let (tbox, cls, mut abox, mut ix) = build(TBOX, &["B x1", "A x1"]);
        let mut e = infer_from_index(&tbox, &cls, &ix);
        let b_id = tbox.sig.find_concept("B").unwrap();
        let a_id = tbox.sig.find_concept("A").unwrap();
        let b = EboxPredicate::Concept(BasicConcept::Atomic(b_id));
        let a = EboxPredicate::Concept(BasicConcept::Atomic(a_id));
        assert!(e.contains(b, a));
        assert!(e.is_exact(NamedPredicate::Concept(a_id)));

        // Insert B(x2) *and* A(x2): the inclusion is probed and survives.
        let x2 = abox.individual("x2");
        for f in [Assertion::Concept(a_id, x2), Assertion::Concept(b_id, x2)] {
            abox.add(f.clone());
            ix.insert_assertion(&f);
        }
        let applied = AppliedBatch {
            inserted: vec![Assertion::Concept(a_id, x2), Assertion::Concept(b_id, x2)],
            deleted: vec![],
        };
        assert_eq!(revalidate(&mut e, &applied, &ix), 0);
        assert!(e.contains(b, a));

        // Delete A(x2): x2 is still a B, so B ⊑ₑ A is violated and the
        // exact annotation on A loses its support.
        let del = Assertion::Concept(a_id, x2);
        abox.remove(&del);
        ix.remove_assertion(&del);
        let applied = AppliedBatch {
            inserted: vec![],
            deleted: vec![del],
        };
        let removed = revalidate(&mut e, &applied, &ix);
        assert!(removed >= 1, "B ⊑ₑ A retracted");
        assert!(!e.contains(b, a));
        assert!(!e.is_exact(NamedPredicate::Concept(a_id)));
    }

    #[test]
    fn insert_into_empty_predicate_retracts_the_empty() {
        let (tbox, cls, mut abox, mut ix) = build(TBOX, &["A x1"]);
        let mut e = infer_from_index(&tbox, &cls, &ix);
        let c_id = tbox.sig.find_concept("C").unwrap();
        let c = EboxPredicate::Concept(BasicConcept::Atomic(c_id));
        assert!(e.is_empty_pred(c));
        let x1 = abox.individual("x1");
        let f = Assertion::Concept(c_id, x1);
        abox.add(f.clone());
        ix.insert_assertion(&f);
        let applied = AppliedBatch {
            inserted: vec![f],
            deleted: vec![],
        };
        // The empty goes; C(x1) with A(x1) present keeps C ⊑ₑ A alive
        // as a *checked* inclusion is not present (it was only implied
        // by emptiness), so pruning now must not assume it.
        assert!(revalidate(&mut e, &applied, &ix) >= 1);
        assert!(!e.is_empty_pred(c));
    }

    #[test]
    fn mode_parses_and_renders() {
        for (s, m) in [
            ("off", EboxMode::Off),
            ("on", EboxMode::On),
            ("infer", EboxMode::Infer),
        ] {
            assert_eq!(s.parse::<EboxMode>().unwrap(), m);
            assert_eq!(m.as_str(), s);
        }
        assert!("nope".parse::<EboxMode>().is_err());
        assert!(!EboxMode::Off.enabled());
        assert!(EboxMode::Infer.enabled());
    }
}
