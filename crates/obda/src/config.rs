//! The unified engine configuration: [`EngineConfig`].
//!
//! Before this module, every surface that builds an engine re-parsed
//! and re-validated the same handful of options: [`SystemBuilder`]
//! setters, the server's endpoint JSON (`server/src/config.rs`), the
//! loadgen CLI flags, and the `QUONTO_*` knobs each had their own
//! spelling of "rewriting mode" and their own fallback logic. Now there
//! is one typed struct, one string parse path ([`EngineConfig::set`],
//! backed by the modes' `FromStr` impls), one validation pass
//! ([`EngineConfig::validate`]), and one precedence rule:
//!
//! > explicit setting (builder call or config-file key) **>**
//! > environment knob **>** documented default.
//!
//! Every field is an `Option`: `None` means "defer to the knob, else
//! the default" — exactly the old builder semantics, so knobs and
//! explicit settings still compose with the explicit setting winning.
//! [`SystemBuilder`] is now a thin wrapper over this struct; new code
//! should construct engines from an `EngineConfig` directly.
//!
//! ```no_run
//! use mastro::{EngineConfig, RewritingMode, EboxMode};
//! # fn demo(tbox: obda_dllite::Tbox, abox: obda_dllite::Abox) {
//! let engine = EngineConfig::new()
//!     .rewriting(RewritingMode::Ndl)
//!     .ebox(EboxMode::Infer)
//!     .build_abox_engine(tbox, abox);
//! # }
//! ```
//!
//! [`SystemBuilder`]: crate::SystemBuilder

use std::sync::Arc;

use obda_dllite::{Abox, Tbox};
use obda_mapping::MappingSet;
use obda_obs::{SinkKind, TraceSink};

use crate::ebox::EboxMode;
use crate::engine::QueryEngine;
use crate::error::ObdaError;
use crate::system::{AboxSystem, DataMode, ObdaSystem, RewritingMode};

/// The string-settable keys [`EngineConfig::set`] accepts, in the order
/// they are documented. Surfaces that forward free-form key/value pairs
/// (the server config parser) iterate this list instead of hard-coding
/// their own copy.
pub const ENGINE_CONFIG_KEYS: &[&str] = &[
    "rewriting",
    "data",
    "eval_threads",
    "rewrite_cache",
    "shards",
    "shard_max_inflight",
    "ebox",
];

/// Typed, layered configuration for every engine shape.
///
/// See the [module docs](self) for the precedence rule. Fields are
/// public so config-driven callers (the server) can inspect what was
/// explicitly set; prefer the builder-style setters for construction.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Rewriting algorithm (default: Presto for OBDA systems,
    /// PerfectRef for ABox systems).
    pub rewriting: Option<RewritingMode>,
    /// Data-access mode (default: virtual; OBDA systems only).
    pub data: Option<DataMode>,
    /// UCQ evaluation threads, `0` = all cores (knob: `QUONTO_THREADS`,
    /// default 1).
    pub eval_threads: Option<usize>,
    /// Rewrite-cache toggle (default: enabled).
    pub rewrite_cache: Option<bool>,
    /// ABox evaluation shards, `0` = all cores (knob: `QUONTO_SHARDS`,
    /// default 1 = unsharded).
    pub shards: Option<usize>,
    /// Per-shard cap on concurrent scatter evaluations (`0` =
    /// unbounded, the default).
    pub shard_max_inflight: Option<usize>,
    /// EBox constraint-acquisition mode (knob: `QUONTO_EBOX`, default
    /// off).
    pub ebox: Option<EboxMode>,
    /// Trace sink for untraced `answer` calls (knob: `QUONTO_TIMINGS`,
    /// default off).
    pub sink: Option<Arc<dyn TraceSink>>,
}

fn config_err(msg: impl Into<String>) -> String {
    let mut s = String::from("engine config: ");
    s.push_str(&msg.into());
    s
}

impl EngineConfig {
    pub fn new() -> EngineConfig {
        EngineConfig::default()
    }

    // --- Builder-style setters -------------------------------------

    /// Rewriting algorithm. On the ABox tier Presto folds into
    /// PerfectRef (there are no mappings to unfold against);
    /// [`RewritingMode::Ndl`] selects the shared-view NDL evaluator on
    /// every engine shape.
    pub fn rewriting(mut self, mode: RewritingMode) -> Self {
        self.rewriting = Some(mode);
        self
    }

    /// Data-access mode. Ignored by [`build_abox`](Self::build_abox).
    pub fn data_mode(mut self, mode: DataMode) -> Self {
        self.data = Some(mode);
        self
    }

    /// UCQ evaluation threads, `0` = all cores.
    pub fn eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = Some(threads);
        self
    }

    /// Enables/disables the rewrite cache.
    pub fn rewrite_cache(mut self, enabled: bool) -> Self {
        self.rewrite_cache = Some(enabled);
        self
    }

    /// ABox evaluation shards for
    /// [`build_abox_engine`](Self::build_abox_engine), `0` = all cores.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Per-shard cap on concurrent scatter evaluations (`0` =
    /// unbounded). Only meaningful for sharded engines.
    pub fn shard_max_inflight(mut self, cap: usize) -> Self {
        self.shard_max_inflight = Some(cap);
        self
    }

    /// EBox constraint-acquisition mode (see [`EboxMode`]).
    pub fn ebox(mut self, mode: EboxMode) -> Self {
        self.ebox = Some(mode);
        self
    }

    /// Trace sink for untraced `answer` calls.
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Convenience for the built-in sinks.
    pub fn trace(self, kind: SinkKind) -> Self {
        let sink = obda_obs::sink::named(kind);
        self.trace_sink(sink)
    }

    // --- The one string parse path ---------------------------------

    /// Sets one option from its config-file / CLI spelling. This is the
    /// single parse path: the server's endpoint JSON and the loadgen
    /// flags both land here, so a mode name is spelled (and
    /// mis-spelling is reported) exactly one way.
    ///
    /// Accepted keys are [`ENGINE_CONFIG_KEYS`]; unknown keys and
    /// unparseable values are errors, not silently ignored.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn count(key: &str, value: &str) -> Result<usize, String> {
            value
                .parse()
                .map_err(|_| config_err(format!("`{key}` must be a non-negative integer")))
        }
        match key {
            "rewriting" => self.rewriting = Some(value.parse().map_err(config_err)?),
            "data" => self.data = Some(value.parse().map_err(config_err)?),
            "eval_threads" => self.eval_threads = Some(count(key, value)?),
            "rewrite_cache" => {
                self.rewrite_cache = Some(match value {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => {
                        return Err(config_err(format!(
                            "`rewrite_cache` must be on/off, got `{other}`"
                        )))
                    }
                })
            }
            "shards" => self.shards = Some(count(key, value)?),
            "shard_max_inflight" => self.shard_max_inflight = Some(count(key, value)?),
            "ebox" => self.ebox = Some(value.parse().map_err(config_err)?),
            other => {
                return Err(config_err(format!(
                    "unknown option `{other}` (expected one of {})",
                    ENGINE_CONFIG_KEYS.join(", ")
                )))
            }
        }
        Ok(())
    }

    // --- Layering and resolution -----------------------------------

    /// Layers `fallback` under `self`: every option `self` leaves unset
    /// is taken from `fallback`. This is how a config file composes
    /// under builder calls (builder wins), and how a preset composes
    /// under per-endpoint overrides.
    pub fn or(mut self, fallback: &EngineConfig) -> EngineConfig {
        self.rewriting = self.rewriting.or(fallback.rewriting);
        self.data = self.data.or(fallback.data);
        self.eval_threads = self.eval_threads.or(fallback.eval_threads);
        self.rewrite_cache = self.rewrite_cache.or(fallback.rewrite_cache);
        self.shards = self.shards.or(fallback.shards);
        self.shard_max_inflight = self.shard_max_inflight.or(fallback.shard_max_inflight);
        self.ebox = self.ebox.or(fallback.ebox);
        self.sink = self.sink.or_else(|| fallback.sink.clone());
        self
    }

    /// The EBox mode this config resolves to: the explicit setting,
    /// else `QUONTO_EBOX`, else off. An unparseable knob value is an
    /// error (a typo silently disabling constraint pruning would be
    /// invisible); the error surfaces through [`validate`](Self::validate)
    /// and the build paths fall back to off.
    pub fn resolved_ebox(&self) -> Result<EboxMode, String> {
        if let Some(mode) = self.ebox {
            return Ok(mode);
        }
        match quonto::env::ebox_mode() {
            Some(raw) => raw.parse().map_err(config_err),
            None => Ok(EboxMode::Off),
        }
    }

    /// The shard count [`build_abox_engine`](Self::build_abox_engine)
    /// will use: the explicit setting, else `QUONTO_SHARDS`, else 1;
    /// `0` resolves to all available cores.
    pub fn resolved_shards(&self) -> usize {
        let n = self.shards.or_else(quonto::env::shards).unwrap_or(1);
        if n == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            n
        }
    }

    /// Cross-field validation — the one place engine-level option
    /// conflicts are rejected, shared by every construction surface.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards.unwrap_or(0) > 1 && self.data == Some(DataMode::Virtual) {
            return Err(config_err(
                "`shards` requires materialized data (virtual engines delegate \
                 evaluation to the SQL sources)",
            ));
        }
        if self.shard_max_inflight.unwrap_or(0) > 0 && self.shards.unwrap_or(1) <= 1 {
            return Err(config_err(
                "`shard_max_inflight` is only meaningful with `shards` > 1",
            ));
        }
        self.resolved_ebox()?;
        Ok(())
    }

    /// Renders the explicitly-set options as `key=value` pairs in
    /// [`ENGINE_CONFIG_KEYS`] order — the round-trip of
    /// [`set`](Self::set), used in logs and error messages.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(m) = self.rewriting {
            parts.push(format!("rewriting={}", m.as_str().to_ascii_lowercase()));
        }
        if let Some(m) = self.data {
            parts.push(format!("data={}", m.as_str().to_ascii_lowercase()));
        }
        if let Some(n) = self.eval_threads {
            parts.push(format!("eval_threads={n}"));
        }
        if let Some(b) = self.rewrite_cache {
            parts.push(format!("rewrite_cache={}", if b { "on" } else { "off" }));
        }
        if let Some(n) = self.shards {
            parts.push(format!("shards={n}"));
        }
        if let Some(n) = self.shard_max_inflight {
            parts.push(format!("shard_max_inflight={n}"));
        }
        if let Some(m) = self.ebox {
            parts.push(format!("ebox={m}"));
        }
        parts.join(" ")
    }

    // --- Construction ----------------------------------------------

    /// Builds a full OBDA system (mappings + SQL sources).
    pub fn build_obda(
        &self,
        tbox: Tbox,
        mappings: MappingSet,
        db: obda_sqlstore::Database,
    ) -> Result<ObdaSystem, ObdaError> {
        let mut sys = ObdaSystem::new(tbox, mappings, db)?;
        if let Some(mode) = self.rewriting {
            sys = sys.with_rewriting(mode);
        }
        if let Some(mode) = self.data {
            sys = sys.with_data_mode(mode);
        }
        if let Some(threads) = self.eval_threads {
            sys = sys.with_eval_threads(threads);
        }
        if let Some(enabled) = self.rewrite_cache {
            sys = sys.with_rewrite_cache(enabled);
        }
        if let Ok(mode) = self.resolved_ebox() {
            if mode.enabled() {
                sys = sys.with_ebox_mode(mode);
            }
        }
        if let Some(sink) = &self.sink {
            sys = sys.with_trace_sink(Arc::clone(sink));
        }
        Ok(sys)
    }

    /// Builds an ABox-backed system (no mappings/SQL).
    pub fn build_abox(&self, tbox: Tbox, abox: Abox) -> AboxSystem {
        let mut sys = AboxSystem::new(tbox, abox);
        if let Some(mode) = self.rewriting {
            sys = sys.with_rewriting(mode);
        }
        if let Some(threads) = self.eval_threads {
            sys = sys.with_eval_threads(threads);
        }
        if let Some(enabled) = self.rewrite_cache {
            sys = sys.with_rewrite_cache(enabled);
        }
        if let Ok(mode) = self.resolved_ebox() {
            if mode.enabled() {
                sys = sys.with_ebox_mode(mode);
            }
        }
        if let Some(sink) = &self.sink {
            sys = sys.with_trace_sink(Arc::clone(sink));
        }
        sys
    }

    /// Builds an ABox-backed engine, sharded or not: the serving-layer
    /// entry point. With [`resolved_shards`](Self::resolved_shards)
    /// `<= 1` this is exactly [`build_abox`](Self::build_abox) boxed —
    /// the unsharded fast path stays byte-for-byte what it was.
    /// Otherwise the ABox is partitioned into a
    /// [`crate::shard::ShardedAboxSystem`] (which always evaluates each
    /// shard single-threaded — `eval_threads` does not apply; scatter
    /// parallelism comes from the shards themselves).
    pub fn build_abox_engine(&self, tbox: Tbox, abox: Abox) -> Box<dyn QueryEngine> {
        let n = self.resolved_shards();
        if n <= 1 {
            return Box::new(self.build_abox(tbox, abox));
        }
        let mut sys = crate::shard::ShardedAboxSystem::new(tbox, abox, n);
        if let Some(mode) = self.rewriting {
            sys = sys.with_rewriting(mode);
        }
        if let Some(enabled) = self.rewrite_cache {
            sys = sys.with_rewrite_cache(enabled);
        }
        if let Some(cap) = self.shard_max_inflight {
            sys = sys.with_shard_max_inflight(cap);
        }
        if let Ok(mode) = self.resolved_ebox() {
            if mode.enabled() {
                sys = sys.with_ebox_mode(mode);
            }
        }
        if let Some(sink) = &self.sink {
            sys = sys.with_trace_sink(Arc::clone(sink));
        }
        Box::new(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_parses_every_key() {
        let mut cfg = EngineConfig::new();
        cfg.set("rewriting", "ndl").unwrap();
        cfg.set("data", "materialized").unwrap();
        cfg.set("eval_threads", "4").unwrap();
        cfg.set("rewrite_cache", "off").unwrap();
        cfg.set("shards", "2").unwrap();
        cfg.set("shard_max_inflight", "8").unwrap();
        cfg.set("ebox", "infer").unwrap();
        assert_eq!(cfg.rewriting, Some(RewritingMode::Ndl));
        assert_eq!(cfg.data, Some(DataMode::Materialized));
        assert_eq!(cfg.eval_threads, Some(4));
        assert_eq!(cfg.rewrite_cache, Some(false));
        assert_eq!(cfg.shards, Some(2));
        assert_eq!(cfg.shard_max_inflight, Some(8));
        assert_eq!(cfg.ebox, Some(EboxMode::Infer));
        assert_eq!(
            cfg.render(),
            "rewriting=ndl data=materialized eval_threads=4 rewrite_cache=off \
             shards=2 shard_max_inflight=8 ebox=infer"
        );
    }

    #[test]
    fn set_rejects_bad_keys_and_values() {
        let mut cfg = EngineConfig::new();
        assert!(cfg.set("rewriting", "magic").is_err());
        assert!(cfg.set("data", "psychic").is_err());
        assert!(cfg.set("eval_threads", "-1").is_err());
        assert!(cfg.set("rewrite_cache", "maybe").is_err());
        assert!(cfg.set("ebox", "sometimes").is_err());
        assert!(cfg.set("no_such_option", "1").is_err());
        // Nothing stuck.
        assert!(cfg.rewriting.is_none() && cfg.ebox.is_none());
    }

    #[test]
    fn layering_prefers_self() {
        let preset = EngineConfig::new()
            .rewriting(RewritingMode::Presto)
            .eval_threads(2)
            .ebox(EboxMode::On);
        let over = EngineConfig::new()
            .rewriting(RewritingMode::Ndl)
            .or(&preset);
        assert_eq!(over.rewriting, Some(RewritingMode::Ndl));
        assert_eq!(over.eval_threads, Some(2));
        assert_eq!(over.ebox, Some(EboxMode::On));
    }

    #[test]
    fn validate_catches_conflicts() {
        assert!(EngineConfig::new().validate().is_ok());
        let sharded_virtual = EngineConfig::new().shards(4).data_mode(DataMode::Virtual);
        assert!(sharded_virtual.validate().is_err());
        let inflight_unsharded = EngineConfig::new().shard_max_inflight(2);
        assert!(inflight_unsharded.validate().is_err());
        let ok = EngineConfig::new().shards(4).shard_max_inflight(2);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn explicit_ebox_beats_default() {
        let cfg = EngineConfig::new().ebox(EboxMode::Infer);
        assert_eq!(cfg.resolved_ebox().unwrap(), EboxMode::Infer);
        // Unset + no knob = off (the knob path is pinned by the
        // env-composition test in `tests/builder.rs`, which owns the
        // process-global env mutation).
        assert_eq!(EngineConfig::new().resolved_ebox().unwrap(), EboxMode::Off);
    }
}
