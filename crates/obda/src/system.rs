//! The [`ObdaSystem`] facade: ontology + mappings + sources, with query
//! answering in four modes (rewriting × data access).
//!
//! ## Query-answering fast path
//!
//! Answering reuses work across queries through two epoch-guarded
//! caches:
//!
//! * a **rewrite cache** keyed by `(RewritingMode, canonical CQ)` —
//!   rewriting depends only on the TBox, so the result is valid until
//!   [`ObdaSystem::invalidate_rewrites`] bumps the TBox epoch;
//! * a **persistent ABox index** ([`AboxIndex`]) built once per
//!   materialized ABox and reused by every materialized-mode query
//!   until [`ObdaSystem::invalidate_abox`].
//!
//! PerfectRef rewritings are subsumption-pruned before caching (set
//! `QUONTO_NO_PRUNE=1` to keep the raw UCQ for cross-checking), and the
//! materialized evaluation shards disjuncts over scoped threads
//! (`with_eval_threads`, default from `QUONTO_THREADS`, `0` = all
//! cores). With `QUONTO_TIMINGS=1` each answered query prints a
//! one-line phase breakdown (`mastro-timings …`) to stderr, mirroring
//! `quonto-timings` from the classification layer.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use obda_dllite::{Abox, Tbox};
use obda_mapping::{materialize, MappingSet};
use obda_sqlstore::{Database, SqlError};
use quonto::Classification;

use crate::answer::{evaluate_ucq_parallel, AboxIndex, Answers};
use crate::consistency::{check_consistency, Violation};
use crate::query::{parse_cq, ConjunctiveQuery, QueryParseError, Ucq};
use crate::rewrite::perfectref::perfect_ref;
use crate::rewrite::presto::{evaluate_view_query, presto_rewrite, PrestoRewriting};
use crate::rewrite::subsume::{prune_ucq, pruning_disabled};
use crate::rewrite::unfold::{answer_presto_virtual, answer_ucq_virtual};

/// Which rewriting algorithm drives answering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RewritingMode {
    /// Classic PerfectRef UCQ rewriting.
    PerfectRef,
    /// Classification-aware Presto-style view rewriting.
    Presto,
}

/// How the data is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    /// Unfold into SQL over the sources (virtual ABox).
    Virtual,
    /// Evaluate over the materialized ABox.
    Materialized,
}

/// Errors surfaced by the system facade.
#[derive(Debug)]
pub enum ObdaError {
    /// Query text failed to parse.
    Query(QueryParseError),
    /// SQL-level failure (planning, execution, mapping validation).
    Sql(SqlError),
}

impl std::fmt::Display for ObdaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObdaError::Query(e) => write!(f, "query error: {e}"),
            ObdaError::Sql(e) => write!(f, "sql error: {e}"),
        }
    }
}

impl std::error::Error for ObdaError {}

impl From<QueryParseError> for ObdaError {
    fn from(e: QueryParseError) -> Self {
        ObdaError::Query(e)
    }
}

impl From<SqlError> for ObdaError {
    fn from(e: SqlError) -> Self {
        ObdaError::Sql(e)
    }
}

/// Entry cap before the rewrite cache is wholesale cleared (the
/// workloads the paper targets re-ask a small number of query shapes;
/// a fancier eviction policy is not worth its bookkeeping here).
const REWRITE_CACHE_CAP: usize = 1024;

/// A cached rewriting result. PerfectRef entries store the
/// subsumption-pruned UCQ plus the pre-pruning disjunct count (for the
/// timings line).
#[derive(Debug, Clone)]
enum CachedRewriting {
    PerfectRef { ucq: Ucq, raw_len: usize },
    Presto(PrestoRewriting),
}

/// Hit/miss counters for the rewrite cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the rewriter.
    pub misses: u64,
}

/// Rewrite cache: canonical CQ (+ mode) → rewriting, valid for one TBox
/// epoch. Entries are shared via `Arc` so a hit is a pointer clone, not
/// a deep copy of a possibly-large UCQ.
#[derive(Debug, Clone, Default)]
struct RewriteCache {
    epoch: u64,
    entries: HashMap<(RewritingMode, ConjunctiveQuery), Arc<CachedRewriting>>,
    stats: RewriteCacheStats,
}

impl RewriteCache {
    fn get(&mut self, key: &(RewritingMode, ConjunctiveQuery)) -> Option<Arc<CachedRewriting>> {
        let hit = self.entries.get(key).map(Arc::clone);
        if hit.is_some() {
            self.stats.hits += 1;
        }
        hit
    }

    fn insert(&mut self, key: (RewritingMode, ConjunctiveQuery), value: Arc<CachedRewriting>) {
        self.stats.misses += 1;
        if self.entries.len() >= REWRITE_CACHE_CAP {
            self.entries.clear();
        }
        self.entries.insert(key, value);
    }

    fn invalidate(&mut self) {
        self.epoch += 1;
        self.entries.clear();
    }
}

fn timings_enabled() -> bool {
    std::env::var_os("QUONTO_TIMINGS").is_some_and(|v| v == "1")
}

/// Default evaluation-thread knob: `QUONTO_THREADS` if set and numeric,
/// else 1 (sequential). `0` means "all available cores", matching the
/// convention of `quonto`'s parallel closure engines.
fn default_eval_threads() -> usize {
    std::env::var("QUONTO_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

fn rewrite_perfectref_pruned(q: &ConjunctiveQuery, tbox: &Tbox) -> CachedRewriting {
    let raw = perfect_ref(q, tbox);
    let raw_len = raw.len();
    let ucq = if pruning_disabled() || raw_len > crate::rewrite::subsume::PRUNE_DISJUNCT_CAP {
        raw
    } else {
        prune_ucq(&raw)
    };
    CachedRewriting::PerfectRef { ucq, raw_len }
}

/// A complete OBDA system: TBox + classification + mappings + sources.
#[derive(Debug, Clone)]
pub struct ObdaSystem {
    /// The ontology TBox.
    pub tbox: Tbox,
    /// The (pre-computed) classification of the TBox.
    pub classification: Classification,
    /// Mapping assertions.
    pub mappings: MappingSet,
    /// The source database.
    pub db: Database,
    /// Rewriting algorithm (default: Presto).
    pub rewriting: RewritingMode,
    /// Data access mode (default: virtual).
    pub data: DataMode,
    /// Cached materialized ABox (built on first use in materialized
    /// mode).
    materialized: Option<Abox>,
    /// Secondary-index over `materialized`, same lifecycle.
    abox_index: Option<AboxIndex>,
    /// Rewrite cache for the current TBox epoch.
    rewrite_cache: RewriteCache,
    /// UCQ evaluation threads (0 = all cores).
    eval_threads: usize,
}

impl ObdaSystem {
    /// Assembles a system, classifying the TBox and validating the
    /// mappings against the source schema.
    pub fn new(tbox: Tbox, mappings: MappingSet, db: Database) -> Result<Self, ObdaError> {
        mappings.validate(&db)?;
        let classification = Classification::classify(&tbox);
        Ok(ObdaSystem {
            tbox,
            classification,
            mappings,
            db,
            rewriting: RewritingMode::Presto,
            data: DataMode::Virtual,
            materialized: None,
            abox_index: None,
            rewrite_cache: RewriteCache::default(),
            eval_threads: default_eval_threads(),
        })
    }

    /// Switches the rewriting mode.
    pub fn with_rewriting(mut self, mode: RewritingMode) -> Self {
        self.rewriting = mode;
        self
    }

    /// Switches the data-access mode.
    pub fn with_data_mode(mut self, mode: DataMode) -> Self {
        self.data = mode;
        self
    }

    /// Sets the number of threads for materialized UCQ evaluation
    /// (`0` = all available cores).
    pub fn with_eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = threads;
        self
    }

    /// Drops all cached rewritings and bumps the TBox epoch. Call after
    /// mutating `tbox`/`classification` directly.
    pub fn invalidate_rewrites(&mut self) {
        self.rewrite_cache.invalidate();
    }

    /// Drops the materialized ABox and its index. Call after the source
    /// database or the mappings change.
    pub fn invalidate_abox(&mut self) {
        self.materialized = None;
        self.abox_index = None;
    }

    /// Rewrite-cache hit/miss counters.
    pub fn rewrite_cache_stats(&self) -> RewriteCacheStats {
        self.rewrite_cache.stats
    }

    /// Current TBox epoch (bumped by [`Self::invalidate_rewrites`]).
    pub fn tbox_epoch(&self) -> u64 {
        self.rewrite_cache.epoch
    }

    fn ensure_materialized(&mut self) -> Result<(), ObdaError> {
        if self.materialized.is_none() {
            self.materialized = Some(materialize(&self.mappings, &self.db)?);
            self.abox_index = None;
        }
        if self.abox_index.is_none() {
            self.abox_index = Some(AboxIndex::build(
                self.materialized.as_ref().expect("just materialized"),
            ));
        }
        Ok(())
    }

    /// The materialized ABox (computing and caching it on first use).
    pub fn materialized_abox(&mut self) -> Result<&Abox, ObdaError> {
        self.ensure_materialized()?;
        Ok(self.materialized.as_ref().expect("just set"))
    }

    /// Parses a query in the concrete CQ syntax against the TBox
    /// signature.
    pub fn parse_query(&self, text: &str) -> Result<ConjunctiveQuery, ObdaError> {
        Ok(parse_cq(text, &self.tbox.sig)?)
    }

    /// Answers a query given as text.
    pub fn answer(&mut self, text: &str) -> Result<Answers, ObdaError> {
        let t0 = Instant::now();
        let q = self.parse_query(text)?;
        let parse_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.answer_cq_timed(&q, parse_ms)
    }

    /// Answers a SPARQL query (SELECT returns tuples in projection
    /// order; ASK returns ∅ or the empty tuple).
    pub fn answer_sparql(&mut self, text: &str) -> Result<Answers, ObdaError> {
        let t0 = Instant::now();
        let q = crate::sparql::parse_sparql(text, &self.tbox.sig)?;
        let parse_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.answer_cq_timed(&q.cq, parse_ms)
    }

    /// Answers a parsed CQ under the configured modes.
    pub fn answer_cq(&mut self, q: &ConjunctiveQuery) -> Result<Answers, ObdaError> {
        self.answer_cq_timed(q, 0.0)
    }

    /// Looks up (or computes and caches) the rewriting of `q` under the
    /// current mode. Returns the rewriting and whether it was a hit.
    fn rewritten(&mut self, q: &ConjunctiveQuery) -> (Arc<CachedRewriting>, bool) {
        let key = (self.rewriting, q.canonical());
        if let Some(hit) = self.rewrite_cache.get(&key) {
            return (hit, true);
        }
        let value = Arc::new(match self.rewriting {
            RewritingMode::PerfectRef => rewrite_perfectref_pruned(q, &self.tbox),
            RewritingMode::Presto => {
                CachedRewriting::Presto(presto_rewrite(q, &self.classification))
            }
        });
        self.rewrite_cache.insert(key, Arc::clone(&value));
        (value, false)
    }

    fn answer_cq_timed(
        &mut self,
        q: &ConjunctiveQuery,
        parse_ms: f64,
    ) -> Result<Answers, ObdaError> {
        let t0 = Instant::now();
        let (rw, cache_hit) = self.rewritten(q);
        let rewrite_ms = t0.elapsed().as_secs_f64() * 1e3;
        let threads = resolve_threads(self.eval_threads);

        let t1 = Instant::now();
        let (answers, raw_len, pruned_len) = match (&*rw, self.data) {
            (CachedRewriting::PerfectRef { ucq, raw_len }, DataMode::Virtual) => {
                let answers = answer_ucq_virtual(ucq, &self.mappings, &self.db)?;
                (answers, *raw_len, ucq.len())
            }
            (CachedRewriting::PerfectRef { ucq, raw_len }, DataMode::Materialized) => {
                self.ensure_materialized()?;
                let abox = self.materialized.as_ref().expect("ensured");
                let index = self.abox_index.as_ref().expect("ensured");
                let answers = evaluate_ucq_parallel(ucq, abox, index, threads);
                (answers, *raw_len, ucq.len())
            }
            (CachedRewriting::Presto(rw), DataMode::Virtual) => {
                let answers =
                    answer_presto_virtual(rw, &self.classification, &self.mappings, &self.db)?;
                (answers, rw.len(), rw.len())
            }
            (CachedRewriting::Presto(rw), DataMode::Materialized) => {
                self.ensure_materialized()?;
                let abox = self.materialized.as_ref().expect("ensured");
                let mut answers = Answers::new();
                for vq in &rw.queries {
                    answers.extend(evaluate_view_query(vq, &self.classification, abox));
                }
                (answers, rw.len(), rw.len())
            }
        };
        if timings_enabled() {
            let eval_ms = t1.elapsed().as_secs_f64() * 1e3;
            eprintln!(
                "mastro-timings rewriting={:?} data={:?} parse_ms={parse_ms:.2} rewrite_ms={rewrite_ms:.2} cache={} ucq={raw_len} pruned={pruned_len} eval_ms={eval_ms:.2} threads={threads} answers={}",
                self.rewriting,
                self.data,
                if cache_hit { "hit" } else { "miss" },
                answers.len(),
            );
        }
        Ok(answers)
    }

    /// Explains how a query would be answered under the current modes:
    /// the parsed query, the rewriting (disjuncts or view skeletons), and
    /// the flat SQL the unfolding produces (virtual mode only).
    pub fn explain(&self, text: &str) -> Result<String, ObdaError> {
        use std::fmt::Write as _;
        let q = self.parse_query(text)?;
        let mut out = String::new();
        let _ = writeln!(out, "query: {}", crate::query::print_cq(&q, &self.tbox.sig));
        match self.rewriting {
            RewritingMode::PerfectRef => {
                // Same pruning policy as the answer path, including the
                // PRUNE_DISJUNCT_CAP gate — explaining a query must not
                // cost quadratically more than answering it.
                let CachedRewriting::PerfectRef { ucq, raw_len } =
                    rewrite_perfectref_pruned(&q, &self.tbox)
                else {
                    unreachable!("PerfectRef mode rewrites to a UCQ")
                };
                let _ = writeln!(
                    out,
                    "rewriting: PerfectRef, {} CQ disjunct(s) ({} before pruning)",
                    ucq.len(),
                    raw_len
                );
                for (i, d) in ucq.disjuncts.iter().enumerate().take(8) {
                    let _ = writeln!(out, "  [{i}] {}", crate::query::print_cq(d, &self.tbox.sig));
                }
                if ucq.len() > 8 {
                    let _ = writeln!(out, "  … {} more", ucq.len() - 8);
                }
                if self.data == DataMode::Virtual {
                    let mut shown = 0usize;
                    let mut total = 0usize;
                    let mut sql_lines = String::new();
                    for d in &ucq.disjuncts {
                        let combos =
                            crate::rewrite::unfold::unfold_cq(d, &self.mappings, &self.db)?;
                        total += combos.len();
                        for combo in combos {
                            if shown < 6 {
                                let _ = writeln!(
                                    sql_lines,
                                    "  {}",
                                    obda_sqlstore::print_select_core(&combo.core)
                                );
                                shown += 1;
                            }
                        }
                    }
                    let _ = writeln!(out, "unfolding: {total} flat SQL quer(ies)");
                    out.push_str(&sql_lines);
                    if total > shown {
                        let _ = writeln!(out, "  … {} more", total - shown);
                    }
                }
            }
            RewritingMode::Presto => {
                let rw = presto_rewrite(&q, &self.classification);
                let _ = writeln!(out, "rewriting: Presto, {} view skeleton(s)", rw.len());
                if self.data == DataMode::Virtual {
                    let mut shown = 0usize;
                    let mut total = 0usize;
                    let mut sql_lines = String::new();
                    for vq in &rw.queries {
                        let combos = crate::rewrite::unfold::unfold_view_query(
                            vq,
                            &self.classification,
                            &self.mappings,
                            &self.db,
                        )?;
                        total += combos.len();
                        for combo in combos {
                            if shown < 6 {
                                let _ = writeln!(
                                    sql_lines,
                                    "  {}",
                                    obda_sqlstore::print_select_core(&combo.core)
                                );
                                shown += 1;
                            }
                        }
                    }
                    let _ = writeln!(out, "unfolding: {total} flat SQL quer(ies)");
                    out.push_str(&sql_lines);
                    if total > shown {
                        let _ = writeln!(out, "  … {} more", total - shown);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Instance checking (Section 5 lists it among the extensional
    /// reasoning services): whether `individual` is a certain instance of
    /// the named concept, through the full rewriting pipeline.
    pub fn is_instance_of(&mut self, individual: &str, concept: &str) -> Result<bool, ObdaError> {
        let c = self
            .tbox
            .sig
            .find_concept(concept)
            .ok_or_else(|| QueryParseError {
                message: format!("unknown concept `{concept}`"),
            })?;
        let q = ConjunctiveQuery {
            head: vec![],
            atoms: vec![crate::query::Atom::Concept(
                c,
                crate::query::Term::Const(individual.to_owned()),
            )],
        };
        Ok(!self.answer_cq(&q)?.is_empty())
    }

    /// Runs the consistency check over the virtual knowledge base.
    pub fn check_consistency(&self) -> Result<Vec<Violation>, ObdaError> {
        Ok(check_consistency(
            &self.tbox,
            &self.classification,
            &self.mappings,
            &self.db,
        )?)
    }
}

/// An ABox-backed system (no mappings/SQL): the simple entry point used
/// by the quickstart example and by tests. Carries the same fast path
/// as [`ObdaSystem`]: a persistent [`AboxIndex`] built at construction
/// and a rewrite cache (interior-mutable, so [`Self::answer`] stays
/// `&self`).
#[derive(Debug, Clone)]
pub struct AboxSystem {
    /// The ontology TBox.
    pub tbox: Tbox,
    /// The classification.
    pub classification: Classification,
    /// The explicit ABox. Rebuild the index with
    /// [`Self::refresh_index`] after mutating it.
    pub abox: Abox,
    index: AboxIndex,
    rewrite_cache: RefCell<RewriteCache>,
    eval_threads: usize,
}

impl AboxSystem {
    /// Classifies the TBox, wraps and indexes the ABox.
    pub fn new(tbox: Tbox, abox: Abox) -> Self {
        let classification = Classification::classify(&tbox);
        let index = AboxIndex::build(&abox);
        AboxSystem {
            tbox,
            classification,
            abox,
            index,
            rewrite_cache: RefCell::new(RewriteCache::default()),
            eval_threads: default_eval_threads(),
        }
    }

    /// Sets the number of threads for UCQ evaluation (`0` = all cores).
    pub fn with_eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = threads;
        self
    }

    /// Rebuilds the ABox index after `abox` was mutated.
    pub fn refresh_index(&mut self) {
        self.index = AboxIndex::build(&self.abox);
    }

    /// Drops cached rewritings (call after mutating `tbox`).
    pub fn invalidate_rewrites(&mut self) {
        self.rewrite_cache.borrow_mut().invalidate();
    }

    /// Rewrite-cache hit/miss counters.
    pub fn rewrite_cache_stats(&self) -> RewriteCacheStats {
        self.rewrite_cache.borrow().stats
    }

    /// Answers a query (text) with PerfectRef over the ABox.
    pub fn answer(&self, text: &str) -> Result<Answers, ObdaError> {
        let t0 = Instant::now();
        let q = parse_cq(text, &self.tbox.sig)?;
        let parse_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let key = (RewritingMode::PerfectRef, q.canonical());
        // Bind the lookup so the RefCell borrow ends before the miss
        // arm re-borrows for insertion.
        let cached = self.rewrite_cache.borrow_mut().get(&key);
        let (entry, cache_hit) = match cached {
            Some(hit) => (hit, true),
            None => {
                let value = Arc::new(rewrite_perfectref_pruned(&q, &self.tbox));
                self.rewrite_cache
                    .borrow_mut()
                    .insert(key, Arc::clone(&value));
                (value, false)
            }
        };
        let rewrite_ms = t1.elapsed().as_secs_f64() * 1e3;
        let CachedRewriting::PerfectRef { ucq, raw_len } = &*entry else {
            unreachable!("AboxSystem caches only PerfectRef rewritings")
        };

        let threads = resolve_threads(self.eval_threads);
        let t2 = Instant::now();
        let answers = evaluate_ucq_parallel(ucq, &self.abox, &self.index, threads);
        if timings_enabled() {
            let eval_ms = t2.elapsed().as_secs_f64() * 1e3;
            eprintln!(
                "mastro-timings rewriting=PerfectRef data=Abox parse_ms={parse_ms:.2} rewrite_ms={rewrite_ms:.2} cache={} ucq={raw_len} pruned={} eval_ms={eval_ms:.2} threads={threads} answers={}",
                if cache_hit { "hit" } else { "miss" },
                ucq.len(),
                answers.len(),
            );
        }
        Ok(answers)
    }
}
