//! The [`ObdaSystem`] facade: ontology + mappings + sources, with query
//! answering in four modes (rewriting × data access).

use obda_dllite::{Abox, Tbox};
use obda_mapping::{materialize, MappingSet};
use obda_sqlstore::{Database, SqlError};
use quonto::Classification;

use crate::answer::Answers;
use crate::consistency::{check_consistency, Violation};
use crate::query::{parse_cq, ConjunctiveQuery, QueryParseError};
use crate::rewrite::perfectref::perfect_ref;
use crate::rewrite::presto::{evaluate_view_query, presto_rewrite};
use crate::rewrite::unfold::{answer_presto_virtual, answer_ucq_virtual};

/// Which rewriting algorithm drives answering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewritingMode {
    /// Classic PerfectRef UCQ rewriting.
    PerfectRef,
    /// Classification-aware Presto-style view rewriting.
    Presto,
}

/// How the data is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    /// Unfold into SQL over the sources (virtual ABox).
    Virtual,
    /// Evaluate over the materialized ABox.
    Materialized,
}

/// Errors surfaced by the system facade.
#[derive(Debug)]
pub enum ObdaError {
    /// Query text failed to parse.
    Query(QueryParseError),
    /// SQL-level failure (planning, execution, mapping validation).
    Sql(SqlError),
}

impl std::fmt::Display for ObdaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObdaError::Query(e) => write!(f, "query error: {e}"),
            ObdaError::Sql(e) => write!(f, "sql error: {e}"),
        }
    }
}

impl std::error::Error for ObdaError {}

impl From<QueryParseError> for ObdaError {
    fn from(e: QueryParseError) -> Self {
        ObdaError::Query(e)
    }
}

impl From<SqlError> for ObdaError {
    fn from(e: SqlError) -> Self {
        ObdaError::Sql(e)
    }
}

/// A complete OBDA system: TBox + classification + mappings + sources.
#[derive(Debug, Clone)]
pub struct ObdaSystem {
    /// The ontology TBox.
    pub tbox: Tbox,
    /// The (pre-computed) classification of the TBox.
    pub classification: Classification,
    /// Mapping assertions.
    pub mappings: MappingSet,
    /// The source database.
    pub db: Database,
    /// Rewriting algorithm (default: Presto).
    pub rewriting: RewritingMode,
    /// Data access mode (default: virtual).
    pub data: DataMode,
    /// Cached materialized ABox (built on first use in materialized
    /// mode).
    materialized: Option<Abox>,
}

impl ObdaSystem {
    /// Assembles a system, classifying the TBox and validating the
    /// mappings against the source schema.
    pub fn new(tbox: Tbox, mappings: MappingSet, db: Database) -> Result<Self, ObdaError> {
        mappings.validate(&db)?;
        let classification = Classification::classify(&tbox);
        Ok(ObdaSystem {
            tbox,
            classification,
            mappings,
            db,
            rewriting: RewritingMode::Presto,
            data: DataMode::Virtual,
            materialized: None,
        })
    }

    /// Switches the rewriting mode.
    pub fn with_rewriting(mut self, mode: RewritingMode) -> Self {
        self.rewriting = mode;
        self
    }

    /// Switches the data-access mode.
    pub fn with_data_mode(mut self, mode: DataMode) -> Self {
        self.data = mode;
        self
    }

    /// The materialized ABox (computing and caching it on first use).
    pub fn materialized_abox(&mut self) -> Result<&Abox, ObdaError> {
        if self.materialized.is_none() {
            self.materialized = Some(materialize(&self.mappings, &self.db)?);
        }
        Ok(self.materialized.as_ref().expect("just set"))
    }

    /// Parses a query in the concrete CQ syntax against the TBox
    /// signature.
    pub fn parse_query(&self, text: &str) -> Result<ConjunctiveQuery, ObdaError> {
        Ok(parse_cq(text, &self.tbox.sig)?)
    }

    /// Answers a query given as text.
    pub fn answer(&mut self, text: &str) -> Result<Answers, ObdaError> {
        let q = self.parse_query(text)?;
        self.answer_cq(&q)
    }

    /// Answers a SPARQL query (SELECT returns tuples in projection
    /// order; ASK returns ∅ or the empty tuple).
    pub fn answer_sparql(&mut self, text: &str) -> Result<Answers, ObdaError> {
        let q = crate::sparql::parse_sparql(text, &self.tbox.sig)?;
        self.answer_cq(&q.cq)
    }

    /// Answers a parsed CQ under the configured modes.
    pub fn answer_cq(&mut self, q: &ConjunctiveQuery) -> Result<Answers, ObdaError> {
        match (self.rewriting, self.data) {
            (RewritingMode::PerfectRef, DataMode::Virtual) => {
                let ucq = perfect_ref(q, &self.tbox);
                Ok(answer_ucq_virtual(&ucq, &self.mappings, &self.db)?)
            }
            (RewritingMode::Presto, DataMode::Virtual) => {
                let rw = presto_rewrite(q, &self.classification);
                Ok(answer_presto_virtual(
                    &rw,
                    &self.classification,
                    &self.mappings,
                    &self.db,
                )?)
            }
            (RewritingMode::PerfectRef, DataMode::Materialized) => {
                let ucq = perfect_ref(q, &self.tbox);
                let abox = self.materialized_abox()?.clone();
                Ok(crate::answer::evaluate_ucq(&ucq, &abox))
            }
            (RewritingMode::Presto, DataMode::Materialized) => {
                let rw = presto_rewrite(q, &self.classification);
                let abox = self.materialized_abox()?.clone();
                let mut answers = Answers::new();
                for vq in &rw.queries {
                    answers.extend(evaluate_view_query(vq, &self.classification, &abox));
                }
                Ok(answers)
            }
        }
    }

    /// Explains how a query would be answered under the current modes:
    /// the parsed query, the rewriting (disjuncts or view skeletons), and
    /// the flat SQL the unfolding produces (virtual mode only).
    pub fn explain(&self, text: &str) -> Result<String, ObdaError> {
        use std::fmt::Write as _;
        let q = self.parse_query(text)?;
        let mut out = String::new();
        let _ = writeln!(out, "query: {}", crate::query::print_cq(&q, &self.tbox.sig));
        match self.rewriting {
            RewritingMode::PerfectRef => {
                let ucq = perfect_ref(&q, &self.tbox);
                let _ = writeln!(out, "rewriting: PerfectRef, {} CQ disjunct(s)", ucq.len());
                for (i, d) in ucq.disjuncts.iter().enumerate().take(8) {
                    let _ = writeln!(out, "  [{i}] {}", crate::query::print_cq(d, &self.tbox.sig));
                }
                if ucq.len() > 8 {
                    let _ = writeln!(out, "  … {} more", ucq.len() - 8);
                }
                if self.data == DataMode::Virtual {
                    let mut shown = 0usize;
                    let mut total = 0usize;
                    let mut sql_lines = String::new();
                    for d in &ucq.disjuncts {
                        let combos =
                            crate::rewrite::unfold::unfold_cq(d, &self.mappings, &self.db)?;
                        total += combos.len();
                        for combo in combos {
                            if shown < 6 {
                                let _ = writeln!(
                                    sql_lines,
                                    "  {}",
                                    obda_sqlstore::print_select_core(&combo.core)
                                );
                                shown += 1;
                            }
                        }
                    }
                    let _ = writeln!(out, "unfolding: {total} flat SQL quer(ies)");
                    out.push_str(&sql_lines);
                    if total > shown {
                        let _ = writeln!(out, "  … {} more", total - shown);
                    }
                }
            }
            RewritingMode::Presto => {
                let rw = presto_rewrite(&q, &self.classification);
                let _ = writeln!(out, "rewriting: Presto, {} view skeleton(s)", rw.len());
                if self.data == DataMode::Virtual {
                    let mut shown = 0usize;
                    let mut total = 0usize;
                    let mut sql_lines = String::new();
                    for vq in &rw.queries {
                        let combos = crate::rewrite::unfold::unfold_view_query(
                            vq,
                            &self.classification,
                            &self.mappings,
                            &self.db,
                        )?;
                        total += combos.len();
                        for combo in combos {
                            if shown < 6 {
                                let _ = writeln!(
                                    sql_lines,
                                    "  {}",
                                    obda_sqlstore::print_select_core(&combo.core)
                                );
                                shown += 1;
                            }
                        }
                    }
                    let _ = writeln!(out, "unfolding: {total} flat SQL quer(ies)");
                    out.push_str(&sql_lines);
                    if total > shown {
                        let _ = writeln!(out, "  … {} more", total - shown);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Instance checking (Section 5 lists it among the extensional
    /// reasoning services): whether `individual` is a certain instance of
    /// the named concept, through the full rewriting pipeline.
    pub fn is_instance_of(&mut self, individual: &str, concept: &str) -> Result<bool, ObdaError> {
        let c = self
            .tbox
            .sig
            .find_concept(concept)
            .ok_or_else(|| QueryParseError {
                message: format!("unknown concept `{concept}`"),
            })?;
        let q = ConjunctiveQuery {
            head: vec![],
            atoms: vec![crate::query::Atom::Concept(
                c,
                crate::query::Term::Const(individual.to_owned()),
            )],
        };
        Ok(!self.answer_cq(&q)?.is_empty())
    }

    /// Runs the consistency check over the virtual knowledge base.
    pub fn check_consistency(&self) -> Result<Vec<Violation>, ObdaError> {
        Ok(check_consistency(
            &self.tbox,
            &self.classification,
            &self.mappings,
            &self.db,
        )?)
    }
}

/// An ABox-backed system (no mappings/SQL): the simple entry point used
/// by the quickstart example and by tests.
#[derive(Debug, Clone)]
pub struct AboxSystem {
    /// The ontology TBox.
    pub tbox: Tbox,
    /// The classification.
    pub classification: Classification,
    /// The explicit ABox.
    pub abox: Abox,
}

impl AboxSystem {
    /// Classifies the TBox and wraps the ABox.
    pub fn new(tbox: Tbox, abox: Abox) -> Self {
        let classification = Classification::classify(&tbox);
        AboxSystem {
            tbox,
            classification,
            abox,
        }
    }

    /// Answers a query (text) with PerfectRef over the ABox.
    pub fn answer(&self, text: &str) -> Result<Answers, ObdaError> {
        let q = parse_cq(text, &self.tbox.sig)?;
        let ucq = perfect_ref(&q, &self.tbox);
        Ok(crate::answer::evaluate_ucq(&ucq, &self.abox))
    }
}
