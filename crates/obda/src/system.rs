//! The [`ObdaSystem`] facade: ontology + mappings + sources, with query
//! answering in four modes (rewriting × data access).
//!
//! ## Query-answering fast path
//!
//! Answering reuses work across queries through two epoch-guarded
//! caches:
//!
//! * a **rewrite cache** keyed by `(RewritingMode, canonical CQ)` —
//!   rewriting depends only on the TBox, so the result is valid until
//!   [`ObdaSystem::invalidate_rewrites`] bumps the TBox epoch;
//! * a **persistent ABox index** ([`AboxIndex`]) built once per
//!   materialized ABox and reused by every materialized-mode query
//!   until [`ObdaSystem::invalidate_abox`].
//!
//! PerfectRef rewritings are subsumption-pruned before caching (set
//! `QUONTO_NO_PRUNE=1` to keep the raw UCQ for cross-checking), and the
//! materialized evaluation shards disjuncts over scoped threads
//! (`with_eval_threads`, default from `QUONTO_THREADS`, `0` = all
//! cores).
//!
//! ## Tracing
//!
//! Every answering path threads an [`obda_obs::TraceCtx`] and records
//! phase spans (`parse`, `rewrite` with nested `perfectref` /
//! `presto` / `prune`, `unfold`, `sql`, `eval`) plus counters
//! (disjuncts before/after pruning, cache hit, SQL rows scanned). The
//! untraced entry points create a context themselves iff the engine's
//! trace sink is enabled (`QUONTO_TIMINGS`: `1` = legacy
//! `mastro-timings` stderr lines, `json` = JSON-lines; override per
//! engine with [`crate::SystemBuilder::trace_sink`]). The serving
//! layer instead passes its own context via
//! [`crate::QueryEngine::answer_traced`] and publishes the finished
//! trace to the global ring for the `TRACE` verb.
//!
//! ## Concurrency
//!
//! Every read-only entry point (`answer`, `answer_sparql`, `answer_cq`,
//! `is_instance_of`, `explain`, `check_consistency`) takes `&self`: the
//! rewrite cache lives behind a `Mutex` and the materialized ABox (plus
//! its index) behind a `Mutex<Option<Arc<…>>>`, so one loaded system can
//! be shared across N server worker threads (`obda-server` does exactly
//! this). Rewriting and evaluation both run *outside* the locks — the
//! critical sections are hash-map lookups and `Arc` clones.
//!
//! ## Write path
//!
//! [`crate::QueryEngine::apply_delta`] applies an [`crate::AboxDelta`]
//! batch *incrementally* (see [`crate::delta`]): [`AboxSystem`] keeps
//! its ABox + index + version behind an `RwLock` and patches them in
//! place; [`ObdaSystem`] (materialized mode only) patches the
//! materialized ABox via `Arc::make_mut` — in-flight readers keep their
//! pre-batch snapshot, the steady state is zero-copy. Data-only writes
//! bump an **ABox version**, not the TBox epoch: the rewrite cache is
//! keyed on the TBox epoch alone and stays warm across writes, while
//! the NDL view memo keys on the ([`DataEpoch`]) pair of both.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use quonto::sync::{lock_or_recover, read_or_recover, write_or_recover};

use obda_dllite::{Abox, Tbox};
use obda_mapping::{materialize, Ebox, MappingSet};
use obda_obs::{registry, span, Counter, Histogram, TraceCtx, TraceSink};
use obda_sqlstore::Database;
use quonto::Classification;

use crate::answer::{evaluate_ucq_parallel_traced, AboxIndex, Answers};
use crate::consistency::{check_consistency, Violation};
use crate::delta::{
    apply_to_store, maintain_memo, record_batch, resolve_delta, AboxDelta, DeltaSummary,
    ResolvedFact,
};
use crate::ebox::{
    ebox_pruned_disjuncts_total, ebox_retracted_total, infer_from_index, infer_from_mappings,
    revalidate, EboxMode, EboxState,
};
use crate::engine::{run_with_engine_trace, EngineStats, QueryEngine, QueryLang};
use crate::query::{parse_cq, ConjunctiveQuery, QueryParseError, Ucq};
use crate::rewrite::eboxprune::{exact_covers, prune_ucq_ebox};
use crate::rewrite::ndl::{
    answer_ndl_indexed_traced, answer_ndl_virtual_traced, ndl_compile, ndl_compile_traced_ebox,
    DataEpoch, NdlProgram, ViewMemo,
};
use crate::rewrite::perfectref::perfect_ref_traced;
use crate::rewrite::presto::{
    evaluate_view_query_ebox, presto_rewrite, presto_rewrite_traced, PrestoRewriting,
};
use crate::rewrite::subsume::{prune_cap, prune_ucq_traced, pruning_disabled};
use crate::rewrite::unfold::{answer_presto_virtual_traced, answer_ucq_virtual_traced};

pub use crate::error::{ErrorPhase, ObdaError};

/// Which rewriting algorithm drives answering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RewritingMode {
    /// Classic PerfectRef UCQ rewriting.
    PerfectRef,
    /// Classification-aware Presto-style view rewriting.
    Presto,
    /// Nonrecursive-datalog target: Presto skeletons over shared,
    /// memoized view extents (polynomial program size).
    Ndl,
}

impl RewritingMode {
    pub fn as_str(self) -> &'static str {
        match self {
            RewritingMode::PerfectRef => "PerfectRef",
            RewritingMode::Presto => "Presto",
            RewritingMode::Ndl => "Ndl",
        }
    }
}

/// The one config spelling (`perfectref` / `presto` / `ndl`) shared by
/// the server JSON config, the loadgen flags, and
/// [`crate::EngineConfig::set`].
impl std::str::FromStr for RewritingMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "perfectref" => Ok(RewritingMode::PerfectRef),
            "presto" => Ok(RewritingMode::Presto),
            "ndl" => Ok(RewritingMode::Ndl),
            other => Err(format!(
                "unknown rewriting `{other}` (expected `perfectref`, `presto`, or `ndl`)"
            )),
        }
    }
}

/// How the data is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    /// Unfold into SQL over the sources (virtual ABox).
    Virtual,
    /// Evaluate over the materialized ABox.
    Materialized,
}

impl DataMode {
    pub fn as_str(self) -> &'static str {
        match self {
            DataMode::Virtual => "Virtual",
            DataMode::Materialized => "Materialized",
        }
    }
}

/// The one config spelling (`virtual` / `materialized`) shared by the
/// server JSON config and [`crate::EngineConfig::set`].
impl std::str::FromStr for DataMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "virtual" => Ok(DataMode::Virtual),
            "materialized" => Ok(DataMode::Materialized),
            other => Err(format!(
                "unknown data mode `{other}` (expected `virtual` or `materialized`)"
            )),
        }
    }
}

/// Entry cap before the rewrite cache is wholesale cleared (the
/// workloads the paper targets re-ask a small number of query shapes;
/// a fancier eviction policy is not worth its bookkeeping here).
const REWRITE_CACHE_CAP: usize = 1024;

/// A cached rewriting result. PerfectRef entries store the
/// subsumption-pruned UCQ plus the pre-pruning disjunct count (for the
/// trace counters).
#[derive(Debug, Clone)]
pub(crate) enum CachedRewriting {
    PerfectRef { ucq: Ucq, raw_len: usize },
    Presto(PrestoRewriting),
    Ndl(NdlProgram),
}

/// Hit/miss counters for the rewrite cache. Counters saturate instead of
/// wrapping, so a long-lived serving process can never panic (debug) or
/// silently wrap (release) on overflow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the rewriter.
    pub misses: u64,
}

impl RewriteCacheStats {
    /// Fraction of lookups answered from the cache; `0.0` before any
    /// lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Zeroes both counters (e.g. between load-test phases).
    pub fn reset(&mut self) {
        *self = RewriteCacheStats::default();
    }
}

/// Rewrite cache: canonical CQ (+ mode) → rewriting, valid for one TBox
/// epoch. Entries are shared via `Arc` so a hit is a pointer clone, not
/// a deep copy of a possibly-large UCQ.
#[derive(Debug, Clone, Default)]
pub(crate) struct RewriteCache {
    pub(crate) epoch: u64,
    entries: HashMap<(RewritingMode, ConjunctiveQuery), Arc<CachedRewriting>>,
    pub(crate) stats: RewriteCacheStats,
    /// EBox generation the cached entries were rewritten under. Pruned
    /// rewritings are only sound for the constraints they were pruned
    /// with, so a generation mismatch clears the entries — without
    /// bumping the TBox epoch (the NDL extent memo keys on that epoch
    /// and its extents stay correct: `maintain_memo` patches them from
    /// the *full* member lists).
    ebox_gen: u64,
}

impl RewriteCache {
    /// Aligns the cache with the EBox generation of the caller's
    /// constraint snapshot, dropping entries pruned under another
    /// generation.
    pub(crate) fn sync_ebox_gen(&mut self, gen: u64) {
        if self.ebox_gen != gen {
            self.entries.clear();
            self.ebox_gen = gen;
        }
    }

    pub(crate) fn get(
        &mut self,
        key: &(RewritingMode, ConjunctiveQuery),
    ) -> Option<Arc<CachedRewriting>> {
        let hit = self.entries.get(key).map(Arc::clone);
        if hit.is_some() {
            self.stats.hits = self.stats.hits.saturating_add(1);
        }
        hit
    }

    pub(crate) fn insert(
        &mut self,
        key: (RewritingMode, ConjunctiveQuery),
        value: Arc<CachedRewriting>,
    ) {
        self.stats.misses = self.stats.misses.saturating_add(1);
        if self.entries.len() >= REWRITE_CACHE_CAP {
            self.entries.clear();
        }
        self.entries.insert(key, value);
    }

    pub(crate) fn invalidate(&mut self) {
        self.epoch += 1;
        self.entries.clear();
    }
}

/// Default evaluation-thread knob: `QUONTO_THREADS` if set and numeric,
/// else 1 (sequential). `0` means "all available cores", matching the
/// convention of `quonto`'s parallel closure engines.
fn default_eval_threads() -> usize {
    quonto::env::eval_threads().unwrap_or(1)
}

fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Registry handles bumped once per answered query; resolved once so
/// the hot path is two relaxed atomic ops.
pub(crate) fn query_metrics() -> &'static (Arc<Counter>, Arc<Histogram>) {
    static METRICS: OnceLock<(Arc<Counter>, Arc<Histogram>)> = OnceLock::new();
    METRICS.get_or_init(|| {
        (
            registry().counter("mastro.queries"),
            registry().histogram("mastro.query_us"),
        )
    })
}

/// PerfectRef + subsumption pruning (unless disabled or over the
/// disjunct cap). Returns the final UCQ and the pre-pruning length.
/// Records `perfectref` / `prune` child spans when `ctx` is enabled.
fn rewrite_perfectref_pruned_traced(
    q: &ConjunctiveQuery,
    tbox: &Tbox,
    ctx: &TraceCtx,
) -> (Ucq, usize) {
    let raw = perfect_ref_traced(q, tbox, ctx);
    let raw_len = raw.len();
    let ucq = if pruning_disabled() {
        raw
    } else if raw_len > prune_cap() {
        // Over the disjunct cap: pruning would cost quadratically more
        // than answering, so skip it — but record the fact instead of
        // dropping it on the floor (`QUONTO_PRUNE_CAP` tunes the cap;
        // `RewritingMode::Ndl` avoids the blowup altogether).
        prune_capped_total().add(1);
        ctx.count("prune_capped", 1);
        raw
    } else {
        prune_ucq_traced(&raw, ctx)
    };
    (ucq, raw_len)
}

// Registry handle for the capped-prune counter, resolved once.
obda_obs::counter_handle!(fn prune_capped_total, "rewrite_prune_capped");

/// Untraced variant, kept for `explain` and external callers.
pub(crate) fn rewrite_perfectref_pruned(q: &ConjunctiveQuery, tbox: &Tbox) -> (Ucq, usize) {
    rewrite_perfectref_pruned_traced(q, tbox, &TraceCtx::disabled())
}

/// Cache lookup with the compute running *outside* the lock — the
/// rewriter can be slow and must not serialize unrelated queries. Two
/// threads racing on the same cold query may both rewrite it; the
/// results are identical and the second insert overwrites the first.
/// With the cache disabled, every lookup computes (misses still count).
fn cached_rewriting(
    cache: &Mutex<RewriteCache>,
    enabled: bool,
    ebox_gen: u64,
    key: (RewritingMode, ConjunctiveQuery),
    compute: impl FnOnce() -> CachedRewriting,
) -> (Arc<CachedRewriting>, bool) {
    if enabled {
        let mut guard = lock_or_recover(cache);
        guard.sync_ebox_gen(ebox_gen);
        if let Some(hit) = guard.get(&key) {
            return (hit, true);
        }
    }
    let value = Arc::new(compute());
    let mut guard = lock_or_recover(cache);
    if enabled && guard.ebox_gen == ebox_gen {
        // Skip the insert if a constraint retraction raced the compute:
        // an entry pruned under the older, stronger EBox must not live
        // on under the new generation.
        guard.insert(key, Arc::clone(&value));
    } else {
        guard.stats.misses = guard.stats.misses.saturating_add(1);
    }
    (value, false)
}

/// PerfectRef disjunct pruning against the EBox: the cheap exact-cover
/// short-circuit first (the whole UCQ collapses to the input query),
/// then the empty-predicate drop and the constraint-relaxed pairwise
/// subsumption pass. Runs under an `ebox` child span of `rewrite`.
fn ebox_prune_perfectref(q: &ConjunctiveQuery, ucq: Ucq, ebox: &Ebox, ctx: &TraceCtx) -> Ucq {
    let guard = span!(ctx, "ebox");
    let before = ucq.len();
    let pruned = if exact_covers(q, ebox) {
        Ucq {
            disjuncts: vec![q.clone()],
        }
    } else {
        prune_ucq_ebox(&ucq, ebox).0
    };
    let dropped = before.saturating_sub(pruned.len()) as u64;
    guard.count("ebox_pruned_disjuncts", dropped);
    if dropped > 0 {
        ebox_pruned_disjuncts_total().add(dropped);
    }
    pruned
}

/// The one rewriting front door both systems share: cache lookup +
/// traced rewriting under a `rewrite` span with cache/size counters.
/// `ebox` carries the caller's constraint snapshot (already consistent
/// with the data snapshot it will evaluate against) and `ebox_gen` its
/// generation, keying cache validity.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rewrite_with_cache_traced(
    cache: &Mutex<RewriteCache>,
    cache_enabled: bool,
    mode: RewritingMode,
    tbox: &Tbox,
    classification: &Classification,
    q: &ConjunctiveQuery,
    ebox: Option<&Ebox>,
    ebox_gen: u64,
    ctx: &TraceCtx,
) -> Arc<CachedRewriting> {
    let guard = span!(ctx, "rewrite");
    let (rw, cache_hit) = cached_rewriting(
        cache,
        cache_enabled,
        ebox_gen,
        (mode, q.canonical()),
        || match mode {
            RewritingMode::PerfectRef => {
                let (ucq, raw_len) = rewrite_perfectref_pruned_traced(q, tbox, ctx);
                let ucq = match ebox {
                    Some(e) => ebox_prune_perfectref(q, ucq, e, ctx),
                    None => ucq,
                };
                CachedRewriting::PerfectRef { ucq, raw_len }
            }
            RewritingMode::Presto => {
                CachedRewriting::Presto(presto_rewrite_traced(q, classification, ctx))
            }
            RewritingMode::Ndl => {
                CachedRewriting::Ndl(ndl_compile_traced_ebox(q, classification, ctx, ebox))
            }
        },
    );
    guard.count("cache_hit", u64::from(cache_hit));
    match &*rw {
        CachedRewriting::PerfectRef { ucq, raw_len } => {
            guard.count("ucq_raw", *raw_len as u64);
            guard.count("ucq_pruned", ucq.len() as u64);
        }
        CachedRewriting::Presto(p) => {
            guard.count("ucq_raw", p.len() as u64);
            guard.count("ucq_pruned", p.len() as u64);
        }
        CachedRewriting::Ndl(p) => {
            guard.count("ucq_raw", p.len() as u64);
            guard.count("ucq_pruned", p.len() as u64);
            guard.count("ndl_rules", p.num_rules as u64);
        }
    }
    rw
}

/// The materialized ABox plus its secondary index, built together and
/// shared (behind an `Arc`) by every query that needs it. The write
/// path patches it through `Arc::make_mut` — `Clone` exists so a batch
/// that lands while readers still hold the old snapshot copies once
/// instead of blocking them.
#[derive(Debug, Clone)]
pub struct MaterializedAbox {
    /// The materialized assertions.
    pub abox: Abox,
    /// The secondary index over them.
    pub index: AboxIndex,
}

/// One consistent read of [`ObdaSystem`]'s materialized state: the
/// data snapshot, the EBox constraints inferred at-or-before it (None
/// when the EBox is off), and the EBox generation stamp.
type MaterializedSnapshot = (Arc<MaterializedAbox>, Option<Arc<Ebox>>, u64);

/// A complete OBDA system: TBox + classification + mappings + sources.
#[derive(Debug)]
pub struct ObdaSystem {
    /// The ontology TBox.
    pub tbox: Tbox,
    /// The (pre-computed) classification of the TBox.
    pub classification: Classification,
    /// Mapping assertions.
    pub mappings: MappingSet,
    /// The source database.
    pub db: Database,
    /// Rewriting algorithm (default: Presto).
    pub rewriting: RewritingMode,
    /// Data access mode (default: virtual).
    pub data: DataMode,
    /// Cached materialized ABox + index (built on first use in
    /// materialized mode, shared across threads).
    materialized: Mutex<Option<Arc<MaterializedAbox>>>,
    /// Rewrite cache for the current TBox epoch.
    rewrite_cache: Mutex<RewriteCache>,
    /// Memoized NDL view extents for the current epoch (materialized
    /// mode; also cleared when the ABox is invalidated).
    ndl_memo: Mutex<ViewMemo>,
    /// Monotone ABox version: bumped by every delta batch and by
    /// [`Self::invalidate_abox`]. Data-only changes move this instead of
    /// the TBox epoch, so cached rewritings survive writes.
    abox_version: AtomicU64,
    /// Whether rewritings are cached at all (builder toggle).
    cache_enabled: bool,
    /// UCQ evaluation threads (0 = all cores).
    eval_threads: usize,
    /// EBox knob: off (default), on (mapping-level constraints), or
    /// infer (additionally scan the materialized index).
    ebox_mode: EboxMode,
    /// The live constraint set + generation. Updated under the
    /// `materialized` lock in materialized mode so query snapshots stay
    /// consistent with the data they evaluate.
    ebox: Mutex<EboxState>,
    /// Sink for traces of untraced `answer` calls.
    sink: Arc<dyn TraceSink>,
}

impl Clone for ObdaSystem {
    fn clone(&self) -> Self {
        ObdaSystem {
            tbox: self.tbox.clone(),
            classification: self.classification.clone(),
            mappings: self.mappings.clone(),
            db: self.db.clone(),
            rewriting: self.rewriting,
            data: self.data,
            materialized: Mutex::new(lock_or_recover(&self.materialized).clone()),
            rewrite_cache: Mutex::new(lock_or_recover(&self.rewrite_cache).clone()),
            // The clone starts with a cold extent memo (it's a cache).
            ndl_memo: Mutex::new(ViewMemo::default()),
            abox_version: AtomicU64::new(self.abox_version.load(Ordering::Relaxed)),
            cache_enabled: self.cache_enabled,
            eval_threads: self.eval_threads,
            ebox_mode: self.ebox_mode,
            ebox: Mutex::new(lock_or_recover(&self.ebox).clone()),
            sink: Arc::clone(&self.sink),
        }
    }
}

impl ObdaSystem {
    /// Assembles a system, classifying the TBox and validating the
    /// mappings against the source schema. Defaults come from the
    /// environment knobs; prefer [`crate::SystemBuilder`] to set them
    /// explicitly.
    pub fn new(tbox: Tbox, mappings: MappingSet, db: Database) -> Result<Self, ObdaError> {
        mappings
            .validate(&db)
            .map_err(|e| ObdaError::sql(ErrorPhase::Validate, e))?;
        let classification = Classification::classify(&tbox);
        Ok(ObdaSystem {
            tbox,
            classification,
            mappings,
            db,
            rewriting: RewritingMode::Presto,
            data: DataMode::Virtual,
            materialized: Mutex::new(None),
            rewrite_cache: Mutex::new(RewriteCache::default()),
            ndl_memo: Mutex::new(ViewMemo::default()),
            abox_version: AtomicU64::new(0),
            cache_enabled: true,
            eval_threads: default_eval_threads(),
            ebox_mode: EboxMode::Off,
            ebox: Mutex::new(EboxState::default()),
            sink: obda_obs::sink::from_env(),
        })
    }

    /// Switches the rewriting mode.
    pub fn with_rewriting(mut self, mode: RewritingMode) -> Self {
        self.rewriting = mode;
        self
    }

    /// Switches the EBox mode. `On` and `Infer` both seed the constraint
    /// set from the mappings (source-containment and unmapped-predicate
    /// analysis — valid for every source state); `Infer` additionally
    /// re-infers from the materialized index when one is built.
    pub fn with_ebox_mode(mut self, mode: EboxMode) -> Self {
        self.ebox_mode = mode;
        self.ebox = Mutex::new(EboxState::new(self.static_ebox()));
        self
    }

    /// The configured EBox mode.
    pub fn ebox_mode(&self) -> EboxMode {
        self.ebox_mode
    }

    /// Number of live EBox constraints (inclusions + empties + exacts).
    pub fn ebox_constraints(&self) -> usize {
        lock_or_recover(&self.ebox).ebox.constraint_count()
    }

    /// The mapping-level constraint set for the current mode: empty when
    /// off, inferred from the mappings otherwise.
    fn static_ebox(&self) -> obda_mapping::Ebox {
        if self.ebox_mode.enabled() {
            infer_from_mappings(&self.tbox, &self.classification, &self.mappings, &self.db)
        } else {
            obda_mapping::Ebox::new()
        }
    }

    /// Switches the data-access mode.
    pub fn with_data_mode(mut self, mode: DataMode) -> Self {
        self.data = mode;
        self
    }

    /// Sets the number of threads for materialized UCQ evaluation
    /// (`0` = all available cores).
    pub fn with_eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = threads;
        self
    }

    /// Enables/disables the rewrite cache.
    pub fn with_rewrite_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Replaces the trace sink used by untraced `answer` calls.
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Drops all cached rewritings and bumps the TBox epoch. Call after
    /// mutating `tbox`/`classification` directly.
    pub fn invalidate_rewrites(&mut self) {
        lock_or_recover(&self.rewrite_cache).invalidate();
    }

    /// Drops the materialized ABox, its index and the memoized NDL view
    /// extents, and bumps the ABox version. Call after the source
    /// database or the mappings change. Cached rewritings survive —
    /// they depend only on the TBox.
    pub fn invalidate_abox(&mut self) {
        *lock_or_recover(&self.materialized) = None;
        lock_or_recover(&self.ndl_memo).clear();
        if self.ebox_mode.enabled() {
            // Re-derive the mapping-level constraints (the sources may
            // have changed); `Infer` re-infers on the next build.
            let fresh = self.static_ebox();
            let mut state = lock_or_recover(&self.ebox);
            state.ebox = Arc::new(fresh);
            state.generation += 1;
        }
        self.abox_version.fetch_add(1, Ordering::Relaxed);
    }

    /// The current ABox version (second [`DataEpoch`] component).
    pub fn abox_version(&self) -> u64 {
        self.abox_version.load(Ordering::Relaxed)
    }

    /// Rewrite-cache hit/miss counters.
    pub fn rewrite_cache_stats(&self) -> RewriteCacheStats {
        lock_or_recover(&self.rewrite_cache).stats
    }

    /// Zeroes the rewrite-cache counters (the cached entries stay).
    pub fn reset_rewrite_cache_stats(&self) {
        lock_or_recover(&self.rewrite_cache).stats.reset();
    }

    /// Current TBox epoch (bumped by [`Self::invalidate_rewrites`]).
    pub fn tbox_epoch(&self) -> u64 {
        lock_or_recover(&self.rewrite_cache).epoch
    }

    /// Configured UCQ evaluation threads (0 = all cores).
    pub fn eval_threads(&self) -> usize {
        self.eval_threads
    }

    /// Returns the shared materialized ABox + index, building it on
    /// first use. The build runs under the lock: concurrent first
    /// queries wait for one materialization instead of duplicating it.
    fn ensure_materialized(&self) -> Result<Arc<MaterializedAbox>, ObdaError> {
        Ok(self.materialized_with_ebox()?.0)
    }

    /// One consistent snapshot of the materialized ABox and the EBox:
    /// both read under the `materialized` lock, which is also where the
    /// write path revalidates constraints — a query can never pair a
    /// stronger (stale) EBox with newer data. A first build under
    /// `EboxMode::Infer` re-infers the constraints from the index it
    /// just built (the generation bump drops rewrite-cache entries
    /// pruned under the weaker mapping-level set).
    fn materialized_with_ebox(&self) -> Result<MaterializedSnapshot, ObdaError> {
        let mut slot = lock_or_recover(&self.materialized);
        let mat = match slot.as_ref() {
            Some(mat) => Arc::clone(mat),
            None => {
                let abox = materialize(&self.mappings, &self.db)
                    .map_err(|e| ObdaError::sql(ErrorPhase::Materialize, e))?;
                let index = AboxIndex::build(&abox);
                let mat = Arc::new(MaterializedAbox { abox, index });
                *slot = Some(Arc::clone(&mat));
                if self.ebox_mode == EboxMode::Infer {
                    let inferred = infer_from_index(&self.tbox, &self.classification, &mat.index);
                    let mut state = lock_or_recover(&self.ebox);
                    state.ebox = Arc::new(inferred);
                    state.generation += 1;
                }
                mat
            }
        };
        let (ebox, gen) = self.ebox_snapshot();
        Ok((mat, ebox, gen))
    }

    /// The current EBox snapshot + generation (`None` when disabled or
    /// empty, so the hot path skips pruning entirely).
    fn ebox_snapshot(&self) -> (Option<Arc<Ebox>>, u64) {
        if !self.ebox_mode.enabled() {
            return (None, 0);
        }
        let state = lock_or_recover(&self.ebox);
        (state.snapshot(), state.generation)
    }

    /// The materialized ABox + index (computing and caching it on first
    /// use).
    pub fn materialized_abox(&self) -> Result<Arc<MaterializedAbox>, ObdaError> {
        self.ensure_materialized()
    }

    /// Parses a query in the concrete CQ syntax against the TBox
    /// signature.
    pub fn parse_query(&self, text: &str) -> Result<ConjunctiveQuery, ObdaError> {
        Ok(parse_cq(text, &self.tbox.sig)?)
    }

    /// Answers a query given as text.
    pub fn answer(&self, text: &str) -> Result<Answers, ObdaError> {
        QueryEngine::answer(self, QueryLang::Cq, text)
    }

    /// Answers a SPARQL query (SELECT returns tuples in projection
    /// order; ASK returns ∅ or the empty tuple).
    pub fn answer_sparql(&self, text: &str) -> Result<Answers, ObdaError> {
        QueryEngine::answer(self, QueryLang::Sparql, text)
    }

    /// Answers a parsed CQ under the configured modes.
    pub fn answer_cq(&self, q: &ConjunctiveQuery) -> Result<Answers, ObdaError> {
        run_with_engine_trace(
            &self.trace_sink(),
            None,
            |a: &Answers| a.len() as u64,
            |ctx| self.answer_cq_traced(q, ctx),
        )
    }

    /// The traced answering core shared by every entry point.
    fn answer_cq_traced_impl(
        &self,
        q: &ConjunctiveQuery,
        ctx: &TraceCtx,
    ) -> Result<Answers, ObdaError> {
        let started = Instant::now();
        ctx.tag("rewriting", self.rewriting.as_str());
        ctx.tag("data", self.data.as_str());
        // Data snapshot before the rewriting: the EBox only ever weakens
        // between the snapshots (writes retract, never add), so pruning
        // with constraints taken at-or-after the data snapshot is sound.
        // In materialized mode both come from one lock section.
        // Version first, snapshot second: if a write lands in between,
        // the snapshot is *newer* than the stamp — the NDL memo then
        // over-invalidates on the next query, never serves extents older
        // than their stamped version.
        let epoch = DataEpoch {
            tbox: self.tbox_epoch(),
            abox: self.abox_version.load(Ordering::Relaxed),
        };
        let (mat, ebox, ebox_gen) = match self.data {
            DataMode::Materialized => {
                let (mat, ebox, gen) = self.materialized_with_ebox()?;
                (Some(mat), ebox, gen)
            }
            DataMode::Virtual => {
                let (ebox, gen) = self.ebox_snapshot();
                (None, ebox, gen)
            }
        };
        let rw = rewrite_with_cache_traced(
            &self.rewrite_cache,
            self.cache_enabled,
            self.rewriting,
            &self.tbox,
            &self.classification,
            q,
            ebox.as_deref(),
            ebox_gen,
            ctx,
        );
        let threads = resolve_threads(self.eval_threads);
        // lint: allow(R1.expect, "`mat` is Some exactly in materialized mode, matched below")
        let require_mat = || mat.as_ref().expect("materialized snapshot present");
        let answers = match (&*rw, self.data) {
            (CachedRewriting::PerfectRef { ucq, .. }, DataMode::Virtual) => {
                answer_ucq_virtual_traced(ucq, &self.mappings, &self.db, ctx, ebox.as_deref())?
            }
            (CachedRewriting::PerfectRef { ucq, .. }, DataMode::Materialized) => {
                let mat = require_mat();
                evaluate_ucq_parallel_traced(ucq, &mat.abox, &mat.index, threads, ctx)
            }
            (CachedRewriting::Presto(rw), DataMode::Virtual) => answer_presto_virtual_traced(
                rw,
                &self.classification,
                &self.mappings,
                &self.db,
                ctx,
                ebox.as_deref(),
            )?,
            (CachedRewriting::Presto(rw), DataMode::Materialized) => {
                let mat = require_mat();
                let guard = span!(ctx, "eval");
                guard.count("threads", 1);
                guard.count("disjuncts", rw.len() as u64);
                let mut answers = Answers::new();
                for vq in &rw.queries {
                    answers.extend(evaluate_view_query_ebox(
                        vq,
                        &self.classification,
                        &mat.abox,
                        ebox.as_deref(),
                    ));
                }
                answers
            }
            (CachedRewriting::Ndl(prog), DataMode::Virtual) => answer_ndl_virtual_traced(
                prog,
                &self.classification,
                &self.mappings,
                &self.db,
                ctx,
                ebox.as_deref(),
            )?,
            (CachedRewriting::Ndl(prog), DataMode::Materialized) => {
                let mat = require_mat();
                answer_ndl_indexed_traced(prog, &mat.abox, &mat.index, &self.ndl_memo, epoch, ctx)
            }
        };
        let (queries, latency) = query_metrics();
        queries.add(1);
        latency.record(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        Ok(answers)
    }

    /// Explains how a query would be answered under the current modes:
    /// the parsed query, the rewriting (disjuncts or view skeletons), and
    /// the flat SQL the unfolding produces (virtual mode only).
    pub fn explain(&self, text: &str) -> Result<String, ObdaError> {
        use std::fmt::Write as _;
        let q = self.parse_query(text)?;
        let mut out = String::new();
        let _ = writeln!(out, "query: {}", crate::query::print_cq(&q, &self.tbox.sig));
        match self.rewriting {
            RewritingMode::PerfectRef => {
                // Same pruning policy as the answer path, including the
                // PRUNE_DISJUNCT_CAP gate — explaining a query must not
                // cost quadratically more than answering it.
                let (ucq, raw_len) = rewrite_perfectref_pruned(&q, &self.tbox);
                let _ = writeln!(
                    out,
                    "rewriting: PerfectRef, {} CQ disjunct(s) ({} before pruning)",
                    ucq.len(),
                    raw_len
                );
                for (i, d) in ucq.disjuncts.iter().enumerate().take(8) {
                    let _ = writeln!(out, "  [{i}] {}", crate::query::print_cq(d, &self.tbox.sig));
                }
                if ucq.len() > 8 {
                    let _ = writeln!(out, "  … {} more", ucq.len() - 8);
                }
                if self.data == DataMode::Virtual {
                    let mut shown = 0usize;
                    let mut total = 0usize;
                    let mut sql_lines = String::new();
                    for d in &ucq.disjuncts {
                        let combos = crate::rewrite::unfold::unfold_cq(d, &self.mappings, &self.db)
                            .map_err(|e| {
                                ObdaError::sql_in(
                                    ErrorPhase::Unfold,
                                    crate::query::print_cq(d, &self.tbox.sig),
                                    e,
                                )
                            })?;
                        total += combos.len();
                        for combo in combos {
                            if shown < 6 {
                                let _ = writeln!(
                                    sql_lines,
                                    "  {}",
                                    obda_sqlstore::print_select_core(&combo.core)
                                );
                                shown += 1;
                            }
                        }
                    }
                    let _ = writeln!(out, "unfolding: {total} flat SQL quer(ies)");
                    out.push_str(&sql_lines);
                    if total > shown {
                        let _ = writeln!(out, "  … {} more", total - shown);
                    }
                }
            }
            RewritingMode::Presto => {
                let rw = presto_rewrite(&q, &self.classification);
                let _ = writeln!(out, "rewriting: Presto, {} view skeleton(s)", rw.len());
                if self.data == DataMode::Virtual {
                    let mut shown = 0usize;
                    let mut total = 0usize;
                    let mut sql_lines = String::new();
                    for vq in &rw.queries {
                        let combos = crate::rewrite::unfold::unfold_view_query(
                            vq,
                            &self.classification,
                            &self.mappings,
                            &self.db,
                        )
                        .map_err(|e| ObdaError::sql(ErrorPhase::Unfold, e))?;
                        total += combos.len();
                        for combo in combos {
                            if shown < 6 {
                                let _ = writeln!(
                                    sql_lines,
                                    "  {}",
                                    obda_sqlstore::print_select_core(&combo.core)
                                );
                                shown += 1;
                            }
                        }
                    }
                    let _ = writeln!(out, "unfolding: {total} flat SQL quer(ies)");
                    out.push_str(&sql_lines);
                    if total > shown {
                        let _ = writeln!(out, "  … {} more", total - shown);
                    }
                }
            }
            RewritingMode::Ndl => {
                let prog = ndl_compile(&q, &self.classification);
                let _ = writeln!(
                    out,
                    "rewriting: NDL, {} rule(s) ({} shared view(s), {} skeleton(s))",
                    prog.num_rules,
                    prog.views.len(),
                    prog.queries.len()
                );
                for def in prog.views.iter().take(8) {
                    let _ = writeln!(out, "  view with {} member rule(s)", def.num_members());
                }
                if prog.views.len() > 8 {
                    let _ = writeln!(out, "  … {} more view(s)", prog.views.len() - 8);
                }
                if self.data == DataMode::Virtual {
                    let _ = writeln!(
                        out,
                        "unfolding: 1 SQL statement ({} shared subplan(s))",
                        prog.views.len()
                    );
                }
            }
        }
        Ok(out)
    }

    /// Instance checking (Section 5 lists it among the extensional
    /// reasoning services): whether `individual` is a certain instance of
    /// the named concept, through the full rewriting pipeline.
    pub fn is_instance_of(&self, individual: &str, concept: &str) -> Result<bool, ObdaError> {
        let c = self
            .tbox
            .sig
            .find_concept(concept)
            .ok_or_else(|| QueryParseError {
                message: format!("unknown concept `{concept}`"),
            })?;
        let q = ConjunctiveQuery {
            head: vec![],
            atoms: vec![crate::query::Atom::Concept(
                c,
                crate::query::Term::Const(individual.to_owned()),
            )],
        };
        Ok(!self.answer_cq(&q)?.is_empty())
    }

    /// Runs the consistency check over the virtual knowledge base.
    pub fn check_consistency(&self) -> Result<Vec<Violation>, ObdaError> {
        check_consistency(&self.tbox, &self.classification, &self.mappings, &self.db)
            .map_err(|e| ObdaError::sql(ErrorPhase::Consistency, e))
    }
}

impl QueryEngine for ObdaSystem {
    fn signature(&self) -> &obda_dllite::Signature {
        &self.tbox.sig
    }

    fn trace_sink(&self) -> Arc<dyn TraceSink> {
        Arc::clone(&self.sink)
    }

    fn answer_cq_traced(&self, q: &ConjunctiveQuery, ctx: &TraceCtx) -> Result<Answers, ObdaError> {
        self.answer_cq_traced_impl(q, ctx)
    }

    fn apply_delta_traced(
        &self,
        delta: &AboxDelta,
        ctx: &TraceCtx,
    ) -> Result<DeltaSummary, ObdaError> {
        if self.data != DataMode::Materialized {
            return Err(ObdaError::unsupported(
                "ABox deltas on a virtual-mode system (the data lives in the sources; \
                 use DataMode::Materialized)",
            ));
        }
        let guard = span!(ctx, "write.apply");
        let (inserts, deletes) = resolve_delta(&self.tbox.sig, delta)?;
        // TBox epoch before the materialized lock (canonical lock order:
        // `rewrite_cache` precedes `materialized`). A concurrent TBox
        // invalidation at worst stamps the memo with the old epoch — the
        // next query sees the mismatch and rebuilds.
        let tbox_epoch = self.tbox_epoch();
        let mut slot = lock_or_recover(&self.materialized);
        let mut arc = match slot.take() {
            Some(a) => a,
            None => {
                let abox = materialize(&self.mappings, &self.db)
                    .map_err(|e| ObdaError::sql(ErrorPhase::Materialize, e))?;
                let index = AboxIndex::build(&abox);
                Arc::new(MaterializedAbox { abox, index })
            }
        };
        // Zero-copy between queries (refcount 1); clones once if a
        // reader still holds the pre-batch snapshot.
        let mat = Arc::make_mut(&mut arc);
        let applied = {
            let g = span!(ctx, "write.index");
            let applied = apply_to_store(&mut mat.abox, &mut mat.index, &inserts, &deletes);
            g.count("inserted", applied.inserted.len() as u64);
            g.count("deleted", applied.deleted.len() as u64);
            applied
        };
        let version = self.abox_version.fetch_add(1, Ordering::Relaxed) + 1;
        let epoch = DataEpoch {
            tbox: tbox_epoch,
            abox: version,
        };
        let fallbacks = {
            let g = span!(ctx, "write.views");
            let fb = maintain_memo(
                &self.ndl_memo,
                epoch,
                &applied,
                &self.classification,
                &mat.abox,
                Some(&mat.index),
            );
            g.count("fallbacks", fb);
            fb
        };
        if self.ebox_mode.enabled() {
            // Still under the `materialized` lock: retract constraints
            // the batch falsified before any query can snapshot this
            // data. Rewritings pruned with the stronger set die with the
            // generation bump (the cache syncs lazily on next lookup).
            let mut state = lock_or_recover(&self.ebox);
            if !state.ebox.is_empty() {
                let removed = revalidate(Arc::make_mut(&mut state.ebox), &applied, &mat.index);
                if removed > 0 {
                    state.generation += 1;
                    state.retracted += removed;
                    ebox_retracted_total().add(removed);
                    ctx.count("ebox_retracted", removed);
                }
            }
        }
        let summary = DeltaSummary {
            inserted: applied.inserted.len(),
            deleted: applied.deleted.len(),
            fallbacks,
        };
        *slot = Some(arc);
        guard.count("rows", (summary.inserted + summary.deleted) as u64);
        record_batch(&summary);
        Ok(summary)
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            rewriting: self.rewriting.as_str(),
            data: self.data.as_str(),
            eval_threads: self.eval_threads,
            tbox_epoch: self.tbox_epoch(),
            rewrite_cache: self.rewrite_cache_stats(),
            shards: 1,
            ebox: self.ebox_mode.as_str(),
            ebox_constraints: self.ebox_constraints(),
        }
    }

    fn invalidate(&self) {
        lock_or_recover(&self.rewrite_cache).invalidate();
        let mut slot = lock_or_recover(&self.materialized);
        *slot = None;
        if self.ebox_mode.enabled() {
            // Constraints inferred from the dropped data are stale; fall
            // back to the mapping-level set until the next build (which
            // re-infers under `Infer`). Still under the `materialized`
            // lock, pairing the reset with the drop atomically.
            let mut state = lock_or_recover(&self.ebox);
            state.ebox = Arc::new(self.static_ebox());
            state.generation += 1;
        }
        drop(slot);
        lock_or_recover(&self.ndl_memo).clear();
        self.abox_version.fetch_add(1, Ordering::Relaxed);
    }

    fn reset_stats(&self) {
        self.reset_rewrite_cache_stats();
    }
}

/// The versioned data half of an [`AboxSystem`]: the explicit ABox, its
/// secondary index, and the monotone version that stamps [`DataEpoch`]s.
/// Kept in one struct behind one `RwLock` so queries see the three
/// fields atomically — a reader can never pair a patched index with a
/// pre-batch version.
#[derive(Debug, Clone)]
pub(crate) struct AboxData {
    pub(crate) abox: Abox,
    pub(crate) index: AboxIndex,
    /// Bumped by every delta batch and every [`AboxSystem::mutate_abox`].
    pub(crate) version: u64,
}

/// An ABox-backed system (no mappings/SQL): the simple entry point used
/// by the quickstart example and by tests. Carries the same fast path
/// as [`ObdaSystem`]: a persistent [`AboxIndex`] built at construction
/// and a rewrite cache behind a `Mutex`, so every answering entry point
/// is `&self` and the system is shareable across threads. The ABox and
/// its index live behind an `RwLock` ([`AboxData`]): reads are
/// lock-shared, and the write path ([`crate::QueryEngine::apply_delta`])
/// patches both in place.
#[derive(Debug)]
pub struct AboxSystem {
    /// The ontology TBox.
    pub tbox: Tbox,
    /// The classification.
    pub classification: Classification,
    /// The explicit ABox + index + version (see [`AboxData`]). Mutate
    /// through [`Self::mutate_abox`] or the delta API.
    data: RwLock<AboxData>,
    /// Rewriting algorithm: PerfectRef (default) or NDL. Presto is
    /// folded into PerfectRef here (no mappings to unfold through).
    rewriting: RewritingMode,
    rewrite_cache: Mutex<RewriteCache>,
    /// Memoized NDL view extents (whole-ABox extents unsharded; partial
    /// shard-local extents when this system is one shard).
    ndl_memo: Mutex<ViewMemo>,
    cache_enabled: bool,
    eval_threads: usize,
    /// EBox knob: `Infer` scans the index for constraints; `On` has no
    /// mapping-level source here and starts empty.
    ebox_mode: EboxMode,
    /// Constraint set + generation; written under the `data` write lock
    /// so read-locked queries snapshot it consistently.
    ebox: Mutex<EboxState>,
    sink: Arc<dyn TraceSink>,
}

impl Clone for AboxSystem {
    fn clone(&self) -> Self {
        AboxSystem {
            tbox: self.tbox.clone(),
            classification: self.classification.clone(),
            data: RwLock::new(read_or_recover(&self.data).clone()),
            rewriting: self.rewriting,
            rewrite_cache: Mutex::new(lock_or_recover(&self.rewrite_cache).clone()),
            // The clone starts with a cold extent memo (it's a cache).
            ndl_memo: Mutex::new(ViewMemo::default()),
            cache_enabled: self.cache_enabled,
            eval_threads: self.eval_threads,
            ebox_mode: self.ebox_mode,
            ebox: Mutex::new(lock_or_recover(&self.ebox).clone()),
            sink: Arc::clone(&self.sink),
        }
    }
}

impl AboxSystem {
    /// Classifies the TBox, wraps and indexes the ABox.
    pub fn new(tbox: Tbox, abox: Abox) -> Self {
        let classification = Classification::classify(&tbox);
        Self::with_classification(tbox, classification, abox)
    }

    /// Like [`Self::new`] but reusing an existing classification — the
    /// sharded engine builds N shard systems over one TBox and must not
    /// classify it N times.
    pub fn with_classification(tbox: Tbox, classification: Classification, abox: Abox) -> Self {
        let index = AboxIndex::build(&abox);
        AboxSystem {
            tbox,
            classification,
            data: RwLock::new(AboxData {
                abox,
                index,
                version: 0,
            }),
            rewriting: RewritingMode::PerfectRef,
            rewrite_cache: Mutex::new(RewriteCache::default()),
            ndl_memo: Mutex::new(ViewMemo::default()),
            cache_enabled: true,
            eval_threads: default_eval_threads(),
            ebox_mode: EboxMode::Off,
            ebox: Mutex::new(EboxState::default()),
            sink: obda_obs::sink::from_env(),
        }
    }

    /// Switches the rewriting mode. Presto has no distinct evaluation
    /// path over a plain ABox and is answered via PerfectRef.
    pub fn with_rewriting(mut self, mode: RewritingMode) -> Self {
        self.rewriting = mode;
        self
    }

    /// Switches the EBox mode. With no mappings there is no static
    /// constraint source, so `On` starts empty (constraints only ever
    /// come from revalidated prior state) and `Infer` scans the current
    /// index.
    pub fn with_ebox_mode(mut self, mode: EboxMode) -> Self {
        self.ebox_mode = mode;
        let ebox = if mode == EboxMode::Infer {
            let data = read_or_recover(&self.data);
            infer_from_index(&self.tbox, &self.classification, &data.index)
        } else {
            Ebox::new()
        };
        self.ebox = Mutex::new(EboxState::new(ebox));
        self
    }

    /// The configured EBox mode.
    pub fn ebox_mode(&self) -> EboxMode {
        self.ebox_mode
    }

    /// Number of live EBox constraints (inclusions + empties + exacts).
    pub fn ebox_constraints(&self) -> usize {
        lock_or_recover(&self.ebox).ebox.constraint_count()
    }

    /// The current EBox snapshot + generation (`None` when disabled or
    /// empty). Callers must already hold the `data` lock (read or write)
    /// so the snapshot stays consistent with the data they evaluate.
    fn ebox_snapshot(&self) -> (Option<Arc<Ebox>>, u64) {
        if !self.ebox_mode.enabled() {
            return (None, 0);
        }
        let state = lock_or_recover(&self.ebox);
        (state.snapshot(), state.generation)
    }

    /// The full current constraint set (possibly empty) — the sharded
    /// coordinator intersects these across its shards.
    pub(crate) fn ebox_current(&self) -> Arc<Ebox> {
        Arc::clone(&lock_or_recover(&self.ebox).ebox)
    }

    /// Runs `f` with a shared read lock over the ABox + index + version
    /// (shard-side evaluation and the stats path read through this).
    pub(crate) fn with_data<R>(&self, f: impl FnOnce(&AboxData) -> R) -> R {
        f(&read_or_recover(&self.data))
    }

    /// Sets the number of threads for UCQ evaluation (`0` = all cores).
    pub fn with_eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = threads;
        self
    }

    /// Enables/disables the rewrite cache.
    pub fn with_rewrite_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Replaces the trace sink used by untraced `answer` calls.
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Configured UCQ evaluation threads (0 = all cores).
    pub fn eval_threads(&self) -> usize {
        self.eval_threads
    }

    /// Mutates the ABox arbitrarily under the write lock, then rebuilds
    /// the index from scratch, bumps the version, and drops the memoized
    /// NDL view extents computed from the old facts. This is the
    /// *non-incremental* mutation escape hatch (and the baseline the A10
    /// experiment compares the delta path against); batched changes
    /// should go through [`crate::QueryEngine::apply_delta`].
    pub fn mutate_abox(&self, f: impl FnOnce(&mut Abox)) {
        let mut data = write_or_recover(&self.data);
        f(&mut data.abox);
        data.index = AboxIndex::build(&data.abox);
        data.version += 1;
        lock_or_recover(&self.ndl_memo).clear();
        if self.ebox_mode == EboxMode::Infer {
            // Arbitrary mutation: re-infer from scratch like the index
            // (still under the write lock). The generation bump drops
            // rewritings pruned under the old constraints.
            let inferred = infer_from_index(&self.tbox, &self.classification, &data.index);
            let mut state = lock_or_recover(&self.ebox);
            state.ebox = Arc::new(inferred);
            state.generation += 1;
        } else if self.ebox_mode == EboxMode::On {
            // No data source to re-derive from: drop everything rather
            // than keep constraints the mutation may have falsified.
            let mut state = lock_or_recover(&self.ebox);
            if !state.ebox.is_empty() {
                state.ebox = Arc::new(Ebox::new());
                state.generation += 1;
            }
        }
    }

    /// The current ABox version (second [`DataEpoch`] component).
    pub fn abox_version(&self) -> u64 {
        read_or_recover(&self.data).version
    }

    /// The memoized (or freshly built) extent of one NDL view over this
    /// system's ABox — the sharded engine calls this per shard, so each
    /// shard's partial extents are memoized shard-locally.
    pub(crate) fn ndl_partial_extent(
        &self,
        def: &crate::rewrite::ndl::ViewDef,
    ) -> Arc<crate::rewrite::ndl::ViewExtent> {
        let data = read_or_recover(&self.data);
        let epoch = DataEpoch {
            tbox: lock_or_recover(&self.rewrite_cache).epoch,
            abox: data.version,
        };
        crate::rewrite::ndl::memoized_extent(&self.ndl_memo, epoch, def.pred(), || {
            crate::rewrite::ndl::build_extent(def, &data.abox, &data.index)
        })
        .0
    }

    /// Applies pre-resolved delta facts to this system's store and view
    /// memo: the shared write core reused verbatim by the sharded engine
    /// (which resolves once at the coordinator and routes the facts).
    /// Deletes apply before inserts; returns the per-batch summary.
    pub(crate) fn apply_resolved_traced(
        &self,
        inserts: &[ResolvedFact],
        deletes: &[ResolvedFact],
        ctx: &TraceCtx,
    ) -> DeltaSummary {
        let mut guard = write_or_recover(&self.data);
        // Reborrow through the guard once so the field borrows split.
        let data = &mut *guard;
        let applied = {
            let g = span!(ctx, "write.index");
            let applied = apply_to_store(&mut data.abox, &mut data.index, inserts, deletes);
            g.count("inserted", applied.inserted.len() as u64);
            g.count("deleted", applied.deleted.len() as u64);
            applied
        };
        data.version += 1;
        let epoch = DataEpoch {
            tbox: lock_or_recover(&self.rewrite_cache).epoch,
            abox: data.version,
        };
        let fallbacks = {
            let g = span!(ctx, "write.views");
            let fb = maintain_memo(
                &self.ndl_memo,
                epoch,
                &applied,
                &self.classification,
                &data.abox,
                Some(&data.index),
            );
            g.count("fallbacks", fb);
            fb
        };
        if self.ebox_mode.enabled() {
            // Still under the `data` write lock: constraints the batch
            // falsified are retracted before any reader can pair them
            // with the new facts.
            let mut state = lock_or_recover(&self.ebox);
            if !state.ebox.is_empty() {
                let removed = revalidate(Arc::make_mut(&mut state.ebox), &applied, &data.index);
                if removed > 0 {
                    state.generation += 1;
                    state.retracted += removed;
                    ebox_retracted_total().add(removed);
                    ctx.count("ebox_retracted", removed);
                }
            }
        }
        DeltaSummary {
            inserted: applied.inserted.len(),
            deleted: applied.deleted.len(),
            fallbacks,
        }
    }

    /// Drops cached rewritings (call after mutating `tbox`).
    pub fn invalidate_rewrites(&mut self) {
        lock_or_recover(&self.rewrite_cache).invalidate();
    }

    /// Rewrite-cache hit/miss counters.
    pub fn rewrite_cache_stats(&self) -> RewriteCacheStats {
        lock_or_recover(&self.rewrite_cache).stats
    }

    /// Zeroes the rewrite-cache counters (the cached entries stay).
    pub fn reset_rewrite_cache_stats(&self) {
        lock_or_recover(&self.rewrite_cache).stats.reset();
    }

    /// Answers a query (text) with PerfectRef over the ABox.
    pub fn answer(&self, text: &str) -> Result<Answers, ObdaError> {
        QueryEngine::answer(self, QueryLang::Cq, text)
    }

    /// Answers a SPARQL query (conjunctive fragment) over the ABox.
    pub fn answer_sparql(&self, text: &str) -> Result<Answers, ObdaError> {
        QueryEngine::answer(self, QueryLang::Sparql, text)
    }

    /// Answers a parsed CQ with PerfectRef over the ABox.
    pub fn answer_cq(&self, q: &ConjunctiveQuery) -> Answers {
        run_with_engine_trace(
            &self.trace_sink(),
            None,
            |a: &Answers| a.len() as u64,
            |ctx| Ok(self.eval_cq_traced(q, ctx)),
        )
        .unwrap_or_default()
    }

    /// The traced answering core: rewrite (shared front door with
    /// [`ObdaSystem`]) then indexed parallel evaluation.
    /// The rewriting mode actually answered with: NDL stays NDL, Presto
    /// folds into PerfectRef (no mappings to unfold through).
    pub(crate) fn effective_rewriting(&self) -> RewritingMode {
        match self.rewriting {
            RewritingMode::Ndl => RewritingMode::Ndl,
            _ => RewritingMode::PerfectRef,
        }
    }

    fn eval_cq_traced(&self, q: &ConjunctiveQuery, ctx: &TraceCtx) -> Answers {
        let started = Instant::now();
        let mode = self.effective_rewriting();
        ctx.tag("rewriting", mode.as_str());
        ctx.tag("data", "Abox");
        // Read lock before the rewriting: the EBox snapshot must not
        // predate the data it prunes for (writers revalidate under the
        // write lock, so holding the read lock pins both together).
        let data = read_or_recover(&self.data);
        let (ebox, ebox_gen) = self.ebox_snapshot();
        let rw = rewrite_with_cache_traced(
            &self.rewrite_cache,
            self.cache_enabled,
            mode,
            &self.tbox,
            &self.classification,
            q,
            ebox.as_deref(),
            ebox_gen,
            ctx,
        );
        let answers = match &*rw {
            CachedRewriting::PerfectRef { ucq, .. } => {
                let threads = resolve_threads(self.eval_threads);
                evaluate_ucq_parallel_traced(ucq, &data.abox, &data.index, threads, ctx)
            }
            CachedRewriting::Ndl(prog) => {
                // The read lock pins abox+index+version together, so the
                // stamped epoch always matches the snapshot it covers.
                let epoch = DataEpoch {
                    tbox: lock_or_recover(&self.rewrite_cache).epoch,
                    abox: data.version,
                };
                answer_ndl_indexed_traced(prog, &data.abox, &data.index, &self.ndl_memo, epoch, ctx)
            }
            CachedRewriting::Presto(_) => {
                // lint: allow(R1.panic, "this cache only ever receives PerfectRef or Ndl entries (inserted above); the Presto arm is unreachable by construction")
                unreachable!("AboxSystem never caches Presto rewritings")
            }
        };
        let (queries, latency) = query_metrics();
        queries.add(1);
        latency.record(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        answers
    }
}

impl QueryEngine for AboxSystem {
    fn signature(&self) -> &obda_dllite::Signature {
        &self.tbox.sig
    }

    fn trace_sink(&self) -> Arc<dyn TraceSink> {
        Arc::clone(&self.sink)
    }

    fn answer_cq_traced(&self, q: &ConjunctiveQuery, ctx: &TraceCtx) -> Result<Answers, ObdaError> {
        Ok(self.eval_cq_traced(q, ctx))
    }

    fn apply_delta_traced(
        &self,
        delta: &AboxDelta,
        ctx: &TraceCtx,
    ) -> Result<DeltaSummary, ObdaError> {
        let guard = span!(ctx, "write.apply");
        let (inserts, deletes) = resolve_delta(&self.tbox.sig, delta)?;
        let summary = self.apply_resolved_traced(&inserts, &deletes, ctx);
        guard.count("rows", (summary.inserted + summary.deleted) as u64);
        record_batch(&summary);
        Ok(summary)
    }

    fn stats(&self) -> EngineStats {
        // One lock for both fields: the guard is a temporary, and a
        // second `rewrite_cache_stats()` lock inside the same struct
        // literal would self-deadlock.
        let cache = lock_or_recover(&self.rewrite_cache);
        EngineStats {
            rewriting: self.effective_rewriting().as_str(),
            data: "Abox",
            eval_threads: self.eval_threads,
            tbox_epoch: cache.epoch,
            rewrite_cache: cache.stats,
            shards: 1,
            ebox: self.ebox_mode.as_str(),
            ebox_constraints: lock_or_recover(&self.ebox).ebox.constraint_count(),
        }
    }

    fn invalidate(&self) {
        lock_or_recover(&self.rewrite_cache).invalidate();
        lock_or_recover(&self.ndl_memo).clear();
    }

    fn reset_stats(&self) {
        self.reset_rewrite_cache_stats();
    }
}

#[cfg(test)]
mod shareability {
    use super::*;

    fn assert_send_sync<T: Send + Sync + ?Sized>() {}

    /// The serving layer shares one loaded system across worker threads;
    /// this pins the `Send + Sync` bounds at compile time.
    #[test]
    fn systems_are_send_and_sync() {
        assert_send_sync::<ObdaSystem>();
        assert_send_sync::<AboxSystem>();
        assert_send_sync::<RewriteCacheStats>();
        assert_send_sync::<dyn QueryEngine>();
    }
}
