//! The [`ObdaSystem`] facade: ontology + mappings + sources, with query
//! answering in four modes (rewriting × data access).
//!
//! ## Query-answering fast path
//!
//! Answering reuses work across queries through two epoch-guarded
//! caches:
//!
//! * a **rewrite cache** keyed by `(RewritingMode, canonical CQ)` —
//!   rewriting depends only on the TBox, so the result is valid until
//!   [`ObdaSystem::invalidate_rewrites`] bumps the TBox epoch;
//! * a **persistent ABox index** ([`AboxIndex`]) built once per
//!   materialized ABox and reused by every materialized-mode query
//!   until [`ObdaSystem::invalidate_abox`].
//!
//! PerfectRef rewritings are subsumption-pruned before caching (set
//! `QUONTO_NO_PRUNE=1` to keep the raw UCQ for cross-checking), and the
//! materialized evaluation shards disjuncts over scoped threads
//! (`with_eval_threads`, default from `QUONTO_THREADS`, `0` = all
//! cores). With `QUONTO_TIMINGS=1` each answered query prints a
//! one-line phase breakdown (`mastro-timings …`) to stderr, mirroring
//! `quonto-timings` from the classification layer.
//!
//! ## Concurrency
//!
//! Every read-only entry point (`answer`, `answer_sparql`, `answer_cq`,
//! `is_instance_of`, `explain`, `check_consistency`) takes `&self`: the
//! rewrite cache lives behind a `Mutex` and the materialized ABox (plus
//! its index) behind a `Mutex<Option<Arc<…>>>`, so one loaded system can
//! be shared across N server worker threads (`obda-server` does exactly
//! this). Rewriting and evaluation both run *outside* the locks — the
//! critical sections are hash-map lookups and `Arc` clones. The only
//! `&mut self` APIs left are the invalidators ([`Self::invalidate_rewrites`],
//! [`Self::invalidate_abox`], [`AboxSystem::refresh_index`]), which is
//! exactly the exclusivity they need.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use quonto::sync::lock_or_recover;

use obda_dllite::{Abox, Tbox};
use obda_mapping::{materialize, MappingSet};
use obda_sqlstore::{Database, SqlError};
use quonto::Classification;

use crate::answer::{evaluate_ucq_parallel, AboxIndex, Answers};
use crate::consistency::{check_consistency, Violation};
use crate::query::{parse_cq, ConjunctiveQuery, QueryParseError, Ucq};
use crate::rewrite::perfectref::perfect_ref;
use crate::rewrite::presto::{evaluate_view_query, presto_rewrite, PrestoRewriting};
use crate::rewrite::subsume::{prune_ucq, pruning_disabled};
use crate::rewrite::unfold::{answer_presto_virtual, answer_ucq_virtual};

/// Which rewriting algorithm drives answering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RewritingMode {
    /// Classic PerfectRef UCQ rewriting.
    PerfectRef,
    /// Classification-aware Presto-style view rewriting.
    Presto,
}

/// How the data is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    /// Unfold into SQL over the sources (virtual ABox).
    Virtual,
    /// Evaluate over the materialized ABox.
    Materialized,
}

/// Errors surfaced by the system facade.
#[derive(Debug)]
pub enum ObdaError {
    /// Query text failed to parse.
    Query(QueryParseError),
    /// SQL-level failure (planning, execution, mapping validation).
    Sql(SqlError),
}

impl std::fmt::Display for ObdaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObdaError::Query(e) => write!(f, "query error: {e}"),
            ObdaError::Sql(e) => write!(f, "sql error: {e}"),
        }
    }
}

impl std::error::Error for ObdaError {}

impl From<QueryParseError> for ObdaError {
    fn from(e: QueryParseError) -> Self {
        ObdaError::Query(e)
    }
}

impl From<SqlError> for ObdaError {
    fn from(e: SqlError) -> Self {
        ObdaError::Sql(e)
    }
}

/// Entry cap before the rewrite cache is wholesale cleared (the
/// workloads the paper targets re-ask a small number of query shapes;
/// a fancier eviction policy is not worth its bookkeeping here).
const REWRITE_CACHE_CAP: usize = 1024;

/// A cached rewriting result. PerfectRef entries store the
/// subsumption-pruned UCQ plus the pre-pruning disjunct count (for the
/// timings line).
#[derive(Debug, Clone)]
enum CachedRewriting {
    PerfectRef { ucq: Ucq, raw_len: usize },
    Presto(PrestoRewriting),
}

/// Hit/miss counters for the rewrite cache. Counters saturate instead of
/// wrapping, so a long-lived serving process can never panic (debug) or
/// silently wrap (release) on overflow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the rewriter.
    pub misses: u64,
}

impl RewriteCacheStats {
    /// Fraction of lookups answered from the cache; `0.0` before any
    /// lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Zeroes both counters (e.g. between load-test phases).
    pub fn reset(&mut self) {
        *self = RewriteCacheStats::default();
    }
}

/// Rewrite cache: canonical CQ (+ mode) → rewriting, valid for one TBox
/// epoch. Entries are shared via `Arc` so a hit is a pointer clone, not
/// a deep copy of a possibly-large UCQ.
#[derive(Debug, Clone, Default)]
struct RewriteCache {
    epoch: u64,
    entries: HashMap<(RewritingMode, ConjunctiveQuery), Arc<CachedRewriting>>,
    stats: RewriteCacheStats,
}

impl RewriteCache {
    fn get(&mut self, key: &(RewritingMode, ConjunctiveQuery)) -> Option<Arc<CachedRewriting>> {
        let hit = self.entries.get(key).map(Arc::clone);
        if hit.is_some() {
            self.stats.hits = self.stats.hits.saturating_add(1);
        }
        hit
    }

    fn insert(&mut self, key: (RewritingMode, ConjunctiveQuery), value: Arc<CachedRewriting>) {
        self.stats.misses = self.stats.misses.saturating_add(1);
        if self.entries.len() >= REWRITE_CACHE_CAP {
            self.entries.clear();
        }
        self.entries.insert(key, value);
    }

    fn invalidate(&mut self) {
        self.epoch += 1;
        self.entries.clear();
    }
}

use quonto::env::timings_enabled;

/// Default evaluation-thread knob: `QUONTO_THREADS` if set and numeric,
/// else 1 (sequential). `0` means "all available cores", matching the
/// convention of `quonto`'s parallel closure engines.
fn default_eval_threads() -> usize {
    quonto::env::eval_threads().unwrap_or(1)
}

fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// PerfectRef + subsumption pruning (unless disabled or over the
/// disjunct cap). Returns the final UCQ and the pre-pruning length.
fn rewrite_perfectref_pruned(q: &ConjunctiveQuery, tbox: &Tbox) -> (Ucq, usize) {
    let raw = perfect_ref(q, tbox);
    let raw_len = raw.len();
    let ucq = if pruning_disabled() || raw_len > crate::rewrite::subsume::PRUNE_DISJUNCT_CAP {
        raw
    } else {
        prune_ucq(&raw)
    };
    (ucq, raw_len)
}

/// The materialized ABox plus its secondary index, built together and
/// shared immutably (behind an `Arc`) by every query that needs it.
#[derive(Debug)]
pub struct MaterializedAbox {
    /// The materialized assertions.
    pub abox: Abox,
    /// The secondary index over them.
    pub index: AboxIndex,
}

/// A complete OBDA system: TBox + classification + mappings + sources.
#[derive(Debug)]
pub struct ObdaSystem {
    /// The ontology TBox.
    pub tbox: Tbox,
    /// The (pre-computed) classification of the TBox.
    pub classification: Classification,
    /// Mapping assertions.
    pub mappings: MappingSet,
    /// The source database.
    pub db: Database,
    /// Rewriting algorithm (default: Presto).
    pub rewriting: RewritingMode,
    /// Data access mode (default: virtual).
    pub data: DataMode,
    /// Cached materialized ABox + index (built on first use in
    /// materialized mode, shared across threads).
    materialized: Mutex<Option<Arc<MaterializedAbox>>>,
    /// Rewrite cache for the current TBox epoch.
    rewrite_cache: Mutex<RewriteCache>,
    /// UCQ evaluation threads (0 = all cores).
    eval_threads: usize,
}

impl Clone for ObdaSystem {
    fn clone(&self) -> Self {
        ObdaSystem {
            tbox: self.tbox.clone(),
            classification: self.classification.clone(),
            mappings: self.mappings.clone(),
            db: self.db.clone(),
            rewriting: self.rewriting,
            data: self.data,
            materialized: Mutex::new(lock_or_recover(&self.materialized).clone()),
            rewrite_cache: Mutex::new(lock_or_recover(&self.rewrite_cache).clone()),
            eval_threads: self.eval_threads,
        }
    }
}

impl ObdaSystem {
    /// Assembles a system, classifying the TBox and validating the
    /// mappings against the source schema.
    pub fn new(tbox: Tbox, mappings: MappingSet, db: Database) -> Result<Self, ObdaError> {
        mappings.validate(&db)?;
        let classification = Classification::classify(&tbox);
        Ok(ObdaSystem {
            tbox,
            classification,
            mappings,
            db,
            rewriting: RewritingMode::Presto,
            data: DataMode::Virtual,
            materialized: Mutex::new(None),
            rewrite_cache: Mutex::new(RewriteCache::default()),
            eval_threads: default_eval_threads(),
        })
    }

    /// Switches the rewriting mode.
    pub fn with_rewriting(mut self, mode: RewritingMode) -> Self {
        self.rewriting = mode;
        self
    }

    /// Switches the data-access mode.
    pub fn with_data_mode(mut self, mode: DataMode) -> Self {
        self.data = mode;
        self
    }

    /// Sets the number of threads for materialized UCQ evaluation
    /// (`0` = all available cores).
    pub fn with_eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = threads;
        self
    }

    /// Drops all cached rewritings and bumps the TBox epoch. Call after
    /// mutating `tbox`/`classification` directly.
    pub fn invalidate_rewrites(&mut self) {
        lock_or_recover(&self.rewrite_cache).invalidate();
    }

    /// Drops the materialized ABox and its index. Call after the source
    /// database or the mappings change.
    pub fn invalidate_abox(&mut self) {
        *lock_or_recover(&self.materialized) = None;
    }

    /// Rewrite-cache hit/miss counters.
    pub fn rewrite_cache_stats(&self) -> RewriteCacheStats {
        lock_or_recover(&self.rewrite_cache).stats
    }

    /// Zeroes the rewrite-cache counters (the cached entries stay).
    pub fn reset_rewrite_cache_stats(&self) {
        lock_or_recover(&self.rewrite_cache).stats.reset();
    }

    /// Current TBox epoch (bumped by [`Self::invalidate_rewrites`]).
    pub fn tbox_epoch(&self) -> u64 {
        lock_or_recover(&self.rewrite_cache).epoch
    }

    /// Returns the shared materialized ABox + index, building it on
    /// first use. The build runs under the lock: concurrent first
    /// queries wait for one materialization instead of duplicating it.
    fn ensure_materialized(&self) -> Result<Arc<MaterializedAbox>, ObdaError> {
        let mut slot = lock_or_recover(&self.materialized);
        if let Some(mat) = slot.as_ref() {
            return Ok(Arc::clone(mat));
        }
        let abox = materialize(&self.mappings, &self.db)?;
        let index = AboxIndex::build(&abox);
        let mat = Arc::new(MaterializedAbox { abox, index });
        *slot = Some(Arc::clone(&mat));
        Ok(mat)
    }

    /// The materialized ABox + index (computing and caching it on first
    /// use).
    pub fn materialized_abox(&self) -> Result<Arc<MaterializedAbox>, ObdaError> {
        self.ensure_materialized()
    }

    /// Parses a query in the concrete CQ syntax against the TBox
    /// signature.
    pub fn parse_query(&self, text: &str) -> Result<ConjunctiveQuery, ObdaError> {
        Ok(parse_cq(text, &self.tbox.sig)?)
    }

    /// Answers a query given as text.
    pub fn answer(&self, text: &str) -> Result<Answers, ObdaError> {
        let t0 = Instant::now();
        let q = self.parse_query(text)?;
        let parse_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.answer_cq_timed(&q, parse_ms)
    }

    /// Answers a SPARQL query (SELECT returns tuples in projection
    /// order; ASK returns ∅ or the empty tuple).
    pub fn answer_sparql(&self, text: &str) -> Result<Answers, ObdaError> {
        let t0 = Instant::now();
        let q = crate::sparql::parse_sparql(text, &self.tbox.sig)?;
        let parse_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.answer_cq_timed(&q.cq, parse_ms)
    }

    /// Answers a parsed CQ under the configured modes.
    pub fn answer_cq(&self, q: &ConjunctiveQuery) -> Result<Answers, ObdaError> {
        self.answer_cq_timed(q, 0.0)
    }

    /// Looks up (or computes and caches) the rewriting of `q` under the
    /// current mode. Returns the rewriting and whether it was a hit.
    ///
    /// The rewriter runs *outside* the cache lock — it can be slow and
    /// must not serialize unrelated queries. Two threads racing on the
    /// same cold query may both rewrite it; the results are identical
    /// and the second insert simply overwrites the first.
    fn rewritten(&self, q: &ConjunctiveQuery) -> (Arc<CachedRewriting>, bool) {
        let key = (self.rewriting, q.canonical());
        if let Some(hit) = lock_or_recover(&self.rewrite_cache).get(&key) {
            return (hit, true);
        }
        let value = Arc::new(match self.rewriting {
            RewritingMode::PerfectRef => {
                let (ucq, raw_len) = rewrite_perfectref_pruned(q, &self.tbox);
                CachedRewriting::PerfectRef { ucq, raw_len }
            }
            RewritingMode::Presto => {
                CachedRewriting::Presto(presto_rewrite(q, &self.classification))
            }
        });
        lock_or_recover(&self.rewrite_cache).insert(key, Arc::clone(&value));
        (value, false)
    }

    fn answer_cq_timed(&self, q: &ConjunctiveQuery, parse_ms: f64) -> Result<Answers, ObdaError> {
        let t0 = Instant::now();
        let (rw, cache_hit) = self.rewritten(q);
        let rewrite_ms = t0.elapsed().as_secs_f64() * 1e3;
        let threads = resolve_threads(self.eval_threads);

        let t1 = Instant::now();
        let (answers, raw_len, pruned_len) = match (&*rw, self.data) {
            (CachedRewriting::PerfectRef { ucq, raw_len }, DataMode::Virtual) => {
                let answers = answer_ucq_virtual(ucq, &self.mappings, &self.db)?;
                (answers, *raw_len, ucq.len())
            }
            (CachedRewriting::PerfectRef { ucq, raw_len }, DataMode::Materialized) => {
                let mat = self.ensure_materialized()?;
                let answers = evaluate_ucq_parallel(ucq, &mat.abox, &mat.index, threads);
                (answers, *raw_len, ucq.len())
            }
            (CachedRewriting::Presto(rw), DataMode::Virtual) => {
                let answers =
                    answer_presto_virtual(rw, &self.classification, &self.mappings, &self.db)?;
                (answers, rw.len(), rw.len())
            }
            (CachedRewriting::Presto(rw), DataMode::Materialized) => {
                let mat = self.ensure_materialized()?;
                let mut answers = Answers::new();
                for vq in &rw.queries {
                    answers.extend(evaluate_view_query(vq, &self.classification, &mat.abox));
                }
                (answers, rw.len(), rw.len())
            }
        };
        if timings_enabled() {
            let eval_ms = t1.elapsed().as_secs_f64() * 1e3;
            eprintln!(
                "mastro-timings rewriting={:?} data={:?} parse_ms={parse_ms:.2} rewrite_ms={rewrite_ms:.2} cache={} ucq={raw_len} pruned={pruned_len} eval_ms={eval_ms:.2} threads={threads} answers={}",
                self.rewriting,
                self.data,
                if cache_hit { "hit" } else { "miss" },
                answers.len(),
            );
        }
        Ok(answers)
    }

    /// Explains how a query would be answered under the current modes:
    /// the parsed query, the rewriting (disjuncts or view skeletons), and
    /// the flat SQL the unfolding produces (virtual mode only).
    pub fn explain(&self, text: &str) -> Result<String, ObdaError> {
        use std::fmt::Write as _;
        let q = self.parse_query(text)?;
        let mut out = String::new();
        let _ = writeln!(out, "query: {}", crate::query::print_cq(&q, &self.tbox.sig));
        match self.rewriting {
            RewritingMode::PerfectRef => {
                // Same pruning policy as the answer path, including the
                // PRUNE_DISJUNCT_CAP gate — explaining a query must not
                // cost quadratically more than answering it.
                let (ucq, raw_len) = rewrite_perfectref_pruned(&q, &self.tbox);
                let _ = writeln!(
                    out,
                    "rewriting: PerfectRef, {} CQ disjunct(s) ({} before pruning)",
                    ucq.len(),
                    raw_len
                );
                for (i, d) in ucq.disjuncts.iter().enumerate().take(8) {
                    let _ = writeln!(out, "  [{i}] {}", crate::query::print_cq(d, &self.tbox.sig));
                }
                if ucq.len() > 8 {
                    let _ = writeln!(out, "  … {} more", ucq.len() - 8);
                }
                if self.data == DataMode::Virtual {
                    let mut shown = 0usize;
                    let mut total = 0usize;
                    let mut sql_lines = String::new();
                    for d in &ucq.disjuncts {
                        let combos =
                            crate::rewrite::unfold::unfold_cq(d, &self.mappings, &self.db)?;
                        total += combos.len();
                        for combo in combos {
                            if shown < 6 {
                                let _ = writeln!(
                                    sql_lines,
                                    "  {}",
                                    obda_sqlstore::print_select_core(&combo.core)
                                );
                                shown += 1;
                            }
                        }
                    }
                    let _ = writeln!(out, "unfolding: {total} flat SQL quer(ies)");
                    out.push_str(&sql_lines);
                    if total > shown {
                        let _ = writeln!(out, "  … {} more", total - shown);
                    }
                }
            }
            RewritingMode::Presto => {
                let rw = presto_rewrite(&q, &self.classification);
                let _ = writeln!(out, "rewriting: Presto, {} view skeleton(s)", rw.len());
                if self.data == DataMode::Virtual {
                    let mut shown = 0usize;
                    let mut total = 0usize;
                    let mut sql_lines = String::new();
                    for vq in &rw.queries {
                        let combos = crate::rewrite::unfold::unfold_view_query(
                            vq,
                            &self.classification,
                            &self.mappings,
                            &self.db,
                        )?;
                        total += combos.len();
                        for combo in combos {
                            if shown < 6 {
                                let _ = writeln!(
                                    sql_lines,
                                    "  {}",
                                    obda_sqlstore::print_select_core(&combo.core)
                                );
                                shown += 1;
                            }
                        }
                    }
                    let _ = writeln!(out, "unfolding: {total} flat SQL quer(ies)");
                    out.push_str(&sql_lines);
                    if total > shown {
                        let _ = writeln!(out, "  … {} more", total - shown);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Instance checking (Section 5 lists it among the extensional
    /// reasoning services): whether `individual` is a certain instance of
    /// the named concept, through the full rewriting pipeline.
    pub fn is_instance_of(&self, individual: &str, concept: &str) -> Result<bool, ObdaError> {
        let c = self
            .tbox
            .sig
            .find_concept(concept)
            .ok_or_else(|| QueryParseError {
                message: format!("unknown concept `{concept}`"),
            })?;
        let q = ConjunctiveQuery {
            head: vec![],
            atoms: vec![crate::query::Atom::Concept(
                c,
                crate::query::Term::Const(individual.to_owned()),
            )],
        };
        Ok(!self.answer_cq(&q)?.is_empty())
    }

    /// Runs the consistency check over the virtual knowledge base.
    pub fn check_consistency(&self) -> Result<Vec<Violation>, ObdaError> {
        Ok(check_consistency(
            &self.tbox,
            &self.classification,
            &self.mappings,
            &self.db,
        )?)
    }
}

/// An ABox-backed system (no mappings/SQL): the simple entry point used
/// by the quickstart example and by tests. Carries the same fast path
/// as [`ObdaSystem`]: a persistent [`AboxIndex`] built at construction
/// and a rewrite cache behind a `Mutex`, so every answering entry point
/// is `&self` and the system is shareable across threads.
#[derive(Debug)]
pub struct AboxSystem {
    /// The ontology TBox.
    pub tbox: Tbox,
    /// The classification.
    pub classification: Classification,
    /// The explicit ABox. Rebuild the index with
    /// [`Self::refresh_index`] after mutating it.
    pub abox: Abox,
    index: AboxIndex,
    rewrite_cache: Mutex<RewriteCache>,
    eval_threads: usize,
}

impl Clone for AboxSystem {
    fn clone(&self) -> Self {
        AboxSystem {
            tbox: self.tbox.clone(),
            classification: self.classification.clone(),
            abox: self.abox.clone(),
            index: self.index.clone(),
            rewrite_cache: Mutex::new(lock_or_recover(&self.rewrite_cache).clone()),
            eval_threads: self.eval_threads,
        }
    }
}

impl AboxSystem {
    /// Classifies the TBox, wraps and indexes the ABox.
    pub fn new(tbox: Tbox, abox: Abox) -> Self {
        let classification = Classification::classify(&tbox);
        let index = AboxIndex::build(&abox);
        AboxSystem {
            tbox,
            classification,
            abox,
            index,
            rewrite_cache: Mutex::new(RewriteCache::default()),
            eval_threads: default_eval_threads(),
        }
    }

    /// Sets the number of threads for UCQ evaluation (`0` = all cores).
    pub fn with_eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = threads;
        self
    }

    /// Rebuilds the ABox index after `abox` was mutated.
    pub fn refresh_index(&mut self) {
        self.index = AboxIndex::build(&self.abox);
    }

    /// Drops cached rewritings (call after mutating `tbox`).
    pub fn invalidate_rewrites(&mut self) {
        lock_or_recover(&self.rewrite_cache).invalidate();
    }

    /// Rewrite-cache hit/miss counters.
    pub fn rewrite_cache_stats(&self) -> RewriteCacheStats {
        lock_or_recover(&self.rewrite_cache).stats
    }

    /// Zeroes the rewrite-cache counters (the cached entries stay).
    pub fn reset_rewrite_cache_stats(&self) {
        lock_or_recover(&self.rewrite_cache).stats.reset();
    }

    /// Answers a query (text) with PerfectRef over the ABox.
    pub fn answer(&self, text: &str) -> Result<Answers, ObdaError> {
        let t0 = Instant::now();
        let q = parse_cq(text, &self.tbox.sig)?;
        let parse_ms = t0.elapsed().as_secs_f64() * 1e3;
        Ok(self.answer_cq_timed(&q, parse_ms))
    }

    /// Answers a SPARQL query (conjunctive fragment) over the ABox.
    pub fn answer_sparql(&self, text: &str) -> Result<Answers, ObdaError> {
        let t0 = Instant::now();
        let q = crate::sparql::parse_sparql(text, &self.tbox.sig)?;
        let parse_ms = t0.elapsed().as_secs_f64() * 1e3;
        Ok(self.answer_cq_timed(&q.cq, parse_ms))
    }

    /// Answers a parsed CQ with PerfectRef over the ABox.
    pub fn answer_cq(&self, q: &ConjunctiveQuery) -> Answers {
        self.answer_cq_timed(q, 0.0)
    }

    fn answer_cq_timed(&self, q: &ConjunctiveQuery, parse_ms: f64) -> Answers {
        let t1 = Instant::now();
        let key = (RewritingMode::PerfectRef, q.canonical());
        // Bind the lookup so the lock is released before the miss arm
        // re-locks for insertion (the rewriter runs unlocked).
        let cached = lock_or_recover(&self.rewrite_cache).get(&key);
        let (entry, cache_hit) = match cached {
            Some(hit) => (hit, true),
            None => {
                let (ucq, raw_len) = rewrite_perfectref_pruned(q, &self.tbox);
                let value = Arc::new(CachedRewriting::PerfectRef { ucq, raw_len });
                lock_or_recover(&self.rewrite_cache).insert(key, Arc::clone(&value));
                (value, false)
            }
        };
        let rewrite_ms = t1.elapsed().as_secs_f64() * 1e3;
        let (ucq, raw_len) = match &*entry {
            CachedRewriting::PerfectRef { ucq, raw_len } => (ucq, raw_len),
            CachedRewriting::Presto(_) => {
                // lint: allow(R1.panic, "this cache only ever receives PerfectRef entries (inserted above); the Presto arm is unreachable by construction")
                unreachable!("AboxSystem caches only PerfectRef rewritings")
            }
        };

        let threads = resolve_threads(self.eval_threads);
        let t2 = Instant::now();
        let answers = evaluate_ucq_parallel(ucq, &self.abox, &self.index, threads);
        if timings_enabled() {
            let eval_ms = t2.elapsed().as_secs_f64() * 1e3;
            eprintln!(
                "mastro-timings rewriting=PerfectRef data=Abox parse_ms={parse_ms:.2} rewrite_ms={rewrite_ms:.2} cache={} ucq={raw_len} pruned={} eval_ms={eval_ms:.2} threads={threads} answers={}",
                if cache_hit { "hit" } else { "miss" },
                ucq.len(),
                answers.len(),
            );
        }
        answers
    }
}

#[cfg(test)]
mod shareability {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    /// The serving layer shares one loaded system across worker threads;
    /// this pins the `Send + Sync` bounds at compile time.
    #[test]
    fn systems_are_send_and_sync() {
        assert_send_sync::<ObdaSystem>();
        assert_send_sync::<AboxSystem>();
        assert_send_sync::<RewriteCacheStats>();
    }
}
