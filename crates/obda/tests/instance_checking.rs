//! Instance checking through the OBDA pipeline.

use obda_genont::university_scenario;

#[test]
fn instance_checking_goes_through_the_hierarchy() {
    let scenario = university_scenario(1, 42);
    let sys = mastro::demo::build_system(&scenario).unwrap();
    // Find one grad student from the data.
    let grads = sys.answer("q(x) :- GradStudent(x)").unwrap();
    let grad_iri = match grads.iter().next().unwrap()[0] {
        mastro::AnswerTerm::Iri(ref s) => s.clone(),
        _ => unreachable!(),
    };
    assert!(sys.is_instance_of(&grad_iri, "GradStudent").unwrap());
    assert!(sys.is_instance_of(&grad_iri, "Student").unwrap());
    assert!(sys.is_instance_of(&grad_iri, "Person").unwrap());
    assert!(!sys.is_instance_of(&grad_iri, "Course").unwrap());
    assert!(!sys.is_instance_of("person/99999", "Person").unwrap());
    assert!(sys.is_instance_of("nonsense", "Person").is_ok());
    assert!(sys.is_instance_of(&grad_iri, "NoSuchConcept").is_err());
}
