//! Equivalence properties for the streaming write path: after any
//! interleaving of delta batches and queries, an incrementally
//! maintained engine must answer byte-identically to one rebuilt from
//! scratch over the same final fact set.
//!
//! The matrix covers:
//!
//! * unsharded [`mastro::AboxSystem`] and [`mastro::ShardedAboxSystem`]
//!   at 2/4/8 shards;
//! * UCQ (PerfectRef) and NDL rewriting — the NDL runs exercise the
//!   memoized view extents' incremental maintenance;
//! * warm and cold memo: warm runs query *between* batches (so deltas
//!   patch live extents), cold runs only query at checkpoints;
//! * deletes that hit, deletes that miss, duplicate inserts, and
//!   batches mixing all three (the `genont::churn` stream);
//! * the soundness corner: deleting one of two role pairs with the same
//!   subject must keep the subject in `∃p`-derived concept answers.

use mastro::{
    parse_cq, AboxDelta, AboxSystem, ConjunctiveQuery, DeltaStatement, RewritingMode,
    ShardedAboxSystem,
};
use obda_dllite::{Abox, Assertion, Tbox, Value};
use obda_genont::{churn_stream, university_scenario, ChurnFact, ChurnOp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A churn fact as the wire-level statement the write path consumes.
fn to_statement(f: &ChurnFact) -> DeltaStatement {
    match f {
        ChurnFact::Concept {
            concept,
            individual,
        } => DeltaStatement::unary(concept, individual),
        ChurnFact::Role {
            role,
            subject,
            object,
        } => DeltaStatement::binary(role, subject, object),
        ChurnFact::Attr {
            attr,
            individual,
            text,
        } => DeltaStatement::binary_value(attr, individual, Value::Text(text.clone())),
    }
}

/// Resolves a churn fact against the shadow ABox without interning —
/// `None` means the fact can't be present (unknown individual).
fn find_shadow_assertion(tbox: &Tbox, shadow: &Abox, f: &ChurnFact) -> Option<Assertion> {
    match f {
        ChurnFact::Concept {
            concept,
            individual,
        } => Some(Assertion::Concept(
            tbox.sig.find_concept(concept)?,
            shadow.find_individual(individual)?,
        )),
        ChurnFact::Role {
            role,
            subject,
            object,
        } => Some(Assertion::Role(
            tbox.sig.find_role(role)?,
            shadow.find_individual(subject)?,
            shadow.find_individual(object)?,
        )),
        ChurnFact::Attr {
            attr,
            individual,
            text,
        } => Some(Assertion::Attribute(
            tbox.sig.find_attribute(attr)?,
            shadow.find_individual(individual)?,
            Value::Text(text.clone()),
        )),
    }
}

/// Applies one batch to the shadow ABox with the write path's
/// semantics: deletes first, then inserts.
fn shadow_apply(tbox: &Tbox, shadow: &mut Abox, deletes: &[ChurnFact], inserts: &[ChurnFact]) {
    for f in deletes {
        if let Some(a) = find_shadow_assertion(tbox, shadow, f) {
            shadow.remove(&a);
        }
    }
    for f in inserts {
        match f {
            ChurnFact::Concept {
                concept,
                individual,
            } => {
                let c = tbox.sig.find_concept(concept).expect(concept);
                shadow.assert_concept(c, individual);
            }
            ChurnFact::Role {
                role,
                subject,
                object,
            } => {
                let p = tbox.sig.find_role(role).expect(role);
                shadow.assert_role(p, subject, object);
            }
            ChurnFact::Attr {
                attr,
                individual,
                text,
            } => {
                let u = tbox.sig.find_attribute(attr).expect(attr);
                shadow.assert_attribute(u, individual, Value::Text(text.clone()));
            }
        }
    }
}

/// One engine under test: unsharded or sharded, behind a common answer
/// surface.
enum Engine {
    Plain(Box<AboxSystem>),
    Sharded(Box<ShardedAboxSystem>),
}

impl Engine {
    fn build(tbox: Tbox, abox: Abox, mode: RewritingMode, shards: usize) -> Engine {
        if shards <= 1 {
            Engine::Plain(Box::new(AboxSystem::new(tbox, abox).with_rewriting(mode)))
        } else {
            Engine::Sharded(Box::new(
                ShardedAboxSystem::new(tbox, abox, shards).with_rewriting(mode),
            ))
        }
    }

    fn apply(&self, delta: &AboxDelta) {
        use mastro::QueryEngine;
        match self {
            Engine::Plain(s) => s.apply_delta(delta).expect("apply"),
            Engine::Sharded(s) => s.apply_delta(delta).expect("apply"),
        };
    }

    fn answer(&self, q: &ConjunctiveQuery) -> mastro::Answers {
        match self {
            Engine::Plain(s) => s.answer_cq(q),
            Engine::Sharded(s) => s.answer_cq(q),
        }
    }
}

/// The core property: replay a churn stream in random batches against
/// an incremental engine; at every checkpoint its answers must be
/// byte-identical to a from-scratch rebuild over the shadow ABox.
fn check_interleaving(mode: RewritingMode, shards: usize, seed: u64, warm: bool) {
    let scenario = university_scenario(1, seed);
    let base = mastro::demo::build_system(&scenario)
        .expect("build")
        .materialized_abox()
        .expect("materialize")
        .abox
        .clone();
    let tbox = scenario.tbox.clone();
    let queries: Vec<ConjunctiveQuery> = scenario
        .queries
        .iter()
        .map(|q| parse_cq(&q.text, &tbox.sig).expect("scenario query parses"))
        .collect();

    let engine = Engine::build(tbox.clone(), base.clone(), mode, shards);
    let mut shadow = base;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    let stream = churn_stream(1, seed, 96);
    let mut cursor = 0;
    let mut checked = 0;
    while cursor < stream.len() {
        let size = rng.gen_range(1..=8usize).min(stream.len() - cursor);
        let batch = &stream[cursor..cursor + size];
        cursor += size;

        let mut delta = AboxDelta::new();
        let (mut ins, mut del) = (Vec::new(), Vec::new());
        for op in batch {
            match op {
                ChurnOp::Insert(f) => {
                    delta = delta.insert(to_statement(f));
                    ins.push(f.clone());
                }
                ChurnOp::Delete(f) => {
                    delta = delta.delete(to_statement(f));
                    del.push(f.clone());
                }
            }
        }
        engine.apply(&delta);
        shadow_apply(&tbox, &mut shadow, &del, &ins);

        // Warm runs keep the memo live by querying after every batch;
        // cold runs only look at every third checkpoint (the memo was
        // never populated for the epochs in between).
        if warm || cursor % 3 == 0 {
            let q = &queries[rng.gen_range(0..queries.len())];
            let reference = Engine::build(tbox.clone(), shadow.clone(), mode, shards);
            assert_eq!(
                engine.answer(q),
                reference.answer(q),
                "{mode:?}/{shards} shards diverged after {cursor} ops on {q:?}"
            );
            checked += 1;
        }
    }
    assert!(checked >= 5, "interleaving checked too little: {checked}");
}

#[test]
fn ucq_incremental_matches_rebuild_unsharded() {
    check_interleaving(RewritingMode::PerfectRef, 1, 11, true);
    check_interleaving(RewritingMode::PerfectRef, 1, 12, false);
}

#[test]
fn ndl_incremental_matches_rebuild_unsharded() {
    check_interleaving(RewritingMode::Ndl, 1, 21, true);
    check_interleaving(RewritingMode::Ndl, 1, 22, false);
}

#[test]
fn ucq_incremental_matches_rebuild_sharded() {
    for shards in [2, 4, 8] {
        check_interleaving(RewritingMode::PerfectRef, shards, 31 + shards as u64, true);
    }
}

#[test]
fn ndl_incremental_matches_rebuild_sharded() {
    for shards in [2, 4, 8] {
        check_interleaving(RewritingMode::Ndl, shards, 41 + shards as u64, true);
    }
    // One cold-memo sharded run.
    check_interleaving(RewritingMode::Ndl, 4, 49, false);
}

/// The delete-soundness corner the targeted invalidation exists for:
/// `∃takesCourse ⊑ Student`, so a subject with *two* course pairs must
/// stay a Student answer when one pair is deleted, and drop out only
/// when the last pair goes. A memo patched by naive member-removal
/// would evict the subject too early.
#[test]
fn deleting_one_of_two_role_pairs_keeps_the_subject_in_exists() {
    let scenario = university_scenario(1, 7);
    let base = mastro::demo::build_system(&scenario)
        .expect("build")
        .materialized_abox()
        .expect("materialize")
        .abox
        .clone();
    let tbox = scenario.tbox.clone();
    let q = parse_cq("q(x) :- Student(x)", &tbox.sig).expect("parse");
    let ind = "person/exists-corner";

    for mode in [RewritingMode::PerfectRef, RewritingMode::Ndl] {
        for shards in [1, 4] {
            let engine = Engine::build(tbox.clone(), base.clone(), mode, shards);
            let baseline = engine.answer(&q);
            assert!(!baseline.iter().any(|t| t[0].to_string().contains(ind)));

            // Two pairs, warm the memo, then delete one.
            engine.apply(
                &AboxDelta::new()
                    .insert(DeltaStatement::binary("takesCourse", ind, "course/0"))
                    .insert(DeltaStatement::binary("takesCourse", ind, "course/1")),
            );
            let with_both = engine.answer(&q);
            assert_eq!(with_both.len(), baseline.len() + 1, "{mode:?}/{shards}");

            engine.apply(&AboxDelta::new().delete(DeltaStatement::binary(
                "takesCourse",
                ind,
                "course/0",
            )));
            assert_eq!(
                engine.answer(&q),
                with_both,
                "{mode:?}/{shards}: subject must survive while one pair remains"
            );

            engine.apply(&AboxDelta::new().delete(DeltaStatement::binary(
                "takesCourse",
                ind,
                "course/1",
            )));
            assert_eq!(
                engine.answer(&q),
                baseline,
                "{mode:?}/{shards}: subject must drop with its last pair"
            );
        }
    }
}

/// Unknown predicates are rejected atomically: nothing from the batch
/// lands, and the engine keeps answering.
#[test]
fn bad_batches_are_rejected_atomically() {
    use mastro::QueryEngine;
    let scenario = university_scenario(1, 3);
    let base = mastro::demo::build_system(&scenario)
        .expect("build")
        .materialized_abox()
        .expect("materialize")
        .abox
        .clone();
    let tbox = scenario.tbox.clone();
    let q = parse_cq("q(x) :- Student(x)", &tbox.sig).expect("parse");
    let sys = AboxSystem::new(tbox, base).with_rewriting(RewritingMode::Ndl);
    let before = sys.answer_cq(&q);

    let bad = AboxDelta::new()
        .insert(DeltaStatement::unary("Student", "person/good"))
        .insert(DeltaStatement::unary("NoSuchConcept", "person/bad"));
    assert!(sys.apply_delta(&bad).is_err());
    assert_eq!(
        sys.answer_cq(&q),
        before,
        "a rejected batch must change nothing"
    );
}
