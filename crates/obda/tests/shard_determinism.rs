//! Determinism property for the sharded scatter-gather tier: at any
//! shard count, [`ShardedAboxSystem`] must return answer sets
//! byte-identical to the unsharded [`AboxSystem`] — for shard-local
//! star disjuncts, cross-shard joins (the gather-then-join fallback),
//! constant-subject routing, value-typed head variables, and shard
//! counts that exceed the number of individuals (empty shards).

use mastro::{
    AboxSystem, Atom, ConjunctiveQuery, EngineConfig, QueryEngine, QueryLang, ShardedAboxSystem,
    Term, ValueTerm,
};
use obda_dllite::{AttributeId, ConceptId, RoleId, Tbox, Value};
use obda_genont::{random_abox, random_tbox, university_scenario};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random small safe CQ (same generator shape as the fast-path
/// equivalence suite): 1–3 atoms over a small variable pool, head = one
/// random body variable, so value-typed heads and multi-subject bodies
/// both occur regularly.
fn random_query(seed: u64, t: &Tbox) -> Option<ConjunctiveQuery> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_atoms = rng.gen_range(1..=3);
    let vars = ["x", "y", "z", "w"];
    let val_vars = ["n", "m"];
    let mut atoms = Vec::new();
    for _ in 0..n_atoms {
        let v1 = Term::Var(vars[rng.gen_range(0..vars.len())].to_owned());
        match rng.gen_range(0..4) {
            0 if t.sig.num_concepts() > 0 => {
                let c = ConceptId(rng.gen_range(0..t.sig.num_concepts() as u32));
                atoms.push(Atom::Concept(c, v1));
            }
            1 if t.sig.num_attributes() > 0 => {
                let u = AttributeId(rng.gen_range(0..t.sig.num_attributes() as u32));
                let v = if rng.gen_bool(0.7) {
                    ValueTerm::Var(val_vars[rng.gen_range(0..val_vars.len())].to_owned())
                } else {
                    ValueTerm::Lit(Value::Int(rng.gen_range(0..5)))
                };
                atoms.push(Atom::Attribute(u, v1, v));
            }
            _ if t.sig.num_roles() > 0 => {
                let p = RoleId(rng.gen_range(0..t.sig.num_roles() as u32));
                let v2 = Term::Var(vars[rng.gen_range(0..vars.len())].to_owned());
                atoms.push(Atom::Role(p, v1, v2));
            }
            _ => return None,
        }
    }
    let body_vars: Vec<String> = {
        let q = ConjunctiveQuery {
            head: vec![],
            atoms: atoms.clone(),
        };
        q.body_vars().into_iter().map(str::to_owned).collect()
    };
    if body_vars.is_empty() {
        return None;
    }
    let head = vec![body_vars[rng.gen_range(0..body_vars.len())].clone()];
    Some(ConjunctiveQuery { head, atoms })
}

/// Positive-only projection of a random TBox (PerfectRef input shape).
fn random_positive_tbox(
    seed: u64,
    concepts: usize,
    roles: usize,
    attrs: usize,
    axioms: usize,
) -> Tbox {
    let full = random_tbox(seed, concepts, roles, attrs, axioms);
    let mut pos = Tbox::with_signature(full.sig.clone());
    for ax in full.positive_inclusions() {
        pos.add(*ax);
    }
    pos
}

/// Whether all atoms share one subject term (the shard-local shape) —
/// used only to assert the generators cover both routing classes.
fn single_subject(q: &ConjunctiveQuery) -> bool {
    let mut subject: Option<&Term> = None;
    for atom in &q.atoms {
        let s = match atom {
            Atom::Concept(_, t) => t,
            Atom::Role(_, s, _) => s,
            Atom::Attribute(_, s, _) => s,
        };
        match subject {
            None => subject = Some(s),
            Some(prev) if prev == s => {}
            Some(_) => return false,
        }
    }
    true
}

#[test]
fn sharded_evaluation_matches_unsharded_on_random_aboxes() {
    let mut cross_shard = 0;
    let mut value_headed = 0;
    let mut nonempty_answers = 0;
    for seed in 0u64..60 {
        let t = random_positive_tbox(seed.wrapping_add(47_000), 5, 3, 2, 12);
        let ab = random_abox(seed ^ 0x5AAD, &t, 6, 18);
        let Some(q) = random_query(seed ^ 0xE11, &t) else {
            continue;
        };
        if !single_subject(&q) {
            cross_shard += 1;
        }
        if q.atoms.iter().any(
            |a| matches!(a, Atom::Attribute(_, _, ValueTerm::Var(v)) if Some(v.as_str()) == q.head.first().map(String::as_str)),
        ) {
            value_headed += 1;
        }
        let reference = AboxSystem::new(t.clone(), ab.clone()).with_eval_threads(1);
        let expected = reference.answer_cq(&q);
        if !expected.is_empty() {
            nonempty_answers += 1;
        }
        for shards in [1usize, 2, 4, 8] {
            let sys = ShardedAboxSystem::new(t.clone(), ab.clone(), shards);
            assert_eq!(
                sys.answer_cq(&q),
                expected,
                "seed {seed}: {shards}-shard evaluation diverged on {q:?}"
            );
        }
    }
    // The property is vacuous unless the generators hit every regime.
    assert!(
        cross_shard >= 10,
        "only {cross_shard} runs had cross-shard join shapes; generators drifted"
    );
    assert!(
        value_headed >= 5,
        "only {value_headed} runs had value-typed heads; generators drifted"
    );
    assert!(
        nonempty_answers >= 20,
        "only {nonempty_answers} runs produced answers; generators drifted"
    );
}

#[test]
fn constant_subjects_route_and_answer_identically() {
    let t = random_positive_tbox(61_000, 4, 3, 1, 10);
    let ab = random_abox(0xC0157, &t, 5, 20);
    let reference = AboxSystem::new(t.clone(), ab.clone()).with_eval_threads(1);
    // Query around every individual by name (present constants) plus one
    // name no shard interned (absent constant → empty everywhere).
    let mut names: Vec<String> = (0..ab.num_individuals())
        .map(|i| {
            ab.individual_name(obda_dllite::IndividualId(i as u32))
                .to_owned()
        })
        .collect();
    names.push("no-such-individual".into());
    for shards in [2usize, 4, 8] {
        let sys = ShardedAboxSystem::new(t.clone(), ab.clone(), shards);
        for name in &names {
            let q = ConjunctiveQuery {
                head: vec!["y".into()],
                atoms: vec![Atom::Role(
                    RoleId(0),
                    Term::Const(name.clone()),
                    Term::Var("y".into()),
                )],
            };
            assert_eq!(
                sys.answer_cq(&q),
                reference.answer_cq(&q),
                "{shards}-shard constant routing diverged for {name}"
            );
        }
    }
}

#[test]
fn more_shards_than_individuals_leaves_empty_shards_correct() {
    let t = random_positive_tbox(62_000, 3, 2, 1, 8);
    // Tiny ABox: 2 individuals, 8 shards — most shards own nothing.
    let ab = random_abox(0x71AE, &t, 2, 3);
    let reference = AboxSystem::new(t.clone(), ab.clone()).with_eval_threads(1);
    let sys = ShardedAboxSystem::new(t.clone(), ab.clone(), 8);
    assert_eq!(sys.num_shards(), 8);
    let empty_shards = sys.shard_fact_counts().iter().filter(|&&n| n == 0).count();
    assert!(empty_shards > 0, "expected at least one empty shard");
    for seed in 0u64..20 {
        let Some(q) = random_query(seed ^ 0xF00, &t) else {
            continue;
        };
        assert_eq!(
            sys.answer_cq(&q),
            reference.answer_cq(&q),
            "seed {seed}: empty-shard evaluation diverged on {q:?}"
        );
    }
}

#[test]
fn builder_engine_answers_university_queries_identically_at_any_shard_count() {
    let scenario = university_scenario(1, 7);
    let sys = mastro::demo::build_system(&scenario).unwrap();
    let mat = sys.materialized_abox().unwrap();
    let reference: Box<dyn QueryEngine> = Box::new(
        EngineConfig::new()
            .eval_threads(1)
            .build_abox(scenario.tbox.clone(), mat.abox.clone()),
    );
    for shards in [1usize, 2, 4, 8] {
        let engine = EngineConfig::new()
            .shards(shards)
            .build_abox_engine(scenario.tbox.clone(), mat.abox.clone());
        assert_eq!(
            engine.stats().shards,
            shards.max(1),
            "builder shard count not honored"
        );
        for qs in &scenario.queries {
            let got = engine.answer(QueryLang::Cq, &qs.text).unwrap();
            let want = reference.answer(QueryLang::Cq, &qs.text).unwrap();
            assert_eq!(got, want, "{}: {shards}-shard engine diverged", qs.name);
        }
        // Warm pass: the coordinator rewrite cache must not change
        // answers, and must actually be hit.
        for qs in &scenario.queries {
            assert_eq!(
                engine.answer(QueryLang::Cq, &qs.text).unwrap(),
                reference.answer(QueryLang::Cq, &qs.text).unwrap(),
                "{}: warm sharded cache changed answers",
                qs.name
            );
        }
        assert!(
            engine.stats().rewrite_cache.hits > 0,
            "sharded engine never hit its rewrite cache"
        );
        if shards > 1 {
            assert_eq!(engine.shard_stats().len(), shards);
        }
    }
}
