//! Equivalence properties for the query-answering fast path:
//!
//! * the predicate-indexed PerfectRef must produce the same UCQ (as a
//!   canonical set) as the original axiom-scanning loop;
//! * subsumption pruning must not change answers — pruned and unpruned
//!   UCQs agree with each other and with the certain answers computed
//!   independently by the bounded chase;
//! * the sharded parallel UCQ evaluator must return byte-identical
//!   answer sets at 1/2/4/8 threads;
//! * the rewrite caches answer warm queries identically to cold ones.

use std::collections::BTreeSet;

use mastro::{
    evaluate_ucq_indexed, evaluate_ucq_parallel, perfect_ref, perfect_ref_scan, prune_ucq,
    AboxIndex, AnswerTerm, Answers, ConjunctiveQuery, Ucq, ValueTerm,
};
use obda_dllite::{Abox, AttributeId, ConceptId, RoleId, Tbox, Value};
use obda_genont::{random_abox, random_tbox, university_scenario};
use obda_reasoners::chase;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random small safe CQ over the TBox signature (same shape as the
/// rewriting-correctness suite, plus attribute atoms). The head picks
/// any body variable, so value-typed head variables (`q(n) :- u0(x, n)`)
/// occur regularly — the shape that exercises the sort-aware head
/// seeding in subsumption pruning.
fn random_query(seed: u64, t: &Tbox) -> Option<ConjunctiveQuery> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_atoms = rng.gen_range(1..=3);
    let vars = ["x", "y", "z", "w"];
    // Disjoint pool for attribute value positions: generated queries
    // stay well-sorted, like everything the parser accepts.
    let val_vars = ["n", "m"];
    let mut atoms = Vec::new();
    for _ in 0..n_atoms {
        let v1 = mastro::Term::Var(vars[rng.gen_range(0..vars.len())].to_owned());
        match rng.gen_range(0..4) {
            0 if t.sig.num_concepts() > 0 => {
                let c = ConceptId(rng.gen_range(0..t.sig.num_concepts() as u32));
                atoms.push(mastro::Atom::Concept(c, v1));
            }
            1 if t.sig.num_attributes() > 0 => {
                let u = AttributeId(rng.gen_range(0..t.sig.num_attributes() as u32));
                let v = if rng.gen_bool(0.7) {
                    ValueTerm::Var(val_vars[rng.gen_range(0..val_vars.len())].to_owned())
                } else {
                    ValueTerm::Lit(Value::Int(rng.gen_range(0..5)))
                };
                atoms.push(mastro::Atom::Attribute(u, v1, v));
            }
            _ if t.sig.num_roles() > 0 => {
                let p = RoleId(rng.gen_range(0..t.sig.num_roles() as u32));
                let v2 = mastro::Term::Var(vars[rng.gen_range(0..vars.len())].to_owned());
                atoms.push(mastro::Atom::Role(p, v1, v2));
            }
            _ => return None,
        }
    }
    let body_vars: Vec<String> = {
        let q = ConjunctiveQuery {
            head: vec![],
            atoms: atoms.clone(),
        };
        q.body_vars().into_iter().map(str::to_owned).collect()
    };
    if body_vars.is_empty() {
        return None;
    }
    let head = vec![body_vars[rng.gen_range(0..body_vars.len())].clone()];
    Some(ConjunctiveQuery { head, atoms })
}

/// Positive-only projection of a random TBox.
fn random_positive_tbox(
    seed: u64,
    concepts: usize,
    roles: usize,
    attrs: usize,
    axioms: usize,
) -> Tbox {
    let full = random_tbox(seed, concepts, roles, attrs, axioms);
    let mut pos = Tbox::with_signature(full.sig.clone());
    for ax in full.positive_inclusions() {
        pos.add(*ax);
    }
    pos
}

fn canonical_set(u: &Ucq) -> BTreeSet<ConjunctiveQuery> {
    u.disjuncts.iter().map(|q| q.canonical()).collect()
}

/// Certain answers through the bounded chase (null-filtered). Besides
/// null individuals, the chase invents null *values* (`_:v…` text
/// literals, from attribute-domain existentials) — neither may appear
/// in a certain answer.
fn certain_answers_via_chase(q: &ConjunctiveQuery, tbox: &Tbox, abox: &Abox) -> Answers {
    let depth = q.atoms.len() + 2;
    let chased = chase(tbox, abox, depth);
    mastro::evaluate_cq(q, &chased.abox)
        .into_iter()
        .filter(|tuple| {
            tuple.iter().all(|t| match t {
                AnswerTerm::Iri(name) => chased
                    .abox
                    .find_individual(name)
                    .is_some_and(|i| !chased.is_null(i)),
                AnswerTerm::Value(Value::Text(s)) => !s.starts_with("_:"),
                AnswerTerm::Value(_) => true,
            })
        })
        .collect()
}

#[test]
fn indexed_rewriter_matches_scanning_loop_on_random_tboxes() {
    let mut non_trivial = 0;
    for seed in 0u64..150 {
        // Keep the full TBox (negative inclusions included): PerfectRef
        // only looks at positive inclusions, and the index must agree
        // with the scan in skipping the rest.
        let t = random_tbox(seed.wrapping_add(2_000), 5, 3, 1, 14);
        let Some(q) = random_query(seed ^ 0x1D8, &t) else {
            continue;
        };
        let indexed = perfect_ref(&q, &t);
        let scanned = perfect_ref_scan(&q, &t);
        assert_eq!(
            canonical_set(&indexed),
            canonical_set(&scanned),
            "seed {seed}: query {q:?} over {} axioms",
            t.len()
        );
        if indexed.len() > 1 {
            non_trivial += 1;
        }
    }
    assert!(
        non_trivial >= 30,
        "only {non_trivial} runs rewrote into >1 disjunct; generators drifted"
    );
}

#[test]
fn pruned_ucq_answers_match_unpruned_and_chase() {
    let mut pruned_something = 0;
    let mut value_headed = 0;
    for seed in 0u64..120 {
        let t = random_positive_tbox(seed.wrapping_add(9_000), 4, 2, 2, 10);
        let ab = random_abox(seed ^ 0xCAFE, &t, 4, 8);
        let Some(q) = random_query(seed ^ 0xD1CE, &t) else {
            continue;
        };
        if q.atoms.iter().any(
            |a| matches!(a, mastro::Atom::Attribute(_, _, ValueTerm::Var(v)) if Some(v.as_str()) == q.head.first().map(String::as_str)),
        ) {
            value_headed += 1;
        }
        let raw = perfect_ref(&q, &t);
        let pruned = prune_ucq(&raw);
        assert!(pruned.len() <= raw.len());
        let index = AboxIndex::build(&ab);
        let unpruned_answers = evaluate_ucq_indexed(&raw, &ab, &index);
        let pruned_answers = evaluate_ucq_indexed(&pruned, &ab, &index);
        assert_eq!(
            unpruned_answers,
            pruned_answers,
            "seed {seed}: pruning {} -> {} disjuncts changed answers for {q:?}",
            raw.len(),
            pruned.len()
        );
        let certain = certain_answers_via_chase(&q, &t, &ab);
        assert_eq!(
            pruned_answers, certain,
            "seed {seed}: pruned UCQ disagrees with the chase for {q:?}"
        );
        if pruned.len() < raw.len() {
            pruned_something += 1;
        }
    }
    assert!(
        pruned_something >= 10,
        "only {pruned_something} runs pruned anything; generators drifted"
    );
    assert!(
        value_headed >= 10,
        "only {value_headed} runs had a value-typed head variable; generators drifted"
    );
}

#[test]
fn parallel_evaluation_is_identical_across_thread_counts() {
    for seed in 0u64..40 {
        let t = random_positive_tbox(seed.wrapping_add(31_000), 5, 3, 2, 12);
        let ab = random_abox(seed ^ 0xFEED, &t, 6, 16);
        let Some(q) = random_query(seed ^ 0xACE, &t) else {
            continue;
        };
        let ucq = perfect_ref(&q, &t);
        let index = AboxIndex::build(&ab);
        let sequential = evaluate_ucq_indexed(&ucq, &ab, &index);
        for threads in [1, 2, 4, 8] {
            let parallel = evaluate_ucq_parallel(&ucq, &ab, &index, threads);
            assert_eq!(
                sequential,
                parallel,
                "seed {seed}: {threads}-thread evaluation diverged on {} disjuncts",
                ucq.len()
            );
        }
    }
}

#[test]
fn warm_rewrite_cache_answers_match_cold() {
    let scenario = university_scenario(1, 13);
    let mut sys = mastro::demo::build_system(&scenario)
        .unwrap()
        .with_rewriting(mastro::RewritingMode::PerfectRef)
        .with_data_mode(mastro::DataMode::Materialized);
    for qs in &scenario.queries {
        let cold = sys.answer(&qs.text).unwrap();
        let warm = sys.answer(&qs.text).unwrap();
        assert_eq!(cold, warm, "{}: warm cache changed answers", qs.name);
    }
    let stats = sys.rewrite_cache_stats();
    assert_eq!(stats.hits, scenario.queries.len() as u64);
    assert_eq!(stats.misses, scenario.queries.len() as u64);
    // Invalidation restores the cold path.
    sys.invalidate_rewrites();
    assert_eq!(sys.tbox_epoch(), 1);
    let again = sys.answer(&scenario.queries[0].text).unwrap();
    assert!(!again.is_empty());
    assert_eq!(
        sys.rewrite_cache_stats().misses,
        scenario.queries.len() as u64 + 1
    );
}

#[test]
fn abox_system_cache_and_threads_preserve_answers() {
    let t = random_positive_tbox(77, 5, 3, 2, 14);
    let ab = random_abox(0x5CA1E, &t, 8, 24);
    let sys0 = mastro::AboxSystem::new(t.clone(), ab.clone());
    let sys4 = mastro::AboxSystem::new(t.clone(), ab.clone()).with_eval_threads(4);
    for seed in 0u64..30 {
        let Some(q) = random_query(seed ^ 0xB0B, &t) else {
            continue;
        };
        let text = mastro::print_cq(&q, &t.sig);
        let a0 = sys0.answer(&text).unwrap();
        let a4 = sys4.answer(&text).unwrap();
        let warm = sys0.answer(&text).unwrap();
        assert_eq!(a0, a4, "thread count changed answers for {text}");
        assert_eq!(a0, warm, "warm cache changed answers for {text}");
    }
    assert!(sys0.rewrite_cache_stats().hits > 0);
}
