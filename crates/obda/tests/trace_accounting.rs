//! Span accounting for per-query traces: every span's direct children
//! must fit inside it (modulo the ≥1µs duration clamp), the phase set
//! must not depend on the evaluator thread count, and both engine
//! shapes attribute the documented phases on every query.

use mastro::{DataMode, EngineConfig, QueryEngine, QueryLang, RewritingMode};
use obda_dllite::{parse_tbox, Tbox};
use obda_genont::{random_abox, university_scenario};
use obda_obs::{QueryTrace, TraceCtx};
use proptest::prelude::*;

/// Answers `text` under a fresh trace context and returns the trace.
fn traced(engine: &dyn QueryEngine, text: &str) -> QueryTrace {
    let ctx = TraceCtx::new();
    let answers = engine
        .answer_traced(QueryLang::Cq, text, &ctx)
        .expect("query answers");
    ctx.finish("ok", answers.len() as u64)
        .expect("fresh contexts are enabled")
}

/// Depth-0 phase names in recording order.
fn phase_names(trace: &QueryTrace) -> Vec<&'static str> {
    trace.phases().iter().map(|(name, _)| *name).collect()
}

/// Checks the books: every span ends inside the trace, and for every
/// span the sum of its direct children's durations fits inside the
/// parent. Durations are clamped up to ≥1µs when recorded, so each
/// child may legitimately overshoot by up to 1µs — the tolerance is
/// one microsecond per child.
fn assert_children_fit(trace: &QueryTrace) {
    let spans = &trace.spans;
    for (i, parent) in spans.iter().enumerate() {
        assert!(
            parent.start_us + parent.dur_us <= trace.total_us + 1,
            "span `{}` [{}us +{}us] leaks past the trace total {}us",
            parent.name,
            parent.start_us,
            parent.dur_us,
            trace.total_us
        );
        let mut child_sum = 0u64;
        let mut children = 0u64;
        for s in &spans[i + 1..] {
            if s.depth <= parent.depth {
                break;
            }
            if s.depth == parent.depth + 1 {
                child_sum += s.dur_us;
                children += 1;
            }
        }
        assert!(
            child_sum <= parent.dur_us + children,
            "children of `{}` sum to {}us > parent {}us (+{}us clamp)",
            parent.name,
            child_sum,
            parent.dur_us,
            children
        );
    }
    // The depth-0 phases together fit in the trace total (same clamp).
    let phases = trace.phases();
    let phase_sum: u64 = phases.iter().map(|(_, us)| us).sum();
    assert!(
        phase_sum <= trace.total_us + phases.len() as u64,
        "phases sum to {}us > trace total {}us",
        phase_sum,
        trace.total_us
    );
}

#[test]
fn obda_paths_attribute_expected_phases() {
    let scenario = university_scenario(1, 42);
    let build = |rw: RewritingMode, dm: DataMode| {
        let db = mastro::demo::load_database(&scenario).expect("loads");
        let mappings = mastro::demo::build_mappings(&scenario);
        let sys = EngineConfig::new()
            .rewriting(rw)
            .data_mode(dm)
            .build_obda(scenario.tbox.clone(), mappings, db)
            .expect("builds");
        if dm == DataMode::Materialized {
            let _ = sys.materialized_abox().expect("materializes");
        }
        sys
    };
    let virtual_presto = build(RewritingMode::Presto, DataMode::Virtual);
    let virtual_pr = build(RewritingMode::PerfectRef, DataMode::Virtual);
    let mat_pr = build(RewritingMode::PerfectRef, DataMode::Materialized);
    for qs in &scenario.queries {
        for virt in [&virtual_presto, &virtual_pr] {
            let t = traced(virt, &qs.text);
            assert_children_fit(&t);
            let phases = phase_names(&t);
            for want in ["parse", "rewrite", "unfold", "sql"] {
                assert!(
                    phases.contains(&want),
                    "virtual trace for `{}` is missing `{want}`: {phases:?}",
                    qs.name
                );
            }
            assert!(
                t.counter("sql_queries") >= 1,
                "virtual trace for `{}` scanned no SQL",
                qs.name
            );
        }
        let t = traced(&mat_pr, &qs.text);
        assert_children_fit(&t);
        let phases = phase_names(&t);
        for want in ["parse", "rewrite", "eval"] {
            assert!(
                phases.contains(&want),
                "materialized trace for `{}` is missing `{want}`: {phases:?}",
                qs.name
            );
        }
        assert!(t.counter("threads") >= 1);
    }
}

#[test]
fn phase_set_is_invariant_across_eval_threads() {
    let scenario = university_scenario(1, 42);
    let build = |threads: usize| {
        let db = mastro::demo::load_database(&scenario).expect("loads");
        let mappings = mastro::demo::build_mappings(&scenario);
        let sys = EngineConfig::new()
            .rewriting(RewritingMode::PerfectRef)
            .data_mode(DataMode::Materialized)
            .eval_threads(threads)
            .build_obda(scenario.tbox.clone(), mappings, db)
            .expect("builds");
        // Materialize eagerly so the first traced query looks like the
        // rest.
        let _ = sys.materialized_abox().expect("materializes");
        sys
    };
    let engines: Vec<_> = [1usize, 4, 8].into_iter().map(build).collect();
    for qs in &scenario.queries {
        let mut phase_sets = Vec::new();
        for engine in &engines {
            let t = traced(engine, &qs.text);
            assert_children_fit(&t);
            // Exactly one coordinating eval span regardless of how many
            // worker threads shard the UCQ underneath it.
            assert_eq!(
                t.spans.iter().filter(|s| s.name == "eval").count(),
                1,
                "`{}` should record one eval span: {:?}",
                qs.name,
                t.spans
            );
            phase_sets.push(phase_names(&t));
        }
        assert_eq!(
            phase_sets[0], phase_sets[1],
            "`{}`: 1-thread vs 4-thread phases differ",
            qs.name
        );
        assert_eq!(
            phase_sets[1], phase_sets[2],
            "`{}`: 4-thread vs 8-thread phases differ",
            qs.name
        );
    }
}

fn sig_tbox() -> Tbox {
    parse_tbox("concept A B C\nrole p r\nattribute u").unwrap()
}

prop_compose! {
    fn arb_atom_text()(kind in 0..4, v1 in 0..3usize, v2 in 0..3usize) -> String {
        let vars = ["x", "y", "z"];
        match kind {
            0 => format!("A({})", vars[v1]),
            1 => format!("C({})", vars[v1]),
            2 => format!("r({}, {})", vars[v1], vars[v2]),
            _ => format!("u({}, n{})", vars[v1], v2),
        }
    }
}

prop_compose! {
    fn arb_query()(atoms in proptest::collection::vec(arb_atom_text(), 1..5)) -> String {
        // Head: the first variable occurring in the body (always safe).
        let body = atoms.join(", ");
        let head_var = body
            .chars()
            .skip_while(|c| *c != '(')
            .skip(1)
            .take_while(|c| *c != ',' && *c != ')')
            .collect::<String>();
        format!("q({head_var}) :- {body}")
    }
}

proptest! {
    /// Random queries over random ABoxes: the books balance at every
    /// thread count, and the phase set matches the single-threaded run.
    #[test]
    fn abox_span_accounting_holds(
        q_text in arb_query(),
        seed in 0u64..200,
        threads in 2usize..9,
    ) {
        let tbox = sig_tbox();
        let build = |threads: usize| {
            EngineConfig::new()
                .eval_threads(threads)
                .build_abox(tbox.clone(), random_abox(seed, &tbox, 4, 12))
        };
        let sharded = build(threads);
        let single = build(1);
        let t = traced(&sharded, &q_text);
        assert_children_fit(&t);
        let t1 = traced(&single, &q_text);
        assert_children_fit(&t1);
        prop_assert_eq!(phase_names(&t), phase_names(&t1));
    }
}
