//! End-to-end correctness of the rewriting pipeline:
//!
//! * PerfectRef answers over a plain ABox must equal the **certain
//!   answers**, computed independently by the bounded chase
//!   (`obda-reasoners::chase`): sound and complete for queries whose size
//!   is below the chase depth;
//! * the Presto view rewriting must agree with PerfectRef;
//! * on the university OBDA scenario, all four mode combinations
//!   (PerfectRef/Presto × virtual/materialized) must agree on every
//!   benchmark query.

use mastro::{
    evaluate_ucq, perfect_ref, presto_rewrite, AnswerTerm, Answers, DataMode, RewritingMode,
};
use obda_dllite::{Abox, ConceptId, RoleId, Tbox};
use obda_genont::{random_abox, random_tbox, university_scenario};
use obda_reasoners::chase;
use quonto::Classification;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random small safe CQ over the TBox signature.
fn random_query(seed: u64, t: &Tbox) -> Option<mastro::ConjunctiveQuery> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_atoms = rng.gen_range(1..=3);
    let vars = ["x", "y", "z", "w"];
    let mut atoms = Vec::new();
    for _ in 0..n_atoms {
        let v1 = mastro::Term::Var(vars[rng.gen_range(0..vars.len())].to_owned());
        match rng.gen_range(0..2) {
            0 if t.sig.num_concepts() > 0 => {
                let c = ConceptId(rng.gen_range(0..t.sig.num_concepts() as u32));
                atoms.push(mastro::Atom::Concept(c, v1));
            }
            _ if t.sig.num_roles() > 0 => {
                let p = RoleId(rng.gen_range(0..t.sig.num_roles() as u32));
                let v2 = mastro::Term::Var(vars[rng.gen_range(0..vars.len())].to_owned());
                atoms.push(mastro::Atom::Role(p, v1, v2));
            }
            _ => return None,
        }
    }
    // Head: one variable that occurs in the body.
    let body_vars: Vec<String> = {
        let q = mastro::ConjunctiveQuery {
            head: vec![],
            atoms: atoms.clone(),
        };
        q.body_vars().into_iter().map(str::to_owned).collect()
    };
    if body_vars.is_empty() {
        return None;
    }
    let head = vec![body_vars[rng.gen_range(0..body_vars.len())].clone()];
    Some(mastro::ConjunctiveQuery { head, atoms })
}

/// Certain answers through the bounded chase: evaluate the *original*
/// query over the chased ABox and drop tuples mentioning invented nulls.
fn certain_answers_via_chase(q: &mastro::ConjunctiveQuery, tbox: &Tbox, abox: &Abox) -> Answers {
    let depth = q.atoms.len() + 2;
    let chased = chase(tbox, abox, depth);
    mastro::evaluate_cq(q, &chased.abox)
        .into_iter()
        .filter(|tuple| {
            tuple.iter().all(|t| match t {
                AnswerTerm::Iri(name) => chased
                    .abox
                    .find_individual(name)
                    .is_some_and(|i| !chased.is_null(i)),
                AnswerTerm::Value(_) => true,
            })
        })
        .collect()
}

#[test]
fn perfectref_computes_certain_answers() {
    let mut non_trivial = 0;
    for seed in 0u64..120 {
        // Positive-only TBoxes (certain answers are defined for
        // consistent KBs; negative inclusions don't affect CQ answers
        // when consistent, so skip them for cleaner comparison).
        let t = {
            let full = random_tbox(seed, 4, 2, 0, 10);
            let mut pos = Tbox::with_signature(full.sig.clone());
            for ax in full.positive_inclusions() {
                pos.add(*ax);
            }
            pos
        };
        let ab = random_abox(seed ^ 0xABCD, &t, 4, 8);
        let Some(q) = random_query(seed ^ 0x5EED, &t) else {
            continue;
        };
        let ucq = perfect_ref(&q, &t);
        let rewritten = evaluate_ucq(&ucq, &ab);
        let certain = certain_answers_via_chase(&q, &t, &ab);
        assert_eq!(
            rewritten,
            certain,
            "seed {seed}: query {:?} over {} axioms",
            q,
            t.len()
        );
        if !certain.is_empty() {
            non_trivial += 1;
        }
    }
    assert!(
        non_trivial >= 20,
        "only {non_trivial} runs had answers; generators drifted"
    );
}

#[test]
fn presto_agrees_with_perfectref_on_abox() {
    for seed in 0u64..120 {
        let t = {
            let full = random_tbox(seed.wrapping_add(5000), 4, 2, 1, 12);
            let mut pos = Tbox::with_signature(full.sig.clone());
            for ax in full.positive_inclusions() {
                pos.add(*ax);
            }
            pos
        };
        let ab = random_abox(seed ^ 0xF00D, &t, 4, 10);
        let Some(q) = random_query(seed ^ 0xBEEF, &t) else {
            continue;
        };
        let cls = Classification::classify(&t);
        let pr = evaluate_ucq(&perfect_ref(&q, &t), &ab);
        let rw = presto_rewrite(&q, &cls);
        let mut presto = Answers::new();
        for vq in &rw.queries {
            presto.extend(mastro::rewrite::presto::evaluate_view_query(vq, &cls, &ab));
        }
        assert_eq!(pr, presto, "seed {seed}: query {q:?}");
    }
}

#[test]
fn all_four_modes_agree_on_university_queries() {
    let scenario = university_scenario(1, 42);
    let modes = [
        (RewritingMode::PerfectRef, DataMode::Virtual),
        (RewritingMode::Presto, DataMode::Virtual),
        (RewritingMode::PerfectRef, DataMode::Materialized),
        (RewritingMode::Presto, DataMode::Materialized),
    ];
    for qs in &scenario.queries {
        let mut reference: Option<Answers> = None;
        for (rw, dm) in modes {
            let sys = mastro::demo::build_system(&scenario)
                .unwrap()
                .with_rewriting(rw)
                .with_data_mode(dm);
            let answers = sys.answer(&qs.text).unwrap();
            match &reference {
                None => reference = Some(answers),
                Some(r) => assert_eq!(
                    r.len(),
                    answers.len(),
                    "{} under {rw:?}/{dm:?}: {:?} vs {:?}",
                    qs.name,
                    r,
                    answers
                ),
            }
        }
        // The reference must not be trivially empty for the data-bearing
        // queries.
        if qs.name != "q5" {
            assert!(
                !reference.as_ref().unwrap().is_empty(),
                "{} returned no answers",
                qs.name
            );
        }
    }
}

#[test]
fn ontology_reasoning_changes_answers() {
    // Without the TBox, q1 (Student) would return nothing: only
    // Grad/Undergrad are mapped. The rewriting must surface them.
    let scenario = university_scenario(1, 7);
    let sys = mastro::demo::build_system(&scenario).unwrap();
    let students = sys.answer("q(x) :- Student(x)").unwrap();
    let grads = sys.answer("q(x) :- GradStudent(x)").unwrap();
    let undergrads = sys.answer("q(x) :- UndergradStudent(x)").unwrap();
    assert_eq!(students.len(), grads.len() + undergrads.len());
    assert!(!grads.is_empty() && !undergrads.is_empty());
    // Persons include professors too.
    let persons = sys.answer("q(x) :- Person(x)").unwrap();
    assert!(persons.len() > students.len());
}

#[test]
fn mandatory_participation_answers_via_existentials() {
    // q(x) :- teacherOf(x, y) must include every professor even if the
    // TB_TEACH table were empty, through Professor ⊑ ∃teacherOf... but
    // only when y is non-distinguished. With y distinguished, only
    // asserted pairs answer.
    let scenario = university_scenario(1, 21);
    let sys = mastro::demo::build_system(&scenario).unwrap();
    let teachers_open = sys.answer("q(x) :- teacherOf(x, y)").unwrap();
    let professors = sys.answer("q(x) :- Professor(x)").unwrap();
    assert_eq!(teachers_open, professors);
    let pairs = sys.answer("q(x, y) :- teacherOf(x, y)").unwrap();
    // Every asserted pair's subject is a professor.
    let subjects: Answers = pairs.iter().map(|t| vec![t[0].clone()]).collect();
    assert!(subjects.is_subset(&professors));
}

#[test]
fn consistency_detects_injected_violation() {
    let scenario = university_scenario(1, 99);
    let mut db = mastro::demo::load_database(&scenario).unwrap();
    // A person that is both an undergrad (ptype=1 row) and a professor
    // (ptype=4 row with the same id) violates Professor ⊑ ¬Student.
    db.execute("INSERT INTO TB_PERSON VALUES (9001, 'dr jekyll', 1), (9001, 'mr hyde', 4)")
        .unwrap();
    let mappings = mastro::demo::build_mappings(&scenario);
    let sys = mastro::ObdaSystem::new(scenario.tbox.clone(), mappings, db).unwrap();
    let violations = sys.check_consistency().unwrap();
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, mastro::Violation::NegativeInclusion { .. })),
        "{violations:?}"
    );
}
