//! Tests for the EXPLAIN facility and mode switching on the university
//! scenario.

use mastro::{DataMode, RewritingMode};
use obda_genont::university_scenario;

#[test]
fn explain_shows_rewriting_and_sql() {
    let scenario = university_scenario(1, 42);
    let sys = mastro::demo::build_system(&scenario).unwrap();
    let explain = sys.explain("q(x) :- Student(x)").unwrap();
    assert!(explain.contains("query: q(x) :- Student(x)"));
    assert!(explain.contains("rewriting: Presto"));
    assert!(explain.contains("flat SQL"));
    assert!(explain.contains("SELECT"), "{explain}");
    assert!(explain.contains("TB_PERSON"), "{explain}");
}

#[test]
fn explain_perfectref_lists_disjuncts() {
    let scenario = university_scenario(1, 42);
    let sys = mastro::demo::build_system(&scenario)
        .unwrap()
        .with_rewriting(RewritingMode::PerfectRef);
    let explain = sys.explain("q(x) :- Person(x)").unwrap();
    assert!(explain.contains("rewriting: PerfectRef"));
    // Person expands into many disjuncts (students, professors, domains…).
    let n: usize = explain
        .lines()
        .find_map(|l| {
            l.strip_prefix("rewriting: PerfectRef, ")
                .and_then(|r| r.split(' ').next())
                .and_then(|n| n.parse().ok())
        })
        .expect("disjunct count in explain output");
    assert!(n >= 5, "{explain}");
}

#[test]
fn explain_materialized_mode_skips_sql() {
    let scenario = university_scenario(1, 42);
    let sys = mastro::demo::build_system(&scenario)
        .unwrap()
        .with_data_mode(DataMode::Materialized);
    let explain = sys.explain("q(x) :- Student(x)").unwrap();
    assert!(!explain.contains("SELECT"));
}

#[test]
fn explained_sql_reparses() {
    let scenario = university_scenario(1, 42);
    let sys = mastro::demo::build_system(&scenario).unwrap();
    let explain = sys
        .explain("q(x, y) :- teacherOf(x, y), GradCourse(y)")
        .unwrap();
    for line in explain.lines() {
        let line = line.trim();
        if line.starts_with("SELECT") {
            obda_sqlstore::parse_query(line).expect("explained SQL must reparse");
        }
    }
}
