//! SPARQL answering through the full OBDA pipeline.

use obda_genont::university_scenario;

#[test]
fn sparql_select_equals_cq_answers() {
    let scenario = university_scenario(1, 42);
    let sys = mastro::demo::build_system(&scenario).unwrap();
    let cq = sys.answer("q(x) :- Student(x)").unwrap();
    let sparql = sys
        .answer_sparql("SELECT ?x WHERE { ?x rdf:type :Student }")
        .unwrap();
    assert_eq!(cq, sparql);
    let joined = sys
        .answer_sparql("SELECT ?x ?n WHERE { ?x a :GradStudent . ?x :personName ?n . }")
        .unwrap();
    let cq_joined = sys
        .answer("q(x, n) :- GradStudent(x), personName(x, n)")
        .unwrap();
    assert_eq!(joined, cq_joined);
}

#[test]
fn sparql_ask_is_boolean() {
    let scenario = university_scenario(1, 7);
    let sys = mastro::demo::build_system(&scenario).unwrap();
    let yes = sys
        .answer_sparql("ASK WHERE { ?x a :Professor . ?x :teacherOf ?y }")
        .unwrap();
    assert_eq!(yes.len(), 1);
    // An unsatisfied pattern: a course that takes a course.
    let no = sys
        .answer_sparql("ASK WHERE { ?x a :Course . ?x :takesCourse ?y }")
        .unwrap();
    assert!(no.is_empty());
}

#[test]
fn sparql_with_iri_constant() {
    let scenario = university_scenario(1, 42);
    let sys = mastro::demo::build_system(&scenario).unwrap();
    let grads = sys.answer("q(x) :- GradStudent(x)").unwrap();
    let grad = grads.iter().next().unwrap()[0].to_string();
    let courses = sys
        .answer_sparql(&format!("SELECT ?y WHERE {{ <{grad}> :takesCourse ?y }}"))
        .unwrap();
    let reference = sys
        .answer(&format!("q(y) :- takesCourse(\"{grad}\", y)"))
        .unwrap();
    assert_eq!(courses, reference);
}
