//! Property-based tests for the query layer: parser/printer round-trip,
//! evaluation invariances, and rewriting soundness properties.

use mastro::{evaluate_cq, parse_cq, perfect_ref, print_cq, ConjunctiveQuery};
use obda_dllite::{parse_tbox, Tbox};
use obda_genont::{random_abox, random_tbox};
use proptest::prelude::*;

fn sig_tbox() -> Tbox {
    parse_tbox("concept A B C\nrole p r\nattribute u").unwrap()
}

prop_compose! {
    fn arb_atom_text()(kind in 0..4, v1 in 0..3usize, v2 in 0..3usize) -> String {
        let vars = ["x", "y", "z"];
        match kind {
            0 => format!("A({})", vars[v1]),
            1 => format!("B({})", vars[v1]),
            2 => format!("p({}, {})", vars[v1], vars[v2]),
            _ => format!("u({}, n{})", vars[v1], v2),
        }
    }
}

prop_compose! {
    fn arb_query()(atoms in proptest::collection::vec(arb_atom_text(), 1..5)) -> String {
        // Head: the first variable occurring in the body (always safe).
        let body = atoms.join(", ");
        let head_var = body
            .chars()
            .skip_while(|c| *c != '(')
            .skip(1)
            .take_while(|c| *c != ',' && *c != ')')
            .collect::<String>();
        format!("q({head_var}) :- {body}")
    }
}

proptest! {
    #[test]
    fn parse_print_roundtrip(q_text in arb_query()) {
        let t = sig_tbox();
        let q = parse_cq(&q_text, &t.sig).unwrap();
        let printed = print_cq(&q, &t.sig);
        let q2 = parse_cq(&printed, &t.sig).unwrap();
        prop_assert_eq!(q.canonical(), q2.canonical());
    }

    #[test]
    fn atom_order_does_not_change_answers(
        q_text in arb_query(),
        seed in 0u64..500,
    ) {
        let t = sig_tbox();
        let q = parse_cq(&q_text, &t.sig).unwrap();
        let ab = random_abox(seed, &t, 4, 12);
        let base = evaluate_cq(&q, &ab);
        let mut reversed_atoms = q.atoms.clone();
        reversed_atoms.reverse();
        let reversed = ConjunctiveQuery {
            head: q.head.clone(),
            atoms: reversed_atoms,
        };
        prop_assert_eq!(base, evaluate_cq(&reversed, &ab));
    }

    #[test]
    fn rewriting_is_sound_and_reflexive(
        q_text in arb_query(),
        seed in 0u64..500,
    ) {
        // PerfectRef over a random positive TBox: the rewriting always
        // contains the original query (so its answers are a superset of
        // plain evaluation), and every disjunct keeps the head arity.
        let full = random_tbox(seed, 3, 2, 1, 10);
        let mut tbox = Tbox::with_signature(sig_tbox().sig.clone());
        for ax in full.positive_inclusions() {
            tbox.add(*ax);
        }
        let q = parse_cq(&q_text, &tbox.sig).unwrap();
        let ucq = perfect_ref(&q, &tbox);
        prop_assert!(ucq.disjuncts.contains(&q.canonical()));
        for d in &ucq.disjuncts {
            prop_assert_eq!(d.head.len(), q.head.len());
            prop_assert!(d.is_safe(), "unsafe disjunct {:?}", d);
        }
        let ab = random_abox(seed ^ 0xA5, &tbox, 4, 10);
        let plain = evaluate_cq(&q, &ab);
        let rewritten = mastro::evaluate_ucq(&ucq, &ab);
        prop_assert!(plain.is_subset(&rewritten));
    }

    #[test]
    fn canonicalization_is_stable(q_text in arb_query()) {
        let t = sig_tbox();
        let q = parse_cq(&q_text, &t.sig).unwrap();
        let c1 = q.canonical();
        let c2 = c1.canonical();
        prop_assert_eq!(c1, c2);
    }
}
