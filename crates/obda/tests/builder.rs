//! `SystemBuilder` composition with the environment knobs: unset
//! options default from the env at build time, set options always win.
//!
//! One `#[test]` on purpose — the cases mutate process-global env vars
//! and would race if the harness ran them on parallel threads.

use mastro::{QueryEngine, SystemBuilder};
use obda_dllite::parse_tbox;
use obda_genont::random_abox;
use obda_obs::SinkKind;

#[test]
fn builder_options_win_over_env_knobs() {
    let tbox = parse_tbox("concept A B\nrole p").unwrap();
    let abox = random_abox(7, &tbox, 3, 8);

    // lint: allow(R4.read, "the test exercises the env-default path itself; the knob literal is the subject under test")
    std::env::set_var("QUONTO_THREADS", "3");
    // lint: allow(R4.read, "same: selects the stderr sink to prove the builder overrides it")
    std::env::set_var("QUONTO_TIMINGS", "1");

    // Unset builder options inherit the env defaults at build time.
    let from_env = SystemBuilder::new().build_abox(tbox.clone(), abox.clone());
    assert_eq!(from_env.stats().eval_threads, 3);
    assert!(
        from_env.trace_sink().enabled(),
        "QUONTO_TIMINGS=1 should select an emitting sink"
    );

    // Explicit builder options beat the same knobs.
    let explicit = SystemBuilder::new()
        .eval_threads(7)
        .trace(SinkKind::Off)
        .build_abox(tbox.clone(), abox.clone());
    assert_eq!(explicit.stats().eval_threads, 7);
    assert!(
        !explicit.trace_sink().enabled(),
        "builder-set Off sink must win over QUONTO_TIMINGS=1"
    );

    // With the knobs gone, the documented fallbacks apply.
    // lint: allow(R4.read, "restores the env for the rest of the process")
    std::env::remove_var("QUONTO_THREADS");
    // lint: allow(R4.read, "restores the env for the rest of the process")
    std::env::remove_var("QUONTO_TIMINGS");
    let bare = SystemBuilder::new().build_abox(tbox, abox);
    assert_eq!(bare.stats().eval_threads, 1);
    assert!(!bare.trace_sink().enabled());
}
