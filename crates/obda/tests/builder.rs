//! Configuration composition with the environment knobs: unset
//! options default from the env at build time, set options always win
//! (the `EngineConfig` precedence rule), and the deprecated
//! `SystemBuilder` setters keep working as thin shims.
//!
//! One `#[test]` on purpose — the cases mutate process-global env vars
//! and would race if the harness ran them on parallel threads.

use mastro::{EboxMode, EngineConfig, QueryEngine, SystemBuilder};
use obda_dllite::parse_tbox;
use obda_genont::random_abox;
use obda_obs::SinkKind;

#[test]
fn explicit_config_wins_over_env_knobs() {
    let tbox = parse_tbox("concept A B\nrole p").unwrap();
    let abox = random_abox(7, &tbox, 3, 8);

    // lint: allow(R4.read, "the test exercises the env-default path itself; the knob literal is the subject under test")
    std::env::set_var("QUONTO_THREADS", "3");
    // lint: allow(R4.read, "same: selects the stderr sink to prove the builder overrides it")
    std::env::set_var("QUONTO_TIMINGS", "1");
    // lint: allow(R4.read, "same: proves QUONTO_EBOX is the fallback layer under explicit settings")
    std::env::set_var("QUONTO_EBOX", "infer");

    // Unset config options inherit the env defaults at build time.
    let from_env = EngineConfig::new().build_abox(tbox.clone(), abox.clone());
    assert_eq!(from_env.stats().eval_threads, 3);
    assert_eq!(from_env.stats().ebox, "infer");
    assert!(
        from_env.trace_sink().enabled(),
        "QUONTO_TIMINGS=1 should select an emitting sink"
    );

    // Explicit config options beat the same knobs.
    let explicit = EngineConfig::new()
        .eval_threads(7)
        .ebox(EboxMode::Off)
        .trace(SinkKind::Off)
        .build_abox(tbox.clone(), abox.clone());
    assert_eq!(explicit.stats().eval_threads, 7);
    assert_eq!(
        explicit.stats().ebox,
        "off",
        "config-set Off must win over QUONTO_EBOX=infer"
    );
    assert!(
        !explicit.trace_sink().enabled(),
        "config-set Off sink must win over QUONTO_TIMINGS=1"
    );

    // The deprecated SystemBuilder setters are shims over the same
    // config — identical layering, pinned here until the shims go.
    #[allow(deprecated)]
    let shimmed = SystemBuilder::new()
        .eval_threads(7)
        .trace(SinkKind::Off)
        .build_abox(tbox.clone(), abox.clone());
    assert_eq!(shimmed.stats().eval_threads, 7);
    assert_eq!(
        shimmed.stats().ebox,
        "infer",
        "shim leaves ebox unset, so the knob still applies"
    );
    assert!(!shimmed.trace_sink().enabled());

    // A malformed QUONTO_EBOX value is a validation error, not a
    // silent fallback to off.
    // lint: allow(R4.read, "same: the knob's error path is the subject under test")
    std::env::set_var("QUONTO_EBOX", "sideways");
    assert!(EngineConfig::new().validate().is_err());
    assert!(EngineConfig::new().resolved_ebox().is_err());

    // With the knobs gone, the documented fallbacks apply.
    // lint: allow(R4.read, "restores the env for the rest of the process")
    std::env::remove_var("QUONTO_THREADS");
    // lint: allow(R4.read, "restores the env for the rest of the process")
    std::env::remove_var("QUONTO_TIMINGS");
    // lint: allow(R4.read, "restores the env for the rest of the process")
    std::env::remove_var("QUONTO_EBOX");
    let bare = EngineConfig::new().build_abox(tbox, abox);
    assert_eq!(bare.stats().eval_threads, 1);
    assert_eq!(bare.stats().ebox, "off");
    assert!(!bare.trace_sink().enabled());
}
