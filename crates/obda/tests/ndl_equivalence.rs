//! Equivalence and invalidation properties for the NDL rewriting target:
//!
//! * on the `exp_chain` preset the NDL program is polynomially sized
//!   where the raw UCQ rewriting blows past the prune cap;
//! * NDL answers are byte-identical to the unpruned UCQ's answers, to
//!   the bounded chase, and across the virtual and materialized paths;
//! * the sharded NDL evaluator agrees with the unsharded one at
//!   1/2/4/8 shards;
//! * memoized view extents are invalidated by ABox refresh and by a
//!   TBox-epoch bump — never served stale.

use mastro::{
    evaluate_ucq_indexed, ndl_compile, perfect_ref, AboxIndex, AnswerTerm, Answers,
    ConjunctiveQuery, RewritingMode, ValueTerm,
};
use obda_dllite::{Abox, AttributeId, ConceptId, RoleId, Tbox, Value};
use obda_genont::{exp_chain, random_abox, random_tbox, university_scenario};
use obda_reasoners::chase;
use quonto::Classification;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random small safe CQ over the TBox signature (same generator shape
/// as the fastpath-equivalence suite).
fn random_query(seed: u64, t: &Tbox) -> Option<ConjunctiveQuery> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_atoms = rng.gen_range(1..=3);
    let vars = ["x", "y", "z", "w"];
    let val_vars = ["n", "m"];
    let mut atoms = Vec::new();
    for _ in 0..n_atoms {
        let v1 = mastro::Term::Var(vars[rng.gen_range(0..vars.len())].to_owned());
        match rng.gen_range(0..4) {
            0 if t.sig.num_concepts() > 0 => {
                let c = ConceptId(rng.gen_range(0..t.sig.num_concepts() as u32));
                atoms.push(mastro::Atom::Concept(c, v1));
            }
            1 if t.sig.num_attributes() > 0 => {
                let u = AttributeId(rng.gen_range(0..t.sig.num_attributes() as u32));
                let v = if rng.gen_bool(0.7) {
                    ValueTerm::Var(val_vars[rng.gen_range(0..val_vars.len())].to_owned())
                } else {
                    ValueTerm::Lit(Value::Int(rng.gen_range(0..5)))
                };
                atoms.push(mastro::Atom::Attribute(u, v1, v));
            }
            _ if t.sig.num_roles() > 0 => {
                let p = RoleId(rng.gen_range(0..t.sig.num_roles() as u32));
                let v2 = mastro::Term::Var(vars[rng.gen_range(0..vars.len())].to_owned());
                atoms.push(mastro::Atom::Role(p, v1, v2));
            }
            _ => return None,
        }
    }
    let body_vars: Vec<String> = {
        let q = ConjunctiveQuery {
            head: vec![],
            atoms: atoms.clone(),
        };
        q.body_vars().into_iter().map(str::to_owned).collect()
    };
    if body_vars.is_empty() {
        return None;
    }
    let head = vec![body_vars[rng.gen_range(0..body_vars.len())].clone()];
    Some(ConjunctiveQuery { head, atoms })
}

/// Positive-only projection of a random TBox.
fn random_positive_tbox(
    seed: u64,
    concepts: usize,
    roles: usize,
    attrs: usize,
    axioms: usize,
) -> Tbox {
    let full = random_tbox(seed, concepts, roles, attrs, axioms);
    let mut pos = Tbox::with_signature(full.sig.clone());
    for ax in full.positive_inclusions() {
        pos.add(*ax);
    }
    pos
}

/// Certain answers through the bounded chase (null-filtered).
fn certain_answers_via_chase(q: &ConjunctiveQuery, tbox: &Tbox, abox: &Abox) -> Answers {
    let depth = q.atoms.len() + 2;
    let chased = chase(tbox, abox, depth);
    mastro::evaluate_cq(q, &chased.abox)
        .into_iter()
        .filter(|tuple| {
            tuple.iter().all(|t| match t {
                AnswerTerm::Iri(name) => chased
                    .abox
                    .find_individual(name)
                    .is_some_and(|i| !chased.is_null(i)),
                AnswerTerm::Value(Value::Text(s)) => !s.starts_with("_:"),
                AnswerTerm::Value(_) => true,
            })
        })
        .collect()
}

#[test]
fn ndl_program_is_polynomial_where_ucq_explodes() {
    let c = exp_chain(5, 3, 12);
    let q = mastro::parse_cq(&c.star_query, &c.tbox.sig).unwrap();
    let raw = perfect_ref(&q, &c.tbox);
    assert_eq!(raw.len(), c.expected_ucq_disjuncts());
    assert!(
        raw.len() > 512,
        "exp_chain(5, 3) must blow past the default prune cap, got {}",
        raw.len()
    );
    let cls = Classification::classify(&c.tbox);
    let prog = ndl_compile(&q, &cls);
    assert_eq!(prog.num_rules, c.expected_ndl_rules());
    assert!(
        prog.num_rules < 64,
        "NDL program must stay polynomial, got {} rules",
        prog.num_rules
    );
}

#[test]
fn ndl_answers_match_unpruned_ucq_on_exp_chain() {
    let c = exp_chain(5, 3, 12);
    let q = mastro::parse_cq(&c.star_query, &c.tbox.sig).unwrap();
    let raw = perfect_ref(&q, &c.tbox);
    let index = AboxIndex::build(&c.abox);
    let ucq_answers = evaluate_ucq_indexed(&raw, &c.abox, &index);
    // Every individual is asserted into a subsumee of every level.
    assert_eq!(ucq_answers.len(), 12);

    let sys =
        mastro::AboxSystem::new(c.tbox.clone(), c.abox.clone()).with_rewriting(RewritingMode::Ndl);
    let ndl_answers = sys.answer_cq(&q);
    assert_eq!(ndl_answers, ucq_answers);
    // Warm pass (memoized extents) must not change anything.
    assert_eq!(sys.answer_cq(&q), ucq_answers);
}

#[test]
fn sharded_ndl_matches_unsharded_at_every_shard_count() {
    let c = exp_chain(4, 2, 16);
    let reference =
        mastro::AboxSystem::new(c.tbox.clone(), c.abox.clone()).with_rewriting(RewritingMode::Ndl);
    let mut queries = vec![mastro::parse_cq(&c.star_query, &c.tbox.sig).unwrap()];
    queries.extend((0u64..20).filter_map(|s| random_query(s ^ 0xD17, &c.tbox)));
    for shards in [1, 2, 4, 8] {
        let sharded = mastro::ShardedAboxSystem::new(c.tbox.clone(), c.abox.clone(), shards)
            .with_rewriting(RewritingMode::Ndl);
        for q in &queries {
            let expected = reference.answer_cq(q);
            let got = sharded.answer_cq(q);
            assert_eq!(
                got,
                expected,
                "{shards}-shard NDL diverged on {q:?} ({} expected rows)",
                expected.len()
            );
            // Warm pass against the memoized merged extents.
            assert_eq!(sharded.answer_cq(q), expected, "{shards}-shard warm pass");
        }
    }
}

#[test]
fn ndl_matches_perfectref_and_chase_on_random_ontologies() {
    let mut non_empty = 0;
    for seed in 0u64..80 {
        let t = random_positive_tbox(seed.wrapping_add(50_000), 4, 2, 2, 10);
        let ab = random_abox(seed ^ 0xBEEF, &t, 5, 12);
        let Some(q) = random_query(seed ^ 0xA11, &t) else {
            continue;
        };
        let pr = mastro::AboxSystem::new(t.clone(), ab.clone())
            .with_rewriting(RewritingMode::PerfectRef);
        let ndl = mastro::AboxSystem::new(t.clone(), ab.clone()).with_rewriting(RewritingMode::Ndl);
        let pr_answers = pr.answer_cq(&q);
        let ndl_answers = ndl.answer_cq(&q);
        assert_eq!(
            ndl_answers, pr_answers,
            "seed {seed}: NDL diverged from PerfectRef on {q:?}"
        );
        let certain = certain_answers_via_chase(&q, &t, &ab);
        assert_eq!(
            ndl_answers, certain,
            "seed {seed}: NDL disagrees with the chase on {q:?}"
        );
        if !ndl_answers.is_empty() {
            non_empty += 1;
        }
    }
    assert!(
        non_empty >= 15,
        "only {non_empty} runs answered anything; generators drifted"
    );
}

#[test]
fn ndl_virtual_matches_materialized_on_university() {
    let scenario = university_scenario(1, 23);
    let base = mastro::demo::build_system(&scenario).unwrap();
    let ndl_virtual = base
        .clone()
        .with_rewriting(RewritingMode::Ndl)
        .with_data_mode(mastro::DataMode::Virtual);
    let ndl_materialized = base
        .clone()
        .with_rewriting(RewritingMode::Ndl)
        .with_data_mode(mastro::DataMode::Materialized);
    let reference = base
        .with_rewriting(RewritingMode::PerfectRef)
        .with_data_mode(mastro::DataMode::Materialized);
    let mut non_empty = 0;
    for qs in &scenario.queries {
        let expected = reference.answer(&qs.text).unwrap();
        let virt = ndl_virtual.answer(&qs.text).unwrap();
        let mat = ndl_materialized.answer(&qs.text).unwrap();
        assert_eq!(virt, expected, "{}: NDL virtual diverged", qs.name);
        assert_eq!(mat, expected, "{}: NDL materialized diverged", qs.name);
        // Warm passes: shared-subplan SQL and memoized extents.
        assert_eq!(ndl_virtual.answer(&qs.text).unwrap(), expected);
        assert_eq!(ndl_materialized.answer(&qs.text).unwrap(), expected);
        if !expected.is_empty() {
            non_empty += 1;
        }
    }
    assert!(non_empty >= 3, "university scenario queries mostly empty");
}

#[test]
fn ndl_memo_is_invalidated_by_abox_refresh_and_epoch_bump() {
    let c = exp_chain(3, 2, 6);
    let q = mastro::parse_cq(&c.star_query, &c.tbox.sig).unwrap();
    let mut sys =
        mastro::AboxSystem::new(c.tbox.clone(), c.abox.clone()).with_rewriting(RewritingMode::Ndl);

    let hit = obda_obs::registry().counter("ndl_view_memo_hit");
    let miss = obda_obs::registry().counter("ndl_view_memo_miss");

    let (h0, m0) = (hit.get(), miss.get());
    let cold = sys.answer_cq(&q);
    assert_eq!(cold.len(), 6);
    // Cold pass built every view extent (other tests may add more).
    assert!(miss.get() - m0 >= 3, "cold pass must miss the memo");

    let (h1, _) = (hit.get(), miss.get());
    assert_eq!(sys.answer_cq(&q), cold);
    assert!(hit.get() - h1 >= 3, "warm pass must hit the memo");
    let _ = h0;

    // ABox mutation + refresh: the memo must drop the old extents, and
    // the new individual must show up (a stale memo would drop it).
    sys.mutate_abox(|abox| {
        abox.individual("fresh");
        for i in 1..=3u32 {
            let b = c.tbox.sig.find_concept(&format!("B{i}_0")).unwrap();
            abox.assert_concept(b, "fresh");
        }
    });
    let m2 = miss.get();
    let refreshed = sys.answer_cq(&q);
    assert_eq!(refreshed.len(), 7, "refreshed answers must include `fresh`");
    assert!(miss.get() - m2 >= 3, "refresh must rebuild the extents");

    // Epoch bump (TBox invalidation): same answers, rebuilt extents.
    sys.invalidate_rewrites();
    let m3 = miss.get();
    assert_eq!(sys.answer_cq(&q), refreshed);
    assert!(miss.get() - m3 >= 3, "epoch bump must rebuild the extents");
}
