//! End-to-end equivalence of the *virtual* pipeline (rewrite → unfold →
//! SQL → answer reconstruction) with direct ABox evaluation, over random
//! knowledge bases served through the triple-store bridge
//! (`mastro::demo::system_from_abox`). Also validates the virtual
//! consistency check against the chase oracle.

use mastro::{evaluate_ucq, perfect_ref, DataMode, RewritingMode};
use obda_dllite::Tbox;
use obda_genont::{random_abox, random_tbox};
use obda_reasoners::is_consistent;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn positive_part(t: &Tbox) -> Tbox {
    let mut out = Tbox::with_signature(t.sig.clone());
    for ax in t.positive_inclusions() {
        out.add(*ax);
    }
    out
}

/// Small random safe query over the signature.
fn random_query(seed: u64, t: &Tbox) -> Option<mastro::ConjunctiveQuery> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let vars = ["x", "y", "z"];
    let n_atoms = rng.gen_range(1..=3);
    let mut atoms = Vec::new();
    for _ in 0..n_atoms {
        let v1 = mastro::Term::Var(vars[rng.gen_range(0..vars.len())].to_owned());
        match rng.gen_range(0..3) {
            0 if t.sig.num_concepts() > 0 => atoms.push(mastro::Atom::Concept(
                obda_dllite::ConceptId(rng.gen_range(0..t.sig.num_concepts() as u32)),
                v1,
            )),
            1 if t.sig.num_roles() > 0 => atoms.push(mastro::Atom::Role(
                obda_dllite::RoleId(rng.gen_range(0..t.sig.num_roles() as u32)),
                v1,
                mastro::Term::Var(vars[rng.gen_range(0..vars.len())].to_owned()),
            )),
            _ if t.sig.num_attributes() > 0 => atoms.push(mastro::Atom::Attribute(
                obda_dllite::AttributeId(rng.gen_range(0..t.sig.num_attributes() as u32)),
                v1,
                mastro::ValueTerm::Var(format!("n{}", rng.gen_range(0..2))),
            )),
            _ => return None,
        }
    }
    let q = mastro::ConjunctiveQuery {
        head: vec![],
        atoms,
    };
    let vars: Vec<String> = q.body_vars().into_iter().map(str::to_owned).collect();
    let head = vec![vars[rng.gen_range(0..vars.len())].clone()];
    Some(mastro::ConjunctiveQuery {
        head,
        atoms: q.atoms,
    })
}

#[test]
fn virtual_answers_equal_direct_abox_evaluation() {
    let mut non_trivial = 0;
    for seed in 0u64..60 {
        let tbox = positive_part(&random_tbox(seed, 4, 2, 1, 12));
        let abox = random_abox(seed ^ 0x77, &tbox, 4, 12);
        let Some(q) = random_query(seed ^ 0x1234, &tbox) else {
            continue;
        };
        // Reference: PerfectRef evaluated directly over the ABox.
        let ucq = perfect_ref(&q, &tbox);
        let reference = evaluate_ucq(&ucq, &abox);
        // Virtual: through the triple-store bridge, both rewritings.
        for rw in [RewritingMode::PerfectRef, RewritingMode::Presto] {
            let sys = mastro::demo::system_from_abox(tbox.clone(), &abox)
                .expect("bridge builds")
                .with_rewriting(rw)
                .with_data_mode(DataMode::Virtual);
            let got = sys.answer_cq(&q).expect("virtual answers");
            assert_eq!(got, reference, "seed {seed} mode {rw:?} query {q:?}");
        }
        if !reference.is_empty() {
            non_trivial += 1;
        }
    }
    assert!(non_trivial >= 15, "only {non_trivial} non-trivial runs");
}

#[test]
fn virtual_consistency_matches_chase_oracle() {
    let mut inconsistent_seen = 0;
    for seed in 0u64..80 {
        let tbox = random_tbox(seed.wrapping_mul(17).wrapping_add(3), 4, 2, 1, 14);
        let abox = random_abox(seed ^ 0xC0FFEE, &tbox, 3, 10);
        let sys = mastro::demo::system_from_abox(tbox.clone(), &abox).expect("bridge builds");
        let virtual_consistent = sys.check_consistency().expect("check runs").is_empty();
        let chase_consistent = is_consistent(&tbox, &abox, 3);
        assert_eq!(
            virtual_consistent, chase_consistent,
            "seed {seed}: virtual={virtual_consistent} chase={chase_consistent}"
        );
        if !chase_consistent {
            inconsistent_seen += 1;
        }
    }
    assert!(
        inconsistent_seen >= 10,
        "only {inconsistent_seen} inconsistent cases; generator drifted"
    );
}
