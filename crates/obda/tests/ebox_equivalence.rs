//! Equivalence properties for EBox constraint-aware pruning: enabling
//! the EBox must never change an answer, only the amount of rewriting
//! work performed. Three properties pin that down:
//!
//! * **Random ontologies**: on random positive-only TBoxes and ABoxes,
//!   an `Infer`-mode engine, an `Off`-mode engine, and the independent
//!   bounded-chase oracle must all return the same certain answers —
//!   and the inferred EBoxes must actually carry constraints, so the
//!   comparison exercises the pruned code path.
//! * **Constraint-invalidating writes**: a delta that asserts a fact
//!   for a predicate the EBox marked empty must retract the stale
//!   constraint *and* keep the engine byte-identical to a system
//!   rebuilt (constraints re-inferred) from the post-write fact set.
//! * **Sharded = unsharded**: the sharded coordinator with its
//!   intersected, subject-local EBox must agree with the unsharded
//!   engine under churn, query by query.

use mastro::{
    parse_cq, AboxDelta, AboxSystem, AnswerTerm, Answers, DeltaStatement, EboxMode, QueryEngine,
    ShardedAboxSystem,
};
use obda_dllite::{Abox, Assertion, ConceptId, RoleId, Signature, Tbox, Value};
use obda_genont::{churn_stream, random_abox, random_tbox, university_scenario, ChurnFact};
use obda_reasoners::chase;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random small safe CQ over the TBox signature (same generator shape
/// as `rewriting_correctness.rs`, different seeds).
fn random_query(seed: u64, t: &Tbox) -> Option<mastro::ConjunctiveQuery> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_atoms = rng.gen_range(1..=3);
    let vars = ["x", "y", "z", "w"];
    let mut atoms = Vec::new();
    for _ in 0..n_atoms {
        let v1 = mastro::Term::Var(vars[rng.gen_range(0..vars.len())].to_owned());
        match rng.gen_range(0..2) {
            0 if t.sig.num_concepts() > 0 => {
                let c = ConceptId(rng.gen_range(0..t.sig.num_concepts() as u32));
                atoms.push(mastro::Atom::Concept(c, v1));
            }
            _ if t.sig.num_roles() > 0 => {
                let p = RoleId(rng.gen_range(0..t.sig.num_roles() as u32));
                let v2 = mastro::Term::Var(vars[rng.gen_range(0..vars.len())].to_owned());
                atoms.push(mastro::Atom::Role(p, v1, v2));
            }
            _ => return None,
        }
    }
    let body_vars: Vec<String> = {
        let q = mastro::ConjunctiveQuery {
            head: vec![],
            atoms: atoms.clone(),
        };
        q.body_vars().into_iter().map(str::to_owned).collect()
    };
    if body_vars.is_empty() {
        return None;
    }
    let head = vec![body_vars[rng.gen_range(0..body_vars.len())].clone()];
    Some(mastro::ConjunctiveQuery { head, atoms })
}

/// Certain answers through the bounded chase — the oracle is entirely
/// independent of the rewriting and of the EBox machinery.
fn certain_answers_via_chase(q: &mastro::ConjunctiveQuery, tbox: &Tbox, abox: &Abox) -> Answers {
    let depth = q.atoms.len() + 2;
    let chased = chase(tbox, abox, depth);
    mastro::evaluate_cq(q, &chased.abox)
        .into_iter()
        .filter(|tuple| {
            tuple.iter().all(|t| match t {
                AnswerTerm::Iri(name) => chased
                    .abox
                    .find_individual(name)
                    .is_some_and(|i| !chased.is_null(i)),
                AnswerTerm::Value(_) => true,
            })
        })
        .collect()
}

/// Positive-only restriction of a random TBox (certain answers are
/// defined for consistent KBs; negative inclusions don't change CQ
/// answers on consistent data).
fn positive_tbox(seed: u64) -> Tbox {
    let full = random_tbox(seed, 4, 2, 0, 10);
    let mut pos = Tbox::with_signature(full.sig.clone());
    for ax in full.positive_inclusions() {
        pos.add(*ax);
    }
    pos
}

#[test]
fn ebox_pruned_answers_equal_unpruned_and_chase() {
    let mut non_trivial = 0;
    let mut constrained = 0;
    for seed in 0u64..120 {
        let t = positive_tbox(seed.wrapping_add(0xEB0));
        let ab = random_abox(seed ^ 0xE0B0, &t, 4, 8);
        let Some(q) = random_query(seed ^ 0x0BDA, &t) else {
            continue;
        };
        let pruned = AboxSystem::new(t.clone(), ab.clone()).with_ebox_mode(EboxMode::Infer);
        let unpruned = AboxSystem::new(t.clone(), ab.clone());
        assert_eq!(
            unpruned.ebox_constraints(),
            0,
            "Off mode must carry no EBox"
        );
        if pruned.ebox_constraints() > 0 {
            constrained += 1;
        }
        let with_ebox = pruned.answer_cq(&q);
        let without = unpruned.answer_cq(&q);
        let certain = certain_answers_via_chase(&q, &t, &ab);
        assert_eq!(
            with_ebox, without,
            "seed {seed}: EBox pruning changed answers for {q:?}"
        );
        assert_eq!(
            with_ebox,
            certain,
            "seed {seed}: pruned rewriting diverged from the chase for {q:?} over {} axioms",
            t.len()
        );
        if !certain.is_empty() {
            non_trivial += 1;
        }
    }
    assert!(
        non_trivial >= 20,
        "only {non_trivial} runs had answers; generators drifted"
    );
    assert!(
        constrained >= 40,
        "only {constrained} runs inferred any EBox constraint; the property no longer \
         exercises the pruned path"
    );
}

/// A churn fact as the wire-level statement the write path consumes.
fn to_statement(f: &ChurnFact) -> DeltaStatement {
    match f {
        ChurnFact::Concept {
            concept,
            individual,
        } => DeltaStatement::unary(concept, individual),
        ChurnFact::Role {
            role,
            subject,
            object,
        } => DeltaStatement::binary(role, subject, object),
        ChurnFact::Attr {
            attr,
            individual,
            text,
        } => DeltaStatement::binary_value(attr, individual, Value::Text(text.clone())),
    }
}

/// Applies one batch to the shadow ABox with the write path's
/// semantics: deletes first, then inserts.
fn shadow_apply(tbox: &Tbox, shadow: &mut Abox, deletes: &[ChurnFact], inserts: &[ChurnFact]) {
    for f in deletes {
        let a = match f {
            ChurnFact::Concept {
                concept,
                individual,
            } => tbox
                .sig
                .find_concept(concept)
                .and_then(|c| Some(Assertion::Concept(c, shadow.find_individual(individual)?))),
            ChurnFact::Role {
                role,
                subject,
                object,
            } => tbox.sig.find_role(role).and_then(|p| {
                Some(Assertion::Role(
                    p,
                    shadow.find_individual(subject)?,
                    shadow.find_individual(object)?,
                ))
            }),
            ChurnFact::Attr {
                attr,
                individual,
                text,
            } => tbox.sig.find_attribute(attr).and_then(|u| {
                Some(Assertion::Attribute(
                    u,
                    shadow.find_individual(individual)?,
                    Value::Text(text.clone()),
                ))
            }),
        };
        if let Some(a) = a {
            shadow.remove(&a);
        }
    }
    for f in inserts {
        match f {
            ChurnFact::Concept {
                concept,
                individual,
            } => {
                let c = tbox.sig.find_concept(concept).expect(concept);
                shadow.assert_concept(c, individual);
            }
            ChurnFact::Role {
                role,
                subject,
                object,
            } => {
                let p = tbox.sig.find_role(role).expect(role);
                shadow.assert_role(p, subject, object);
            }
            ChurnFact::Attr {
                attr,
                individual,
                text,
            } => {
                let u = tbox.sig.find_attribute(attr).expect(attr);
                shadow.assert_attribute(u, individual, Value::Text(text.clone()));
            }
        }
    }
}

/// The scenario's benchmark queries, parsed.
fn scenario_queries(
    scale: usize,
    seed: u64,
    sig: &Signature,
) -> Vec<(String, mastro::ConjunctiveQuery)> {
    university_scenario(scale, seed)
        .queries
        .into_iter()
        .map(|q| {
            let parsed = parse_cq(&q.text, sig).expect("scenario query parses");
            (q.name, parsed)
        })
        .collect()
}

/// The materialized university ABox (entailed facts included) — the
/// same fact set `demo::build_system` serves from.
fn university_abox(scale: usize, seed: u64) -> (Tbox, Abox) {
    let scenario = university_scenario(scale, seed);
    let sys = mastro::demo::build_system(&scenario).expect("university system");
    let mat = sys.materialized_abox().expect("materializes");
    (scenario.tbox.clone(), mat.abox.clone())
}

#[test]
fn constraint_invalidating_delta_matches_rebuild() {
    let (tbox, abox) = university_abox(1, 11);
    let live = AboxSystem::new(tbox.clone(), abox.clone()).with_ebox_mode(EboxMode::Infer);
    let before = live.ebox_constraints();
    assert!(
        before > 0,
        "university data must yield inferred constraints"
    );

    // A concept with no instances in the materialized ABox: its
    // emptiness is exactly the kind of constraint `Infer` records and
    // an insert must invalidate.
    let empty_concept = tbox
        .sig
        .concepts()
        .map(|c| tbox.sig.concept_name(c).to_owned())
        .find(|name| {
            let q = parse_cq(&format!("q(x) :- {name}(x)"), &tbox.sig).unwrap();
            live.answer_cq(&q).is_empty()
        })
        .expect("some concept is unasserted in the university ABox");
    let probe = parse_cq(&format!("q(x) :- {empty_concept}(x)"), &tbox.sig).unwrap();

    // Insert a fresh individual into the empty concept through the
    // write path. The stale "empty" constraint must be retracted…
    let delta = AboxDelta::new().insert(DeltaStatement::unary(&empty_concept, "being/omega"));
    let summary = live.apply_delta(&delta).expect("write path accepts");
    assert_eq!(summary.inserted, 1);
    let after = live.ebox_constraints();
    assert!(
        after < before,
        "inserting into `{empty_concept}` must retract its emptiness \
         constraint ({before} -> {after})"
    );

    // …and the engine must now agree, answer for answer, with a system
    // rebuilt over the post-write fact set — both with constraints
    // re-inferred from scratch and with the EBox off entirely.
    let mut shadow = abox.clone();
    shadow_apply(
        &tbox,
        &mut shadow,
        &[],
        &[ChurnFact::Concept {
            concept: empty_concept.clone(),
            individual: "being/omega".into(),
        }],
    );
    let rebuilt = AboxSystem::new(tbox.clone(), shadow.clone()).with_ebox_mode(EboxMode::Infer);
    let plain = AboxSystem::new(tbox.clone(), shadow.clone());
    let mut queries = scenario_queries(1, 11, &tbox.sig);
    queries.push(("probe".into(), probe.clone()));
    for (name, q) in &queries {
        let got = live.answer_cq(q);
        assert_eq!(got, rebuilt.answer_cq(q), "{name}: live vs rebuilt-Infer");
        assert_eq!(got, plain.answer_cq(q), "{name}: live vs rebuilt-Off");
    }
    assert!(!live.answer_cq(&probe).is_empty(), "the insert must answer");

    // Deleting the fact again keeps the engine sound: the EBox only
    // ever weakens on writes, so the re-emptied predicate stays
    // unconstrained — and answers still match a from-scratch rebuild.
    let undo = AboxDelta::new().delete(DeltaStatement::unary(&empty_concept, "being/omega"));
    live.apply_delta(&undo).expect("delete applies");
    assert!(live.answer_cq(&probe).is_empty());
    let reverted = AboxSystem::new(tbox.clone(), abox.clone());
    for (name, q) in &queries {
        assert_eq!(
            live.answer_cq(q),
            reverted.answer_cq(q),
            "{name}: undo must restore the original answers"
        );
    }
}

#[test]
fn churn_stream_keeps_infer_engine_rebuild_identical() {
    let (tbox, abox) = university_abox(1, 23);
    let live = AboxSystem::new(tbox.clone(), abox.clone()).with_ebox_mode(EboxMode::Infer);
    let off = AboxSystem::new(tbox.clone(), abox.clone());
    let mut shadow = abox;
    let queries = scenario_queries(1, 23, &tbox.sig);

    let stream = churn_stream(1, 23, 96);
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let mut i = 0;
    let mut checkpoints = 0;
    while i < stream.len() {
        let take = rng.gen_range(1usize..=7).min(stream.len() - i);
        let mut delta = AboxDelta::new();
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for op in &stream[i..i + take] {
            if op.is_insert() {
                delta = delta.insert(to_statement(op.fact()));
                inserts.push(op.fact().clone());
            } else {
                delta = delta.delete(to_statement(op.fact()));
                deletes.push(op.fact().clone());
            }
        }
        i += take;
        live.apply_delta(&delta).expect("churn batch applies");
        off.apply_delta(&delta).expect("churn batch applies");
        shadow_apply(&tbox, &mut shadow, &deletes, &inserts);

        // Checkpoint: the incrementally maintained Infer engine, the
        // Off engine fed the same writes, and an Infer engine rebuilt
        // from the shadow fact set all agree on every benchmark query.
        let rebuilt = AboxSystem::new(tbox.clone(), shadow.clone()).with_ebox_mode(EboxMode::Infer);
        for (name, q) in &queries {
            let got = live.answer_cq(q);
            assert_eq!(got, off.answer_cq(q), "{name} after {i} churn ops (vs Off)");
            assert_eq!(
                got,
                rebuilt.answer_cq(q),
                "{name} after {i} churn ops (vs rebuild)"
            );
        }
        checkpoints += 1;
    }
    assert!(
        checkpoints >= 5,
        "stream sliced too coarsely: {checkpoints}"
    );
}

#[test]
fn sharded_matches_unsharded_under_ebox() {
    let (tbox, abox) = university_abox(1, 37);
    let plain = AboxSystem::new(tbox.clone(), abox.clone()).with_ebox_mode(EboxMode::Infer);
    let sharded = ShardedAboxSystem::new(tbox.clone(), abox, 4).with_ebox_mode(EboxMode::Infer);
    assert_eq!(sharded.ebox_mode(), EboxMode::Infer);
    let stats = sharded.stats();
    assert_eq!(stats.ebox, "infer");
    assert!(
        stats.ebox_constraints > 0,
        "the coordinator must hold an intersected, subject-local EBox"
    );

    let queries = scenario_queries(1, 37, &tbox.sig);
    for (name, q) in &queries {
        assert_eq!(
            plain.answer_cq(q),
            sharded.answer_cq(q),
            "{name}: sharded diverged before any write"
        );
    }

    // Replay churn through both engines; the coordinator's conservative
    // retract-then-revalidate path must stay answer-identical to the
    // unsharded engine's precise one at every checkpoint.
    let stream = churn_stream(1, 37, 64);
    let mut rng = SmallRng::seed_from_u64(0x5AAB);
    let mut i = 0;
    while i < stream.len() {
        let take = rng.gen_range(1usize..=9).min(stream.len() - i);
        let mut delta = AboxDelta::new();
        for op in &stream[i..i + take] {
            delta = if op.is_insert() {
                delta.insert(to_statement(op.fact()))
            } else {
                delta.delete(to_statement(op.fact()))
            };
        }
        i += take;
        plain.apply_delta(&delta).expect("plain applies");
        sharded.apply_delta(&delta).expect("sharded applies");
        for (name, q) in &queries {
            assert_eq!(
                plain.answer_cq(q),
                sharded.answer_cq(q),
                "{name}: sharded diverged after {i} churn ops"
            );
        }
    }
}
