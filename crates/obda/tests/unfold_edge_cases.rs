//! Edge cases of the SQL unfolding: template-prefix pruning, typed
//! suffix pushdown, boolean queries, join-heavy mapping bodies, and
//! unsat-predicate consistency violations.

use mastro::{AnswerTerm, ObdaSystem};
use obda_dllite::{parse_tbox, Tbox};
use obda_mapping::{IriTemplate, MappingAssertion, MappingHead, MappingSet};
use obda_sqlstore::Database;

fn tpl(prefix: &str, column: &str) -> IriTemplate {
    IriTemplate {
        prefix: prefix.into(),
        column: column.into(),
    }
}

/// Two concepts populated from different IRI templates, plus a role
/// whose subject template matches only one of them.
fn fixture() -> (Tbox, MappingSet, Database) {
    let tbox = parse_tbox(
        "concept Person Company Thing\nrole owns\nattribute label\n\
         Person [= Thing\nCompany [= Thing\n\
         exists owns [= Person\nexists inv(owns) [= Company",
    )
    .unwrap();
    let mut db = Database::new();
    db.execute("CREATE TABLE P (pid INT)").unwrap();
    db.execute("CREATE TABLE C (cid INT, cname TEXT)").unwrap();
    db.execute("CREATE TABLE O (pid INT, cid INT)").unwrap();
    db.execute("INSERT INTO P VALUES (1), (2)").unwrap();
    db.execute("INSERT INTO C VALUES (10, 'acme'), (11, 'umbrella')")
        .unwrap();
    db.execute("INSERT INTO O VALUES (1, 10)").unwrap();
    let sig = &tbox.sig;
    let mut ms = MappingSet::new();
    ms.add(MappingAssertion {
        sql: "SELECT pid FROM P".into(),
        heads: vec![MappingHead::Concept {
            concept: sig.find_concept("Person").unwrap(),
            subject: tpl("person/", "pid"),
        }],
    });
    ms.add(MappingAssertion {
        sql: "SELECT cid, cname FROM C".into(),
        heads: vec![
            MappingHead::Concept {
                concept: sig.find_concept("Company").unwrap(),
                subject: tpl("company/", "cid"),
            },
            MappingHead::Attribute {
                attribute: sig.find_attribute("label").unwrap(),
                subject: tpl("company/", "cid"),
                value_column: "cname".into(),
            },
        ],
    });
    ms.add(MappingAssertion {
        sql: "SELECT pid, cid FROM O".into(),
        heads: vec![MappingHead::Role {
            role: sig.find_role("owns").unwrap(),
            subject: tpl("person/", "pid"),
            object: tpl("company/", "cid"),
        }],
    });
    (tbox, ms, db)
}

#[test]
fn prefix_pruning_blocks_cross_template_joins() {
    let (tbox, ms, db) = fixture();
    let sys = ObdaSystem::new(tbox, ms, db).unwrap();
    // Person(x) ∧ Company(x): templates person/ vs company/ never join.
    let answers = sys.answer("q(x) :- Person(x), Company(x)").unwrap();
    assert!(answers.is_empty());
    // But Thing(x) unions both template families.
    let things = sys.answer("q(x) :- Thing(x)").unwrap();
    assert_eq!(things.len(), 4);
}

#[test]
fn iri_constants_push_down_as_typed_suffixes() {
    let (tbox, ms, db) = fixture();
    let sys = ObdaSystem::new(tbox, ms, db).unwrap();
    let owned = sys.answer("q(y) :- owns(\"person/1\", y)").unwrap();
    assert_eq!(owned.len(), 1);
    assert!(owned.contains(&vec![AnswerTerm::Iri("company/10".into())]));
    // A constant with a non-matching prefix prunes the whole combo.
    let none = sys.answer("q(y) :- owns(\"company/1\", y)").unwrap();
    assert!(none.is_empty());
    // A matching prefix but absent suffix returns nothing (condition
    // compiles to pid = 99).
    let none2 = sys.answer("q(y) :- owns(\"person/99\", y)").unwrap();
    assert!(none2.is_empty());
}

#[test]
fn boolean_queries_answer_emptiness() {
    let (tbox, ms, db) = fixture();
    let sys = ObdaSystem::new(tbox, ms, db).unwrap();
    let q = mastro::ConjunctiveQuery {
        head: vec![],
        atoms: mastro::parse_cq("q(x) :- owns(x, y)", &sys.tbox.sig)
            .unwrap()
            .atoms,
    };
    let yes = sys.answer_cq(&q).unwrap();
    assert_eq!(yes.len(), 1);
    assert!(yes.contains(&vec![]));
    let q2 = mastro::ConjunctiveQuery {
        head: vec![],
        atoms: mastro::parse_cq("q(x) :- Person(x), Company(x)", &sys.tbox.sig)
            .unwrap()
            .atoms,
    };
    assert!(sys.answer_cq(&q2).unwrap().is_empty());
}

#[test]
fn attribute_values_join_and_filter() {
    let (tbox, ms, db) = fixture();
    let sys = ObdaSystem::new(tbox, ms, db).unwrap();
    let labelled = sys.answer("q(x, n) :- label(x, n)").unwrap();
    assert_eq!(labelled.len(), 2);
    let acme = sys.answer("q(x) :- label(x, \"acme\")").unwrap();
    assert_eq!(acme.len(), 1);
    assert!(acme.contains(&vec![AnswerTerm::Iri("company/10".into())]));
}

#[test]
fn domain_range_typing_flows_through_roles() {
    let (tbox, ms, db) = fixture();
    let sys = ObdaSystem::new(tbox, ms, db).unwrap();
    // Person includes the owners (∃owns ⊑ Person) — here redundant with
    // the direct mapping — and Company includes owned things via range.
    let companies = sys.answer("q(y) :- Company(y)").unwrap();
    assert_eq!(companies.len(), 2);
    // An owned object appears in Company even without its C row: delete
    // logic is out of scope, so instead check a role-only individual.
    let mut db2 = Database::new();
    db2.execute("CREATE TABLE P (pid INT)").unwrap();
    db2.execute("CREATE TABLE C (cid INT, cname TEXT)").unwrap();
    db2.execute("CREATE TABLE O (pid INT, cid INT)").unwrap();
    db2.execute("INSERT INTO O VALUES (7, 77)").unwrap();
    let (tbox2, ms2, _) = fixture();
    let sys2 = ObdaSystem::new(tbox2, ms2, db2).unwrap();
    let companies2 = sys2.answer("q(y) :- Company(y)").unwrap();
    assert_eq!(companies2.len(), 1);
    assert!(companies2.contains(&vec![AnswerTerm::Iri("company/77".into())]));
    let _ = sys.answer("q(x) :- Thing(x)").unwrap();
}

#[test]
fn mapping_bodies_with_joins_flatten_into_the_unfolding() {
    let tbox = parse_tbox("concept Customer").unwrap();
    let mut db = Database::new();
    db.execute("CREATE TABLE A (id INT, flag INT)").unwrap();
    db.execute("CREATE TABLE B (id INT, tier INT)").unwrap();
    db.execute("INSERT INTO A VALUES (1, 1), (2, 0), (3, 1)")
        .unwrap();
    db.execute("INSERT INTO B VALUES (1, 9), (3, 2)").unwrap();
    let mut ms = MappingSet::new();
    ms.add(MappingAssertion {
        sql: "SELECT a.id FROM A a JOIN B b ON a.id = b.id WHERE a.flag = 1 AND b.tier >= 5".into(),
        heads: vec![MappingHead::Concept {
            concept: tbox.sig.find_concept("Customer").unwrap(),
            subject: tpl("cust/", "id"),
        }],
    });
    let sys = ObdaSystem::new(tbox, ms, db).unwrap();
    let answers = sys.answer("q(x) :- Customer(x)").unwrap();
    assert_eq!(answers.len(), 1);
    assert!(answers.contains(&vec![AnswerTerm::Iri("cust/1".into())]));
}

#[test]
fn unsat_predicate_with_instances_is_a_violation() {
    let tbox = parse_tbox("concept Broken A B\nBroken [= A\nBroken [= B\nA [= not B").unwrap();
    let mut db = Database::new();
    db.execute("CREATE TABLE T (id INT)").unwrap();
    db.execute("INSERT INTO T VALUES (1)").unwrap();
    let mut ms = MappingSet::new();
    ms.add(MappingAssertion {
        sql: "SELECT id FROM T".into(),
        heads: vec![MappingHead::Concept {
            concept: tbox.sig.find_concept("Broken").unwrap(),
            subject: tpl("t/", "id"),
        }],
    });
    let sys = ObdaSystem::new(tbox, ms, db).unwrap();
    let violations = sys.check_consistency().unwrap();
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, mastro::Violation::UnsatisfiableNonEmpty { predicate } if predicate == "Broken")),
        "{violations:?}"
    );
}
