//! **A9 ablation**: UCQ (PerfectRef) vs NDL rewriting — rewrite size,
//! rewrite/compile time, and warm answering latency, on the `exp_chain`
//! presets (whose UCQ rewritings blow past the prune cap) and on the
//! standard university queries (where NDL must not be slower).
//!
//! ```text
//! ndl_report [--scale N] [--json FILE]
//! ```
//!
//! `--json FILE` appends one machine-readable record per row to a JSON
//! array at FILE — the format the EXPERIMENTS A9 table is generated
//! from (`BENCH_A9.json`).

use std::time::Instant;

use mastro::{ndl_compile, perfect_ref, DataMode, RewritingMode};
use obda_genont::{exp_chain, university_scenario};
use obda_server::Json;
use quonto::Classification;

struct Row {
    preset: String,
    query: String,
    ucq_disjuncts: usize,
    ndl_rules: usize,
    ucq_rewrite_us: u128,
    ndl_compile_us: u128,
    ucq_answer_us: u128,
    ndl_answer_us: u128,
    answers: usize,
    prune_capped: bool,
}

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1usize);
    let json_path = std::env::args().skip_while(|a| a != "--json").nth(1);

    let mut rows: Vec<Row> = Vec::new();
    let capped = obda_obs::registry().counter("rewrite_prune_capped");

    println!("A9 — UCQ (PerfectRef) vs NDL rewriting\n");

    // Cap-hitting presets: qualified-existential chains whose raw UCQ
    // is (branch+1)^depth while the NDL program stays polynomial.
    for (depth, branch) in [(4usize, 2usize), (5, 3), (6, 3)] {
        let c = exp_chain(depth, branch, 64);
        let q = mastro::parse_cq(&c.star_query, &c.tbox.sig).expect("star query parses");

        let t0 = Instant::now();
        let ucq = perfect_ref(&q, &c.tbox);
        let ucq_rewrite = t0.elapsed();
        let cls = Classification::classify(&c.tbox);
        let t1 = Instant::now();
        let prog = ndl_compile(&q, &cls);
        let ndl_compile_t = t1.elapsed();

        let pr = mastro::AboxSystem::new(c.tbox.clone(), c.abox.clone())
            .with_rewriting(RewritingMode::PerfectRef);
        let ndl = mastro::AboxSystem::new(c.tbox.clone(), c.abox.clone())
            .with_rewriting(RewritingMode::Ndl);
        let capped_before = capped.get();
        let a_pr = pr.answer_cq(&q); // cold: populate rewrite cache
        let prune_capped = capped.get() > capped_before;
        let a_ndl = ndl.answer_cq(&q); // cold: populate memo
        assert_eq!(a_pr, a_ndl, "exp_chain({depth},{branch}): modes disagree");
        let t2 = Instant::now();
        let warm_pr = pr.answer_cq(&q);
        let ucq_answer = t2.elapsed();
        let t3 = Instant::now();
        let warm_ndl = ndl.answer_cq(&q);
        let ndl_answer = t3.elapsed();
        assert_eq!(warm_pr, warm_ndl, "warm answers diverged");

        rows.push(Row {
            preset: format!("exp_chain({depth},{branch})"),
            query: "star".into(),
            ucq_disjuncts: ucq.len(),
            ndl_rules: prog.num_rules,
            ucq_rewrite_us: ucq_rewrite.as_micros(),
            ndl_compile_us: ndl_compile_t.as_micros(),
            ucq_answer_us: ucq_answer.as_micros(),
            ndl_answer_us: ndl_answer.as_micros(),
            answers: a_pr.len(),
            prune_capped,
        });
    }

    // Standard preset: the university query mix, materialized, where the
    // UCQ stays under the cap and NDL must hold its own.
    let scenario = university_scenario(scale, 42);
    let cls = Classification::classify(&scenario.tbox);
    let base = mastro::demo::build_system(&scenario).expect("scenario builds");
    let pr_sys = base
        .clone()
        .with_rewriting(RewritingMode::PerfectRef)
        .with_data_mode(DataMode::Materialized);
    let ndl_sys = base
        .with_rewriting(RewritingMode::Ndl)
        .with_data_mode(DataMode::Materialized);
    for qs in &scenario.queries {
        let q = mastro::parse_cq(&qs.text, &scenario.tbox.sig).expect("query parses");
        let t0 = Instant::now();
        let ucq = perfect_ref(&q, &scenario.tbox);
        let ucq_rewrite = t0.elapsed();
        let t1 = Instant::now();
        let prog = ndl_compile(&q, &cls);
        let ndl_compile_t = t1.elapsed();

        let capped_before = capped.get();
        let a_pr = pr_sys.answer(&qs.text).expect("answers");
        let prune_capped = capped.get() > capped_before;
        let a_ndl = ndl_sys.answer(&qs.text).expect("answers");
        assert_eq!(a_pr, a_ndl, "{}: modes disagree", qs.name);
        let t2 = Instant::now();
        let warm_pr = pr_sys.answer(&qs.text).expect("answers");
        let ucq_answer = t2.elapsed();
        let t3 = Instant::now();
        let warm_ndl = ndl_sys.answer(&qs.text).expect("answers");
        let ndl_answer = t3.elapsed();
        assert_eq!(warm_pr, warm_ndl, "{}: warm answers diverged", qs.name);

        rows.push(Row {
            preset: format!("university(scale {scale})"),
            query: qs.name.clone(),
            ucq_disjuncts: ucq.len(),
            ndl_rules: prog.num_rules,
            ucq_rewrite_us: ucq_rewrite.as_micros(),
            ndl_compile_us: ndl_compile_t.as_micros(),
            ucq_answer_us: ucq_answer.as_micros(),
            ndl_answer_us: ndl_answer.as_micros(),
            answers: a_pr.len(),
            prune_capped,
        });
    }

    let mut table = vec![vec![
        "preset".to_owned(),
        "query".into(),
        "UCQ CQs".into(),
        "NDL rules".into(),
        "UCQ rewrite".into(),
        "NDL compile".into(),
        "UCQ answer".into(),
        "NDL answer".into(),
        "answers".into(),
        "capped".into(),
    ]];
    for r in &rows {
        table.push(vec![
            r.preset.clone(),
            r.query.clone(),
            r.ucq_disjuncts.to_string(),
            r.ndl_rules.to_string(),
            format!("{}us", r.ucq_rewrite_us),
            format!("{}us", r.ndl_compile_us),
            format!("{}us", r.ucq_answer_us),
            format!("{}us", r.ndl_answer_us),
            r.answers.to_string(),
            if r.prune_capped { "yes" } else { "no" }.into(),
        ]);
    }
    println!("{}", obda_bench::render(&table));
    println!(
        "shape: the NDL program grows as depth·(branch+1)+1 where the raw UCQ grows as \
         (branch+1)^depth; past the prune cap the UCQ is evaluated raw (capped=yes) and the \
         shared-view evaluation pulls ahead."
    );

    if let Some(path) = json_path {
        let records: Vec<Json> = rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("table", "A9".into()),
                    ("preset", r.preset.as_str().into()),
                    ("query", r.query.as_str().into()),
                    ("ucq_disjuncts", (r.ucq_disjuncts as u64).into()),
                    ("ndl_rules", (r.ndl_rules as u64).into()),
                    ("ucq_rewrite_us", (r.ucq_rewrite_us as u64).into()),
                    ("ndl_compile_us", (r.ndl_compile_us as u64).into()),
                    ("ucq_answer_us", (r.ucq_answer_us as u64).into()),
                    ("ndl_answer_us", (r.ndl_answer_us as u64).into()),
                    ("answers", (r.answers as u64).into()),
                    ("prune_capped", Json::Bool(r.prune_capped)),
                ])
            })
            .collect();
        if let Err(e) = append_json_records(&path, records) {
            eprintln!("ndl_report: writing --json {path} failed: {e}");
            std::process::exit(1);
        }
        eprintln!("ndl_report: appended {} records to {path}", rows.len());
    }
}

/// Appends `records` to the JSON array at `path` (created when absent).
fn append_json_records(path: &str, records: Vec<Json>) -> Result<(), String> {
    let mut runs = match std::fs::read_to_string(path) {
        Ok(src) => match Json::parse(src.trim()) {
            Ok(Json::Arr(items)) => items,
            Ok(other) => return Err(format!("{path} holds {other}, not a JSON array")),
            Err(e) => return Err(format!("{path} is not valid JSON: {e}")),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.to_string()),
    };
    runs.extend(records);
    let mut out = String::from("[\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&run.to_string());
        if i + 1 < runs.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    std::fs::write(path, out).map_err(|e| e.to_string())
}
