//! **A4 ablation**: end-to-end OBDA answering, virtual (unfold to SQL)
//! vs materialized (evaluate over the extracted ABox), across data
//! scales.

use std::time::Instant;

use mastro::{DataMode, EngineConfig, QueryEngine, QueryLang, RewritingMode};
use obda_genont::university_scenario;
use obda_mapping::materialize;

fn main() {
    println!("A4 — OBDA answering: virtual vs materialized, scale sweep\n");
    let mut table = vec![vec![
        "scale".to_owned(),
        "rows".into(),
        "abox size".into(),
        "materialize".into(),
        "virtual q1..q6".into(),
        "materialized q1..q6".into(),
    ]];
    for scale in [1usize, 4, 16, 32] {
        let scenario = university_scenario(scale, 42);
        let rows: usize = scenario.tables.iter().map(|t| t.rows.len()).sum();
        // Both modes go through the unified QueryEngine trait, built by
        // the EngineConfig — the same construction the server uses.
        let virtual_sys = mastro::demo::build_system(&scenario).expect("builds");
        let t0 = Instant::now();
        let abox = materialize(&virtual_sys.mappings, &virtual_sys.db).expect("materializes");
        let mat_time = t0.elapsed();
        let build = |dm: DataMode| -> Box<dyn QueryEngine> {
            let db = mastro::demo::load_database(&scenario).expect("loads");
            let mappings = mastro::demo::build_mappings(&scenario);
            Box::new(
                EngineConfig::new()
                    .rewriting(RewritingMode::Presto)
                    .data_mode(dm)
                    .build_obda(scenario.tbox.clone(), mappings, db)
                    .expect("builds"),
            )
        };
        let virtual_engine = build(DataMode::Virtual);
        let mat_engine = build(DataMode::Materialized);

        let t1 = Instant::now();
        for qs in &scenario.queries {
            let _ = virtual_engine
                .answer(QueryLang::Cq, &qs.text)
                .expect("virtual answers");
        }
        let virtual_time = t1.elapsed();

        let t2 = Instant::now();
        for qs in &scenario.queries {
            let _ = mat_engine
                .answer(QueryLang::Cq, &qs.text)
                .expect("materialized answers");
        }
        let materialized_time = t2.elapsed();

        table.push(vec![
            scale.to_string(),
            rows.to_string(),
            abox.len().to_string(),
            format!("{mat_time:.2?}"),
            format!("{virtual_time:.2?}"),
            format!("{materialized_time:.2?}"),
        ]);
    }
    println!("{}", obda_bench::render(&table));
    println!("shape: virtual mode pays per-query SQL cost but no upfront extraction; materialization cost grows linearly with the sources.");

    cache_report();
}

/// Section 2: the rewrite cache and the parallel evaluator on the
/// materialized PerfectRef path. `cold` re-rewrites each round
/// (invalidating the cache), `warm` hits the cached pruned UCQ; the
/// thread columns shard the UCQ evaluation.
fn cache_report() {
    println!("\nA4b — rewrite cache and eval threads (PerfectRef, materialized, scale 16)\n");
    let scenario = university_scenario(16, 42);
    let rounds = 20;
    let mut table = vec![vec![
        "query".to_owned(),
        format!("cold x{rounds}"),
        format!("warm x{rounds}"),
        "warm 2t".into(),
        "warm 4t".into(),
        "answers".into(),
    ]];
    let build = |threads: usize| {
        let sys = mastro::demo::build_system(&scenario)
            .expect("builds")
            .with_rewriting(RewritingMode::PerfectRef)
            .with_data_mode(DataMode::Materialized)
            .with_eval_threads(threads);
        let _ = sys.materialized_abox().expect("materializes");
        sys
    };
    let mut sys1 = build(1);
    let mut sys2 = build(2);
    let mut sys4 = build(4);
    for qs in &scenario.queries {
        let t0 = Instant::now();
        let mut answers = Default::default();
        for _ in 0..rounds {
            sys1.invalidate_rewrites();
            answers = sys1.answer(&qs.text).expect("answers");
        }
        let cold = t0.elapsed();

        let warm_timed = |sys: &mut mastro::ObdaSystem| {
            let _ = sys.answer(&qs.text).expect("warms");
            let t = Instant::now();
            for _ in 0..rounds {
                let _ = sys.answer(&qs.text).expect("answers");
            }
            t.elapsed()
        };
        let warm1 = warm_timed(&mut sys1);
        let warm2 = warm_timed(&mut sys2);
        let warm4 = warm_timed(&mut sys4);
        table.push(vec![
            qs.name.clone(),
            format!("{cold:.2?}"),
            format!("{warm1:.2?}"),
            format!("{warm2:.2?}"),
            format!("{warm4:.2?}"),
            answers.len().to_string(),
        ]);
    }
    println!("{}", obda_bench::render(&table));
    let stats = sys1.rewrite_cache_stats();
    println!(
        "cache: {} hits / {} misses on the single-thread system; run with QUONTO_TIMINGS=1 to see the per-phase mastro-timings lines (warm queries report cache=hit rewrite_ms~0).",
        stats.hits, stats.misses
    );
}
