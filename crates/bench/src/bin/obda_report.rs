//! **A4 ablation**: end-to-end OBDA answering, virtual (unfold to SQL)
//! vs materialized (evaluate over the extracted ABox), across data
//! scales.

use std::time::Instant;

use mastro::{DataMode, RewritingMode};
use obda_genont::university_scenario;
use obda_mapping::materialize;

fn main() {
    println!("A4 — OBDA answering: virtual vs materialized, scale sweep\n");
    let mut table = vec![vec![
        "scale".to_owned(),
        "rows".into(),
        "abox size".into(),
        "materialize".into(),
        "virtual q1..q6".into(),
        "materialized q1..q6".into(),
    ]];
    for scale in [1usize, 4, 16, 32] {
        let scenario = university_scenario(scale, 42);
        let rows: usize = scenario.tables.iter().map(|t| t.rows.len()).sum();
        let mut virtual_sys = mastro::demo::build_system(&scenario)
            .expect("builds")
            .with_rewriting(RewritingMode::Presto)
            .with_data_mode(DataMode::Virtual);
        let mut mat_sys = mastro::demo::build_system(&scenario)
            .expect("builds")
            .with_rewriting(RewritingMode::Presto)
            .with_data_mode(DataMode::Materialized);

        let t0 = Instant::now();
        let abox = materialize(&virtual_sys.mappings, &virtual_sys.db).expect("materializes");
        let mat_time = t0.elapsed();

        let t1 = Instant::now();
        for qs in &scenario.queries {
            let _ = virtual_sys.answer(&qs.text).expect("virtual answers");
        }
        let virtual_time = t1.elapsed();

        let t2 = Instant::now();
        for qs in &scenario.queries {
            let _ = mat_sys.answer(&qs.text).expect("materialized answers");
        }
        let materialized_time = t2.elapsed();

        table.push(vec![
            scale.to_string(),
            rows.to_string(),
            abox.len().to_string(),
            format!("{mat_time:.2?}"),
            format!("{virtual_time:.2?}"),
            format!("{materialized_time:.2?}"),
        ]);
    }
    println!("{}", obda_bench::render(&table));
    println!("shape: virtual mode pays per-query SQL cost but no upfront extraction; materialization cost grows linearly with the sources.");
}
