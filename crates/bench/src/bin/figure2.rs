//! **Figure 2 reproduction**: the paper's example diagram in the
//! graphical language — `County ⊑ ∃isPartOf.State`,
//! `State ⊑ ∃isPartOf⁻.County` — validated, translated to DL-Lite, and
//! exported to Graphviz DOT.

use obda_graphlang::{diagram_to_tbox, figure2, to_dot, validate};

fn main() {
    let d = figure2();
    println!("Figure 2 reproduction — the qualified-existential example diagram\n");
    println!(
        "diagram `{}`: {} nodes, {} edges",
        d.name,
        d.nodes().len(),
        d.edges().len()
    );
    let errors = validate(&d);
    println!(
        "validation: {}",
        if errors.is_empty() {
            "well-formed".to_owned()
        } else {
            format!("{errors:?}")
        }
    );
    let tbox = diagram_to_tbox(&d).expect("figure 2 is well-formed");
    println!("\ntranslated DL-Lite assertions (the paper's (1) and (2)):");
    for (i, ax) in tbox.axioms().iter().enumerate() {
        println!(
            "  ({}) {}",
            i + 1,
            obda_dllite::printer::axiom(ax, &tbox.sig, obda_dllite::printer::Style::Display)
        );
    }
    println!("\nGraphviz export (render with `dot -Tsvg`):\n");
    println!("{}", to_dot(&d));
}
