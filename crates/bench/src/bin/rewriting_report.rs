//! **A2 ablation**: PerfectRef vs Presto-style rewriting on the
//! university scenario — rewriting size (CQs / skeletons / flat SQL
//! queries), rewriting time, and end-to-end answering time, per query —
//! plus the predicate-indexed vs axiom-scanning PerfectRef inner loop
//! on Galen/FMA-scale preset TBoxes.

use std::time::Instant;

use mastro::rewrite::unfold::count_ucq_combos;
use mastro::{perfect_ref, perfect_ref_scan, presto_rewrite};
use obda_dllite::{ConceptId, RoleId, Tbox};
use obda_genont::university_scenario;
use quonto::Classification;

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let scenario = university_scenario(scale, 42);
    let sys = mastro::demo::build_system(&scenario).expect("scenario builds");
    let cls = Classification::classify(&scenario.tbox);
    println!("A2 — PerfectRef vs Presto rewriting, university scenario (scale {scale})\n");
    let mut table = vec![vec![
        "query".to_owned(),
        "PR CQs".into(),
        "PR SQL".into(),
        "PR rewrite".into(),
        "PR answer".into(),
        "Presto skeletons".into(),
        "Presto rewrite".into(),
        "Presto answer".into(),
        "answers".into(),
    ]];
    for qs in &scenario.queries {
        let q = mastro::parse_cq(&qs.text, &scenario.tbox.sig).expect("query parses");

        let t0 = Instant::now();
        let ucq = perfect_ref(&q, &scenario.tbox);
        let pr_rewrite = t0.elapsed();
        let pr_sql = count_ucq_combos(&ucq, &sys.mappings, &sys.db).expect("unfolds");
        let t1 = Instant::now();
        let pr_answers = mastro::rewrite::unfold::answer_ucq_virtual(&ucq, &sys.mappings, &sys.db)
            .expect("executes");
        let pr_answer = t1.elapsed();

        let t2 = Instant::now();
        let rw = presto_rewrite(&q, &cls);
        let presto_rewrite_t = t2.elapsed();
        let t3 = Instant::now();
        let presto_answers =
            mastro::rewrite::unfold::answer_presto_virtual(&rw, &cls, &sys.mappings, &sys.db)
                .expect("executes");
        let presto_answer = t3.elapsed();

        assert_eq!(
            pr_answers, presto_answers,
            "{}: the two rewritings must agree",
            qs.name
        );
        table.push(vec![
            qs.name.clone(),
            ucq.len().to_string(),
            pr_sql.to_string(),
            format!("{:.2?}", pr_rewrite),
            format!("{:.2?}", pr_answer),
            rw.len().to_string(),
            format!("{:.2?}", presto_rewrite_t),
            format!("{:.2?}", presto_answer),
            pr_answers.len().to_string(),
        ]);
    }
    println!("{}", obda_bench::render(&table));
    println!("shape: Presto's skeleton count stays flat where PerfectRef's CQ count grows with the hierarchy (the paper's motivation for classification-aware rewriting).");

    indexed_vs_scan_report();
}

/// Section 2: the predicate-indexed applicability map against the
/// original full-TBox scan, on large preset TBoxes. The queries are
/// built programmatically over the generated signature (a concept atom
/// near the hierarchy root, a leaf concept atom, and a concept–role
/// join), so the per-atom axiom scan is exercised at ontology scale.
fn indexed_vs_scan_report() {
    let preset_scale = std::env::args()
        .skip_while(|a| a != "--preset-scale")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1f64);
    println!("\nA2b — indexed vs axiom-scanning PerfectRef, preset TBoxes (scale {preset_scale}, --preset-scale to change)\n");
    let mut table = vec![vec![
        "tbox".to_owned(),
        "axioms".into(),
        "index build".into(),
        "query".into(),
        "UCQ".into(),
        "indexed".into(),
        "scan".into(),
        "speedup".into(),
    ]];
    for preset in [
        obda_genont::presets::galen(),
        obda_genont::presets::fma_1_4(),
        obda_genont::presets::fma_2_0(),
    ] {
        let spec = preset.scaled(preset_scale);
        let tbox = spec.generate();
        // The index is built once per TBox (epoch) and amortized over
        // the query stream, exactly as ObdaSystem's cache does.
        let tb = Instant::now();
        let pi = tbox.pi_index();
        let build_t = tb.elapsed();
        for (qname, q) in preset_queries(&tbox) {
            let t0 = Instant::now();
            let indexed = mastro::perfect_ref_with_index(&q, &pi);
            let indexed_t = t0.elapsed();
            let t1 = Instant::now();
            let scanned = perfect_ref_scan(&q, &tbox);
            let scan_t = t1.elapsed();
            assert_eq!(
                indexed.len(),
                scanned.len(),
                "{}/{qname}: rewriters disagree",
                spec.name
            );
            table.push(vec![
                spec.name.clone(),
                tbox.len().to_string(),
                format!("{build_t:.2?}"),
                qname,
                indexed.len().to_string(),
                format!("{indexed_t:.2?}"),
                format!("{scan_t:.2?}"),
                format!(
                    "{:.1}x",
                    scan_t.as_secs_f64() / indexed_t.as_secs_f64().max(1e-9)
                ),
            ]);
        }
    }
    println!("{}", obda_bench::render(&table));
    println!("shape: the scan pays O(|TBox|) per atom per disjunct; the index pays the applicable axioms only, after a one-off O(|TBox|) build per TBox epoch.");
}

/// Three query shapes over a generated preset signature.
fn preset_queries(tbox: &Tbox) -> Vec<(String, mastro::ConjunctiveQuery)> {
    let n_concepts = tbox.sig.num_concepts() as u32;
    let n_roles = tbox.sig.num_roles() as u32;
    let var = |v: &str| mastro::Term::Var(v.to_owned());
    let mut out = Vec::new();
    // Near-root concept: many incoming inclusions, large UCQ.
    out.push((
        "root_concept".to_owned(),
        mastro::ConjunctiveQuery {
            head: vec!["x".into()],
            atoms: vec![mastro::Atom::Concept(ConceptId(0), var("x"))],
        },
    ));
    // Leaf-ish concept: tiny UCQ, the scan still pays the full TBox.
    out.push((
        "leaf_concept".to_owned(),
        mastro::ConjunctiveQuery {
            head: vec!["x".into()],
            atoms: vec![mastro::Atom::Concept(ConceptId(n_concepts - 1), var("x"))],
        },
    ));
    if n_roles > 0 {
        out.push((
            "concept_role_join".to_owned(),
            mastro::ConjunctiveQuery {
                head: vec!["x".into()],
                atoms: vec![
                    mastro::Atom::Concept(ConceptId(n_concepts / 2), var("x")),
                    mastro::Atom::Role(RoleId(0), var("x"), var("y")),
                ],
            },
        ));
    }
    out
}
