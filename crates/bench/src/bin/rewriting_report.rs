//! **A2 ablation**: PerfectRef vs Presto-style rewriting on the
//! university scenario — rewriting size (CQs / skeletons / flat SQL
//! queries), rewriting time, and end-to-end answering time, per query.

use std::time::Instant;

use mastro::rewrite::unfold::count_ucq_combos;
use mastro::{perfect_ref, presto_rewrite};
use obda_genont::university_scenario;
use quonto::Classification;

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let scenario = university_scenario(scale, 42);
    let sys = mastro::demo::build_system(&scenario).expect("scenario builds");
    let cls = Classification::classify(&scenario.tbox);
    println!("A2 — PerfectRef vs Presto rewriting, university scenario (scale {scale})\n");
    let mut table = vec![vec![
        "query".to_owned(),
        "PR CQs".into(),
        "PR SQL".into(),
        "PR rewrite".into(),
        "PR answer".into(),
        "Presto skeletons".into(),
        "Presto rewrite".into(),
        "Presto answer".into(),
        "answers".into(),
    ]];
    for qs in &scenario.queries {
        let q = mastro::parse_cq(&qs.text, &scenario.tbox.sig).expect("query parses");

        let t0 = Instant::now();
        let ucq = perfect_ref(&q, &scenario.tbox);
        let pr_rewrite = t0.elapsed();
        let pr_sql = count_ucq_combos(&ucq, &sys.mappings, &sys.db).expect("unfolds");
        let t1 = Instant::now();
        let pr_answers = mastro::rewrite::unfold::answer_ucq_virtual(&ucq, &sys.mappings, &sys.db)
            .expect("executes");
        let pr_answer = t1.elapsed();

        let t2 = Instant::now();
        let rw = presto_rewrite(&q, &cls);
        let presto_rewrite_t = t2.elapsed();
        let t3 = Instant::now();
        let presto_answers =
            mastro::rewrite::unfold::answer_presto_virtual(&rw, &cls, &sys.mappings, &sys.db)
                .expect("executes");
        let presto_answer = t3.elapsed();

        assert_eq!(
            pr_answers, presto_answers,
            "{}: the two rewritings must agree",
            qs.name
        );
        table.push(vec![
            qs.name.clone(),
            ucq.len().to_string(),
            pr_sql.to_string(),
            format!("{:.2?}", pr_rewrite),
            format!("{:.2?}", pr_answer),
            rw.len().to_string(),
            format!("{:.2?}", presto_rewrite_t),
            format!("{:.2?}", presto_answer),
            pr_answers.len().to_string(),
        ]);
    }
    println!("{}", obda_bench::render(&table));
    println!("shape: Presto's skeleton count stays flat where PerfectRef's CQ count grows with the hierarchy (the paper's motivation for classification-aware rewriting).");
}
