//! **Figure 1 reproduction**: classification times of the eleven
//! benchmark-ontology analogs for the five reasoners.
//!
//! ```text
//! cargo run -p obda-bench --release --bin figure1 -- [--scale F] [--budget SECS] [--only NAME]
//! ```
//!
//! Defaults: `--scale 0.05 --budget 30`. At scale 1.0 the presets match
//! the published ontology sizes; the tableau columns then time out on
//! everything beyond the small ontologies (as the originals did at one
//! hour in the paper) — use a larger `--budget` if you want them to
//! finish. The graph-based and consequence-based columns run at full
//! scale in seconds.

use obda_bench::{format_figure1, run_figure1};

fn main() {
    let mut scale = 0.05f64;
    let mut budget = 30u64;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--budget" => budget = args.next().and_then(|v| v.parse().ok()).unwrap_or(budget),
            "--only" => only = args.next(),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    println!(
        "Figure 1 reproduction — classification wall-times (seconds), scale={scale}, timeout={budget}s"
    );
    println!(
        "(column stand-ins: QuOnto=graph-based [this paper], FaCT++=tableau/enhanced, HermiT=tableau/told, Pellet=tableau/naive, CB=consequence-based)"
    );
    println!();
    let rows = run_figure1(scale, budget, only.as_deref());
    println!("{}", format_figure1(&rows));
    // Shape summary mirroring the paper's claims.
    let mut quonto_wins = 0usize;
    let mut tableau_timeouts = 0usize;
    let mut total = 0usize;
    for row in &rows {
        total += 1;
        let quonto_time = match &row.results[0].1 {
            obda_bench::RunResult::Done { time, .. } => Some(*time),
            _ => None,
        };
        let best_tableau = row.results[1..4]
            .iter()
            .filter_map(|(_, r)| match r {
                obda_bench::RunResult::Done { time, .. } => Some(*time),
                _ => None,
            })
            .min();
        tableau_timeouts += row.results[1..4]
            .iter()
            .filter(|(_, r)| matches!(r, obda_bench::RunResult::Timeout))
            .count();
        if let (Some(q), Some(t)) = (quonto_time, best_tableau) {
            if q < t {
                quonto_wins += 1;
            }
        } else if quonto_time.is_some() {
            quonto_wins += 1; // all tableau profiles timed out
        }
    }
    println!();
    println!(
        "shape: graph-based classifier fastest-or-tied on {quonto_wins}/{total} ontologies; tableau timeouts: {tableau_timeouts}"
    );
}
