//! **Figure 1 reproduction**: classification times of the eleven
//! benchmark-ontology analogs for the five reasoners.
//!
//! ```text
//! cargo run -p obda-bench --release --bin figure1 -- \
//!     [--scale F] [--budget SECS] [--only NAME] [--threads N] [--verbose]
//! ```
//!
//! Defaults: `--scale 0.05 --budget 30 --threads 1`. At scale 1.0 the
//! presets match the published ontology sizes; the tableau columns then
//! time out on everything beyond the small ontologies (as the originals
//! did at one hour in the paper) — use a larger `--budget` if you want
//! them to finish. The graph-based and consequence-based columns run at
//! full scale in seconds.
//!
//! `--threads N` shards the closure computation and the tableau
//! subsumption tests across N worker threads (`0` = all cores); results
//! are identical at every thread count. `--verbose` additionally prints
//! quonto's per-phase timing breakdown (sets `QUONTO_TIMINGS=1`).

use obda_bench::{format_figure1, run_figure1_threaded};

fn main() {
    let mut scale = 0.05f64;
    let mut budget = 30u64;
    let mut threads = 1usize;
    let mut only: Option<String> = None;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--budget" => budget = args.next().and_then(|v| v.parse().ok()).unwrap_or(budget),
            "--threads" => threads = args.next().and_then(|v| v.parse().ok()).unwrap_or(threads),
            "--only" => only = args.next(),
            "--verbose" => verbose = true,
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    if verbose {
        // `Classification::classify_with` prints its phase breakdown
        // (engine name, thread count, graph/closure/unsat ms) when set.
        quonto::env::force_timings();
    }
    let effective_threads = if threads == 0 {
        quonto::default_threads()
    } else {
        threads
    };
    println!(
        "Figure 1 reproduction — classification wall-times (seconds), scale={scale}, timeout={budget}s, threads={effective_threads}"
    );
    println!(
        "(column stand-ins: QuOnto=graph-based [this paper], FaCT++=tableau/enhanced, HermiT=tableau/told, Pellet=tableau/naive, CB=consequence-based)"
    );
    println!();
    let rows = run_figure1_threaded(scale, budget, only.as_deref(), threads);
    println!("{}", format_figure1(&rows));
    // Shape summary mirroring the paper's claims.
    let mut quonto_wins = 0usize;
    let mut tableau_timeouts = 0usize;
    let mut total = 0usize;
    for row in &rows {
        total += 1;
        let quonto_time = match &row.results[0].1 {
            obda_bench::RunResult::Done { time, .. } => Some(*time),
            _ => None,
        };
        let best_tableau = row.results[1..4]
            .iter()
            .filter_map(|(_, r)| match r {
                obda_bench::RunResult::Done { time, .. } => Some(*time),
                _ => None,
            })
            .min();
        tableau_timeouts += row.results[1..4]
            .iter()
            .filter(|(_, r)| matches!(r, obda_bench::RunResult::Timeout))
            .count();
        if let (Some(q), Some(t)) = (quonto_time, best_tableau) {
            if q < t {
                quonto_wins += 1;
            }
        } else if quonto_time.is_some() {
            quonto_wins += 1; // all tableau profiles timed out
        }
    }
    println!();
    println!(
        "shape: graph-based classifier fastest-or-tied on {quonto_wins}/{total} ontologies; tableau timeouts: {tableau_timeouts}"
    );
}
