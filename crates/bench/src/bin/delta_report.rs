//! **A10**: incremental delta apply vs. full rebuild on the university
//! preset.
//!
//! Replays the same reproducible `genont::churn` stream through two
//! engines in NDL mode:
//!
//! * *incremental* — `apply_delta` batches: in-place index patching plus
//!   targeted view-memo maintenance (the PR-8 write path);
//! * *rebuild* — `mutate_abox` per batch: the pre-write-path baseline
//!   that re-indexes the whole ABox and drops every memoized extent.
//!
//! For each batch size the report measures the mean cost of ingesting
//! one batch (`apply`) and of the first query after it (`read` — cold
//! extents after a rebuild, patched extents after a delta), plus two
//! ratios: `apply speedup` (the maintenance operation itself — the
//! headline number) and `e2e speedup` (apply + first read; diluted by
//! the answer-materialization floor both strategies pay identically).
//! Small batches are where the write path must win by an order of
//! magnitude: rebuild cost is O(|ABox|) regardless of batch size,
//! incremental cost is O(|batch|) plus the touched views.
//!
//! ```text
//! delta_report [--scale N] [--seed N] [--json FILE]
//! ```
//!
//! `--json FILE` appends one record per batch size to a JSON array at
//! FILE — the format the EXPERIMENTS A10 table is generated from
//! (`BENCH_A10.json`). `QUONTO_WRITE_FALLBACK=1` is the ablation lever:
//! it forces every batch to invalidate every memoized extent, isolating
//! how much of the read-side win comes from targeted maintenance.

use std::time::Instant;

use mastro::{parse_cq, AboxDelta, AboxSystem, DeltaStatement, QueryEngine, RewritingMode};
use obda_dllite::{Abox, Assertion, Tbox, Value};
use obda_genont::{churn_stream, university_scenario, ChurnFact, ChurnOp};
use obda_server::Json;

const BATCH_SIZES: &[usize] = &[1, 8, 64, 512];

fn to_statement(f: &ChurnFact) -> DeltaStatement {
    match f {
        ChurnFact::Concept {
            concept,
            individual,
        } => DeltaStatement::unary(concept, individual),
        ChurnFact::Role {
            role,
            subject,
            object,
        } => DeltaStatement::binary(role, subject, object),
        ChurnFact::Attr {
            attr,
            individual,
            text,
        } => DeltaStatement::binary_value(attr, individual, Value::Text(text.clone())),
    }
}

/// Applies one batch directly to an ABox (the rebuild engine's path):
/// deletes first, then inserts — the delta batch semantics.
fn apply_to_abox(tbox: &Tbox, abox: &mut Abox, batch: &[ChurnOp]) {
    for op in batch {
        if let ChurnOp::Delete(f) = op {
            let assertion = match f {
                ChurnFact::Concept {
                    concept,
                    individual,
                } => tbox
                    .sig
                    .find_concept(concept)
                    .and_then(|c| Some(Assertion::Concept(c, abox.find_individual(individual)?))),
                ChurnFact::Role {
                    role,
                    subject,
                    object,
                } => tbox.sig.find_role(role).and_then(|p| {
                    Some(Assertion::Role(
                        p,
                        abox.find_individual(subject)?,
                        abox.find_individual(object)?,
                    ))
                }),
                ChurnFact::Attr {
                    attr,
                    individual,
                    text,
                } => tbox.sig.find_attribute(attr).and_then(|u| {
                    Some(Assertion::Attribute(
                        u,
                        abox.find_individual(individual)?,
                        Value::Text(text.clone()),
                    ))
                }),
            };
            if let Some(a) = assertion {
                abox.remove(&a);
            }
        }
    }
    for op in batch {
        if let ChurnOp::Insert(f) = op {
            match f {
                ChurnFact::Concept {
                    concept,
                    individual,
                } => {
                    let c = tbox.sig.find_concept(concept).expect(concept);
                    abox.assert_concept(c, individual);
                }
                ChurnFact::Role {
                    role,
                    subject,
                    object,
                } => {
                    let p = tbox.sig.find_role(role).expect(role);
                    abox.assert_role(p, subject, object);
                }
                ChurnFact::Attr {
                    attr,
                    individual,
                    text,
                } => {
                    let u = tbox.sig.find_attribute(attr).expect(attr);
                    abox.assert_attribute(u, individual, Value::Text(text.clone()));
                }
            }
        }
    }
}

struct Row {
    batch: usize,
    batches: usize,
    rows_changed: usize,
    inc_apply_us: u64,
    inc_read_us: u64,
    reb_apply_us: u64,
    reb_read_us: u64,
}

impl Row {
    /// Ingest speedup: the cost of the maintenance operation itself.
    fn apply_speedup(&self) -> f64 {
        self.reb_apply_us as f64 / self.inc_apply_us.max(1) as f64
    }

    /// End-to-end speedup (apply + first query). Both strategies pay
    /// the same answer-materialization floor on the read, so this is
    /// a lower bound diluted by query-evaluation cost.
    fn e2e_speedup(&self) -> f64 {
        let inc = (self.inc_apply_us + self.inc_read_us).max(1);
        (self.reb_apply_us + self.reb_read_us) as f64 / inc as f64
    }
}

fn main() {
    let arg = |name: &str| std::env::args().skip_while(|a| a != name).nth(1);
    let scale: usize = arg("--scale").and_then(|v| v.parse().ok()).unwrap_or(1);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let json_path = arg("--json");

    let scenario = university_scenario(scale, seed);
    let base = mastro::demo::build_system(&scenario)
        .expect("build university system")
        .materialized_abox()
        .expect("materialize")
        .abox
        .clone();
    let tbox = scenario.tbox.clone();
    let probe = parse_cq("q(x) :- Student(x)", &tbox.sig).expect("probe query");

    println!(
        "A10 — incremental delta apply vs full rebuild (university scale {scale}, {} base facts, write_fallback={})\n",
        base.len(),
        quonto::env::write_fallback(),
    );

    let mut report: Vec<Row> = Vec::new();
    for &batch in BATCH_SIZES {
        // Fixed op budget per batch size, clamped so tiny batches still
        // average over many samples and huge ones still run a few.
        let batches = (512 / batch).clamp(4, 64);
        let stream = churn_stream(scale, seed ^ (batch as u64) << 16, batches * batch);

        let incremental =
            AboxSystem::new(tbox.clone(), base.clone()).with_rewriting(RewritingMode::Ndl);
        let rebuild =
            AboxSystem::new(tbox.clone(), base.clone()).with_rewriting(RewritingMode::Ndl);
        // Warm both memos: steady-state serving, not first-query cost.
        let a = incremental.answer_cq(&probe);
        assert_eq!(a, rebuild.answer_cq(&probe));

        let (mut inc_apply, mut inc_read) = (0u64, 0u64);
        let (mut reb_apply, mut reb_read) = (0u64, 0u64);
        let mut rows_changed = 0usize;
        for chunk in stream.chunks(batch) {
            let mut delta = AboxDelta::new();
            for op in chunk {
                delta = match op {
                    ChurnOp::Insert(f) => delta.insert(to_statement(f)),
                    ChurnOp::Delete(f) => delta.delete(to_statement(f)),
                };
            }

            let t = Instant::now();
            let summary = incremental.apply_delta(&delta).expect("incremental apply");
            inc_apply += t.elapsed().as_micros() as u64;
            rows_changed += summary.inserted + summary.deleted;
            let t = Instant::now();
            let inc_answers = incremental.answer_cq(&probe);
            inc_read += t.elapsed().as_micros() as u64;

            let t = Instant::now();
            rebuild.mutate_abox(|abox| apply_to_abox(&tbox, abox, chunk));
            reb_apply += t.elapsed().as_micros() as u64;
            let t = Instant::now();
            let reb_answers = rebuild.answer_cq(&probe);
            reb_read += t.elapsed().as_micros() as u64;

            assert_eq!(inc_answers, reb_answers, "strategies diverged");
        }

        let n = batches as u64;
        report.push(Row {
            batch,
            batches,
            rows_changed,
            inc_apply_us: inc_apply / n,
            inc_read_us: inc_read / n,
            reb_apply_us: reb_apply / n,
            reb_read_us: reb_read / n,
        });
    }

    let mut table = vec![vec![
        "batch".to_owned(),
        "batches".into(),
        "rows".into(),
        "inc apply".into(),
        "inc read".into(),
        "rebuild apply".into(),
        "rebuild read".into(),
        "apply speedup".into(),
        "e2e speedup".into(),
    ]];
    for r in &report {
        table.push(vec![
            r.batch.to_string(),
            r.batches.to_string(),
            r.rows_changed.to_string(),
            format!("{}us", r.inc_apply_us),
            format!("{}us", r.inc_read_us),
            format!("{}us", r.reb_apply_us),
            format!("{}us", r.reb_read_us),
            format!("{:.1}x", r.apply_speedup()),
            format!("{:.1}x", r.e2e_speedup()),
        ]);
    }
    println!("{}", obda_bench::render(&table));
    println!(
        "shape: rebuild pays O(|ABox|) re-indexing plus cold view extents on every batch; the \
         incremental path pays O(|batch|) index patches plus only the touched views, so its \
         advantage is largest on small batches and narrows as a batch approaches the ABox size."
    );

    if let Some(path) = json_path {
        let records: Vec<Json> = report
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("table", "A10".into()),
                    ("scale", (scale as u64).into()),
                    ("batch", (r.batch as u64).into()),
                    ("batches", (r.batches as u64).into()),
                    ("rows_changed", (r.rows_changed as u64).into()),
                    ("inc_apply_us", r.inc_apply_us.into()),
                    ("inc_read_us", r.inc_read_us.into()),
                    ("rebuild_apply_us", r.reb_apply_us.into()),
                    ("rebuild_read_us", r.reb_read_us.into()),
                    ("apply_speedup", Json::Num(r.apply_speedup())),
                    ("e2e_speedup", Json::Num(r.e2e_speedup())),
                    ("write_fallback", Json::Bool(quonto::env::write_fallback())),
                ])
            })
            .collect();
        if let Err(e) = append_json_records(&path, records) {
            eprintln!("delta_report: writing --json {path} failed: {e}");
            std::process::exit(1);
        }
        eprintln!("delta_report: appended {} records to {path}", report.len());
    }
}

/// Appends `records` to the JSON array at `path` (created when absent).
fn append_json_records(path: &str, records: Vec<Json>) -> Result<(), String> {
    let mut runs = match std::fs::read_to_string(path) {
        Ok(src) => match Json::parse(src.trim()) {
            Ok(Json::Arr(items)) => items,
            Ok(other) => return Err(format!("{path} holds {other}, not a JSON array")),
            Err(e) => return Err(format!("{path} is not valid JSON: {e}")),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.to_string()),
    };
    runs.extend(records);
    let mut out = String::from("[\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&run.to_string());
        if i + 1 < runs.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    std::fs::write(path, out).map_err(|e| e.to_string())
}
