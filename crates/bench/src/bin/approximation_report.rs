//! **A3 ablation**: syntactic vs per-axiom semantic vs global semantic
//! approximation (Section 7) on random ALCHI ontologies — axiom counts,
//! entailment recall, and tableau-test budgets.

use obda_approx::evaluate;
use obda_genont::random_owl;
use obda_reasoners::Budget;

fn main() {
    println!("A3 — ontology approximation quality (syntactic vs semantic vs global)\n");
    let mut table = vec![vec![
        "ontology".to_owned(),
        "axioms".into(),
        "syn axioms".into(),
        "sem axioms".into(),
        "global axioms".into(),
        "syn recall".into(),
        "sem recall".into(),
        "sem tests".into(),
        "global tests".into(),
    ]];
    let mut syn_sum = 0.0;
    let mut sem_sum = 0.0;
    let mut n = 0.0;
    for seed in 0..8u64 {
        let onto = random_owl(seed, 6, 3, 14, 3);
        let report = match evaluate(&onto, Budget::seconds(120)) {
            Ok(r) => r,
            Err(_) => {
                eprintln!("seed {seed}: budget exhausted, skipping");
                continue;
            }
        };
        syn_sum += report.syntactic_recall;
        sem_sum += report.semantic_recall;
        n += 1.0;
        table.push(vec![
            format!("rand-{seed}"),
            onto.len().to_string(),
            report.syntactic_axioms.to_string(),
            report.semantic_axioms.to_string(),
            report.global_axioms.to_string(),
            format!("{:.2}", report.syntactic_recall),
            format!("{:.2}", report.semantic_recall),
            report.semantic_tests.to_string(),
            report.global_tests.to_string(),
        ]);
    }
    println!("{}", obda_bench::render(&table));
    println!(
        "mean recall: syntactic {:.2}, per-axiom semantic {:.2} (global = 1.00 by definition)",
        syn_sum / n,
        sem_sum / n
    );
    println!("shape: semantic ≥ syntactic everywhere, at a fraction of the global method's tableau tests.");
}
