//! **A11 ablation**: EBox constraint-aware pruning — rewrite-size and
//! SQL-union reduction plus warm answering latency, with the EBox off
//! vs on, across three workloads:
//!
//! * the university OBDA scenario in **virtual** mode (`--ebox on`
//!   seeds constraints from the mappings: unmapped predicates become
//!   empties that prune disjuncts before they are unfolded, and the
//!   unfolding drops union branches whose sources the EBox rules out);
//! * the **exp_chain** presets over a materialized ABox (`infer` finds
//!   the chain levels that are never asserted, collapsing the
//!   exponential UCQ);
//! * a **churn** stream through the write path (`infer` constraints
//!   must survive revalidation — retracted only when a write actually
//!   invalidates them — with answers pinned to the EBox-off engine).
//!
//! ```text
//! ebox_report [--scale N] [--json FILE]
//! ```
//!
//! `--json FILE` appends one machine-readable record per row to a JSON
//! array at FILE — the format the EXPERIMENTS A11 table is generated
//! from (`BENCH_A11.json`).

use std::time::Instant;

use mastro::{AboxDelta, DeltaStatement, EboxMode, QueryEngine, RewritingMode};
use obda_dllite::Value;
use obda_genont::{churn_stream, exp_chain, university_scenario, ChurnFact};
use obda_server::Json;

const WARM_ROUNDS: u32 = 30;

struct Row {
    preset: String,
    query: String,
    mode: &'static str,
    constraints: usize,
    pruned_disjuncts: u64,
    pruned_unions: u64,
    retracted: u64,
    warm_off_us: u128,
    warm_ebox_us: u128,
    answers: usize,
}

/// Counter deltas around one cold answer: how much the EBox pruned.
struct PruneDelta {
    disjuncts: u64,
    unions: u64,
}

fn with_prune_delta(f: impl FnOnce()) -> PruneDelta {
    let reg = obda_obs::registry();
    let d = reg.counter("ebox_pruned_disjuncts");
    let u = reg.counter("ebox_pruned_unions");
    let (d0, u0) = (d.get(), u.get());
    f();
    PruneDelta {
        disjuncts: d.get() - d0,
        unions: u.get() - u0,
    }
}

fn warm_time(mut answer: impl FnMut()) -> u128 {
    answer(); // ensure caches are hot
    let t = Instant::now();
    for _ in 0..WARM_ROUNDS {
        answer();
    }
    t.elapsed().as_micros() / u128::from(WARM_ROUNDS)
}

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1usize);
    let json_path = std::env::args().skip_while(|a| a != "--json").nth(1);

    let mut rows: Vec<Row> = Vec::new();
    university_virtual(scale, &mut rows);
    exp_chain_presets(&mut rows);
    churn_revalidation(scale, &mut rows);

    let mut table = vec![vec![
        "preset".to_owned(),
        "query".into(),
        "ebox".into(),
        "constraints".into(),
        "pruned CQs".into(),
        "pruned unions".into(),
        "retracted".into(),
        "warm off".into(),
        "warm ebox".into(),
        "answers".into(),
    ]];
    for r in &rows {
        table.push(vec![
            r.preset.clone(),
            r.query.clone(),
            r.mode.into(),
            r.constraints.to_string(),
            r.pruned_disjuncts.to_string(),
            r.pruned_unions.to_string(),
            r.retracted.to_string(),
            format!("{}us", r.warm_off_us),
            format!("{}us", r.warm_ebox_us),
            r.answers.to_string(),
        ]);
    }
    println!("{}", obda_bench::render(&table));
    println!(
        "shape: every row's answers are asserted byte-identical with the EBox off and on; \
         the pruned CQ/union columns are the rewriting work the constraints removed, and the \
         churn rows show constraints surviving revalidation (retracted only on invalidating \
         writes)."
    );

    if let Some(path) = json_path {
        let records: Vec<Json> = rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("table", "A11".into()),
                    ("preset", r.preset.as_str().into()),
                    ("query", r.query.as_str().into()),
                    ("ebox", r.mode.into()),
                    ("constraints", (r.constraints as u64).into()),
                    ("pruned_disjuncts", r.pruned_disjuncts.into()),
                    ("pruned_unions", r.pruned_unions.into()),
                    ("retracted", r.retracted.into()),
                    ("warm_off_us", (r.warm_off_us as u64).into()),
                    ("warm_ebox_us", (r.warm_ebox_us as u64).into()),
                    ("answers", (r.answers as u64).into()),
                ])
            })
            .collect();
        let count = records.len();
        if let Err(e) = append_json_records(&path, records) {
            eprintln!("ebox_report: writing --json {path} failed: {e}");
            std::process::exit(1);
        }
        eprintln!("ebox_report: appended {count} records to {path}");
    }
}

/// Section 1: university OBDA, virtual mode, EBox seeded from the
/// mappings (`on`). Unmapped predicates are empty at the sources, so
/// the rewriting can drop their disjuncts and the unfolding their
/// union branches — without touching any answer.
fn university_virtual(scale: usize, rows: &mut Vec<Row>) {
    println!("A11 — EBox pruning: university virtual (PerfectRef, scale {scale})\n");
    let scenario = university_scenario(scale, 42);
    let off = mastro::demo::build_system(&scenario).expect("builds");
    let ebox = mastro::demo::build_system(&scenario)
        .expect("builds")
        .with_ebox_mode(EboxMode::On);
    let constraints = ebox.ebox_constraints();
    assert!(constraints > 0, "mappings must seed constraints");

    for qs in &scenario.queries {
        let reference = off.answer(&qs.text).expect("answers");
        let mut pruned_answers = Default::default();
        let delta = with_prune_delta(|| {
            pruned_answers = ebox.answer(&qs.text).expect("answers");
        });
        assert_eq!(
            reference, pruned_answers,
            "{}: EBox changed answers",
            qs.name
        );
        let warm_off_us = warm_time(|| {
            let _ = off.answer(&qs.text).expect("answers");
        });
        let warm_ebox_us = warm_time(|| {
            let _ = ebox.answer(&qs.text).expect("answers");
        });
        rows.push(Row {
            preset: format!("university-virtual(scale {scale})"),
            query: qs.name.clone(),
            mode: "on",
            constraints,
            pruned_disjuncts: delta.disjuncts,
            pruned_unions: delta.unions,
            retracted: 0,
            warm_off_us,
            warm_ebox_us,
            answers: reference.len(),
        });
    }
}

/// Section 2: exp_chain star queries over a materialized ABox. Only
/// the first chain level is ever asserted, so `infer` marks the upper
/// levels empty and the (branch+1)^depth-sized UCQ collapses.
fn exp_chain_presets(rows: &mut Vec<Row>) {
    println!("\nA11 — EBox pruning: exp_chain (PerfectRef, materialized)\n");
    for (depth, branch) in [(4usize, 2usize), (5, 3)] {
        let c = exp_chain(depth, branch, 64);
        let q = mastro::parse_cq(&c.star_query, &c.tbox.sig).expect("star query parses");
        let off = mastro::AboxSystem::new(c.tbox.clone(), c.abox.clone())
            .with_rewriting(RewritingMode::PerfectRef);
        let ebox = mastro::AboxSystem::new(c.tbox.clone(), c.abox.clone())
            .with_rewriting(RewritingMode::PerfectRef)
            .with_ebox_mode(EboxMode::Infer);
        let reference = off.answer_cq(&q);
        let mut pruned_answers = Default::default();
        let delta = with_prune_delta(|| {
            pruned_answers = ebox.answer_cq(&q);
        });
        assert_eq!(
            reference, pruned_answers,
            "exp_chain({depth},{branch}): EBox changed answers"
        );
        let warm_off_us = warm_time(|| {
            let _ = off.answer_cq(&q);
        });
        let warm_ebox_us = warm_time(|| {
            let _ = ebox.answer_cq(&q);
        });
        rows.push(Row {
            preset: format!("exp_chain({depth},{branch})"),
            query: "star".into(),
            mode: "infer",
            constraints: ebox.ebox_constraints(),
            pruned_disjuncts: delta.disjuncts,
            pruned_unions: delta.unions,
            retracted: 0,
            warm_off_us,
            warm_ebox_us,
            answers: reference.len(),
        });
    }
}

/// Section 3: the churn stream through the incremental write path. The
/// inferred constraints must survive non-invalidating writes and be
/// retracted (counted) by invalidating ones, with every checkpoint
/// answer pinned to the EBox-off twin fed the same deltas.
fn churn_revalidation(scale: usize, rows: &mut Vec<Row>) {
    println!("\nA11 — EBox revalidation under churn (PerfectRef, materialized)\n");
    let scenario = university_scenario(scale, 42);
    let base = mastro::demo::build_system(&scenario).expect("builds");
    let abox = base.materialized_abox().expect("materializes").abox.clone();
    let off = mastro::AboxSystem::new(scenario.tbox.clone(), abox.clone());
    let ebox = mastro::AboxSystem::new(scenario.tbox.clone(), abox).with_ebox_mode(EboxMode::Infer);
    let constraints_before = ebox.ebox_constraints();
    assert!(
        constraints_before > 0,
        "university data must infer constraints"
    );

    let retracted_counter = obda_obs::registry().counter("ebox_retracted");
    let retracted_before = retracted_counter.get();
    let stream = churn_stream(scale, 42, 64);
    for chunk in stream.chunks(8) {
        let mut delta = AboxDelta::new();
        for op in chunk {
            let stmt = match op.fact() {
                ChurnFact::Concept {
                    concept,
                    individual,
                } => DeltaStatement::unary(concept, individual),
                ChurnFact::Role {
                    role,
                    subject,
                    object,
                } => DeltaStatement::binary(role, subject, object),
                ChurnFact::Attr {
                    attr,
                    individual,
                    text,
                } => DeltaStatement::binary_value(attr, individual, Value::Text(text.clone())),
            };
            delta = if op.is_insert() {
                delta.insert(stmt)
            } else {
                delta.delete(stmt)
            };
        }
        off.apply_delta(&delta).expect("off applies");
        ebox.apply_delta(&delta).expect("ebox applies");
        for qs in &scenario.queries {
            assert_eq!(
                off.answer(&qs.text).expect("answers"),
                ebox.answer(&qs.text).expect("answers"),
                "{}: diverged mid-churn",
                qs.name
            );
        }
    }
    let retracted = retracted_counter.get() - retracted_before;
    let constraints_after = ebox.ebox_constraints();
    println!(
        "churn: {constraints_before} constraints inferred, {constraints_after} alive after \
         {} ops, {retracted} retraction(s)\n",
        stream.len()
    );

    for qs in &scenario.queries {
        let reference = off.answer(&qs.text).expect("answers");
        assert_eq!(
            reference,
            ebox.answer(&qs.text).expect("answers"),
            "{}",
            qs.name
        );
        let warm_off_us = warm_time(|| {
            let _ = off.answer(&qs.text).expect("answers");
        });
        let warm_ebox_us = warm_time(|| {
            let _ = ebox.answer(&qs.text).expect("answers");
        });
        rows.push(Row {
            preset: format!("university-churn(scale {scale})"),
            query: qs.name.clone(),
            mode: "infer",
            constraints: constraints_after,
            pruned_disjuncts: 0,
            pruned_unions: 0,
            retracted,
            warm_off_us,
            warm_ebox_us,
            answers: reference.len(),
        });
    }
}

/// Appends `records` to the JSON array at `path` (created when absent).
fn append_json_records(path: &str, records: Vec<Json>) -> Result<(), String> {
    let mut runs = match std::fs::read_to_string(path) {
        Ok(src) => match Json::parse(src.trim()) {
            Ok(Json::Arr(items)) => items,
            Ok(other) => return Err(format!("{path} holds {other}, not a JSON array")),
            Err(e) => return Err(format!("{path} is not valid JSON: {e}")),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.to_string()),
    };
    runs.extend(records);
    let mut out = String::from("[\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&run.to_string());
        if i + 1 < runs.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    std::fs::write(path, out).map_err(|e| e.to_string())
}
