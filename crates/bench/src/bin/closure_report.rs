//! **A1 ablation**: transitive-closure engine choice inside the
//! graph-based classifier, over the Figure 1 ontology suite.

use std::time::Instant;

use quonto::{all_engines, TboxGraph};

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1f64);
    println!("A1 — closure-engine ablation (dfs / bfs / scc / bitset), scale={scale}\n");
    let engines = all_engines();
    let mut header = vec!["ontology".to_owned(), "nodes".into(), "edges".into()];
    header.extend(engines.iter().map(|e| e.name().to_owned()));
    header.push("closure arcs".into());
    let mut table = vec![header];
    for preset in obda_genont::figure1_presets() {
        let spec = preset.scaled(scale);
        let tbox = spec.generate();
        let graph = TboxGraph::build(&tbox);
        let mut cells = vec![
            spec.name.clone(),
            graph.num_nodes().to_string(),
            graph.num_edges().to_string(),
        ];
        let mut arcs = 0usize;
        for engine in &engines {
            let t0 = Instant::now();
            let closure = engine.compute(&graph);
            let elapsed = t0.elapsed();
            arcs = closure.num_arcs();
            cells.push(format!("{elapsed:.2?}"));
        }
        cells.push(arcs.to_string());
        table.push(cells);
    }
    println!("{}", obda_bench::render(&table));
    println!("shape: scc dominates on cyclic suites (Galen); bitset wins small dense graphs but is memory-bound; dfs/bfs are the simple baselines.");
}
