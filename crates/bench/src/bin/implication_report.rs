//! **A5 ablation**: logical implication — graph-based (`quonto`, no
//! deductive closure materialization) vs full saturation
//! (`obda-reasoners`), over growing synthetic ontologies.

use std::time::Instant;

use obda_bench::smoke_spec;
use obda_dllite::{Axiom, BasicConcept, ConceptId, GeneralConcept};
use obda_reasoners::Saturation;
use quonto::{Classification, Implication};

fn main() {
    println!("A5 — logical implication: graph-based vs saturation\n");
    let mut table = vec![vec![
        "concepts".to_owned(),
        "axioms".into(),
        "graph build".into(),
        "graph 1k probes".into(),
        "saturation build".into(),
        "saturation 1k probes".into(),
    ]];
    for concepts in [50usize, 100, 150, 200] {
        let tbox = smoke_spec(concepts, 7).generate();
        let probes: Vec<Axiom> = (0..1000)
            .map(|i| {
                let a = ConceptId((i * 7 % concepts) as u32);
                let b = ConceptId((i * 13 % concepts) as u32);
                Axiom::ConceptIncl(
                    BasicConcept::Atomic(a),
                    if i % 3 == 0 {
                        GeneralConcept::Neg(BasicConcept::Atomic(b))
                    } else {
                        GeneralConcept::Basic(BasicConcept::Atomic(b))
                    },
                )
            })
            .collect();

        let t0 = Instant::now();
        let cls = Classification::classify(&tbox);
        let graph_build = t0.elapsed();
        let imp = Implication::new(&cls);
        let t1 = Instant::now();
        let graph_yes: usize = probes.iter().filter(|ax| imp.entails(ax)).count();
        let graph_probe = t1.elapsed();

        let t2 = Instant::now();
        let sat = Saturation::saturate(&tbox);
        let sat_build = t2.elapsed();
        let t3 = Instant::now();
        let sat_yes: usize = probes.iter().filter(|ax| sat.entails(ax)).count();
        let sat_probe = t3.elapsed();

        assert_eq!(graph_yes, sat_yes, "the two services must agree");
        table.push(vec![
            concepts.to_string(),
            tbox.len().to_string(),
            format!("{graph_build:.2?}"),
            format!("{graph_probe:.2?}"),
            format!("{sat_build:.2?}"),
            format!("{sat_probe:.2?}"),
        ]);
    }
    println!("{}", obda_bench::render(&table));
    println!("shape: saturation's build cost explodes with ontology size; the graph artifacts answer the same probes after a near-linear build.");
}
