//! Closed-loop load generator for `obda-server`.
//!
//! Each of `--connections` client threads keeps exactly one request in
//! flight (send → wait → record → send), so offered load adapts to what
//! the server sustains and the measured latency distribution is honest —
//! no coordinated-omission from open-loop timers.
//!
//! By default it spawns the server in-process on an ephemeral port
//! (zero setup, same binary benchmarks both sides); `--addr` targets an
//! already-running `quonto-server` instead.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--workers N] [--queue N] [--scale N] [--seed N]
//!         [--kind university|university-abox] [--shards N] [--exact-workers]
//!         [--connections N] [--requests N]
//!         [--mix cq|sparql|both] [--write-frac F] [--batch N]
//!         [--warm] [--timeout-ms N] [--label S] [--markdown]
//!         [--json FILE] [--trace-slowest K]
//! ```
//!
//! `--write-frac F` turns the run into mixed read/write traffic: the
//! fraction `F` (0.0–1.0) of each connection's requests become INSERT/
//! DELETE batches of `--batch` statements drawn from the reproducible
//! `genont::churn` stream (seeded per connection, so reruns offer the
//! exact same writes). Read and write latencies are tallied separately —
//! the read-qps column under a write load is the A10 degradation
//! measurement. Writes need a materialized engine; keep the default
//! `--kind university-abox`.
//!
//! `--json FILE` appends one machine-readable run record (qps,
//! percentiles, counters) to a JSON array at FILE — the format the
//! EXPERIMENTS tables are generated from (`BENCH_A8.json`).
//!
//! `--trace-slowest K` fetches the server's completed-query trace ring
//! (the `TRACE` protocol verb) after the run and prints the K slowest
//! traced queries with their per-phase timing breakdown — the first
//! place to look when a tail latency needs explaining.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Instant;

use mastro::{EboxMode, RewritingMode};
use obda_genont::{churn_stream, university_scenario, ChurnFact, ChurnOp};
use obda_server::{EndpointConfig, EndpointKind, Json, Server, ServerConfig};

const ENDPOINT: &str = "uni";

struct Opts {
    addr: Option<String>,
    workers: usize,
    queue: usize,
    scale: usize,
    seed: u64,
    kind: EndpointKind,
    /// Rewriting mode on the spawned endpoint.
    rewriting: RewritingMode,
    /// EBox constraint mode on the spawned endpoint (None = engine
    /// default / `QUONTO_EBOX`).
    ebox: Option<EboxMode>,
    connections: usize,
    requests: usize,
    mix: Mix,
    /// Fraction of requests that are write batches (0.0 = read-only).
    write_frac: f64,
    /// Statements per write batch.
    batch: usize,
    warm: bool,
    timeout_ms: u64,
    /// Injected per-request delay on the spawned endpoint — models an
    /// I/O-bound backend so worker-pool scaling is visible even when
    /// the queries themselves are CPU-cheap (or the host is 1-core).
    delay_ms: u64,
    /// ABox shards on the spawned endpoint (0 = unsharded default).
    shards: usize,
    /// Run exactly `--workers` threads even past the core count.
    exact_workers: bool,
    label: String,
    markdown: bool,
    /// Append one machine-readable run record to this JSON file.
    json_path: Option<String>,
    /// Print the K slowest traced queries (0 = off).
    trace_slowest: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum Mix {
    Cq,
    Sparql,
    Both,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            addr: None,
            workers: 4,
            queue: 128,
            scale: 2,
            seed: 42,
            kind: EndpointKind::UniversityAbox,
            rewriting: RewritingMode::PerfectRef,
            ebox: None,
            connections: 8,
            requests: 50,
            mix: Mix::Both,
            write_frac: 0.0,
            batch: 4,
            warm: false,
            timeout_ms: 30_000,
            delay_ms: 0,
            shards: 0,
            exact_workers: false,
            label: String::new(),
            markdown: false,
            json_path: None,
            trace_slowest: 0,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--workers N] [--queue N] [--scale N] [--seed N]\n\
         \x20              [--kind university|university-abox] [--shards N] [--exact-workers]\n\
         \x20              [--rewriting perfectref|presto|ndl] [--ebox off|on|infer]\n\
         \x20              [--connections N] [--requests N]\n\
         \x20              [--mix cq|sparql|both] [--write-frac F] [--batch N]\n\
         \x20              [--warm] [--timeout-ms N] [--delay-ms N]\n\
         \x20              [--label S] [--markdown] [--json FILE] [--trace-slowest K]"
    );
    std::process::exit(2)
}

fn parse_opts() -> Opts {
    let mut opts = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => opts.addr = Some(val("--addr")),
            "--workers" => opts.workers = val("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => opts.queue = val("--queue").parse().unwrap_or_else(|_| usage()),
            "--scale" => opts.scale = val("--scale").parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--kind" => {
                opts.kind = match val("--kind").as_str() {
                    "university" => EndpointKind::University,
                    "university-abox" => EndpointKind::UniversityAbox,
                    _ => usage(),
                }
            }
            "--rewriting" => {
                opts.rewriting = val("--rewriting").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--ebox" => {
                opts.ebox = Some(val("--ebox").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                }))
            }
            "--connections" => {
                opts.connections = val("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--requests" => opts.requests = val("--requests").parse().unwrap_or_else(|_| usage()),
            "--mix" => {
                opts.mix = match val("--mix").as_str() {
                    "cq" => Mix::Cq,
                    "sparql" => Mix::Sparql,
                    "both" => Mix::Both,
                    _ => usage(),
                }
            }
            "--write-frac" => {
                opts.write_frac = val("--write-frac").parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&opts.write_frac) {
                    eprintln!("--write-frac must be in 0.0..=1.0");
                    usage()
                }
            }
            "--batch" => opts.batch = val("--batch").parse().unwrap_or_else(|_| usage()),
            "--warm" => opts.warm = true,
            "--timeout-ms" => {
                opts.timeout_ms = val("--timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--delay-ms" => opts.delay_ms = val("--delay-ms").parse().unwrap_or_else(|_| usage()),
            "--shards" => opts.shards = val("--shards").parse().unwrap_or_else(|_| usage()),
            "--exact-workers" => opts.exact_workers = true,
            "--label" => opts.label = val("--label"),
            "--markdown" => opts.markdown = true,
            "--json" => opts.json_path = Some(val("--json")),
            "--trace-slowest" => {
                opts.trace_slowest = val("--trace-slowest").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if opts.connections == 0 || opts.requests == 0 || opts.batch == 0 {
        usage()
    }
    opts
}

/// Renders one churn fact as its wire-statement JSON array.
fn statement_json(f: &ChurnFact) -> Json {
    match f {
        ChurnFact::Concept {
            concept,
            individual,
        } => Json::Arr(vec![concept.as_str().into(), individual.as_str().into()]),
        ChurnFact::Role {
            role,
            subject,
            object,
        } => Json::Arr(vec![
            role.as_str().into(),
            subject.as_str().into(),
            object.as_str().into(),
        ]),
        ChurnFact::Attr {
            attr,
            individual,
            text,
        } => Json::Arr(vec![
            attr.as_str().into(),
            individual.as_str().into(),
            text.as_str().into(),
        ]),
    }
}

/// Builds the write-request line for one slice of the churn stream.
fn write_request_json(ops: &[ChurnOp], timeout_ms: u64) -> String {
    let (mut inserts, mut deletes) = (Vec::new(), Vec::new());
    for op in ops {
        match op {
            ChurnOp::Insert(f) => inserts.push(statement_json(f)),
            ChurnOp::Delete(f) => deletes.push(statement_json(f)),
        }
    }
    let mut fields = vec![("endpoint", Json::Str(ENDPOINT.into()))];
    if !inserts.is_empty() {
        fields.push(("insert", Json::Arr(inserts)));
    }
    if !deletes.is_empty() {
        fields.push(("delete", Json::Arr(deletes)));
    }
    fields.push(("timeout_ms", timeout_ms.into()));
    Json::obj(fields).to_string()
}

/// The request mix: `(lang, query text)` pairs.
fn build_mix(opts: &Opts) -> Vec<(&'static str, String)> {
    let mut mix = Vec::new();
    if opts.mix != Mix::Sparql {
        for q in university_scenario(opts.scale, opts.seed).queries {
            mix.push(("cq", q.text));
        }
    }
    if opts.mix != Mix::Cq {
        mix.push(("sparql", "SELECT ?x WHERE { ?x a :Student }".into()));
        mix.push((
            "sparql",
            "SELECT ?x ?n WHERE { ?x a :GradStudent . ?x :personName ?n . }".into(),
        ));
    }
    mix
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: SocketAddr) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn roundtrip(&mut self, line: &str) -> std::io::Result<Json> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut resp = String::new();
        self.reader.read_line(&mut resp)?;
        Json::parse(resp.trim()).map_err(|e| std::io::Error::other(e.to_string()))
    }

    fn query(&mut self, lang: &str, text: &str, timeout_ms: u64) -> std::io::Result<Json> {
        let req = Json::obj(vec![
            ("endpoint", ENDPOINT.into()),
            ("lang", lang.into()),
            ("query", text.into()),
            ("timeout_ms", timeout_ms.into()),
        ]);
        self.roundtrip(&req.to_string())
    }
}

#[derive(Default)]
struct ClientTally {
    latencies_us: Vec<u64>,
    write_latencies_us: Vec<u64>,
    ok: u64,
    errors: u64,
    timeouts: u64,
    overloaded: u64,
    write_rows: u64,
}

struct ClientPlan<'a> {
    mix: &'a [(&'static str, String)],
    requests: usize,
    offset: usize,
    timeout_ms: u64,
    write_frac: f64,
    batch: usize,
    /// This connection's private churn stream (empty when read-only).
    churn: Vec<ChurnOp>,
}

fn run_client(addr: SocketAddr, plan: &ClientPlan) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut conn = Conn::open(addr).expect("loadgen client connect");
    // Fractional accumulator spreads writes evenly through the request
    // sequence — deterministic, no RNG in the hot loop.
    let mut write_credit = 0.0;
    let mut churn_cursor = 0;
    for i in 0..plan.requests {
        write_credit += plan.write_frac;
        let write = write_credit >= 1.0 && churn_cursor + plan.batch <= plan.churn.len();
        let t = Instant::now();
        let resp = if write {
            write_credit -= 1.0;
            let ops = &plan.churn[churn_cursor..churn_cursor + plan.batch];
            churn_cursor += plan.batch;
            conn.roundtrip(&write_request_json(ops, plan.timeout_ms))
                .expect("loadgen write roundtrip")
        } else {
            let (lang, text) = &plan.mix[(plan.offset + i) % plan.mix.len()];
            conn.query(lang, text, plan.timeout_ms)
                .expect("loadgen roundtrip")
        };
        let us = t.elapsed().as_micros() as u64;
        if write {
            tally.write_latencies_us.push(us);
        } else {
            tally.latencies_us.push(us);
        }
        match resp.get("status").and_then(Json::as_str) {
            Some("ok") => {
                tally.ok += 1;
                if write {
                    tally.write_rows += resp.get("inserted").and_then(Json::as_u64).unwrap_or(0)
                        + resp.get("deleted").and_then(Json::as_u64).unwrap_or(0);
                }
            }
            Some("timeout") => tally.timeouts += 1,
            Some("overloaded") => tally.overloaded += 1,
            _ => tally.errors += 1,
        }
    }
    tally
}

fn kind_name(kind: EndpointKind) -> &'static str {
    match kind {
        EndpointKind::University => "university",
        EndpointKind::UniversityAbox => "university-abox",
    }
}

/// Appends `record` to the JSON array at `path` (created as `[record]`
/// when absent), so successive runs build up the table one file feeds.
fn append_json_record(path: &str, record: Json) -> Result<(), String> {
    let mut runs = match std::fs::read_to_string(path) {
        Ok(src) => match Json::parse(src.trim()) {
            Ok(Json::Arr(items)) => items,
            Ok(other) => return Err(format!("{path} holds {other}, not a JSON array")),
            Err(e) => return Err(format!("{path} is not valid JSON: {e}")),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.to_string()),
    };
    runs.push(record);
    let mut out = String::from("[\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&run.to_string());
        if i + 1 < runs.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    std::fs::write(path, out).map_err(|e| e.to_string())
}

fn pct(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil().max(1.0) as usize;
    sorted_us[rank.min(sorted_us.len()) - 1]
}

/// Fetches the server's trace ring via the `TRACE` verb and prints the
/// `k` slowest traced queries with per-phase attribution.
fn print_slowest_traces(addr: SocketAddr, k: usize) {
    // The ring holds the last N completed traces (QUONTO_TRACE_RING,
    // default 128); ask for more than any default so we see them all.
    let resp = Conn::open(addr)
        .and_then(|mut c| c.roundtrip("TRACE 4096"))
        .unwrap_or(Json::Null);
    let Some(traces) = resp.get("traces").and_then(Json::as_arr) else {
        println!("  trace ring unavailable (server answered: {resp})");
        return;
    };
    let mut traces: Vec<&Json> = traces.iter().collect();
    traces
        .sort_by_key(|t| std::cmp::Reverse(t.get("total_us").and_then(Json::as_u64).unwrap_or(0)));
    println!(
        "  slowest {} of {} traced queries:",
        k.min(traces.len()),
        traces.len()
    );
    for t in traces.iter().take(k) {
        let query = t.get("query").and_then(Json::as_str).unwrap_or("?");
        let status = t.get("status").and_then(Json::as_str).unwrap_or("?");
        let rows = t.get("rows").and_then(Json::as_u64).unwrap_or(0);
        let total_us = t.get("total_us").and_then(Json::as_u64).unwrap_or(0);
        let mut phases = String::new();
        if let Some(ps) = t.get("phases").and_then(Json::as_arr) {
            for p in ps {
                let name = p.get("phase").and_then(Json::as_str).unwrap_or("?");
                let us = p.get("us").and_then(Json::as_u64).unwrap_or(0);
                phases.push_str(&format!(" {name}={us}us"));
            }
        }
        println!(
            "    total_us={total_us} status={status} rows={rows} phases:{phases} query={query:?}"
        );
    }
}

fn main() {
    let opts = parse_opts();
    let mix = build_mix(&opts);

    // Target: an external server, or one spawned in-process.
    let (addr, spawned) = match &opts.addr {
        Some(a) => {
            let addr = a
                .to_socket_addrs()
                .ok()
                .and_then(|mut it| it.next())
                .unwrap_or_else(|| {
                    eprintln!("cannot resolve --addr {a}");
                    std::process::exit(2)
                });
            (addr, None)
        }
        None => {
            eprintln!(
                "loadgen: spawning in-process server (workers={} queue={} scale={} seed={} shards={})",
                opts.workers, opts.queue, opts.scale, opts.seed, opts.shards
            );
            let server = Server::start(ServerConfig {
                workers: opts.workers,
                queue_capacity: opts.queue,
                exact_workers: opts.exact_workers,
                endpoints: vec![EndpointConfig {
                    name: ENDPOINT.into(),
                    kind: opts.kind,
                    scale: opts.scale,
                    seed: opts.seed,
                    engine: {
                        let mut engine = EndpointConfig::default().engine.rewriting(opts.rewriting);
                        if opts.shards > 0 {
                            engine = engine.shards(opts.shards);
                        }
                        if let Some(mode) = opts.ebox {
                            engine = engine.ebox(mode);
                        }
                        engine
                    },
                    delay_ms: opts.delay_ms,
                    ..EndpointConfig::default()
                }],
                ..ServerConfig::default()
            })
            .expect("server start");
            (server.addr(), Some(server))
        }
    };

    // Warm phase: one pass over the whole mix populates the rewrite
    // cache so the timed run measures steady-state serving.
    if opts.warm {
        let mut conn = Conn::open(addr).expect("warmup connect");
        for (lang, text) in &mix {
            let resp = conn
                .query(lang, text, opts.timeout_ms)
                .expect("warmup query");
            assert_eq!(
                resp.get("status").and_then(Json::as_str),
                Some("ok"),
                "warmup failed: {resp}"
            );
        }
    }

    // Per-connection churn streams: disjoint seeds so two connections
    // never race to insert/delete the same churn fact, reruns replay
    // the exact same writes.
    let plans: Vec<ClientPlan> = (0..opts.connections)
        .map(|tid| {
            let churn = if opts.write_frac > 0.0 {
                let len = (opts.requests as f64 * opts.write_frac).ceil() as usize * opts.batch
                    + opts.batch;
                churn_stream(opts.scale, opts.seed ^ ((tid as u64 + 1) << 32), len)
            } else {
                Vec::new()
            };
            ClientPlan {
                mix: &mix,
                requests: opts.requests,
                offset: tid,
                timeout_ms: opts.timeout_ms,
                write_frac: opts.write_frac,
                batch: opts.batch,
                churn,
            }
        })
        .collect();

    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| scope.spawn(move || run_client(addr, plan)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = started.elapsed();

    let mut latencies: Vec<u64> = Vec::new();
    let mut write_latencies: Vec<u64> = Vec::new();
    let (mut ok, mut errors, mut timeouts, mut overloaded) = (0u64, 0u64, 0u64, 0u64);
    let mut write_rows = 0u64;
    for t in tallies {
        latencies.extend(t.latencies_us);
        write_latencies.extend(t.write_latencies_us);
        ok += t.ok;
        errors += t.errors;
        timeouts += t.timeouts;
        overloaded += t.overloaded;
        write_rows += t.write_rows;
    }
    latencies.sort_unstable();
    write_latencies.sort_unstable();
    let total = latencies.len() as u64;
    let writes = write_latencies.len() as u64;
    // Read qps — under mixed traffic this is the degradation number.
    let qps = total as f64 / wall.as_secs_f64().max(1e-9);
    let mean_us = latencies.iter().sum::<u64>() as f64 / total.max(1) as f64;

    // Server-side view: cache hit rate + queue high-water from STATS.
    let stats = Conn::open(addr)
        .and_then(|mut c| c.roundtrip("STATS"))
        .unwrap_or(Json::Null);
    let hit_rate = stats
        .get("endpoints")
        .and_then(|e| e.get(ENDPOINT))
        .and_then(|e| e.get("cache_hit_rate"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let high_water = stats
        .get("server")
        .and_then(|s| s.get("queue_high_water"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    // Against an external server, --workers describes nothing — report
    // the target's actual pool size from STATS instead (also reflects
    // the CPU clamp on a spawned server).
    let workers = stats
        .get("workers")
        .and_then(Json::as_u64)
        .unwrap_or(opts.workers as u64);
    let shards = stats
        .get("endpoints")
        .and_then(|e| e.get(ENDPOINT))
        .and_then(|e| e.get("shards"))
        .and_then(Json::as_u64)
        .unwrap_or(1);
    let rewriting = stats
        .get("endpoints")
        .and_then(|e| e.get(ENDPOINT))
        .and_then(|e| e.get("rewriting"))
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_owned();
    let ebox = stats
        .get("endpoints")
        .and_then(|e| e.get(ENDPOINT))
        .and_then(|e| e.get("ebox"))
        .and_then(Json::as_str)
        .unwrap_or("off")
        .to_owned();
    let ebox_constraints = stats
        .get("endpoints")
        .and_then(|e| e.get(ENDPOINT))
        .and_then(|e| e.get("ebox_constraints"))
        .and_then(Json::as_u64)
        .unwrap_or(0);

    let label = if opts.label.is_empty() {
        String::new()
    } else {
        format!(" label={}", opts.label)
    };
    println!(
        "loadgen report{label} workers={workers} shards={shards} rewriting={rewriting} ebox={ebox} connections={} requests={} mix_size={} warm={}",
        opts.connections,
        total,
        mix.len(),
        opts.warm,
    );
    println!(
        "  wall_s={:.3} qps={qps:.1} ok={ok} errors={errors} timeouts={timeouts} overloaded={overloaded}",
        wall.as_secs_f64()
    );
    println!(
        "  latency_us mean={mean_us:.0} p50={} p90={} p95={} p99={} max={}",
        pct(&latencies, 50.0),
        pct(&latencies, 90.0),
        pct(&latencies, 95.0),
        pct(&latencies, 99.0),
        latencies.last().copied().unwrap_or(0),
    );
    if writes > 0 {
        let wqps = writes as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "  writes={writes} write_qps={wqps:.1} batch={} rows_changed={write_rows} write_us p50={} p95={} p99={}",
            opts.batch,
            pct(&write_latencies, 50.0),
            pct(&write_latencies, 95.0),
            pct(&write_latencies, 99.0),
        );
    }
    println!("  server cache_hit_rate={hit_rate:.3} queue_high_water={high_water}");
    if opts.trace_slowest > 0 {
        print_slowest_traces(addr, opts.trace_slowest);
    }
    if opts.markdown {
        println!(
            "| {workers} | {} | {} | {:.0} | {:.1} | {:.1} | {:.1} | {:.3} |",
            opts.connections,
            if opts.warm { "warm" } else { "cold" },
            qps,
            pct(&latencies, 50.0) as f64 / 1000.0,
            pct(&latencies, 95.0) as f64 / 1000.0,
            pct(&latencies, 99.0) as f64 / 1000.0,
            hit_rate,
        );
    }
    if let Some(path) = &opts.json_path {
        let record = Json::obj(vec![
            ("label", opts.label.as_str().into()),
            ("kind", kind_name(opts.kind).into()),
            ("workers", workers.into()),
            ("shards", shards.into()),
            ("rewriting", rewriting.as_str().into()),
            ("ebox", ebox.as_str().into()),
            ("ebox_constraints", ebox_constraints.into()),
            ("connections", opts.connections.into()),
            ("requests", total.into()),
            ("warm", Json::Bool(opts.warm)),
            ("qps", Json::Num(qps)),
            ("mean_us", Json::Num(mean_us)),
            ("p50_us", pct(&latencies, 50.0).into()),
            ("p90_us", pct(&latencies, 90.0).into()),
            ("p95_us", pct(&latencies, 95.0).into()),
            ("p99_us", pct(&latencies, 99.0).into()),
            ("max_us", latencies.last().copied().unwrap_or(0).into()),
            ("ok", ok.into()),
            ("errors", errors.into()),
            ("timeouts", timeouts.into()),
            ("overloaded", overloaded.into()),
            ("cache_hit_rate", Json::Num(hit_rate)),
            ("queue_high_water", high_water.into()),
            ("write_frac", Json::Num(opts.write_frac)),
            ("batch", opts.batch.into()),
            ("writes", writes.into()),
            ("write_rows", write_rows.into()),
            ("write_p50_us", pct(&write_latencies, 50.0).into()),
            ("write_p95_us", pct(&write_latencies, 95.0).into()),
            ("write_p99_us", pct(&write_latencies, 99.0).into()),
        ]);
        if let Err(e) = append_json_record(path, record) {
            eprintln!("loadgen: writing --json {path} failed: {e}");
            std::process::exit(1);
        }
        eprintln!("loadgen: appended run record to {path}");
    }

    if let Some(server) = spawned {
        server.shutdown();
        server.join();
    }
    if errors > 0 {
        std::process::exit(1);
    }
}
