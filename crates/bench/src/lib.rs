//! # obda-bench
//!
//! The benchmark harness that regenerates **every table and figure** of
//! the paper plus the ablations listed in DESIGN.md. Criterion benches
//! live in `benches/`; table-printing binaries in `src/bin/` (one per
//! experiment id: `figure1`, `figure2`, `rewriting_report`,
//! `approximation_report`, `obda_report`, `implication_report`,
//! `closure_report`).
//!
//! This library hosts the shared machinery: running each classifier with
//! a wall-clock budget, converting `quonto`'s output into the
//! reasoner-independent [`NamedClassification`], and table formatting.

use std::time::{Duration, Instant};

use obda_dllite::Tbox;
use obda_genont::OntologySpec;
use obda_owl::tbox_to_owl;
use obda_reasoners::{classify_tableau_threaded, Budget, NamedClassification, TableauProfile};
use quonto::{Classification, NodeKind};

/// Converts a finished graph-based classification into the shared
/// named-predicate result (for cross-reasoner comparison).
pub fn quonto_named(cls: &Classification) -> NamedClassification {
    let g = cls.graph();
    let mut out = NamedClassification {
        role_pairs: Some(Default::default()),
        ..Default::default()
    };
    for a in (0..g.num_concepts()).map(obda_dllite::ConceptId) {
        if cls.concept_unsat(a) {
            out.unsat_concepts.insert(a);
            continue;
        }
        for b in cls.concept_subsumers(a) {
            if !cls.concept_unsat(b) {
                out.concept_pairs.insert((a, b));
            }
        }
    }
    let role_pairs = out.role_pairs.as_mut().expect("just set");
    for p in (0..g.num_roles()).map(obda_dllite::RoleId) {
        if cls.role_unsat(p) {
            out.unsat_roles.insert(p);
            continue;
        }
        let n = g.role_node(obda_dllite::BasicRole::Direct(p));
        for &v in cls.closure().successors(n) {
            if let NodeKind::Role(r, false) = g.node_kind(quonto::NodeId(v)) {
                if r != p && !cls.role_unsat(r) {
                    role_pairs.insert((p, r));
                }
            }
        }
    }
    out
}

/// Outcome of one classification run.
#[derive(Debug, Clone)]
pub enum RunResult {
    /// Completed within budget.
    Done {
        /// Wall-clock time.
        time: Duration,
        /// Number of concept subsumption pairs reported.
        concept_pairs: usize,
        /// Whether the property hierarchy was computed at all.
        has_role_hierarchy: bool,
    },
    /// Budget exhausted (the paper's "timeout" entries).
    Timeout,
}

impl RunResult {
    /// Formats like the paper's Figure 1 cells (seconds with 3 decimals,
    /// or `timeout`).
    pub fn cell(&self) -> String {
        match self {
            RunResult::Done { time, .. } => format!("{:.3}", time.as_secs_f64()),
            RunResult::Timeout => "timeout".into(),
        }
    }
}

/// The classifiers of Figure 1, in column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reasoner {
    /// The graph-based classifier (this paper / QuOnto).
    Quonto,
    /// FaCT++-analog: enhanced-traversal tableau.
    TableauEnhanced,
    /// HermiT-analog: told-pruned tableau.
    TableauTold,
    /// Pellet-analog: naive all-pairs tableau.
    TableauNaive,
    /// CB-analog: consequence-based (no property hierarchy).
    Consequence,
}

impl Reasoner {
    /// Column header (paper name / our implementation).
    pub fn header(self) -> &'static str {
        match self {
            Reasoner::Quonto => "QuOnto(graph)",
            Reasoner::TableauEnhanced => "FaCT++(enh)",
            Reasoner::TableauTold => "HermiT(told)",
            Reasoner::TableauNaive => "Pellet(naive)",
            Reasoner::Consequence => "CB(conseq)",
        }
    }

    /// All columns in the Figure 1 order (QuOnto, FaCT++, HermiT,
    /// Pellet, CB).
    pub fn figure1_columns() -> [Reasoner; 5] {
        [
            Reasoner::Quonto,
            Reasoner::TableauEnhanced,
            Reasoner::TableauTold,
            Reasoner::TableauNaive,
            Reasoner::Consequence,
        ]
    }
}

/// Runs one classifier on one TBox under a wall-clock budget and returns
/// timing plus result shape. The OWL view is built outside the timed
/// section for the tableau profiles (parsing/loading is not what Figure 1
/// measures). Single-threaded; see [`run_classifier_threaded`].
pub fn run_classifier(reasoner: Reasoner, tbox: &Tbox, budget_secs: u64) -> RunResult {
    run_classifier_threaded(reasoner, tbox, budget_secs, 1)
}

/// [`run_classifier`] with a worker-thread knob (`0` = all cores): the
/// graph-based classifier picks its closure engine via
/// [`quonto::recommended_with_threads`], and the tableau profiles shard
/// their subsumption tests across workers. `threads == 1` reproduces
/// `run_classifier` exactly; every reasoner reports identical results at
/// every thread count (only wall-time changes).
pub fn run_classifier_threaded(
    reasoner: Reasoner,
    tbox: &Tbox,
    budget_secs: u64,
    threads: usize,
) -> RunResult {
    match reasoner {
        Reasoner::Quonto => {
            let engine = quonto::recommended_with_threads(threads);
            let start = Instant::now();
            let cls = Classification::classify_with(tbox, engine.as_ref());
            let time = start.elapsed();
            let named = quonto_named(&cls);
            RunResult::Done {
                time,
                concept_pairs: named.concept_pairs.len(),
                has_role_hierarchy: true,
            }
        }
        Reasoner::Consequence => {
            let start = Instant::now();
            let (pairs, _unsat) = obda_reasoners::consequence_stats(tbox);
            let time = start.elapsed();
            RunResult::Done {
                time,
                concept_pairs: pairs,
                has_role_hierarchy: false,
            }
        }
        Reasoner::TableauEnhanced | Reasoner::TableauTold | Reasoner::TableauNaive => {
            let profile = match reasoner {
                Reasoner::TableauEnhanced => TableauProfile::Enhanced,
                Reasoner::TableauTold => TableauProfile::Told,
                _ => TableauProfile::Naive,
            };
            let onto = tbox_to_owl(tbox);
            let start = Instant::now();
            match classify_tableau_threaded(&onto, profile, Budget::seconds(budget_secs), threads) {
                Ok(named) => RunResult::Done {
                    time: start.elapsed(),
                    concept_pairs: named.concept_pairs.len(),
                    has_role_hierarchy: named.role_pairs.is_some(),
                },
                Err(_) => RunResult::Timeout,
            }
        }
    }
}

/// One row of the Figure 1 table.
#[derive(Debug, Clone)]
pub struct Figure1Row {
    /// Ontology name.
    pub ontology: String,
    /// TBox statistics (for the report header).
    pub stats: obda_dllite::tbox::TboxStats,
    /// Results per Figure 1 column.
    pub results: Vec<(Reasoner, RunResult)>,
}

/// Runs the Figure 1 suite. `scale` multiplies every preset's sizes
/// (1.0 = the published scales); `budget_secs` is the per-run timeout
/// (the paper used 3600s); `filter` restricts to ontologies whose name
/// contains the string. Single-threaded; see [`run_figure1_threaded`].
pub fn run_figure1(scale: f64, budget_secs: u64, filter: Option<&str>) -> Vec<Figure1Row> {
    run_figure1_threaded(scale, budget_secs, filter, 1)
}

/// [`run_figure1`] with a worker-thread knob (`0` = all cores), threaded
/// through to every classifier via [`run_classifier_threaded`].
pub fn run_figure1_threaded(
    scale: f64,
    budget_secs: u64,
    filter: Option<&str>,
    threads: usize,
) -> Vec<Figure1Row> {
    let mut rows = Vec::new();
    for preset in obda_genont::figure1_presets() {
        if let Some(f) = filter {
            if !preset.name.to_lowercase().contains(&f.to_lowercase()) {
                continue;
            }
        }
        let spec = if (scale - 1.0).abs() < f64::EPSILON {
            preset
        } else {
            preset.scaled(scale)
        };
        let tbox = spec.generate();
        let stats = tbox.stats();
        let mut results = Vec::new();
        for r in Reasoner::figure1_columns() {
            let outcome = run_classifier_threaded(r, &tbox, budget_secs, threads);
            // Stream progress so long runs are observable.
            eprintln!("  {} / {}: {}", spec.name, r.header(), outcome.cell());
            results.push((r, outcome));
        }
        rows.push(Figure1Row {
            ontology: spec.name.clone(),
            stats,
            results,
        });
    }
    rows
}

/// Formats rows as an aligned ASCII table (like the paper's Figure 1,
/// with seconds instead of milliseconds).
pub fn format_figure1(rows: &[Figure1Row]) -> String {
    let mut headers = vec!["Ontology".to_owned(), "classes".into(), "axioms".into()];
    headers.extend(
        Reasoner::figure1_columns()
            .into_iter()
            .map(|r| r.header().to_owned()),
    );
    let mut table: Vec<Vec<String>> = vec![headers];
    for row in rows {
        let mut cells = vec![
            row.ontology.clone(),
            row.stats.concepts.to_string(),
            row.stats.total_axioms().to_string(),
        ];
        cells.extend(row.results.iter().map(|(_, r)| r.cell()));
        table.push(cells);
    }
    render(&table)
}

/// Aligned ASCII rendering of a table (first row = header).
pub fn render(table: &[Vec<String>]) -> String {
    let cols = table.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in table {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in table.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
            .collect();
        out.push_str(line.join("  ").trim_end());
        out.push('\n');
        if ri == 0 {
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
            out.push('\n');
        }
    }
    out
}

/// Small spec used by benches that need a quick synthetic ontology.
pub fn smoke_spec(concepts: usize, seed: u64) -> OntologySpec {
    OntologySpec {
        name: format!("smoke{concepts}"),
        concepts,
        roles: (concepts / 20).max(2),
        roots: (concepts / 100).max(1),
        existentials: concepts / 5,
        qualified_existentials: concepts / 10,
        disjointness: concepts / 20,
        seed,
        ..OntologySpec::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_reasoners::classify_consequence;

    #[test]
    fn quonto_named_matches_consequence_on_presets() {
        for preset in obda_genont::figure1_presets() {
            let spec = preset.scaled(0.01);
            let tbox = spec.generate();
            let q = quonto_named(&Classification::classify(&tbox));
            let cb = classify_consequence(&tbox);
            assert!(
                q.concepts_agree(&cb),
                "{}: quonto {} pairs vs cb {} pairs",
                spec.name,
                q.concept_pairs.len(),
                cb.concept_pairs.len()
            );
        }
    }

    #[test]
    fn figure1_smoke_run() {
        let rows = run_figure1(0.005, 10, Some("Mouse"));
        assert_eq!(rows.len(), 1);
        let table = format_figure1(&rows);
        assert!(table.contains("Mouse"));
        assert!(table.contains("QuOnto"));
    }

    #[test]
    fn render_aligns_columns() {
        let t = vec![
            vec!["a".into(), "long-header".into()],
            vec!["xxxx".into(), "1".into()],
        ];
        let s = render(&t);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "));
    }
}
