//! Workspace-level cross-reasoner validation: the graph-based classifier
//! against the ALCHI tableau (a *semantically* independent decision
//! procedure — completion graphs vs reachability), through the OWL
//! conversion layer.

use obda_bench::quonto_named;
use obda_dllite::{Axiom, BasicConcept, BasicRole, GeneralConcept, Tbox};
use obda_genont::random_tbox;
use obda_owl::{axiom_to_owl, tbox_to_owl};
use obda_reasoners::{classify_tableau, Budget, Tableau, TableauKb, TableauProfile};
use quonto::{Classification, Implication};

/// Random TBoxes without attributes (the tableau does not decide
/// data-property axioms).
fn random_object_tbox(seed: u64) -> Tbox {
    random_tbox(seed, 4, 2, 0, 14)
}

#[test]
fn classification_matches_tableau_on_random_tboxes() {
    for seed in 0u64..25 {
        let tbox = random_object_tbox(seed);
        let onto = tbox_to_owl(&tbox);
        let graph = quonto_named(&Classification::classify(&tbox));
        let tableau = classify_tableau(&onto, TableauProfile::Enhanced, Budget::seconds(120))
            .expect("small KB within budget");
        assert_eq!(
            graph.concept_pairs, tableau.concept_pairs,
            "seed {seed}: concept pairs"
        );
        assert_eq!(
            graph.unsat_concepts, tableau.unsat_concepts,
            "seed {seed}: unsat concepts"
        );
        assert_eq!(
            graph.unsat_roles, tableau.unsat_roles,
            "seed {seed}: unsat roles"
        );
    }
}

#[test]
fn classification_matches_tableau_on_preset_analogs() {
    // The tableau at the full 0.02 scale is fine in release but takes
    // many minutes unoptimized; debug builds shrink the presets unless
    // QUONTO_FULL_PRESETS=1 opts back in.
    let scale = if cfg!(debug_assertions) && !quonto::env::full_presets() {
        0.004
    } else {
        0.02
    };
    for preset in [
        obda_genont::presets::mouse(),
        obda_genont::presets::dolce(),
        obda_genont::presets::aeo(),
    ] {
        let spec = preset.scaled(scale);
        let tbox = spec.generate();
        let onto = tbox_to_owl(&tbox);
        let graph = quonto_named(&Classification::classify(&tbox));
        let tableau = classify_tableau(&onto, TableauProfile::Enhanced, Budget::seconds(300))
            .expect("within budget");
        assert!(
            graph.concepts_agree(&tableau),
            "{}: {} vs {} pairs, unsat {} vs {}",
            spec.name,
            graph.concept_pairs.len(),
            tableau.concept_pairs.len(),
            graph.unsat_concepts.len(),
            tableau.unsat_concepts.len()
        );
    }
}

#[test]
fn implication_matches_tableau_entailment() {
    for seed in 0u64..20 {
        let tbox = random_object_tbox(seed.wrapping_add(900));
        let onto = tbox_to_owl(&tbox);
        let cls = Classification::classify(&tbox);
        let imp = Implication::new(&cls);
        let kb = TableauKb::new(&onto);
        let mut tab = Tableau::new(&kb);
        // Probe every axiom shape over the signature.
        let basics: Vec<BasicConcept> = {
            let mut out: Vec<BasicConcept> =
                tbox.sig.concepts().map(BasicConcept::Atomic).collect();
            for p in tbox.sig.roles() {
                out.push(BasicConcept::exists(p));
                out.push(BasicConcept::exists_inv(p));
            }
            out
        };
        let roles: Vec<BasicRole> = tbox
            .sig
            .roles()
            .flat_map(|p| [BasicRole::Direct(p), BasicRole::Inverse(p)])
            .collect();
        let mut probes: Vec<Axiom> = Vec::new();
        for &b1 in &basics {
            for &b2 in &basics {
                probes.push(Axiom::ConceptIncl(b1, GeneralConcept::Basic(b2)));
                probes.push(Axiom::ConceptIncl(b1, GeneralConcept::Neg(b2)));
            }
            for &q in &roles {
                for a in tbox.sig.concepts() {
                    probes.push(Axiom::ConceptIncl(b1, GeneralConcept::QualExists(q, a)));
                }
            }
        }
        for &q1 in &roles {
            for &q2 in &roles {
                probes.push(Axiom::role(q1, q2));
                probes.push(Axiom::role_neg(q1, q2));
            }
        }
        for ax in &probes {
            let graph_says = imp.entails(ax);
            let tableau_says = tab
                .entails(&axiom_to_owl(ax), Budget::seconds(60))
                .expect("within budget");
            assert_eq!(
                graph_says, tableau_says,
                "seed {seed}: disagreement on {ax:?}"
            );
        }
    }
}
