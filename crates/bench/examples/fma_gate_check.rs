fn main() {
    let spec = obda_genont::presets::fma_2_0();
    let tbox = spec.generate();
    println!("FMA 2.0 preset: {} concepts", tbox.stats().concepts);
    let g = quonto::TboxGraph::build(&tbox);
    println!("graph nodes: {}", g.num_nodes());
    use quonto::ClosureEngine;
    // The dense engine refuses graphs this size:
    assert!(g.num_nodes() > quonto::BitsetEngine::MAX_NODES);
    let start = std::time::Instant::now();
    let engine = quonto::ChunkedBitsetEngine::with_threads(2);
    let c = engine.compute(&g);
    println!(
        "chunked-bitset(threads=2): {} closure arcs in {:.2?}",
        c.num_arcs(),
        start.elapsed()
    );
    let start = std::time::Instant::now();
    let c2 = quonto::SccEngine.compute(&g);
    println!(
        "scc reference: {} arcs in {:.2?}",
        c2.num_arcs(),
        start.elapsed()
    );
    for v in 0..g.num_nodes() {
        assert_eq!(
            c.successors(quonto::NodeId(v as u32)),
            c2.successors(quonto::NodeId(v as u32)),
            "divergence at node {v}"
        );
    }
    println!("closures identical: OK");
}
