//! A5: logical implication — graph-based vs saturation-based, build and
//! probe phases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obda_bench::smoke_spec;
use obda_dllite::{Axiom, BasicConcept, ConceptId, GeneralConcept};
use obda_reasoners::Saturation;
use quonto::{Classification, Implication};

fn implication(c: &mut Criterion) {
    let mut group = c.benchmark_group("implication");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for concepts in [50usize, 100] {
        let tbox = smoke_spec(concepts, 7).generate();
        group.bench_with_input(
            BenchmarkId::new("graph_build", concepts),
            &tbox,
            |b, tbox| b.iter(|| Classification::classify(tbox)),
        );
        group.bench_with_input(
            BenchmarkId::new("saturation_build", concepts),
            &tbox,
            |b, tbox| b.iter(|| Saturation::saturate(tbox)),
        );
        // Probe phase over prebuilt artifacts.
        let cls = Classification::classify(&tbox);
        let imp = Implication::new(&cls);
        let probe = Axiom::ConceptIncl(
            BasicConcept::Atomic(ConceptId(1)),
            GeneralConcept::Basic(BasicConcept::Atomic(ConceptId(0))),
        );
        group.bench_with_input(
            BenchmarkId::new("graph_probe", concepts),
            &probe,
            |b, ax| b.iter(|| imp.entails(ax)),
        );
    }
    group.finish();
}

criterion_group!(benches, implication);
criterion_main!(benches);
