//! Parallel-closure scaling: the sequential SCC baseline against the two
//! multi-threaded engines at 1/2/4/8 workers, on the Galen- and FMA-shaped
//! presets (the two largest Figure 1 ontologies).
//!
//! ```text
//! cargo bench -p obda-bench --bench closure_parallel
//! ```
//!
//! Presets are scaled down so a full criterion pass stays in seconds; pass
//! `QUONTO_BENCH_SCALE` (a float, default 0.1) to change that — e.g.
//! `QUONTO_BENCH_SCALE=1.0` benches the published ontology sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quonto::{ChunkedBitsetEngine, ClosureEngine, ParSccEngine, SccEngine, TboxGraph};

fn bench_scale() -> f64 {
    quonto::env::bench_scale().unwrap_or(0.1)
}

fn closure_parallel(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("closure_parallel");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(10);
    let shapes = [
        ("galen", obda_genont::presets::galen().scaled(scale)),
        ("fma_2_0", obda_genont::presets::fma_2_0().scaled(scale)),
    ];
    for (label, spec) in shapes {
        let tbox = spec.generate();
        let graph = TboxGraph::build(&tbox);
        group.bench_with_input(BenchmarkId::new("scc", label), &graph, |b, graph| {
            b.iter(|| SccEngine.compute(graph))
        });
        for threads in [1usize, 2, 4, 8] {
            let par = ParSccEngine::with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("par-scc/t{threads}"), label),
                &graph,
                |b, graph| b.iter(|| par.compute(graph)),
            );
            let chunked = ChunkedBitsetEngine::with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("chunked-bitset/t{threads}"), label),
                &graph,
                |b, graph| b.iter(|| chunked.compute(graph)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, closure_parallel);
criterion_main!(benches);
