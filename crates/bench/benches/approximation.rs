//! A3: syntactic vs per-axiom semantic approximation time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obda_approx::{semantic_approximation, syntactic_approximation};
use obda_genont::random_owl;
use obda_reasoners::Budget;

fn approximation(c: &mut Criterion) {
    let mut group = c.benchmark_group("approximation");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for seed in [1u64, 2, 3] {
        let onto = random_owl(seed, 6, 3, 12, 3);
        group.bench_with_input(BenchmarkId::new("syntactic", seed), &onto, |b, onto| {
            b.iter(|| syntactic_approximation(onto))
        });
        group.bench_with_input(
            BenchmarkId::new("semantic_per_axiom", seed),
            &onto,
            |b, onto| {
                b.iter(|| semantic_approximation(onto, Budget::seconds(120)).expect("in budget"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, approximation);
criterion_main!(benches);
