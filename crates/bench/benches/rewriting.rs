//! A2: PerfectRef vs Presto rewriting time on the university query mix,
//! plus the fast-path ablations: predicate-indexed vs axiom-scanning
//! PerfectRef, and the cost of subsumption pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mastro::{parse_cq, perfect_ref, perfect_ref_scan, presto_rewrite, prune_ucq};
use obda_genont::university_scenario;
use quonto::Classification;

fn rewriting(c: &mut Criterion) {
    let scenario = university_scenario(1, 42);
    let cls = Classification::classify(&scenario.tbox);
    let mut group = c.benchmark_group("rewriting");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for qs in &scenario.queries {
        let q = parse_cq(&qs.text, &scenario.tbox.sig).expect("parses");
        group.bench_with_input(BenchmarkId::new("perfectref", &qs.name), &q, |b, q| {
            b.iter(|| perfect_ref(q, &scenario.tbox))
        });
        group.bench_with_input(BenchmarkId::new("perfectref_scan", &qs.name), &q, |b, q| {
            b.iter(|| perfect_ref_scan(q, &scenario.tbox))
        });
        // Rewrite + prune, the full shape the system caches.
        group.bench_with_input(
            BenchmarkId::new("perfectref_pruned", &qs.name),
            &q,
            |b, q| b.iter(|| prune_ucq(&perfect_ref(q, &scenario.tbox))),
        );
        group.bench_with_input(BenchmarkId::new("presto", &qs.name), &q, |b, q| {
            b.iter(|| presto_rewrite(q, &cls))
        });
    }
    group.finish();
}

criterion_group!(benches, rewriting);
criterion_main!(benches);
