//! A1: transitive-closure engine ablation (dfs / bfs / scc / bitset) on
//! representative ontology shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quonto::TboxGraph;

fn closure_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure_ablation");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    let shapes = [
        ("mouse_10pct", obda_genont::presets::mouse().scaled(0.1)),
        ("galen_2pct", obda_genont::presets::galen().scaled(0.02)),
        ("dolce_full", obda_genont::presets::dolce()),
    ];
    for (label, spec) in shapes {
        let tbox = spec.generate();
        let graph = TboxGraph::build(&tbox);
        for engine in quonto::all_engines() {
            group.bench_with_input(
                BenchmarkId::new(engine.name(), label),
                &graph,
                |b, graph| b.iter(|| engine.compute(graph)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, closure_ablation);
criterion_main!(benches);
