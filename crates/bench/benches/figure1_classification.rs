//! Criterion bench behind the Figure 1 reproduction.
//!
//! The full-scale table (including tableau timeouts) is produced by the
//! `figure1` binary; Criterion needs repeatable sub-second runs, so here
//! the graph-based and consequence-based classifiers run on 10%-scale
//! analogs of every ontology, and the tableau profiles run at full scale
//! on the two suites whose structure they handle comfortably
//! (Transportation, AEO — as in the paper, where every reasoner finishes
//! the small ontologies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obda_reasoners::{classify_consequence, classify_tableau, Budget, TableauProfile};
use quonto::Classification;

fn figure1(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1_classification");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for preset in obda_genont::figure1_presets() {
        let spec = preset.scaled(0.1);
        let tbox = spec.generate();
        group.bench_with_input(BenchmarkId::new("quonto", &spec.name), &tbox, |b, tbox| {
            b.iter(|| Classification::classify(tbox))
        });
        group.bench_with_input(
            BenchmarkId::new("consequence", &spec.name),
            &tbox,
            |b, tbox| b.iter(|| classify_consequence(tbox)),
        );
    }
    for preset in [
        obda_genont::presets::transportation(),
        obda_genont::presets::aeo(),
    ] {
        let tbox = preset.generate();
        let onto = obda_owl::tbox_to_owl(&tbox);
        for profile in [
            TableauProfile::Enhanced,
            TableauProfile::Told,
            TableauProfile::Naive,
        ] {
            group.bench_with_input(
                BenchmarkId::new(
                    format!("{}_full", profile.name().replace('-', "_")),
                    &preset.name,
                ),
                &onto,
                |b, onto| {
                    b.iter(|| {
                        classify_tableau(onto, profile, Budget::seconds(120))
                            .expect("within budget")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, figure1);
criterion_main!(benches);
