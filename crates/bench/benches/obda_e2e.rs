//! A4: end-to-end OBDA answering, virtual vs materialized, Presto vs
//! PerfectRef, on the university scenario — including rewrite-cache
//! cold vs warm and the 1/2/4-thread materialized evaluator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mastro::{DataMode, RewritingMode};
use obda_genont::university_scenario;

fn obda_e2e(c: &mut Criterion) {
    let scenario = university_scenario(4, 42);
    let mut group = c.benchmark_group("obda_e2e");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    let modes = [
        ("presto_virtual", RewritingMode::Presto, DataMode::Virtual),
        (
            "perfectref_virtual",
            RewritingMode::PerfectRef,
            DataMode::Virtual,
        ),
        (
            "presto_materialized",
            RewritingMode::Presto,
            DataMode::Materialized,
        ),
    ];
    for (label, rw, dm) in modes {
        let sys = mastro::demo::build_system(&scenario)
            .expect("builds")
            .with_rewriting(rw)
            .with_data_mode(dm);
        if dm == DataMode::Materialized {
            let _ = sys.materialized_abox().expect("materializes");
        }
        for qs in &scenario.queries {
            group.bench_with_input(BenchmarkId::new(label, &qs.name), &qs.text, |b, text| {
                b.iter(|| sys.answer(text).expect("answers"))
            });
        }
    }

    // Rewrite cache: cold re-rewrites every iteration, warm hits the
    // cached (pruned) UCQ.
    let mut sys = mastro::demo::build_system(&scenario)
        .expect("builds")
        .with_rewriting(RewritingMode::PerfectRef)
        .with_data_mode(DataMode::Materialized);
    let _ = sys.materialized_abox().expect("materializes");
    for qs in &scenario.queries {
        group.bench_with_input(
            BenchmarkId::new("perfectref_mat_cold", &qs.name),
            &qs.text,
            |b, text| {
                b.iter(|| {
                    sys.invalidate_rewrites();
                    sys.answer(text).expect("answers")
                })
            },
        );
        let _ = sys.answer(&qs.text).expect("warms the cache");
        group.bench_with_input(
            BenchmarkId::new("perfectref_mat_warm", &qs.name),
            &qs.text,
            |b, text| b.iter(|| sys.answer(text).expect("answers")),
        );
    }

    // Thread scaling of the materialized UCQ evaluator.
    for threads in [1usize, 2, 4] {
        let sys = mastro::demo::build_system(&scenario)
            .expect("builds")
            .with_rewriting(RewritingMode::PerfectRef)
            .with_data_mode(DataMode::Materialized)
            .with_eval_threads(threads);
        let _ = sys.materialized_abox().expect("materializes");
        let label = format!("perfectref_mat_{threads}t");
        for qs in &scenario.queries {
            group.bench_with_input(BenchmarkId::new(&label, &qs.name), &qs.text, |b, text| {
                b.iter(|| sys.answer(text).expect("answers"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, obda_e2e);
criterion_main!(benches);
