//! A4: end-to-end OBDA answering, virtual vs materialized, Presto vs
//! PerfectRef, on the university scenario — including rewrite-cache
//! cold vs warm and the 1/2/4-thread materialized evaluator.
//!
//! The mode matrix drives the engines through the unified
//! [`mastro::QueryEngine`] trait (constructed via
//! [`mastro::EngineConfig`]) — the same surface the server endpoints
//! hold — so what this bench measures is what serving pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mastro::{DataMode, EngineConfig, QueryEngine, QueryLang, RewritingMode};
use obda_genont::{university_scenario, UniversityScenario};

fn build_engine(
    scenario: &UniversityScenario,
    rw: RewritingMode,
    dm: DataMode,
    threads: usize,
) -> Box<dyn QueryEngine> {
    let db = mastro::demo::load_database(scenario).expect("loads");
    let mappings = mastro::demo::build_mappings(scenario);
    let sys = EngineConfig::new()
        .rewriting(rw)
        .data_mode(dm)
        .eval_threads(threads)
        .build_obda(scenario.tbox.clone(), mappings, db)
        .expect("builds");
    if dm == DataMode::Materialized {
        let _ = sys.materialized_abox().expect("materializes");
    }
    Box::new(sys)
}

fn obda_e2e(c: &mut Criterion) {
    let scenario = university_scenario(4, 42);
    let mut group = c.benchmark_group("obda_e2e");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    let modes = [
        ("presto_virtual", RewritingMode::Presto, DataMode::Virtual),
        (
            "perfectref_virtual",
            RewritingMode::PerfectRef,
            DataMode::Virtual,
        ),
        (
            "presto_materialized",
            RewritingMode::Presto,
            DataMode::Materialized,
        ),
    ];
    for (label, rw, dm) in modes {
        let engine = build_engine(&scenario, rw, dm, 1);
        for qs in &scenario.queries {
            group.bench_with_input(BenchmarkId::new(label, &qs.name), &qs.text, |b, text| {
                b.iter(|| engine.answer(QueryLang::Cq, text).expect("answers"))
            });
        }
    }

    // Rewrite cache: cold re-rewrites every iteration, warm hits the
    // cached (pruned) UCQ. Uses the concrete system: the trait-level
    // `invalidate` also drops the materialized ABox, which would turn
    // "cold cache" into "cold everything".
    let mut sys = mastro::demo::build_system(&scenario)
        .expect("builds")
        .with_rewriting(RewritingMode::PerfectRef)
        .with_data_mode(DataMode::Materialized);
    let _ = sys.materialized_abox().expect("materializes");
    for qs in &scenario.queries {
        group.bench_with_input(
            BenchmarkId::new("perfectref_mat_cold", &qs.name),
            &qs.text,
            |b, text| {
                b.iter(|| {
                    sys.invalidate_rewrites();
                    sys.answer(text).expect("answers")
                })
            },
        );
        let _ = sys.answer(&qs.text).expect("warms the cache");
        group.bench_with_input(
            BenchmarkId::new("perfectref_mat_warm", &qs.name),
            &qs.text,
            |b, text| b.iter(|| sys.answer(text).expect("answers")),
        );
    }

    // Thread scaling of the materialized UCQ evaluator.
    for threads in [1usize, 2, 4] {
        let engine = build_engine(
            &scenario,
            RewritingMode::PerfectRef,
            DataMode::Materialized,
            threads,
        );
        let label = format!("perfectref_mat_{threads}t");
        for qs in &scenario.queries {
            group.bench_with_input(BenchmarkId::new(&label, &qs.name), &qs.text, |b, text| {
                b.iter(|| engine.answer(QueryLang::Cq, text).expect("answers"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, obda_e2e);
criterion_main!(benches);
