//! # xtask — workspace automation
//!
//! The project's static-analysis pass and doc generator, std-only and
//! offline (no syn, no proc macros, no network):
//!
//! * `cargo run -p xtask -- lint [--json] [--update-baseline]` —
//!   scans every first-party Rust source (vendored crates excluded) and
//!   enforces the rule catalogue in [`rules`]: panic-path hygiene (R1),
//!   lock discipline (R2), unsafe audit (R3), the env-knob registry
//!   (R4, both directions, docs included), and test/doc hygiene (R5).
//!   Exit code 0 = clean, 1 = findings, 2 = usage/IO error.
//! * `cargo run -p xtask -- analyze [--json]` — the whole-workspace
//!   graph analyses in [`analyze`]: lock-order soundness (A1, held-set
//!   propagation over the call graph in [`graph`]), telemetry-name
//!   drift (A2), and invalidation soundness (A3, the PR 8 write-path
//!   invariants). Same exit-code contract as `lint`.
//! * `cargo run -p xtask -- env-docs [--write]` — syncs the README and
//!   DESIGN knob tables from `quonto::env::KNOBS`.
//! * `cargo run -p xtask -- obs-docs [--write]` — syncs the README and
//!   DESIGN telemetry-name tables from the collected literals.
//!
//! See DESIGN.md ("Static analysis & concurrency correctness") for the
//! rationale and the full rule table.

pub mod analyze;
pub mod baseline;
pub mod docs;
pub mod graph;
pub mod rules;
pub mod scanner;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use rules::Finding;

/// Repo root, resolved from this crate's manifest (crates/xtask → ../..).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

/// First-party Rust sources: everything under `crates/` and `examples/`,
/// vendored third-party subsets excluded.
pub fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "examples"] {
        walk(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// A full lint run: scanned sources + docs, findings split by baseline.
pub struct LintReport {
    /// Actionable findings (not in the baseline).
    pub findings: Vec<Finding>,
    /// Findings suppressed by the committed baseline.
    pub baselined: usize,
    /// Files scanned.
    pub files: usize,
    /// Fingerprints of every finding (for `--update-baseline`).
    pub fingerprints: BTreeSet<String>,
}

/// Runs the whole pass over the repo at `root`.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let is_registered = |name: &str| quonto::env::is_registered(name);
    let mut all: Vec<(Finding, String)> = Vec::new(); // finding + raw line
    let mut files = 0usize;

    for path in source_files(root) {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("{} is outside the repo root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        files += 1;
        let scanned = scanner::scan(&rel, &src);
        for f in rules::check_file(&scanned, &is_registered) {
            let raw = scanned
                .lines
                .get(f.line.saturating_sub(1))
                .map(|l| l.raw.clone())
                .unwrap_or_default();
            all.push((f, raw));
        }
    }

    // Docs: QUONTO_* drift + table sync (R4.docs).
    let table = quonto::env::markdown_table();
    for doc in docs::DOC_FILES {
        let path = root.join(doc);
        let content = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let mut doc_findings = Vec::new();
        rules::r4_docs(doc, &content, &is_registered, &mut doc_findings);
        match docs::sync_block(&content, &table) {
            docs::SyncOutcome::UpToDate => {}
            docs::SyncOutcome::Stale(_) => doc_findings.push(Finding {
                rule: "R4.docs",
                path: (*doc).to_owned(),
                line: 1,
                message: "embedded env-knob table is stale vs quonto::env::KNOBS".into(),
            }),
            docs::SyncOutcome::MissingMarkers => doc_findings.push(Finding {
                rule: "R4.docs",
                path: (*doc).to_owned(),
                line: 1,
                message: format!(
                    "missing `{}` / `{}` markers for the env-knob table",
                    docs::BEGIN,
                    docs::END
                ),
            }),
        }
        for f in doc_findings {
            let raw = content
                .lines()
                .nth(f.line.saturating_sub(1))
                .unwrap_or("")
                .to_owned();
            all.push((f, raw));
        }
        files += 1;
    }
    // Remaining doc files only get the drift check, not the table.
    for doc in ["EXPERIMENTS.md", "ROADMAP.md", "CHANGES.md"] {
        let path = root.join(doc);
        let Ok(content) = std::fs::read_to_string(&path) else {
            continue;
        };
        let mut doc_findings = Vec::new();
        rules::r4_docs(doc, &content, &is_registered, &mut doc_findings);
        for f in doc_findings {
            let raw = content
                .lines()
                .nth(f.line.saturating_sub(1))
                .unwrap_or("")
                .to_owned();
            all.push((f, raw));
        }
        files += 1;
    }

    let baseline = baseline::load(&root.join("lint-baseline.txt"));
    let mut fingerprints = BTreeSet::new();
    let mut findings = Vec::new();
    let mut baselined = 0usize;
    for (f, raw) in all {
        let fp = f.fingerprint(&raw);
        fingerprints.insert(fp.clone());
        if baseline.contains(&fp) {
            baselined += 1;
        } else {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    Ok(LintReport {
        findings,
        baselined,
        files,
        fingerprints,
    })
}

/// Renders findings as human-readable diagnostics.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    hint: {}\n",
            f.path,
            f.line,
            f.rule,
            f.message,
            f.hint()
        ));
    }
    out.push_str(&format!(
        "xtask lint: {} finding(s), {} baselined, {} file(s) scanned\n",
        report.findings.len(),
        report.baselined,
        report.files
    ));
    out
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (machine-readable, for CI annotations).
pub fn render_json(report: &LintReport) -> String {
    let esc = json_escape;
    let items: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                r#"{{"rule":"{}","path":"{}","line":{},"message":"{}","hint":"{}"}}"#,
                esc(f.rule),
                esc(&f.path),
                f.line,
                esc(&f.message),
                esc(f.hint())
            )
        })
        .collect();
    format!(
        r#"{{"findings":[{}],"baselined":{},"files":{}}}"#,
        items.join(","),
        report.baselined,
        report.files
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_root_holds_the_workspace_manifest() {
        let root = repo_root();
        assert!(root.join("Cargo.toml").is_file(), "{}", root.display());
        assert!(root.join("crates/xtask/Cargo.toml").is_file());
    }

    #[test]
    fn source_walk_excludes_vendor() {
        let files = source_files(&repo_root());
        assert!(files
            .iter()
            .any(|p| p.ends_with("crates/server/src/json.rs")));
        assert!(!files
            .iter()
            .any(|p| { p.strip_prefix(repo_root()).unwrap().starts_with("vendor") }));
    }

    #[test]
    fn json_rendering_escapes_quotes() {
        let report = LintReport {
            findings: vec![Finding {
                rule: "R5.print",
                path: "a/b.rs".into(),
                line: 3,
                message: "a \"quoted\" thing".into(),
            }],
            baselined: 0,
            files: 1,
            fingerprints: BTreeSet::new(),
        };
        let j = render_json(&report);
        assert!(j.contains(r#"a \"quoted\" thing"#), "{j}");
        assert!(j.contains(r#""line":3"#));
    }
}
