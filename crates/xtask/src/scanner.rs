//! Line-oriented Rust source scanner for the lint rules.
//!
//! Not a parser: a character-level state machine that walks a source
//! file once and, for every line, produces three masked views plus
//! region metadata. The rules then work on the view that cannot lie to
//! them:
//!
//! * [`Line::code`] — string/char-literal *contents* blanked, comments
//!   removed. `panic!` inside a string literal or a doc comment does not
//!   appear here, so token rules (R1–R3, R5) never false-positive on
//!   prose.
//! * [`Line::text`] — string contents kept, comments removed. Used by
//!   R4 to find `QUONTO_*` names that travel through string literals
//!   (e.g. `env::var("QUONTO_X")`).
//! * [`Line::comment`] — the comment content only. Used for `SAFETY:`
//!   markers and `lint: allow(...)` suppressions.
//!
//! The machine understands line/blocks comments (nested), plain and raw
//! strings (any `#` count, `b`/`br` prefixes), char and byte literals,
//! and the lifetime-vs-char-literal ambiguity. It also tracks
//! `#[cfg(test)]` regions by brace depth so in-file unit tests can be
//! exempted from production-path rules.

/// How a file participates in the build — rule scopes key off this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/` minus binaries): production code.
    Lib,
    /// Binary source (`src/bin/`, `src/main.rs`): CLI shells.
    Bin,
    /// Integration tests (`tests/`).
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
    /// Build scripts (`build.rs`).
    Build,
}

/// One source line in its masked views.
#[derive(Debug)]
pub struct Line {
    /// The verbatim line (fingerprints, messages).
    pub raw: String,
    /// String/char contents blanked, comments removed.
    pub code: String,
    /// String contents kept, comments removed.
    pub text: String,
    /// Comment content (without the `//` / `/*` markers).
    pub comment: String,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A scanned file, ready for the rules.
#[derive(Debug)]
pub struct ScannedFile {
    /// Path relative to the repo root, `/`-separated.
    pub path: String,
    pub kind: FileKind,
    pub lines: Vec<Line>,
}

/// Classifies a repo-relative path.
pub fn classify(rel: &str) -> FileKind {
    if rel.ends_with("build.rs") {
        FileKind::Build
    } else if rel.contains("/tests/") {
        FileKind::Test
    } else if rel.contains("/benches/") {
        FileKind::Bench
    } else if rel.contains("/examples/") || rel.starts_with("examples/") {
        FileKind::Example
    } else if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nested depth.
    BlockComment(u32),
    Str,
    /// Number of `#` in the delimiter.
    RawStr(u32),
    CharLit,
}

/// Scans one source text into masked lines.
pub fn scan(path: &str, src: &str) -> ScannedFile {
    let kind = classify(path);
    let mut lines = Vec::new();
    let mut state = State::Code;
    let (mut code, mut text, mut comment) = (String::new(), String::new(), String::new());

    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i <= chars.len() {
        let c = if i < chars.len() { chars[i] } else { '\n' }; // flush a last unterminated line
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            if i < chars.len() || !code.is_empty() || !text.is_empty() || !comment.is_empty() {
                lines.push(Line {
                    raw: String::new(), // filled from src below
                    code: std::mem::take(&mut code),
                    text: std::mem::take(&mut text),
                    comment: std::mem::take(&mut comment),
                    in_test: false,
                });
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    code.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    // Possible raw-string / byte-string opener: r", r#",
                    // br", b"... Look ahead for [b] r? #* ".
                    let mut j = i;
                    if chars.get(j) == Some(&'b') {
                        j += 1;
                    }
                    let raw = chars.get(j) == Some(&'r');
                    if raw {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (raw || hashes == 0) {
                        state = if raw {
                            State::RawStr(hashes)
                        } else {
                            State::Str
                        };
                        code.push('"');
                        i = j + 1;
                    } else {
                        code.push(c);
                        text.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: 'x' / '\n' are literals,
                    // 'a (no closing quote right after) is a lifetime.
                    if next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\'')) {
                        state = State::CharLit;
                        code.push(' ');
                        i += 1;
                    } else {
                        code.push('\'');
                        text.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    text.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(d) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(d + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if d == 1 {
                        State::Code
                    } else {
                        State::BlockComment(d - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' && chars.get(i + 1) == Some(&'\n') {
                    // Line-continuation escape: leave the newline for the
                    // top-level handler so line alignment is preserved.
                    i += 1;
                } else if c == '\\' {
                    // Keep escapes out of the masked views entirely (\"
                    // must not close the string, \\ must not escape it).
                    text.push(' ');
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    code.push('"');
                    i += 1;
                } else {
                    text.push(c);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        state = State::Code;
                        code.push('"');
                        i += 1 + hashes as usize;
                    } else {
                        text.push(c);
                        i += 1;
                    }
                } else {
                    text.push(c);
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }

    // Attach raw lines and mark #[cfg(test)] regions.
    for (line, raw) in lines.iter_mut().zip(src.lines()) {
        line.raw = raw.to_owned();
    }
    mark_test_regions(&mut lines);

    ScannedFile {
        path: path.to_owned(),
        kind,
        lines,
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Marks every line inside a `#[cfg(test)] { … }` region (attribute
/// line through the matching close brace) by walking brace depth over
/// the masked code view.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    // Depth at which the innermost active test region opened.
    let mut region_open_depth: Option<i64> = None;
    // A cfg(test) attribute was seen; the next `{` opens the region.
    let mut pending = false;
    for line in lines.iter_mut() {
        let is_cfg_test =
            line.code.contains("#[cfg(test)]") || line.code.contains("#[cfg(all(test");
        if is_cfg_test && region_open_depth.is_none() {
            pending = true;
        }
        let starts_in_region = region_open_depth.is_some() || pending;
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        region_open_depth = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(open) = region_open_depth {
                        if depth <= open {
                            region_open_depth = None;
                        }
                    }
                }
                // The attribute landed on a braceless item
                // (`#[cfg(test)] use …;`): region never opens.
                ';' if pending => pending = false,
                _ => {}
            }
        }
        line.in_test = starts_in_region || region_open_depth.is_some() || pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Line {
        let mut f = scan("crates/x/src/lib.rs", src);
        f.lines.remove(0)
    }

    #[test]
    fn strings_are_blanked_in_code_kept_in_text() {
        let l = one(r#"let s = "panic!(.unwrap())"; s.len();"#);
        assert!(!l.code.contains("panic!"), "code: {}", l.code);
        assert!(!l.code.contains(".unwrap()"));
        assert!(l.code.contains("s.len()"));
        assert!(l.text.contains("panic!(.unwrap())"));
    }

    #[test]
    fn escaped_quotes_do_not_close_strings() {
        let l = one(r#"let s = "a\"b.unwrap()\"c"; x();"#);
        assert!(!l.code.contains("unwrap"), "code: {}", l.code);
        assert!(l.code.contains("x()"));
    }

    #[test]
    fn raw_strings_mask_across_hash_levels() {
        let l = one(r###"let s = r#"has "quotes" and .unwrap()"#; y();"###);
        assert!(!l.code.contains("unwrap"), "code: {}", l.code);
        assert!(l.code.contains("y()"));
        assert!(l.text.contains(".unwrap()"));
    }

    #[test]
    fn comments_go_to_the_comment_view() {
        let l = one("foo(); // SAFETY: .unwrap() is fine here");
        assert!(l.code.contains("foo()"));
        assert!(!l.code.contains("unwrap"));
        assert!(l.comment.contains("SAFETY:"));
        assert!(l.comment.contains(".unwrap()"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = scan(
            "crates/x/src/lib.rs",
            "a(); /* outer /* inner.unwrap() */\nstill comment */ b();",
        );
        assert!(f.lines[0].code.contains("a()"));
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains("inner.unwrap()"));
        assert!(f.lines[1].code.contains("b()"));
        assert!(f.lines[1].comment.contains("still comment"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        // '{' must not unbalance braces; 'a> is a lifetime, not a char.
        let l = one("fn f<'a>(x: &'a str) { m('{'); }");
        assert_eq!(l.code.matches('{').count(), 1, "code: {}", l.code);
        assert!(l.code.contains("<'a>"));
        let l = one(r"let c = '\n'; g();");
        assert!(l.code.contains("g()"));
        assert!(!l.code.contains('n') || !l.code.contains(r"\n"));
    }

    #[test]
    fn byte_strings_are_masked() {
        let l = one(r#"w.write_all(b"{\"a\": [1,2]}"); z();"#);
        assert!(!l.code.contains('['), "code: {}", l.code);
        assert!(l.code.contains("z()"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "\
pub fn prod() { real(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}

pub fn also_prod() {}
";
        let f = scan("crates/x/src/lib.rs", src);
        let by_content = |needle: &str| {
            f.lines
                .iter()
                .find(|l| l.raw.contains(needle))
                .unwrap_or_else(|| panic!("line with {needle:?}"))
        };
        assert!(!by_content("prod()").in_test);
        assert!(by_content("#[cfg(test)]").in_test);
        assert!(by_content("mod tests").in_test);
        assert!(by_content("unwrap").in_test);
        assert!(!by_content("also_prod").in_test);
    }

    #[test]
    fn multi_hash_raw_strings_need_matching_hash_count() {
        // r##"…"## only closes on "##: an embedded "# must not end it.
        let f = scan(
            "crates/x/src/lib.rs",
            "let s = r##\"inner \"# still.unwrap() inside\"##; after();",
        );
        let l = &f.lines[0];
        assert!(!l.code.contains("unwrap"), "code: {}", l.code);
        assert!(l.code.contains("after()"), "code: {}", l.code);
        assert!(l.text.contains("still.unwrap() inside"));
        // And an unterminated one keeps masking across lines.
        let f = scan(
            "crates/x/src/lib.rs",
            "let s = r##\"line one.unwrap()\nline two\"# not yet\nreally done\"##; tail();",
        );
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(!f.lines[1].code.contains("not yet"));
        assert!(
            f.lines[2].code.contains("tail()"),
            "code: {}",
            f.lines[2].code
        );
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        // A lifetime bound ('a:) and a char literal ('a') on one line:
        // the literal is masked, the lifetime is kept, and the quote of
        // the literal must not swallow the rest of the line.
        let l = one("fn f<'a, T: 'a>(x: &'a T) { if c == 'a' { g(); } }");
        assert!(l.code.contains("<'a, T: 'a>"), "code: {}", l.code);
        assert!(l.code.contains("g()"), "code: {}", l.code);
        // Static lifetime next to a char literal holding a quote.
        let l = one("fn h(x: &'static str, q: char) { m('\\''); n(); }");
        assert!(l.code.contains("&'static str"), "code: {}", l.code);
        assert!(l.code.contains("n()"), "code: {}", l.code);
    }

    #[test]
    fn cfg_test_regions_nested_in_macro_bodies() {
        // The test region tracker is brace-depth based; a #[cfg(test)]
        // region opened *inside* a macro body must close with the
        // macro-body brace it attached to, not leak to file end.
        let src = "\
macro_rules! gen {
    () => {
        #[cfg(test)]
        mod tests {
            fn t() { x.unwrap(); }
        }
        pub fn generated() { real(); }
    };
}

pub fn after_macro() { also_real(); }
";
        let f = scan("crates/x/src/lib.rs", src);
        let by_content = |needle: &str| {
            f.lines
                .iter()
                .find(|l| l.raw.contains(needle))
                .unwrap_or_else(|| panic!("line with {needle:?}"))
        };
        assert!(by_content("unwrap").in_test);
        assert!(
            !by_content("generated()").in_test,
            "region leaked past its braces"
        );
        assert!(!by_content("after_macro").in_test);
    }

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/server/src/json.rs"), FileKind::Lib);
        assert_eq!(
            classify("crates/server/src/bin/quonto_server.rs"),
            FileKind::Bin
        );
        assert_eq!(classify("crates/xtask/src/main.rs"), FileKind::Bin);
        assert_eq!(classify("crates/server/tests/overload.rs"), FileKind::Test);
        assert_eq!(
            classify("crates/bench/benches/closure_parallel.rs"),
            FileKind::Bench
        );
        assert_eq!(classify("examples/obda_server.rs"), FileKind::Example);
        assert_eq!(classify("crates/x/build.rs"), FileKind::Build);
    }
}
