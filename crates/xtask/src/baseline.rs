//! The committed lint baseline.
//!
//! Policy: the baseline exists so a *new* rule can land before every
//! historical violation is fixed — it is a ratchet, not a parking lot.
//! This PR fixed (or explicitly `lint: allow`ed) every violation it
//! found, so the committed file is empty, and CI keeps it that way: a
//! new finding either gets fixed, gets a reasoned `allow`, or fails the
//! build. `--update-baseline` rewrites the file from the current
//! findings when a genuinely staged migration needs it.
//!
//! Entries are fingerprints (`rule|path|hash-of-trimmed-line`), not
//! line numbers, so baselined findings survive unrelated edits.

use std::collections::BTreeSet;
use std::path::Path;

const HEADER: &str = "\
# xtask lint baseline — one fingerprint per tolerated finding.
# Regenerate with: cargo run -p xtask -- lint --update-baseline
# Policy: keep this file empty; prefer fixing or `lint: allow(rule, \"reason\")`.
";

/// Loads the baseline fingerprints (empty set if the file is absent).
pub fn load(path: &Path) -> BTreeSet<String> {
    std::fs::read_to_string(path)
        .map(|s| {
            s.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_owned)
                .collect()
        })
        .unwrap_or_default()
}

/// Writes the baseline file from a set of fingerprints.
pub fn save(path: &Path, fingerprints: &BTreeSet<String>) -> std::io::Result<()> {
    let mut out = String::from(HEADER);
    for fp in fingerprints {
        out.push_str(fp);
        out.push('\n');
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("xtask-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.txt");
        let mut fps = BTreeSet::new();
        fps.insert("R1.unwrap|crates/x/src/lib.rs|123456".to_owned());
        save(&path, &fps).unwrap();
        assert_eq!(load(&path), fps);
        // Comments and blanks are ignored.
        let loaded = load(&path);
        assert!(!loaded.iter().any(|l| l.starts_with('#')));
        std::fs::remove_file(&path).unwrap();
        assert!(load(&path).is_empty());
    }
}
