//! Item-level structure and call-graph extraction for `xtask analyze`.
//!
//! Still not a parser: a second, *structural* pass over the masked
//! views the [`crate::scanner`] produces. It recovers just enough shape
//! for whole-workspace reasoning — impl blocks, `fn` boundaries, call
//! sites, and lock acquisitions through the `quonto::sync` helpers —
//! and threads a *held-lock set* through every function body in source
//! order. The three analyses in [`crate::analyze`] then run on the
//! resulting [`Workspace`] graph.
//!
//! ## Lock identity
//!
//! An acquisition on a `self` field is qualified by the surrounding
//! impl type (`AboxSystem.rewrite_cache`), so same-named fields on
//! different structs (`JobQueue.inner` vs `TraceRing.inner`) never
//! alias. An acquisition on a bare identifier (a `&Mutex<…>` function
//! parameter, e.g. `maintain_memo(memo, …)`) keeps the parameter name:
//! all call sites of that helper share one conservative node, and the
//! analysis does not map caller arguments onto parameters. This is a
//! deliberate, documented false-negative boundary (DESIGN § "Static
//! analysis & concurrency correctness").
//!
//! ## Guard lifetimes
//!
//! * `let g = lock_or_recover(&self.x);` — `g` is live until
//!   `drop(g)` or the close of the block it was declared in (the same
//!   model rule R2 uses).
//! * `lock_or_recover(&self.x).field` with no binder — a *temporary*
//!   guard, held until the next `;` at its depth or the close of its
//!   enclosing block. Struct-literal fields are separated by commas,
//!   so a temporary born inside a literal stays held across the other
//!   field initializers — exactly the shape of the PR 5
//!   `AboxSystem::stats` self-deadlock.
//!
//! ## Known false negatives
//!
//! Closure bodies are attributed to the *defining* function with the
//! held set at the definition site (locks taken by the callee around
//! the closure, e.g. `with_data`, are invisible inside it); implicit
//! `Drop::drop` calls are not edges; argument-to-parameter lock
//! aliasing is not tracked. The analysis is tuned to be useful at zero
//! findings, not complete.

use std::collections::{BTreeMap, BTreeSet};

use crate::scanner::{FileKind, ScannedFile};

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.m(…)` — a method of the surrounding impl type.
    SelfMethod,
    /// `Type::m(…)` (with `Self::` resolved to the impl type).
    Typed(String),
    /// `expr.m(…)` on an arbitrary receiver.
    Method,
    /// Bare `m(…)`.
    Free,
}

/// One lock acquisition or call site, in source order, annotated with
/// the set of (qualified) locks held *before* it executes.
#[derive(Debug, Clone)]
pub enum Event {
    Acquire {
        /// Qualified lock name (`Type.field` or a bare parameter name).
        lock: String,
        /// 1-based line of the acquisition.
        line: usize,
        held: Vec<String>,
    },
    Call {
        recv: Recv,
        method: String,
        line: usize,
        held: Vec<String>,
    },
}

/// One function body, parsed into its event stream.
#[derive(Debug)]
pub struct FnInfo {
    /// `Type::name` for methods, `name` for free functions.
    pub qname: String,
    /// Bare function name.
    pub name: String,
    /// Surrounding `impl`/`trait` type, if any.
    pub impl_type: Option<String>,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    pub events: Vec<Event>,
    /// Lines that bump a data version / epoch
    /// (`version += 1`, `…version.fetch_add(`).
    pub bump_lines: Vec<usize>,
    /// Lines with a `ViewMemo` patch-or-invalidate action
    /// (`maintain_memo(…)`, `maintain_merged_memo(…)`, or a
    /// `.clear()` on a line naming a memo).
    pub memo_lines: Vec<usize>,
    /// Lines that apply a delta to the backing store
    /// (`apply_to_store(…)` call sites).
    pub store_lines: Vec<usize>,
}

/// The whole-workspace graph: every parsed function plus name indices
/// used for call resolution.
#[derive(Debug, Default)]
pub struct Workspace {
    pub fns: Vec<FnInfo>,
    /// `Type::name` → index into `fns`.
    by_qname: BTreeMap<String, usize>,
    /// method name → indices (methods only).
    methods: BTreeMap<String, Vec<usize>>,
    /// free-fn name → indices.
    free: BTreeMap<String, Vec<usize>>,
}

/// Method names too generic to resolve by name alone: they collide
/// with std containers and would wire `vec.push(…)` to
/// `TraceRing::push`. Calls on these through an *unknown* receiver are
/// left unresolved (calls through `self.` or `Type::` still resolve).
const AMBIENT_METHODS: &[&str] = &[
    "add",
    "all",
    "any",
    "as_mut",
    "as_ref",
    "as_str",
    "clear",
    "clone",
    "collect",
    "contains",
    "contains_key",
    "count",
    "dedup",
    "drain",
    "drop",
    "entry",
    "extend",
    "filter",
    "find",
    "finish",
    "first",
    "flush",
    "fold",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "join",
    "keys",
    "last",
    "len",
    "load",
    "lock",
    "map",
    "max",
    "min",
    "new",
    "next",
    "cmp",
    "default",
    "emit",
    "eq",
    "fmt",
    "from",
    "hash",
    "into",
    "parse",
    "pop",
    "pop_front",
    "position",
    "push",
    "push_back",
    "push_front",
    "read",
    "record",
    "recv",
    "remove",
    "reset",
    "retain",
    "rev",
    "run",
    "send",
    "sort",
    "sort_by",
    "split",
    "store",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "trim",
    "values",
    "write",
    "zip",
];

/// Keywords and intrinsics that look like call sites but are not.
const NON_CALLS: &[&str] = &[
    "as",
    "box",
    "crate",
    "dyn",
    "else",
    "fn",
    "for",
    "if",
    "impl",
    "in",
    "let",
    "loop",
    "match",
    "move",
    "mut",
    "pub",
    "ref",
    "return",
    "self",
    "super",
    "unsafe",
    "use",
    "where",
    "while",
    "Self",
    "Some",
    "Ok",
    "Err",
    "None",
    "Box",
    "Vec",
    "String",
    "Arc",
    "Rc",
    "drop",
    "lock_or_recover",
    "read_or_recover",
    "write_or_recover",
    "wait_timeout_or_recover",
];

/// The `quonto::sync` acquisition operators (the one condvar wait
/// helper *re*-acquires a guard it was given and is not an
/// acquisition).
const ACQUIRE_OPS: &[&str] = &["lock_or_recover(", "read_or_recover(", "write_or_recover("];

impl Workspace {
    /// Parses every production source (`Lib`/`Bin`, the analyzer's own
    /// crate and the `quonto::sync` helper module excluded) into the
    /// call graph.
    pub fn build(files: &[ScannedFile]) -> Workspace {
        let mut ws = Workspace::default();
        for f in files {
            if !matches!(f.kind, FileKind::Lib | FileKind::Bin) {
                continue;
            }
            // The analyzer's sources talk *about* the patterns it
            // detects; the sync module is the acquisition operator
            // itself, not a lock user.
            if f.path.starts_with("crates/xtask/") || f.path == "crates/core/src/sync.rs" {
                continue;
            }
            parse_file(f, &mut ws.fns);
        }
        for (i, f) in ws.fns.iter().enumerate() {
            ws.by_qname.insert(f.qname.clone(), i);
            if f.impl_type.is_some() {
                ws.methods.entry(f.name.clone()).or_default().push(i);
            } else {
                ws.free.entry(f.name.clone()).or_default().push(i);
            }
        }
        ws
    }

    /// Resolves one call event to a workspace function, if it can be
    /// done unambiguously.
    pub fn resolve(&self, caller: &FnInfo, recv: &Recv, method: &str) -> Option<usize> {
        match recv {
            Recv::SelfMethod => {
                let t = caller.impl_type.as_deref()?;
                self.by_qname.get(&format!("{t}::{method}")).copied()
            }
            Recv::Typed(t) => {
                let t = if t == "Self" {
                    caller.impl_type.as_deref()?
                } else {
                    t.as_str()
                };
                self.by_qname.get(&format!("{t}::{method}")).copied()
            }
            Recv::Method => {
                if AMBIENT_METHODS.contains(&method) {
                    return None;
                }
                match self.methods.get(method).map(Vec::as_slice) {
                    Some([one]) => Some(*one),
                    _ => None, // absent or ambiguous
                }
            }
            Recv::Free => match self.free.get(method).map(Vec::as_slice) {
                Some([one]) => Some(*one),
                _ => None,
            },
        }
    }

    /// Per-function resolved callee index lists (parallel to `fns`).
    pub fn callees(&self) -> Vec<Vec<usize>> {
        self.fns
            .iter()
            .map(|f| {
                let mut out: Vec<usize> = f
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        Event::Call { recv, method, .. } => self.resolve(f, recv, method),
                        Event::Acquire { .. } => None,
                    })
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect()
    }

    /// Transitive acquired-lock sets per function: a fixpoint of
    /// `locks(f) = direct(f) ∪ ⋃ locks(callee)`.
    pub fn transitive_locks(&self, callees: &[Vec<usize>]) -> Vec<BTreeSet<String>> {
        let mut locks: Vec<BTreeSet<String>> = self
            .fns
            .iter()
            .map(|f| {
                f.events
                    .iter()
                    .filter_map(|e| match e {
                        Event::Acquire { lock, .. } => Some(lock.clone()),
                        Event::Call { .. } => None,
                    })
                    .collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                for &c in &callees[i] {
                    if c == i {
                        continue;
                    }
                    let add: Vec<String> = locks[c].difference(&locks[i]).cloned().collect();
                    if !add.is_empty() {
                        locks[i].extend(add);
                        changed = true;
                    }
                }
            }
            if !changed {
                return locks;
            }
        }
    }

    /// Shortest call path (as qnames) from `from` to a function that
    /// *directly* acquires `lock`; `[]` if `from` itself does.
    pub fn path_to_lock(&self, callees: &[Vec<usize>], from: usize, lock: &str) -> Vec<String> {
        let direct = |i: usize| {
            self.fns[i]
                .events
                .iter()
                .any(|e| matches!(e, Event::Acquire { lock: l, .. } if l == lock))
        };
        if direct(from) {
            return Vec::new();
        }
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        let mut seen = BTreeSet::from([from]);
        while let Some(i) = queue.pop_front() {
            for &c in &callees[i] {
                if !seen.insert(c) {
                    continue;
                }
                prev.insert(c, i);
                if direct(c) {
                    let mut path = vec![self.fns[c].qname.clone()];
                    let mut at = c;
                    while let Some(&p) = prev.get(&at) {
                        if p == from {
                            break;
                        }
                        path.push(self.fns[p].qname.clone());
                        at = p;
                    }
                    path.reverse();
                    return path;
                }
                queue.push_back(c);
            }
        }
        Vec::new()
    }
}

/// A live `let`-bound guard (R2's model) during body parsing.
struct Guard {
    var: String,
    lock: String,
    depth: i64,
}

/// A temporary guard: no binder, dies at the next statement end.
struct Temp {
    lock: String,
    depth: i64,
}

struct Body {
    info: FnInfo,
    /// Brace depth at which the body opened (the body's `{` is the
    /// transition from this depth to `open_depth + 1`).
    open_depth: i64,
    guards: Vec<Guard>,
    temps: Vec<Temp>,
}

impl Body {
    fn held(&self) -> Vec<String> {
        let mut h: Vec<String> = self
            .guards
            .iter()
            .map(|g| g.lock.clone())
            .chain(self.temps.iter().map(|t| t.lock.clone()))
            .collect();
        h.sort();
        h.dedup();
        h
    }
}

fn parse_file(file: &ScannedFile, out: &mut Vec<FnInfo>) {
    let mut depth: i64 = 0;
    // (type name, depth at the `impl` keyword); impls never nest.
    let mut impl_block: Option<(String, i64)> = None;
    let mut pending_impl: Option<String> = None;
    // A `fn` signature seen, body `{` not yet.
    let mut pending_fn: Option<FnInfo> = None;
    let mut body: Option<Body> = None;

    for (idx, l) in file.lines.iter().enumerate() {
        if l.in_test {
            // Test regions contribute no items or events, but their
            // braces still count: depth must stay consistent for any
            // production code after the region.
            for c in l.code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            continue;
        }
        let line_no = idx + 1;
        let code = &l.code;
        let trimmed = code.trim_start();

        if body.is_none() && pending_fn.is_none() {
            if let Some(t) = impl_header(trimmed) {
                if code.contains('{') {
                    impl_block = Some((t, depth));
                } else {
                    pending_impl = Some(t);
                }
            }
        }
        if body.is_none() {
            if let Some(name) = fn_header(trimmed) {
                let impl_type = impl_block.as_ref().map(|(t, _)| t.clone());
                let qname = match &impl_type {
                    Some(t) => format!("{t}::{name}"),
                    None => name.clone(),
                };
                pending_fn = Some(FnInfo {
                    qname,
                    name,
                    impl_type,
                    file: file.path.clone(),
                    line: line_no,
                    events: Vec::new(),
                    bump_lines: Vec::new(),
                    memo_lines: Vec::new(),
                    store_lines: Vec::new(),
                });
            }
        }

        // Walk the line positionally so same-line ordering of braces,
        // acquisitions, calls, and statement ends is respected.
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            match c {
                '{' => {
                    if let Some(info) = pending_fn.take() {
                        body = Some(Body {
                            info,
                            open_depth: depth,
                            guards: Vec::new(),
                            temps: Vec::new(),
                        });
                    } else if let Some(t) = pending_impl.take() {
                        impl_block = Some((t, depth));
                    }
                    depth += 1;
                    i += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(b) = &mut body {
                        b.guards.retain(|g| g.depth <= depth);
                        b.temps.retain(|t| t.depth <= depth);
                        if depth == b.open_depth {
                            let done = body.take().map(|b| b.info);
                            out.extend(done);
                        }
                    }
                    if let Some((_, d)) = &impl_block {
                        if depth <= *d {
                            impl_block = None;
                        }
                    }
                    i += 1;
                }
                ';' => {
                    if let Some(b) = &mut body {
                        b.temps.retain(|t| t.depth < depth);
                    }
                    // A `;` before any `{` ends a bodyless declaration
                    // (trait method signature, extern fn).
                    pending_fn = None;
                    pending_impl = None;
                    i += 1;
                }
                c if c.is_alphabetic() || c == '_' => {
                    let start = i;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    let word: String = chars[start..i].iter().collect();
                    let rest: String = chars[i..].iter().collect();
                    if let Some(b) = &mut body {
                        handle_word(b, &word, start, i, &rest, &chars, code, line_no, depth);
                    }
                }
                _ => i += 1,
            }
        }
    }
    // Unterminated file (should not happen on rustc-clean sources):
    // keep what was parsed.
    out.extend(body.take().map(|b| b.info));
}

/// Dispatches one identifier occurrence inside a function body:
/// acquisition operators, `drop(g)`, version bumps, memo/store tokens,
/// and call sites.
#[allow(clippy::too_many_arguments)]
fn handle_word(
    b: &mut Body,
    word: &str,
    start: usize,
    end: usize,
    rest: &str,
    chars: &[char],
    code: &str,
    line_no: usize,
    depth: i64,
) {
    let next = rest.chars().next();
    let followed_by_paren = next == Some('(');

    // Acquisition operators.
    if followed_by_paren
        && ACQUIRE_OPS
            .iter()
            .any(|op| op.trim_end_matches('(') == word)
    {
        let args = &rest[1..];
        let recv: String = args
            .chars()
            .take_while(|c| *c != ')' && *c != ',')
            .collect();
        let lock = qualify_lock(
            recv.trim().trim_start_matches('&'),
            b.info.impl_type.as_deref(),
        );
        if let Some(lock) = lock {
            b.info.events.push(Event::Acquire {
                lock: lock.clone(),
                line: line_no,
                held: b.held(),
            });
            // Binder shape: a `let g = <acquire>(…);` line (closing
            // paren not chained into a field/method access) births a
            // live guard; anything else is a temporary.
            let after_close = args
                .find(')')
                .and_then(|p| args[p + 1..].chars().find(|c| !c.is_whitespace()));
            let chained = matches!(after_close, Some('.') | Some('?'));
            let binder = code
                .trim_start()
                .strip_prefix("let ")
                .map(|r| {
                    let r = r.strip_prefix("mut ").unwrap_or(r);
                    r.chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect::<String>()
                })
                .filter(|v| !v.is_empty());
            match (&binder, chained) {
                (Some(var), false) => b.guards.push(Guard {
                    var: var.clone(),
                    lock,
                    depth,
                }),
                _ => b.temps.push(Temp { lock, depth }),
            }
        }
        return;
    }

    // `drop(g)` kills the named guard.
    if word == "drop" && followed_by_paren {
        let arg: String = rest[1..]
            .chars()
            .take_while(|c| *c != ')')
            .collect::<String>()
            .trim()
            .to_owned();
        b.guards.retain(|g| g.var != arg);
        return;
    }

    // `.lock()` on a receiver (rare; R2 separately polices unwraps).
    if word == "lock" && rest.starts_with("()") && start > 0 && chars[start - 1] == '.' {
        let recv_end = start - 1;
        let recv_start = (0..recv_end)
            .rev()
            .take_while(|&k| chars[k].is_alphanumeric() || chars[k] == '_' || chars[k] == '.')
            .last()
            .unwrap_or(recv_end);
        let recv: String = chars[recv_start..recv_end].iter().collect();
        if let Some(lock) = qualify_lock(&recv, b.info.impl_type.as_deref()) {
            b.info.events.push(Event::Acquire {
                lock: lock.clone(),
                line: line_no,
                held: b.held(),
            });
            b.temps.push(Temp { lock, depth });
        }
        return;
    }

    // Version bumps: `…version += 1` / `…version.fetch_add(`.
    if word.ends_with("version") {
        let bump = rest.trim_start().starts_with("+= 1")
            || rest.starts_with(".fetch_add(")
            || rest.trim_start().starts_with("= ") && rest.contains("+ 1");
        if bump && !b.info.bump_lines.contains(&line_no) {
            b.info.bump_lines.push(line_no);
        }
    }

    // Memo actions and store applications (token-level, for A3).
    if followed_by_paren && (word == "maintain_memo" || word == "maintain_merged_memo") {
        b.info.memo_lines.push(line_no);
        // fall through: also a call site, resolved below.
    }
    if word == "clear"
        && followed_by_paren
        && code.contains("memo")
        && !b.info.memo_lines.contains(&line_no)
    {
        b.info.memo_lines.push(line_no);
        return;
    }
    if word == "apply_to_store" && followed_by_paren {
        b.info.store_lines.push(line_no);
        // fall through to the call site below.
    }

    // Call sites. Skip macros (`name!(…)`) and non-calls.
    if !followed_by_paren || NON_CALLS.contains(&word) {
        return;
    }
    if start > 0 && chars[start - 1] == '!' {
        return;
    }
    let recv = if start >= 2 && chars[start - 2] == ':' && chars[start - 1] == ':' {
        // `Seg::name(` — walk back over the path segment.
        let seg_end = start - 2;
        let seg_start = (0..seg_end)
            .rev()
            .take_while(|&k| chars[k].is_alphanumeric() || chars[k] == '_')
            .last()
            .unwrap_or(seg_end);
        let seg: String = chars[seg_start..seg_end].iter().collect();
        if seg.chars().next().is_some_and(char::is_uppercase) {
            Recv::Typed(seg)
        } else {
            // Module path (`delta::maintain_memo(`): resolve by name.
            Recv::Free
        }
    } else if start > 0 && chars[start - 1] == '.' {
        let before: String = chars[..start - 1].iter().collect();
        if before.ends_with("self") && !before.ends_with("_self") {
            Recv::SelfMethod
        } else {
            Recv::Method
        }
    } else {
        Recv::Free
    };
    let _ = end;
    b.info.events.push(Event::Call {
        recv,
        method: word.to_owned(),
        line: line_no,
        held: b.held(),
    });
}

/// Qualifies an acquisition receiver into a lock identity:
/// `self.rewrite_cache` → `Type.rewrite_cache`; a bare name (fn
/// parameter) stays as-is; anything else (nested field paths on
/// non-self receivers) takes the final field name.
fn qualify_lock(recv: &str, impl_type: Option<&str>) -> Option<String> {
    let recv = recv.trim();
    if recv.is_empty() {
        return None;
    }
    if let Some(field) = recv.strip_prefix("self.") {
        let t = impl_type.unwrap_or("?");
        return Some(format!("{t}.{field}"));
    }
    recv.rsplit('.')
        .next()
        .map(str::to_owned)
        .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_'))
}

/// `impl Foo {` / `impl Trait for Foo<'_> {` / `pub trait Foo {` →
/// the implementing (or trait) type name.
fn impl_header(trimmed: &str) -> Option<String> {
    let rest = if let Some(r) = trimmed.strip_prefix("impl") {
        r
    } else {
        let r = trimmed
            .strip_prefix("pub trait ")
            .or_else(|| trimmed.strip_prefix("trait "))?;
        return Some(type_name(r));
    };
    // `impl<...>` generics or `impl ` — anything else (`impl_x`) is not
    // the keyword.
    let rest = match rest.chars().next() {
        Some('<') => skip_generics(rest),
        Some(' ') => rest,
        _ => return None,
    };
    let rest = rest.trim_start();
    let rest = match rest.find(" for ") {
        Some(p) => &rest[p + 5..],
        None => rest,
    };
    Some(type_name(rest))
}

/// First path segment of a type expression, generics stripped.
fn type_name(s: &str) -> String {
    let s = s.trim_start();
    let end = s
        .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(s.len());
    s[..end].rsplit("::").next().unwrap_or("").to_owned()
}

/// Balanced-`<>` skip for `impl<...>`.
fn skip_generics(s: &str) -> &str {
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return &s[i + 1..];
                }
            }
            _ => {}
        }
    }
    s
}

/// `pub(crate) fn name(` → `name`, for lines that carry a fn header.
fn fn_header(trimmed: &str) -> Option<String> {
    let mut rest = trimmed;
    // Strip qualifiers; `const fn` / `pub(crate) fn` / `unsafe fn`.
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix("pub") {
            rest = match r.strip_prefix('(') {
                Some(after) => after.split_once(')').map(|(_, t)| t)?,
                None if r.starts_with(' ') => r,
                _ => return None,
            };
        } else if let Some(r) = rest
            .strip_prefix("const ")
            .or_else(|| rest.strip_prefix("unsafe "))
            .or_else(|| rest.strip_prefix("extern "))
            .or_else(|| rest.strip_prefix("async "))
        {
            rest = r;
        } else {
            break;
        }
    }
    let r = rest.strip_prefix("fn ")?;
    let name: String = r
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn ws_of(src: &str) -> Workspace {
        Workspace::build(&[scan("crates/obda/src/fixture.rs", src)])
    }

    #[test]
    fn fn_and_impl_headers() {
        assert_eq!(fn_header("pub fn stats(&self) {"), Some("stats".into()));
        assert_eq!(fn_header("pub(crate) fn go() {"), Some("go".into()));
        assert_eq!(fn_header("const fn k() -> u32 {"), Some("k".into()));
        assert_eq!(fn_header("let x = f();"), None);
        assert_eq!(impl_header("impl AboxSystem {"), Some("AboxSystem".into()));
        assert_eq!(
            impl_header("impl QueryEngine for ShardedAboxSystem {"),
            Some("ShardedAboxSystem".into())
        );
        assert_eq!(
            impl_header("impl<'a> Iterator for RowIter<'a> {"),
            Some("RowIter".into())
        );
        assert_eq!(impl_header("implicit()"), None);
    }

    #[test]
    fn acquisitions_are_qualified_by_impl_type() {
        let ws = ws_of(
            "\
impl AboxSystem {
    fn with_data(&self) {
        let d = read_or_recover(&self.data);
        use_it(&d);
    }
}
",
        );
        let f = &ws.fns[0];
        assert_eq!(f.qname, "AboxSystem::with_data");
        let Event::Acquire { lock, held, .. } = &f.events[0] else {
            panic!("first event must be the acquisition: {:?}", f.events);
        };
        assert_eq!(lock, "AboxSystem.data");
        assert!(held.is_empty());
        let Event::Call { method, held, .. } = &f.events[1] else {
            panic!("second event must be the call: {:?}", f.events);
        };
        assert_eq!(method, "use_it");
        assert_eq!(held, &vec!["AboxSystem.data".to_owned()]);
    }

    #[test]
    fn temporaries_die_at_statement_end_but_span_struct_literals() {
        let ws = ws_of(
            "\
impl S {
    fn stats(&self) -> T {
        let epoch = lock_or_recover(&self.cache).epoch;
        after(epoch);
        T {
            a: lock_or_recover(&self.cache).stats,
            b: self.helper(),
        }
    }
}
",
        );
        let f = &ws.fns[0];
        // `after` runs with nothing held: the chained temp died at `;`.
        let held_of = |m: &str| {
            f.events
                .iter()
                .find_map(|e| match e {
                    Event::Call { method, held, .. } if method == m => Some(held.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("no call {m}: {:?}", f.events))
        };
        assert!(held_of("after").is_empty());
        // `helper` runs inside the literal with the temp still held.
        assert_eq!(held_of("helper"), vec!["S.cache".to_owned()]);
    }

    #[test]
    fn let_guards_live_to_block_close_or_drop() {
        let ws = ws_of(
            "\
impl S {
    fn f(&self) {
        let g = lock_or_recover(&self.inner);
        inside(&g);
        drop(g);
        outside();
        {
            let h = lock_or_recover(&self.inner);
            scoped(&h);
        }
        free();
    }
}
",
        );
        let f = &ws.fns[0];
        let held_of = |m: &str| {
            f.events
                .iter()
                .find_map(|e| match e {
                    Event::Call { method, held, .. } if method == m => Some(held.clone()),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(held_of("inside"), vec!["S.inner".to_owned()]);
        assert!(held_of("outside").is_empty());
        assert_eq!(held_of("scoped"), vec!["S.inner".to_owned()]);
        assert!(held_of("free").is_empty());
    }

    #[test]
    fn call_resolution_prefers_impl_methods_and_rejects_ambient_names() {
        let ws = ws_of(
            "\
impl S {
    fn a(&self) {
        self.b();
        S::c();
        unique_helper();
        v.push(x);
    }
    fn b(&self) {}
    fn c() {}
    fn push(&self) {}
}
fn unique_helper() {}
",
        );
        let a = ws
            .fns
            .iter()
            .position(|f| f.qname == "S::a")
            .expect("S::a parsed");
        let callees = ws.callees();
        let names: Vec<&str> = callees[a]
            .iter()
            .map(|&i| ws.fns[i].qname.as_str())
            .collect();
        assert!(names.contains(&"S::b"), "{names:?}");
        assert!(names.contains(&"S::c"), "{names:?}");
        assert!(names.contains(&"unique_helper"), "{names:?}");
        // `.push(` is ambient: never resolved through an unknown receiver.
        assert!(!names.contains(&"S::push"), "{names:?}");
    }

    #[test]
    fn transitive_locks_propagate_through_calls() {
        let ws = ws_of(
            "\
impl S {
    fn outer(&self) {
        self.inner_lock();
    }
    fn inner_lock(&self) {
        let g = lock_or_recover(&self.cache);
        let _ = g;
    }
}
",
        );
        let callees = ws.callees();
        let locks = ws.transitive_locks(&callees);
        let outer = ws.fns.iter().position(|f| f.name == "outer").unwrap();
        assert!(locks[outer].contains("S.cache"), "{:?}", locks[outer]);
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let ws = ws_of(
            "\
pub trait QueryEngine {
    fn stats(&self) -> EngineStats;
    fn invalidate(&self);
}
",
        );
        assert!(ws.fns.is_empty(), "{:?}", ws.fns);
    }

    #[test]
    fn version_bumps_memo_and_store_tokens_are_collected() {
        let ws = ws_of(
            "\
impl S {
    fn apply(&self) {
        apply_to_store(&mut d);
        d.version += 1;
        maintain_memo(&self.ndl_memo, epoch);
    }
    fn inval(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
        lock_or_recover(&self.ndl_memo).clear();
    }
}
",
        );
        let apply = &ws.fns[0];
        assert_eq!(apply.store_lines.len(), 1, "{apply:?}");
        assert_eq!(apply.bump_lines.len(), 1);
        assert_eq!(apply.memo_lines.len(), 1);
        let inval = &ws.fns[1];
        assert_eq!(inval.bump_lines.len(), 1, "{inval:?}");
        assert_eq!(inval.memo_lines.len(), 1);
    }
}
