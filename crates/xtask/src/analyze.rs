//! `xtask analyze` — the three whole-workspace graph analyses.
//!
//! Runs on the call graph [`crate::graph`] extracts from the scanner's
//! masked views:
//!
//! * **A1 lock order** — propagates held-lock sets across resolved
//!   call edges and reports same-mutex re-acquisition paths
//!   (`A1.reacquire`, the PR 5 `AboxSystem::stats` self-deadlock
//!   class) and order-inversion cycles between distinct locks
//!   (`A1.inversion`). The order is *derived* from the observed
//!   acquisition edges, not a declared list: any cycle is a finding.
//! * **A2 telemetry drift** — collects every `span!` / `.span("…")` /
//!   `.count("…")` / `registry().counter("…")` / `counter_handle!`
//!   name literal, generates the telemetry-name table embedded in
//!   README/DESIGN between `<!-- quonto-obs:begin/end -->` markers
//!   (`A2.table` when stale), and reports consumer-side counter names
//!   with no producer (`A2.orphan`) and edit-distance-1 near-duplicate
//!   names within a kind (`A2.neardup`).
//! * **A3 invalidation soundness** — every site that bumps a data
//!   version (`version += 1`, `…version.fetch_add(`) must reach, in
//!   the call graph, a `ViewMemo` patch-or-invalidate action
//!   (`A3.unpaired`); conversely a function that applies a delta to
//!   the backing store must reach a version bump (`A3.version`).
//!   These are the PR 8 write-path invariants as a checkable rule.
//!
//! Findings share the `R0` suppression machinery under the
//! `analyze: allow(rule, "reason")` marker; the shipped tree holds at
//! zero findings, enforced by a gating CI job.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::graph::{Event, Workspace};
use crate::rules::{apply_allows_for, collect_allows_for, Finding};
use crate::scanner::{FileKind, ScannedFile};
use crate::{docs, source_files};

/// Analyze rule identifiers with their fix hints (the `A` namespace;
/// `R*` belongs to `xtask lint`).
pub const RULES: &[(&str, &str)] = &[
    (
        "A1.reacquire",
        "this path locks a mutex it already holds — a guaranteed self-deadlock; hoist one acquisition or split the critical section",
    ),
    (
        "A1.inversion",
        "two paths acquire these locks in opposite orders; pick one order and restructure the later-locking path",
    ),
    (
        "A2.table",
        "run `cargo run -p xtask -- obs-docs --write` to refresh the embedded telemetry-name table",
    ),
    (
        "A2.orphan",
        "a consumer reads a telemetry name no producer emits; fix the typo or delete the dead read",
    ),
    (
        "A2.neardup",
        "telemetry names one edit apart are almost always a typo splitting one series in two; unify them",
    ),
    (
        "A3.unpaired",
        "a data-version bump must reach a ViewMemo patch-or-invalidate on the same call path, or queries serve stale extents",
    ),
    (
        "A3.version",
        "applying a delta to the store without bumping the data version leaves epoch-keyed caches claiming freshness",
    ),
    (
        "A0.allow",
        "suppressions are `analyze: allow(rule-id, \"reason\")` and must match a real finding",
    ),
];

fn rule_exists(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

/// A full analyze run.
pub struct AnalyzeReport {
    pub findings: Vec<Finding>,
    /// Source files scanned (docs excluded).
    pub files: usize,
    /// Functions in the call graph.
    pub fns: usize,
    /// Distinct telemetry names collected.
    pub names: usize,
}

/// What a telemetry literal names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TelemetryKind {
    Span,
    SpanCounter,
    Counter,
    Histogram,
}

impl TelemetryKind {
    pub fn label(self) -> &'static str {
        match self {
            TelemetryKind::Span => "span",
            TelemetryKind::SpanCounter => "span counter",
            TelemetryKind::Counter => "counter",
            TelemetryKind::Histogram => "histogram",
        }
    }
}

/// One collected telemetry-name literal.
#[derive(Debug, Clone)]
pub struct TelemetryName {
    pub name: String,
    pub kind: TelemetryKind,
    pub file: String,
    pub line: usize,
    /// A read side (the trace sink resolving span counters), not an
    /// emission site.
    pub consumer: bool,
}

/// Collects every telemetry-name literal from production sources.
pub fn collect_telemetry(files: &[ScannedFile]) -> Vec<TelemetryName> {
    let mut out = Vec::new();
    for f in files {
        if !matches!(f.kind, FileKind::Lib | FileKind::Bin) || f.path.starts_with("crates/xtask/") {
            continue;
        }
        // The trace module is the *consumer* side of span counters:
        // `.counter("x")` there resolves a recorded count, it does not
        // register a process-wide metric.
        let consumer_side = f.path == "crates/obs/src/trace.rs";
        for (idx, l) in f.lines.iter().enumerate() {
            if l.in_test {
                continue;
            }
            let mut push = |name: String, kind: TelemetryKind, consumer: bool| {
                out.push(TelemetryName {
                    name,
                    kind,
                    file: f.path.clone(),
                    line: idx + 1,
                    consumer,
                });
            };
            // Each pattern is gated on the *code* view (so the literal
            // is real code, not prose) and extracted from the raw line
            // (the code view blanks string contents).
            for name in literals_after(&l.code, &l.raw, "span!(") {
                push(name, TelemetryKind::Span, false);
            }
            for name in literals_after(&l.code, &l.raw, ".span(") {
                push(name, TelemetryKind::Span, false);
            }
            for name in literals_after(&l.code, &l.raw, ".count(") {
                push(name, TelemetryKind::SpanCounter, false);
            }
            for name in literals_after(&l.code, &l.raw, ".counter(") {
                if consumer_side {
                    push(name, TelemetryKind::SpanCounter, true);
                } else {
                    push(name, TelemetryKind::Counter, false);
                }
            }
            for name in literals_after(&l.code, &l.raw, ".histogram(") {
                push(name, TelemetryKind::Histogram, false);
            }
            for name in literals_after(&l.code, &l.raw, "counter_handle!(") {
                push(name, TelemetryKind::Counter, false);
            }
        }
    }
    out
}

/// String-literal first arguments following `pat` — `raw` occurrences
/// whose next non-space character opens a literal, gated on `pat`
/// appearing in the masked code view (so doc prose never matches).
fn literals_after(code: &str, raw: &str, pat: &str) -> Vec<String> {
    if !code.contains(pat) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut rest = raw;
    while let Some(p) = rest.find(pat) {
        let after = &rest[p + pat.len()..];
        // Accept the first literal inside this call's argument list —
        // leading arguments may precede it (`span!(ctx, "x")`,
        // `counter_handle!(pub(crate) fn f, "x")`), so track paren
        // depth and stop at the paren that closes the call.
        let mut lit_start = None;
        let mut depth = 0i32;
        for (j, c) in after.char_indices() {
            match c {
                '"' => {
                    lit_start = Some(j + 1);
                    break;
                }
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some(s) = lit_start {
            if let Some(e) = after[s..].find('"') {
                let name = &after[s..s + e];
                if !name.is_empty() && !name.contains('{') {
                    out.push(name.to_owned());
                }
            }
        }
        rest = after;
    }
    out
}

/// The generated telemetry-name table for the `<!-- quonto-obs -->`
/// doc blocks: one row per (name, kind), with the emitting files.
pub fn telemetry_table(names: &[TelemetryName]) -> String {
    let mut rows: BTreeMap<(String, TelemetryKind), BTreeSet<String>> = BTreeMap::new();
    for n in names.iter().filter(|n| !n.consumer) {
        rows.entry((n.name.clone(), n.kind))
            .or_default()
            .insert(n.file.clone());
    }
    let mut out = String::from("| Name | Kind | Emitted from |\n|---|---|---|\n");
    for ((name, kind), files) in &rows {
        let files: Vec<String> = files.iter().map(|f| format!("`{f}`")).collect();
        out.push_str(&format!(
            "| `{name}` | {} | {} |\n",
            kind.label(),
            files.join(", ")
        ));
    }
    out
}

/// Levenshtein distance, early-exited at 2 (only distance 1 matters).
fn edit_distance_is_one(a: &str, b: &str) -> bool {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let (la, lb) = (a.len(), b.len());
    if la.abs_diff(lb) > 1 || a == b {
        return false;
    }
    if la == lb {
        // Exactly one substitution.
        return a.iter().zip(&b).filter(|(x, y)| x != y).count() == 1;
    }
    // One insertion: the longer must equal the shorter with one skip.
    let (s, l) = if la < lb { (&a, &b) } else { (&b, &a) };
    let mut i = 0;
    let mut skipped = false;
    for c in l {
        if i < s.len() && s[i] == *c {
            i += 1;
        } else if skipped {
            return false;
        } else {
            skipped = true;
        }
    }
    true
}

// ---------------------------------------------------------------------
// A1 — lock order
// ---------------------------------------------------------------------

fn a1(ws: &Workspace, findings: &mut Vec<Finding>) {
    let callees = ws.callees();
    let locks = ws.transitive_locks(&callees);

    // Acquisition-order edges between distinct locks: held → acquired,
    // with one witness site per edge.
    let mut edges: BTreeMap<(String, String), (String, usize, String)> = BTreeMap::new();

    for f in &ws.fns {
        for e in &f.events {
            match e {
                Event::Acquire { lock, line, held } => {
                    if held.iter().any(|h| h == lock) {
                        findings.push(Finding {
                            rule: "A1.reacquire",
                            path: f.file.clone(),
                            line: *line,
                            message: format!(
                                "`{}` acquires `{lock}` while already holding it (guaranteed self-deadlock)",
                                f.qname
                            ),
                        });
                    }
                    for h in held {
                        if h != lock {
                            edges.entry((h.clone(), lock.clone())).or_insert((
                                f.file.clone(),
                                *line,
                                f.qname.clone(),
                            ));
                        }
                    }
                }
                Event::Call {
                    recv,
                    method,
                    line,
                    held,
                } => {
                    let Some(c) = ws.resolve(f, recv, method) else {
                        continue;
                    };
                    for h in held {
                        if locks[c].contains(h) {
                            let chain = ws.path_to_lock(&callees, c, h);
                            let via = if chain.is_empty() {
                                String::new()
                            } else {
                                format!(" via {}", chain.join(" → "))
                            };
                            findings.push(Finding {
                                rule: "A1.reacquire",
                                path: f.file.clone(),
                                line: *line,
                                message: format!(
                                    "`{}` holds `{h}` across a call to `{}`, which re-acquires it{via}",
                                    f.qname, ws.fns[c].qname
                                ),
                            });
                        }
                        for l in &locks[c] {
                            if l != h {
                                edges.entry((h.clone(), l.clone())).or_insert((
                                    f.file.clone(),
                                    *line,
                                    f.qname.clone(),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    // Order inversions: an edge that closes a cycle in the derived
    // lock digraph. Reported per participating edge, anchored at its
    // witness, naming the counter-witness that closes the cycle.
    let adj: BTreeMap<&str, Vec<&str>> = {
        let mut m: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            m.entry(a.as_str()).or_default().push(b.as_str());
        }
        m
    };
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::from([from]);
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(x) = queue.pop_front() {
            if x == to {
                return true;
            }
            for &n in adj.get(x).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        false
    };
    for ((a, b), (file, line, qname)) in &edges {
        if reaches(b, a) {
            let counter = edges
                .get(&(b.clone(), a.clone()))
                .map(|(f2, l2, _)| format!(" (counter-witness {f2}:{l2})"))
                .unwrap_or_default();
            findings.push(Finding {
                rule: "A1.inversion",
                path: file.clone(),
                line: *line,
                message: format!(
                    "`{qname}` acquires `{b}` while holding `{a}`, but another path orders `{b}` before `{a}`{counter}"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// A2 — telemetry drift (source-level half)
// ---------------------------------------------------------------------

fn a2_sources(names: &[TelemetryName], findings: &mut Vec<Finding>) {
    // Orphans: a consumer-side span-counter read with no producer.
    let producers: BTreeSet<(&str, TelemetryKind)> = names
        .iter()
        .filter(|n| !n.consumer)
        .map(|n| (n.name.as_str(), n.kind))
        .collect();
    for n in names.iter().filter(|n| n.consumer) {
        if !producers.contains(&(n.name.as_str(), n.kind)) {
            findings.push(Finding {
                rule: "A2.orphan",
                path: n.file.clone(),
                line: n.line,
                message: format!(
                    "`{}` is read as a {} but no production code records it",
                    n.name,
                    n.kind.label()
                ),
            });
        }
    }
    // Near-duplicates within a kind (producers and consumers alike):
    // report at the lexicographically later name's first site.
    let mut by_kind: BTreeMap<TelemetryKind, BTreeMap<&str, &TelemetryName>> = BTreeMap::new();
    for n in names {
        by_kind
            .entry(n.kind)
            .or_default()
            .entry(&n.name)
            .or_insert(n);
    }
    for (kind, members) in &by_kind {
        let keys: Vec<&&str> = members.keys().collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                if edit_distance_is_one(a, b) {
                    let site = members[**b];
                    findings.push(Finding {
                        rule: "A2.neardup",
                        path: site.file.clone(),
                        line: site.line,
                        message: format!(
                            "{} `{b}` is one edit from `{a}` — split series or typo?",
                            kind.label()
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// A3 — invalidation soundness
// ---------------------------------------------------------------------

fn a3(ws: &Workspace, findings: &mut Vec<Finding>) {
    let callees = ws.callees();
    let n = ws.fns.len();
    // Reachability fixpoints: does f (or any transitive callee) carry
    // a memo action / a version bump?
    let mut has_memo: Vec<bool> = ws.fns.iter().map(|f| !f.memo_lines.is_empty()).collect();
    let mut has_bump: Vec<bool> = ws.fns.iter().map(|f| !f.bump_lines.is_empty()).collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            for &c in &callees[i] {
                if has_memo[c] && !has_memo[i] {
                    has_memo[i] = true;
                    changed = true;
                }
                if has_bump[c] && !has_bump[i] {
                    has_bump[i] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (i, f) in ws.fns.iter().enumerate() {
        for &line in &f.bump_lines {
            if !has_memo[i] {
                findings.push(Finding {
                    rule: "A3.unpaired",
                    path: f.file.clone(),
                    line,
                    message: format!(
                        "`{}` bumps a data version with no ViewMemo patch-or-invalidate on the path",
                        f.qname
                    ),
                });
            }
        }
        for &line in &f.store_lines {
            if !has_bump[i] {
                findings.push(Finding {
                    rule: "A3.version",
                    path: f.file.clone(),
                    line,
                    message: format!(
                        "`{}` applies a delta to the store but never bumps the data version",
                        f.qname
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Runs the three analyses over already-scanned sources and applies
/// `analyze: allow` suppressions. Pure — no filesystem access — so
/// integration tests can inject synthetic workspaces.
pub fn analyze_sources(files: &[ScannedFile]) -> (Vec<Finding>, Workspace, Vec<TelemetryName>) {
    let mut findings = Vec::new();
    let allows: Vec<_> = files
        .iter()
        .map(|f| {
            (
                f.path.clone(),
                collect_allows_for(f, "analyze: allow", &rule_exists, "A0.allow", &mut findings),
            )
        })
        .collect();

    let ws = Workspace::build(files);
    let names = collect_telemetry(files);
    let mut raw = Vec::new();
    a1(&ws, &mut raw);
    a2_sources(&names, &mut raw);
    a3(&ws, &mut raw);

    // Per-file suppression application (doc-level findings are added by
    // the caller and are not source-suppressible).
    let mut by_path: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in raw {
        by_path.entry(f.path.clone()).or_default().push(f);
    }
    for (path, file_allows) in &allows {
        let file_findings = by_path.remove(path).unwrap_or_default();
        findings.extend(apply_allows_for(
            path,
            file_allows,
            file_findings,
            "A0.allow",
        ));
    }
    // Findings in files that produced no allow entry (never happens for
    // scanned sources, but keep them rather than dropping).
    for (_, fs) in by_path {
        findings.extend(fs);
    }
    (findings, ws, names)
}

/// Scans the repo and renders the current telemetry-name table
/// (`xtask obs-docs`).
pub fn workspace_telemetry_table(root: &Path) -> Result<String, String> {
    let mut scanned = Vec::new();
    for path in source_files(root) {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("{} is outside the repo root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        scanned.push(crate::scanner::scan(&rel, &src));
    }
    Ok(telemetry_table(&collect_telemetry(&scanned)))
}

/// Runs the whole analysis over the repo at `root`, docs included.
pub fn run_analyze(root: &Path) -> Result<AnalyzeReport, String> {
    let mut scanned = Vec::new();
    for path in source_files(root) {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("{} is outside the repo root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        scanned.push(crate::scanner::scan(&rel, &src));
    }
    let files = scanned.len();
    let (mut findings, ws, names) = analyze_sources(&scanned);

    // Doc half of A2: the embedded telemetry-name tables must match.
    let table = telemetry_table(&names);
    for doc in docs::DOC_FILES {
        let path = root.join(doc);
        let content = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        match docs::sync_block_between(&content, &table, docs::OBS_BEGIN, docs::OBS_END) {
            docs::SyncOutcome::UpToDate => {}
            docs::SyncOutcome::Stale(_) => findings.push(Finding {
                rule: "A2.table",
                path: (*doc).to_owned(),
                line: 1,
                message: "embedded telemetry-name table is stale vs the collected literals".into(),
            }),
            docs::SyncOutcome::MissingMarkers => findings.push(Finding {
                rule: "A2.table",
                path: (*doc).to_owned(),
                line: 1,
                message: format!(
                    "missing `{}` / `{}` markers for the telemetry-name table",
                    docs::OBS_BEGIN,
                    docs::OBS_END
                ),
            }),
        }
    }

    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    let distinct: BTreeSet<(&str, TelemetryKind)> =
        names.iter().map(|n| (n.name.as_str(), n.kind)).collect();
    Ok(AnalyzeReport {
        findings,
        files,
        fns: ws.fns.len(),
        names: distinct.len(),
    })
}

/// Human-readable rendering.
pub fn render_text(report: &AnalyzeReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    hint: {}\n",
            f.path,
            f.line,
            f.rule,
            f.message,
            f.hint()
        ));
    }
    out.push_str(&format!(
        "xtask analyze: {} finding(s), {} file(s), {} fn(s), {} telemetry name(s)\n",
        report.findings.len(),
        report.files,
        report.fns,
        report.names
    ));
    out
}

/// Machine-readable rendering (CI artifact).
pub fn render_json(report: &AnalyzeReport) -> String {
    let esc = crate::json_escape;
    let items: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                r#"{{"rule":"{}","path":"{}","line":{},"message":"{}","hint":"{}"}}"#,
                esc(f.rule),
                esc(&f.path),
                f.line,
                esc(&f.message),
                esc(f.hint())
            )
        })
        .collect();
    format!(
        r#"{{"findings":[{}],"files":{},"fns":{},"names":{}}}"#,
        items.join(","),
        report.files,
        report.fns,
        report.names
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn findings_for(sources: &[(&str, &str)]) -> Vec<Finding> {
        let scanned: Vec<ScannedFile> = sources.iter().map(|(p, s)| scan(p, s)).collect();
        analyze_sources(&scanned).0
    }

    fn rules_of(f: &[Finding]) -> Vec<&str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn edit_distance_one() {
        assert!(edit_distance_is_one("ucq_raw", "ucq_ra"));
        assert!(edit_distance_is_one("cache_hit", "cache_hits"));
        assert!(edit_distance_is_one("rows", "row"));
        assert!(!edit_distance_is_one("ucq_raw", "ucq_raw"));
        assert!(!edit_distance_is_one("ucq_raw", "ucq_rwa")); // transposition = 2 edits
        assert!(!edit_distance_is_one("a", "abc"));
    }

    #[test]
    fn direct_reacquire_is_flagged() {
        let f = findings_for(&[(
            "crates/obda/src/fx.rs",
            "\
impl S {
    fn f(&self) {
        let a = lock_or_recover(&self.cache);
        let b = lock_or_recover(&self.cache);
    }
}
",
        )]);
        assert!(rules_of(&f).contains(&"A1.reacquire"), "{f:?}");
    }

    #[test]
    fn cross_fn_reacquire_is_flagged_with_path() {
        let f = findings_for(&[(
            "crates/obda/src/fx.rs",
            "\
impl S {
    fn outer(&self) {
        let g = lock_or_recover(&self.cache);
        self.middle();
    }
    fn middle(&self) {
        self.inner();
    }
    fn inner(&self) {
        let g = lock_or_recover(&self.cache);
    }
}
",
        )]);
        let re: Vec<&Finding> = f.iter().filter(|x| x.rule == "A1.reacquire").collect();
        assert_eq!(re.len(), 1, "{f:?}");
        assert!(re[0].message.contains("S::middle"), "{}", re[0].message);
        assert!(re[0].message.contains("S::inner"), "{}", re[0].message);
    }

    #[test]
    fn inversion_cycles_are_flagged() {
        let f = findings_for(&[(
            "crates/obda/src/fx.rs",
            "\
impl S {
    fn ab(&self) {
        let a = lock_or_recover(&self.alpha);
        let b = lock_or_recover(&self.beta);
    }
    fn ba(&self) {
        let b = lock_or_recover(&self.beta);
        let a = lock_or_recover(&self.alpha);
    }
}
",
        )]);
        assert!(rules_of(&f).contains(&"A1.inversion"), "{f:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let f = findings_for(&[(
            "crates/obda/src/fx.rs",
            "\
impl S {
    fn ab(&self) {
        let a = lock_or_recover(&self.alpha);
        let b = lock_or_recover(&self.beta);
    }
    fn also_ab(&self) {
        let a = lock_or_recover(&self.alpha);
        let b = lock_or_recover(&self.beta);
    }
}
",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allows_suppress_analyze_findings() {
        let f = findings_for(&[(
            "crates/obda/src/fx.rs",
            "\
impl S {
    fn f(&self) {
        let a = lock_or_recover(&self.cache);
        // analyze: allow(A1.reacquire, \"fixture: deliberate\")
        let b = lock_or_recover(&self.cache);
    }
}
",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unused_analyze_allow_is_a0() {
        let f = findings_for(&[(
            "crates/obda/src/fx.rs",
            "// analyze: allow(A1.reacquire, \"nothing here\")\nfn f() {}\n",
        )]);
        assert_eq!(rules_of(&f), vec!["A0.allow"], "{f:?}");
    }

    #[test]
    fn orphan_consumer_is_flagged() {
        let f = findings_for(&[
            (
                "crates/obs/src/trace.rs",
                "\
impl TraceCtx {
    fn render(&self) -> u64 {
        self.counter(\"ucq_rwa\")
    }
    fn counter(&self, name: &str) -> u64 {
        0
    }
}
",
            ),
            (
                "crates/obda/src/fx.rs",
                "\
fn emit(g: &SpanGuard) {
    g.count(\"ucq_raw\", 1);
}
",
            ),
        ]);
        let orphans: Vec<&Finding> = f.iter().filter(|x| x.rule == "A2.orphan").collect();
        assert_eq!(orphans.len(), 1, "{f:?}");
        assert!(orphans[0].message.contains("ucq_rwa"));
    }

    #[test]
    fn near_duplicate_names_are_flagged() {
        let f = findings_for(&[(
            "crates/obda/src/fx.rs",
            "\
fn emit(g: &SpanGuard) {
    g.count(\"delta_rows\", 1);
    g.count(\"delta_row\", 1);
}
",
        )]);
        assert!(rules_of(&f).contains(&"A2.neardup"), "{f:?}");
    }

    #[test]
    fn unpaired_bump_is_flagged_and_paired_is_clean() {
        let bad = findings_for(&[(
            "crates/obda/src/fx.rs",
            "\
impl S {
    fn touch(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
    }
}
",
        )]);
        assert!(rules_of(&bad).contains(&"A3.unpaired"), "{bad:?}");
        let good = findings_for(&[(
            "crates/obda/src/fx.rs",
            "\
impl S {
    fn touch(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
        lock_or_recover(&self.ndl_memo).clear();
    }
}
",
        )]);
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn bump_paired_through_a_callee_is_clean() {
        let f = findings_for(&[(
            "crates/obda/src/fx.rs",
            "\
impl S {
    fn apply(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
        self.maintain(epoch);
    }
    fn maintain(&self, epoch: DataEpoch) {
        maintain_memo(&self.ndl_memo, epoch);
    }
}
",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn store_apply_without_bump_is_flagged() {
        let f = findings_for(&[(
            "crates/obda/src/fx.rs",
            "\
impl S {
    fn apply(&self, d: &mut Data) {
        apply_to_store(d);
        lock_or_recover(&self.ndl_memo).clear();
    }
}
",
        )]);
        assert!(rules_of(&f).contains(&"A3.version"), "{f:?}");
    }

    #[test]
    fn telemetry_literals_are_collected_with_kinds() {
        let scanned = vec![scan(
            "crates/obda/src/fx.rs",
            "\
fn f(ctx: &TraceCtx) {
    let g = span!(ctx, \"rewrite\");
    g.count(\"disjuncts\", 2);
    registry().counter(\"delta_applied\").add(1);
    registry().histogram(\"mastro.query_us\").record(5);
}
",
        )];
        let names = collect_telemetry(&scanned);
        let pairs: Vec<(&str, TelemetryKind)> =
            names.iter().map(|n| (n.name.as_str(), n.kind)).collect();
        assert!(
            pairs.contains(&("rewrite", TelemetryKind::Span)),
            "{pairs:?}"
        );
        assert!(pairs.contains(&("disjuncts", TelemetryKind::SpanCounter)));
        assert!(pairs.contains(&("delta_applied", TelemetryKind::Counter)));
        assert!(pairs.contains(&("mastro.query_us", TelemetryKind::Histogram)));
        let table = telemetry_table(&names);
        assert!(table.contains("| `rewrite` | span |"), "{table}");
        assert!(table.contains("crates/obda/src/fx.rs"));
    }

    #[test]
    fn counter_handle_literals_survive_visibility_parens() {
        // `pub(crate)` closes a paren before the name literal; the
        // extractor must not mistake it for the end of the call.
        let scanned = vec![scan(
            "crates/obda/src/fx.rs",
            "\
obda_obs::counter_handle!(pub(crate) fn delta_applied_total, \"delta_applied\");
obda_obs::counter_handle!(fn ndl_rules_total, \"ndl_rules\");
",
        )];
        let names: Vec<String> = collect_telemetry(&scanned)
            .into_iter()
            .map(|n| n.name)
            .collect();
        assert_eq!(names, vec!["delta_applied", "ndl_rules"], "{names:?}");
        // And a variable-name argument followed by an unrelated literal
        // must not leak that literal into the call's extraction.
        let scanned = vec![scan(
            "crates/obda/src/fx.rs",
            "let c = registry().counter(name).add(1); log(\"oops\");\n",
        )];
        assert!(collect_telemetry(&scanned).is_empty());
    }

    #[test]
    fn prose_and_test_literals_are_not_collected() {
        let scanned = vec![scan(
            "crates/obda/src/fx.rs",
            "\
// the sink resolves .counter(\"cache_hit\") from spans
fn f() {}
#[cfg(test)]
mod tests {
    fn t(ctx: &TraceCtx) {
        let _g = span!(ctx, \"test_only\");
    }
}
",
        )];
        assert!(collect_telemetry(&scanned).is_empty());
    }
}
