//! The lint rule catalogue (R1–R5) plus the suppression machinery (R0).
//!
//! Every rule works on the masked views produced by [`crate::scanner`],
//! so tokens inside string literals and comments never trigger code
//! rules. Scopes are deliberate:
//!
//! | rule group | scope |
//! |---|---|
//! | R1 panic paths | `crates/server/src`, `crates/obda/src` library code (requests must not be able to kill a worker) |
//! | R2 lock discipline | all library/binary code (poison recovery, guard-vs-I/O, condvar pairing, lock order) |
//! | R3 unsafe audit | everywhere, tests included |
//! | R4 env registry | everywhere outside the registry itself, docs included |
//! | R5 hygiene | `#[ignore]` reasons everywhere; stdout prints in library code |
//! | R6 observability | raw stderr prints in traced library code (`obda`, `sqlstore`, `mapping`, `server`, `obs`) — timing/diagnostic output must flow through `obda-obs` spans and sinks |
//!
//! Suppressions are explicit and must carry a reason:
//! `// lint: allow(rule-id, "reason")` on the offending line or the line
//! directly above, or `// lint: allow-file(rule-id, "reason")` anywhere
//! in the file. A suppression that parses badly, names an unknown rule,
//! or matches no finding is itself an error (`R0.allow`) — stale allows
//! rot into false confidence.

use crate::scanner::{FileKind, ScannedFile};

/// Substring match with an identifier boundary on the left, so
/// `println!(` does not match inside `eprintln!(`.
fn has_token(code: &str, tok: &str) -> bool {
    let mut from = 0;
    while let Some(p) = code[from..].find(tok) {
        let at = from + p;
        let bounded = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if bounded {
            return true;
        }
        from = at + tok.len();
    }
    false
}

/// Rule identifiers, with the fix hint shown next to each diagnostic.
pub const RULES: &[(&str, &str)] = &[
    (
        "R1.unwrap",
        "return an error (`?`, `ok_or_else`) or match; request paths must not be able to panic",
    ),
    (
        "R1.expect",
        "return an error instead; if the invariant is real, `lint: allow` it with the proof",
    ),
    (
        "R1.panic",
        "panic-family macros kill the worker mid-request; return an error or justify with `lint: allow`",
    ),
    (
        "R1.index",
        "use `.get(..)` or prove the bound in a `lint: allow` reason",
    ),
    (
        "R2.lock-unwrap",
        "use `quonto::sync::lock_or_recover` so one panicking holder cannot poison-cascade",
    ),
    (
        "R2.guard-io",
        "drop the guard before blocking I/O: a stalled peer must not extend a critical section",
    ),
    (
        "R2.condvar",
        "a Condvar must always be paired with the same mutex; see the CONDVAR_PAIRS table",
    ),
    (
        "R2.order",
        "acquire locks in LOCK_ORDER to keep the lock graph acyclic",
    ),
    (
        "R3.safety",
        "document the invariant in a `// SAFETY:` comment directly above the unsafe site",
    ),
    (
        "R4.read",
        "read QUONTO_* variables through a typed accessor in `quonto::env`, never ad hoc",
    ),
    (
        "R4.unregistered",
        "register the knob in `quonto::env::KNOBS` (then `cargo run -p xtask -- env-docs --write`)",
    ),
    (
        "R4.docs",
        "run `cargo run -p xtask -- env-docs --write` to refresh the embedded knob table",
    ),
    (
        "R5.ignore",
        "say why: `#[ignore = \"reason\"]`",
    ),
    (
        "R5.print",
        "library code must not write to stdout; use `eprintln!` or return the data",
    ),
    (
        "R6.print",
        "record a span/counter and let the obda-obs sink emit it; raw stderr prints bypass QUONTO_TIMINGS routing",
    ),
    (
        "R0.allow",
        "suppressions are `lint: allow(rule-id, \"reason\")` and must match a real finding",
    ),
];

/// `Condvar` field → the mutex field it must always re-acquire.
pub const CONDVAR_PAIRS: &[(&str, &str)] = &[("ready", "inner"), ("freed", "inflight")];

/// Workspace lock-acquisition order (outermost first). Acquiring an
/// earlier lock while holding a later one is an R2.order violation.
/// `data` is the `AboxSystem` store lock (abox + index + version); the
/// write path acquires it before touching the rewrite cache or the
/// materialized slot, and RwLock acquisitions through
/// `read_or_recover`/`write_or_recover` count the same as mutex ones.
pub const LOCK_ORDER: &[&str] = &["inner", "data", "rewrite_cache", "materialized"];

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
}

impl Finding {
    pub fn hint(&self) -> &'static str {
        RULES
            .iter()
            .chain(crate::analyze::RULES.iter())
            .find(|(id, _)| *id == self.rule)
            .map(|(_, h)| *h)
            .unwrap_or("")
    }

    /// Line-number-free identity used by the baseline: findings survive
    /// unrelated edits above them.
    pub fn fingerprint(&self, raw_line: &str) -> String {
        format!("{}|{}|{}", self.rule, self.path, fnv64(raw_line.trim()))
    }
}

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn rule_exists(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

#[derive(Debug)]
pub(crate) struct Allow {
    rule: String,
    /// 1-based line of the comment.
    line: usize,
    file_wide: bool,
    used: std::cell::Cell<bool>,
}

/// Parses `<marker>(rule, "reason")` / `<marker>-file(rule, "reason")`
/// from comment views — shared by `lint: allow` (rules R1–R6) and
/// `analyze: allow` (rules A1–A3). Malformed suppressions become
/// findings under `allow_rule` (`R0.allow` / `A0.allow`).
pub(crate) fn collect_allows_for(
    file: &ScannedFile,
    marker: &str,
    rule_exists: &dyn Fn(&str) -> bool,
    allow_rule: &'static str,
    findings: &mut Vec<Finding>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    // The lint's own sources talk *about* the suppression syntax in
    // docs and fixtures; they are not suppressions.
    if file.path.starts_with("crates/xtask/") {
        return allows;
    }
    for (idx, l) in file.lines.iter().enumerate() {
        let c = l.comment.trim();
        let Some(pos) = c.find(marker) else {
            continue;
        };
        let rest = &c[pos + marker.len()..];
        let (file_wide, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let bad = |msg: &str, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                rule: allow_rule,
                path: file.path.clone(),
                line: idx + 1,
                message: format!("malformed suppression: {msg}"),
            });
        };
        let Some(inner) = rest
            .strip_prefix('(')
            .and_then(|r| r.rfind(')').map(|e| &r[..e]))
        else {
            bad("expected `(rule-id, \"reason\")`", &mut *findings);
            continue;
        };
        let Some((rule, reason)) = inner.split_once(',') else {
            bad("missing the reason argument", &mut *findings);
            continue;
        };
        let rule = rule.trim();
        let reason = reason.trim();
        if !rule_exists(rule) {
            bad(&format!("unknown rule `{rule}`"), &mut *findings);
            continue;
        }
        if !(reason.len() > 2 && reason.starts_with('"') && reason.ends_with('"')) {
            bad(
                "the reason must be a non-empty quoted string",
                &mut *findings,
            );
            continue;
        }
        allows.push(Allow {
            rule: rule.to_owned(),
            line: idx + 1,
            file_wide,
            used: std::cell::Cell::new(false),
        });
    }
    allows
}

fn collect_allows(file: &ScannedFile, findings: &mut Vec<Finding>) -> Vec<Allow> {
    collect_allows_for(file, "lint: allow", &rule_exists, "R0.allow", findings)
}

/// Filters suppressed findings; unmatched allows become `allow_rule`
/// findings (a stale suppression rots into false confidence).
pub(crate) fn apply_allows_for(
    file_path: &str,
    allows: &[Allow],
    findings: Vec<Finding>,
    allow_rule: &'static str,
) -> Vec<Finding> {
    let mut out: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            let hit = allows.iter().find(|a| {
                a.rule == f.rule && (a.file_wide || a.line == f.line || a.line + 1 == f.line)
            });
            match hit {
                Some(a) => {
                    a.used.set(true);
                    false
                }
                None => true,
            }
        })
        .collect();
    for a in allows.iter().filter(|a| !a.used.get()) {
        out.push(Finding {
            rule: allow_rule,
            path: file_path.to_owned(),
            line: a.line,
            message: format!(
                "unused suppression for `{}`: no finding here to allow (stale after a fix?)",
                a.rule
            ),
        });
    }
    out
}

fn apply_allows(file: &ScannedFile, allows: &[Allow], findings: Vec<Finding>) -> Vec<Finding> {
    apply_allows_for(&file.path, allows, findings, "R0.allow")
}

// ---------------------------------------------------------------------
// R1 — panic paths
// ---------------------------------------------------------------------

/// Library code whose call stacks serve user requests: a panic here
/// costs a worker (or did, before `catch_unwind`) and must be justified.
fn in_request_path(file: &ScannedFile) -> bool {
    file.kind == FileKind::Lib
        && (file.path.starts_with("crates/server/src/")
            || file.path.starts_with("crates/obda/src/"))
        && !file.path.ends_with("/demo.rs")
}

fn r1(file: &ScannedFile, findings: &mut Vec<Finding>) {
    if !in_request_path(file) {
        return;
    }
    for (idx, l) in file.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let code = &l.code;
        let mut push = |rule: &'static str, message: String| {
            findings.push(Finding {
                rule,
                path: file.path.clone(),
                line: idx + 1,
                message,
            });
        };
        if code.contains(".unwrap()") {
            push("R1.unwrap", "`.unwrap()` on a request path".into());
        }
        if code.contains(".expect(") {
            push("R1.expect", "`.expect(...)` on a request path".into());
        }
        for mac in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
            if has_token(code, mac) {
                push(
                    "R1.panic",
                    format!("`{}...)` on a request path", &mac[..mac.len() - 1]),
                );
            }
        }
        for (col, expr) in non_literal_index_sites(code) {
            let _ = col;
            push(
                "R1.index",
                format!("unchecked indexing `[{expr}]` on a request path"),
            );
        }
    }
}

/// Finds `recv[expr]` index sites whose index expression is not a
/// literal (literal indices after a destructure/len check are the
/// conventional safe pattern). Returns `(column, index-expr)`.
fn non_literal_index_sites(code: &str) -> Vec<(usize, String)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            let preceded = i > 0
                && (bytes[i - 1].is_ascii_alphanumeric()
                    || bytes[i - 1] == b'_'
                    || bytes[i - 1] == b']'
                    || bytes[i - 1] == b')');
            if preceded {
                // Find the matching bracket on this line.
                let mut depth = 1;
                let mut j = i + 1;
                while j < bytes.len() && depth > 0 {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let inner = if depth == 0 {
                    &code[i + 1..j - 1]
                } else {
                    &code[i + 1..]
                };
                if !is_literal_index(inner) {
                    out.push((i, inner.trim().to_owned()));
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// `7`, `0x1f`, `..`, `..3`, `1..=4` — compile-time-known shapes.
fn is_literal_index(expr: &str) -> bool {
    let e = expr.trim();
    if e.is_empty() {
        return false; // `buf[]` can't happen; treat as suspicious
    }
    let lit = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_hexdigit() || matches!(c, '_' | 'x' | 'o' | 'b'))
    };
    if let Some((a, b)) = e.split_once("..") {
        let b = b.strip_prefix('=').unwrap_or(b);
        (a.trim().is_empty() || lit(a.trim())) && (b.trim().is_empty() || lit(b.trim()))
    } else {
        lit(e)
    }
}

// ---------------------------------------------------------------------
// R2 — lock discipline
// ---------------------------------------------------------------------

/// A guard variable known to be live, with the mutex field it came from.
#[derive(Debug)]
struct LiveGuard {
    var: String,
    /// Field/variable name inside `lock_or_recover(&self.<origin>)`,
    /// when recoverable from the text.
    origin: Option<String>,
    /// Brace depth at the declaration; the guard dies when the block
    /// closes.
    depth: i64,
}

/// Calls that block on the outside world; holding any lock across them
/// turns a slow peer into a stalled critical section.
const IO_TOKENS: &[&str] = &[
    ".write_all(",
    ".read_exact(",
    ".read_to_string(",
    ".read_line(",
    ".flush(",
    "TcpStream::connect(",
    "std::fs::",
    "File::open(",
    "File::create(",
];

fn r2(file: &ScannedFile, findings: &mut Vec<Finding>) {
    if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    // The helper module implements the recovery policy: it is the one
    // place allowed to spell out raw poison recovery and raw condvar
    // waits.
    if file.path == "crates/core/src/sync.rs" {
        return;
    }
    let mut depth: i64 = 0;
    let mut guards: Vec<LiveGuard> = Vec::new();

    for (idx, l) in file.lines.iter().enumerate() {
        if l.in_test {
            // Reset at test boundaries; tests may lock however they like.
            continue;
        }
        let code = &l.code;
        // Join direct continuations so `.lock()\n.unwrap()` chains are
        // seen as one expression.
        let joined = if code.trim_end().ends_with(".lock()")
            || code.trim_end().ends_with(".read()")
            || code.trim_end().ends_with(".write()")
        {
            let next = file.lines.get(idx + 1).map(|n| n.code.trim()).unwrap_or("");
            format!("{} {}", code.trim_end(), next)
        } else {
            code.clone()
        };
        let mut push = |rule: &'static str, message: String| {
            findings.push(Finding {
                rule,
                path: file.path.clone(),
                line: idx + 1,
                message,
            });
        };

        for pat in [
            ".lock().unwrap()",
            ".lock().expect(",
            ".read().unwrap()",
            ".read().expect(",
            ".write().unwrap()",
            ".write().expect(",
        ] {
            if joined.replace(' ', "").contains(pat) {
                push(
                    "R2.lock-unwrap",
                    format!("`{pat}` propagates lock poisoning as a fresh panic"),
                );
            }
        }
        if joined.contains("PoisonError") {
            push(
                "R2.lock-unwrap",
                "open-coded poison recovery; use quonto::sync helpers".into(),
            );
        }

        // Guard births. `let g = lock_or_recover(&self.field)` or
        // `let g = x.lock()…`. A chained call on the fresh guard
        // (`lock_or_recover(&…).get(k)`) is a temporary that dies at the
        // semicolon, not a live guard.
        if let Some(var) = let_binding(code) {
            let recover_call = ["lock_or_recover(", "read_or_recover(", "write_or_recover("]
                .iter()
                .any(|pat| code.contains(pat));
            let locks_here = (recover_call && !code.contains(").")) || joined.contains(".lock()");
            if locks_here {
                let origin = origin_field(code);
                // R2.order: acquiring out of declared order while other
                // guards are live.
                if let Some(new_origin) = &origin {
                    if let Some(new_rank) = LOCK_ORDER.iter().position(|f| f == new_origin) {
                        for g in &guards {
                            if let Some(held) = &g.origin {
                                if let Some(held_rank) = LOCK_ORDER.iter().position(|f| f == held) {
                                    if new_rank < held_rank {
                                        push(
                                            "R2.order",
                                            format!(
                                                "locks `{new_origin}` while holding `{held}` (declared order: {})",
                                                LOCK_ORDER.join(" → ")
                                            ),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                guards.push(LiveGuard { var, origin, depth });
            }
        }

        // R2.condvar: waits must re-acquire the paired mutex.
        if let Some((cv, guard_var)) = condvar_wait(code) {
            match CONDVAR_PAIRS.iter().find(|(c, _)| *c == cv) {
                None => push(
                    "R2.condvar",
                    format!("condvar `{cv}` has no declared mutex pairing (CONDVAR_PAIRS)"),
                ),
                Some((_, want_mutex)) => {
                    let origin = guards
                        .iter()
                        .rev()
                        .find(|g| g.var == guard_var)
                        .and_then(|g| g.origin.as_deref());
                    if let Some(origin) = origin {
                        if origin != *want_mutex {
                            push(
                                "R2.condvar",
                                format!(
                                    "condvar `{cv}` waited with a guard of `{origin}` (declared pair: `{want_mutex}`)"
                                ),
                            );
                        }
                    }
                }
            }
        }

        // R2.guard-io: blocking I/O while any guard is live.
        if !guards.is_empty() {
            for tok in IO_TOKENS {
                if code.contains(tok) {
                    let held: Vec<&str> = guards.iter().map(|g| g.var.as_str()).collect();
                    push(
                        "R2.guard-io",
                        format!(
                            "blocking I/O `{}...)` while holding lock guard(s) {}",
                            tok.trim_end_matches('('),
                            held.join(", ")
                        ),
                    );
                }
            }
        }

        // Guard deaths: explicit drop or block close.
        for g_idx in (0..guards.len()).rev() {
            if code.contains(&format!("drop({})", guards[g_idx].var)) {
                guards.remove(g_idx);
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    // Guards die when the block they were declared in
                    // closes.
                    guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
        }
    }
}

/// `let [mut] name = …` binder name, if the line is one.
fn let_binding(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    // Tuple patterns: `let (a, b) = …` — take the first binder; good
    // enough for guard tracking (`let (guard, _) = wait…`).
    let rest = rest.trim_start_matches('(');
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// The lock field behind an acquisition call:
/// `lock_or_recover(&self.inner)` / `read_or_recover(&self.data)` /
/// `self.rewrite_cache.lock()` → `inner` / `data` / `rewrite_cache`.
fn origin_field(code: &str) -> Option<String> {
    let recover_start = ["lock_or_recover(", "read_or_recover(", "write_or_recover("]
        .iter()
        .find_map(|pat| code.find(pat).map(|p| p + pat.len()));
    let after = if let Some(p) = recover_start {
        &code[p..]
    } else if let Some(p) = code.find(".lock()") {
        // Walk back over the receiver expression.
        let recv = &code[..p];
        let start = recv
            .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
            .map(|i| i + 1)
            .unwrap_or(0);
        return recv[start..].rsplit('.').next().map(str::to_owned);
    } else {
        return None;
    };
    let inner: String = after
        .chars()
        .take_while(|c| *c != ')' && *c != ',')
        .collect();
    inner
        .trim()
        .trim_start_matches('&')
        .rsplit('.')
        .next()
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
}

/// `(condvar-field, guard-variable)` for wait calls:
/// `wait_timeout_or_recover(&self.ready, inner, …)` or
/// `self.ready.wait(guard)`.
fn condvar_wait(code: &str) -> Option<(String, String)> {
    if let Some(p) = code.find("wait_timeout_or_recover(") {
        let args = &code[p + "wait_timeout_or_recover(".len()..];
        let mut parts = args.splitn(3, ',');
        let cv = parts.next()?.trim().trim_start_matches('&');
        let guard = parts.next()?.trim();
        let cv_field = cv.rsplit('.').next()?.to_owned();
        return Some((cv_field, guard.to_owned()));
    }
    for pat in [
        ".wait(",
        ".wait_timeout(",
        ".wait_while(",
        ".wait_timeout_while(",
    ] {
        if let Some(p) = code.find(pat) {
            let recv = &code[..p];
            let start = recv
                .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
                .map(|i| i + 1)
                .unwrap_or(0);
            let cv_field = recv[start..].rsplit('.').next()?.to_owned();
            let args = &code[p + pat.len()..];
            let guard: String = args
                .chars()
                .take_while(|c| *c != ',' && *c != ')')
                .collect();
            return Some((cv_field, guard.trim().to_owned()));
        }
    }
    None
}

// ---------------------------------------------------------------------
// R3 — unsafe audit
// ---------------------------------------------------------------------

fn r3(file: &ScannedFile, findings: &mut Vec<Finding>) {
    for (idx, l) in file.lines.iter().enumerate() {
        let has_unsafe = l
            .code
            .split(|c: char| !(c.is_alphanumeric() || c == '_'))
            .any(|w| w == "unsafe");
        if !has_unsafe {
            continue;
        }
        // Same-line comment, or the contiguous comment block directly
        // above (attributes allowed in between).
        let mut documented = l.comment.contains("SAFETY");
        let mut j = idx;
        while !documented && j > 0 {
            j -= 1;
            let above = &file.lines[j];
            let code_t = above.code.trim();
            let is_comment_only = code_t.is_empty() && !above.comment.is_empty();
            let is_attr = code_t.starts_with("#[") || code_t.starts_with("#!");
            if is_comment_only || is_attr {
                if above.comment.contains("SAFETY") {
                    documented = true;
                }
            } else {
                break;
            }
        }
        if !documented {
            findings.push(Finding {
                rule: "R3.safety",
                path: file.path.clone(),
                line: idx + 1,
                message: "unsafe site without a `// SAFETY:` comment".into(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R4 — env-var registry
// ---------------------------------------------------------------------

/// The registry module itself (declares knobs, owns the raw reads) and
/// this lint (whose sources talk *about* the rules) are exempt.
fn r4_exempt(path: &str) -> bool {
    path == "crates/core/src/env.rs" || path.starts_with("crates/xtask/")
}

fn r4(file: &ScannedFile, is_registered: &dyn Fn(&str) -> bool, findings: &mut Vec<Finding>) {
    if r4_exempt(&file.path) {
        return;
    }
    for (idx, l) in file.lines.iter().enumerate() {
        let mut push = |rule: &'static str, message: String| {
            findings.push(Finding {
                rule,
                path: file.path.clone(),
                line: idx + 1,
                message,
            });
        };
        // Direct reads bypassing the registry.
        let reads_env = [
            "env::var(",
            "env::var_os(",
            "env::set_var(",
            "env::remove_var(",
        ]
        .iter()
        .any(|p| l.code.contains(p));
        if reads_env && l.text.contains("QUONTO_") && !l.in_test {
            push(
                "R4.read",
                "direct std::env access to a QUONTO_* knob outside quonto::env".into(),
            );
        }
        // Names must be registered — in code, strings, and comments
        // alike (drift detection in both directions).
        for name in quonto_names(&l.text)
            .into_iter()
            .chain(quonto_names(&l.comment))
        {
            if !is_registered(&name) {
                push(
                    "R4.unregistered",
                    format!("`{name}` is not registered in quonto::env::KNOBS"),
                );
            }
        }
    }
}

/// Extracts `QUONTO_[A-Z0-9_]+` tokens.
pub fn quonto_names(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(p) = rest.find("QUONTO_") {
        let tail = &rest[p..];
        let name: String = tail
            .chars()
            .take_while(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        // Bare "QUONTO_" prefixes (pattern strings) are not names.
        if name.len() > "QUONTO_".len() {
            out.push(name.trim_end_matches('_').to_owned());
        }
        rest = &rest[p + "QUONTO_".len()..];
    }
    out
}

/// Markdown drift half of R4: every `QUONTO_*` mention in the docs must
/// be a registered knob.
pub fn r4_docs(
    path: &str,
    content: &str,
    is_registered: &dyn Fn(&str) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (idx, line) in content.lines().enumerate() {
        for name in quonto_names(line) {
            if !is_registered(&name) {
                findings.push(Finding {
                    rule: "R4.unregistered",
                    path: path.to_owned(),
                    line: idx + 1,
                    message: format!("doc mentions `{name}`, which is not in quonto::env::KNOBS"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// R5 — hygiene
// ---------------------------------------------------------------------

fn r5(file: &ScannedFile, findings: &mut Vec<Finding>) {
    for (idx, l) in file.lines.iter().enumerate() {
        let mut push = |rule: &'static str, message: String| {
            findings.push(Finding {
                rule,
                path: file.path.clone(),
                line: idx + 1,
                message,
            });
        };
        if l.code.contains("#[ignore]") {
            push("R5.ignore", "`#[ignore]` without a reason string".into());
        }
        if file.kind == FileKind::Lib && !l.in_test {
            for mac in ["println!(", "print!(", "dbg!("] {
                if has_token(&l.code, mac) {
                    push(
                        "R5.print",
                        format!("`{}...)` in library code", &mac[..mac.len() - 1]),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R6 — observability discipline
// ---------------------------------------------------------------------

/// Library code covered by the structured tracing stack: per-query
/// timing and diagnostic output must flow through `obda-obs` spans and
/// sinks (so `QUONTO_TIMINGS` routing, the JSON sink, and the trace
/// ring all see it), never raw stderr prints. The sink module itself is
/// the one place allowed to write the legacy stderr lines; binaries and
/// tests print freely.
fn r6_scope(file: &ScannedFile) -> bool {
    if file.kind != FileKind::Lib {
        return false;
    }
    if file.path == "crates/obs/src/sink.rs" {
        return false;
    }
    [
        "crates/obda/src/",
        "crates/sqlstore/src/",
        "crates/mapping/src/",
        "crates/server/src/",
        "crates/obs/src/",
    ]
    .iter()
    .any(|p| file.path.starts_with(p))
}

fn r6(file: &ScannedFile, findings: &mut Vec<Finding>) {
    if !r6_scope(file) {
        return;
    }
    for (idx, l) in file.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        for mac in ["eprintln!(", "eprint!("] {
            if has_token(&l.code, mac) {
                findings.push(Finding {
                    rule: "R6.print",
                    path: file.path.clone(),
                    line: idx + 1,
                    message: format!("`{}...)` in traced library code", &mac[..mac.len() - 1]),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

/// Runs every rule over one scanned file and applies its suppressions.
pub fn check_file(file: &ScannedFile, is_registered: &dyn Fn(&str) -> bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    let allows = collect_allows(file, &mut findings);
    let mut raw = Vec::new();
    r1(file, &mut raw);
    r2(file, &mut raw);
    r3(file, &mut raw);
    r4(file, is_registered, &mut raw);
    r5(file, &mut raw);
    r6(file, &mut raw);
    findings.extend(apply_allows(file, &allows, raw));
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn registered(name: &str) -> bool {
        quonto::env::is_registered(name)
    }

    fn lint_src(path: &str, src: &str) -> Vec<Finding> {
        check_file(&scan(path, src), &registered)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    const SERVER_PATH: &str = "crates/server/src/fixture.rs";

    #[test]
    fn r1_flags_the_panic_family_in_request_paths() {
        let src = "\
pub fn handle(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect(\"set\");
    if a > b { panic!(\"boom\") } else { unreachable!() }
}
";
        let f = lint_src(SERVER_PATH, src);
        let rules = rules_of(&f);
        assert!(rules.contains(&"R1.unwrap"), "{f:?}");
        assert!(rules.contains(&"R1.expect"));
        assert_eq!(rules.iter().filter(|r| **r == "R1.panic").count(), 2);
    }

    #[test]
    fn r1_is_scoped_to_request_paths() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_src("crates/core/src/fixture.rs", src).is_empty());
        assert!(lint_src("crates/server/tests/fixture.rs", src).is_empty());
        assert!(lint_src("crates/obda/src/demo.rs", src).is_empty());
        assert!(!lint_src("crates/obda/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn r1_ignores_tests_strings_and_comments() {
        let src = "\
pub fn handle(q: &str) -> bool {
    // a comment saying .unwrap() and panic!()
    q.contains(\".unwrap() panic!(\")
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
        panic!(\"fine in tests\");
    }
}
";
        assert!(lint_src(SERVER_PATH, src).is_empty());
    }

    #[test]
    fn r1_index_literal_vs_computed() {
        let ok = "pub fn f(v: &[u32]) -> u32 { v[0] + v[1] }\n";
        assert!(lint_src(SERVER_PATH, ok).is_empty());
        let bad = "pub fn f(v: &[u32], i: usize) -> u32 { v[i] }\n";
        assert_eq!(rules_of(&lint_src(SERVER_PATH, bad)), vec!["R1.index"]);
        let slice = "pub fn f(v: &[u32], n: usize) -> &[u32] { &v[..n] }\n";
        assert_eq!(rules_of(&lint_src(SERVER_PATH, slice)), vec!["R1.index"]);
        let lit_range = "pub fn f(v: &[u32]) -> &[u32] { &v[..4] }\n";
        assert!(lint_src(SERVER_PATH, lit_range).is_empty());
        // Array types and attributes are not index sites.
        let ty = "pub struct S { b: [u64; 40] }\n#[derive(Debug)]\npub struct T;\n";
        assert!(lint_src(SERVER_PATH, ty).is_empty());
    }

    #[test]
    fn allows_suppress_with_reason_same_line_or_above() {
        let above = "\
pub fn f(v: &[u32], i: usize) -> u32 {
    // lint: allow(R1.index, \"i is checked by the caller\")
    v[i]
}
";
        assert!(lint_src(SERVER_PATH, above).is_empty());
        let trailing = "\
pub fn f(v: &[u32], i: usize) -> u32 {
    v[i] // lint: allow(R1.index, \"i is checked by the caller\")
}
";
        assert!(lint_src(SERVER_PATH, trailing).is_empty());
    }

    #[test]
    fn malformed_and_unused_allows_are_r0() {
        let no_reason = "\
pub fn f(v: &[u32], i: usize) -> u32 {
    // lint: allow(R1.index)
    v[i]
}
";
        let f = lint_src(SERVER_PATH, no_reason);
        assert!(rules_of(&f).contains(&"R0.allow"), "{f:?}");
        assert!(
            rules_of(&f).contains(&"R1.index"),
            "malformed allow must not suppress"
        );

        let unknown_rule = "// lint: allow(R9.nope, \"reason\")\npub fn f() {}\n";
        assert!(rules_of(&lint_src(SERVER_PATH, unknown_rule)).contains(&"R0.allow"));

        let unused = "// lint: allow(R1.unwrap, \"nothing here unwraps\")\npub fn f() {}\n";
        let f = lint_src(SERVER_PATH, unused);
        assert_eq!(rules_of(&f), vec!["R0.allow"], "{f:?}");
        assert!(f[0].message.contains("unused"));
    }

    #[test]
    fn allow_file_covers_the_whole_file() {
        let src = "\
// lint: allow-file(R1.index, \"hand-rolled lexer; every site is bounds-guarded\")
pub fn f(v: &[u32], i: usize, j: usize) -> u32 {
    v[i] + v[j]
}
";
        assert!(lint_src(SERVER_PATH, src).is_empty());
    }

    #[test]
    fn r2_lock_unwrap_and_multiline_chains() {
        let src = "\
pub fn f(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
";
        assert_eq!(
            rules_of(&lint_src("crates/core/src/fixture.rs", src)),
            vec!["R2.lock-unwrap"]
        );
        let multiline = "\
pub fn f(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock()
        .unwrap()
}
";
        assert_eq!(
            rules_of(&lint_src("crates/core/src/fixture.rs", multiline)),
            vec!["R2.lock-unwrap"]
        );
        let open_coded = "\
pub fn f(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
";
        assert_eq!(
            rules_of(&lint_src("crates/core/src/fixture.rs", open_coded)),
            vec!["R2.lock-unwrap"]
        );
        // The sync module itself is exempt.
        assert!(lint_src("crates/core/src/sync.rs", open_coded).is_empty());
    }

    #[test]
    fn r2_guard_io_flags_io_under_a_live_guard() {
        let src = "\
pub fn f(&self, out: &mut TcpStream) {
    let g = lock_or_recover(&self.state);
    out.write_all(g.bytes());
}
";
        let f = lint_src("crates/server/src/fixture2.rs", src);
        assert!(rules_of(&f).contains(&"R2.guard-io"), "{f:?}");
        let dropped = "\
pub fn f(&self, out: &mut TcpStream) {
    let g = lock_or_recover(&self.state);
    let bytes = g.bytes();
    drop(g);
    out.write_all(bytes);
}
";
        assert!(lint_src("crates/server/src/fixture2.rs", dropped).is_empty());
        let scoped = "\
pub fn f(&self, out: &mut TcpStream) {
    let bytes = {
        let g = lock_or_recover(&self.state);
        g.bytes()
    };
    out.write_all(bytes);
}
";
        assert!(lint_src("crates/server/src/fixture2.rs", scoped).is_empty());
    }

    #[test]
    fn r2_condvar_pairing() {
        let ok = "\
fn pop(&self) {
    let inner = lock_or_recover(&self.inner);
    let (guard, _) = wait_timeout_or_recover(&self.ready, inner, TICK);
}
";
        assert!(lint_src("crates/server/src/fixture3.rs", ok).is_empty());
        let wrong_mutex = "\
fn pop(&self) {
    let other = lock_or_recover(&self.rewrite_cache);
    let (guard, _) = wait_timeout_or_recover(&self.ready, other, TICK);
}
";
        let f = lint_src("crates/server/src/fixture3.rs", wrong_mutex);
        assert!(rules_of(&f).contains(&"R2.condvar"), "{f:?}");
        let unknown_cv = "\
fn pop(&self) {
    let inner = lock_or_recover(&self.inner);
    let (guard, _) = wait_timeout_or_recover(&self.undeclared, inner, TICK);
}
";
        let f = lint_src("crates/server/src/fixture3.rs", unknown_cv);
        assert!(rules_of(&f).contains(&"R2.condvar"), "{f:?}");
    }

    #[test]
    fn r2_lock_order() {
        let bad = "\
fn f(&self) {
    let a = lock_or_recover(&self.rewrite_cache);
    let b = lock_or_recover(&self.inner);
}
";
        let f = lint_src("crates/obda/src/fixture4.rs", bad);
        assert!(rules_of(&f).contains(&"R2.order"), "{f:?}");
        let good = "\
fn f(&self) {
    let a = lock_or_recover(&self.inner);
    let b = lock_or_recover(&self.rewrite_cache);
}
";
        let f = lint_src("crates/obda/src/fixture4.rs", good);
        assert!(!rules_of(&f).contains(&"R2.order"), "{f:?}");
    }

    #[test]
    fn r2_lock_order_covers_the_write_path_rwlock() {
        // The canonical write path: data store first, then caches.
        let good = "\
fn apply(&self) {
    let guard = write_or_recover(&self.data);
    let cache = lock_or_recover(&self.rewrite_cache);
}
";
        let f = lint_src("crates/obda/src/fixture5.rs", good);
        assert!(!rules_of(&f).contains(&"R2.order"), "{f:?}");
        // Grabbing the store while holding a cache inverts the order —
        // a reader doing this can deadlock against the writer.
        let bad = "\
fn apply(&self) {
    let cache = lock_or_recover(&self.rewrite_cache);
    let guard = read_or_recover(&self.data);
}
";
        let f = lint_src("crates/obda/src/fixture5.rs", bad);
        assert!(rules_of(&f).contains(&"R2.order"), "{f:?}");
        let bad_mat = "\
fn apply(&self) {
    let slot = lock_or_recover(&self.materialized);
    let guard = write_or_recover(&self.data);
}
";
        let f = lint_src("crates/obda/src/fixture5.rs", bad_mat);
        assert!(rules_of(&f).contains(&"R2.order"), "{f:?}");
    }

    #[test]
    fn r3_unsafe_needs_safety_comment() {
        let bad = "pub fn f() { unsafe { libc_call() } }\n";
        assert_eq!(
            rules_of(&lint_src("crates/core/src/fx.rs", bad)),
            vec!["R3.safety"]
        );
        let good = "\
pub fn f() {
    // SAFETY: libc_call has no preconditions.
    unsafe { libc_call() }
}
";
        assert!(lint_src("crates/core/src/fx.rs", good).is_empty());
        let multiline_block = "\
pub fn f() {
    // SAFETY: a longer argument,
    // spread over two lines.
    #[allow(clippy::x)]
    unsafe { libc_call() }
}
";
        assert!(lint_src("crates/core/src/fx.rs", multiline_block).is_empty());
        // Strings and comments mentioning unsafe are not unsafe sites,
        // and tests need SAFETY comments too.
        let prose = "pub fn f() -> &'static str { \"unsafe query\" } // unsafe-ish\n";
        assert!(lint_src("crates/core/src/fx.rs", prose).is_empty());
        let in_test = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { unsafe { raise(15) }; }
}
";
        assert_eq!(
            rules_of(&lint_src("crates/core/src/fx.rs", in_test)),
            vec!["R3.safety"]
        );
    }

    #[test]
    fn r4_flags_direct_reads_and_unregistered_names() {
        let direct = "pub fn f() { let _ = std::env::var(\"QUONTO_TIMINGS\"); }\n";
        let f = lint_src("crates/core/src/fx.rs", direct);
        assert!(rules_of(&f).contains(&"R4.read"), "{f:?}");
        let unregistered = "pub fn f() -> &'static str { \"QUONTO_MYSTERY_KNOB\" }\n";
        let f = lint_src("crates/core/src/fx.rs", unregistered);
        assert!(rules_of(&f).contains(&"R4.unregistered"), "{f:?}");
        // Registered names used via the registry are fine.
        let ok = "pub fn f() -> bool { quonto::env::timings_enabled() } // QUONTO_TIMINGS\n";
        assert!(lint_src("crates/core/src/fx.rs", ok).is_empty());
        // The registry module itself is exempt.
        let registry = "fn raw() { std::env::var(\"QUONTO_TIMINGS\").ok(); }\n";
        assert!(lint_src("crates/core/src/env.rs", registry).is_empty());
    }

    #[test]
    fn r4_docs_checks_markdown() {
        let mut f = Vec::new();
        r4_docs(
            "README.md",
            "set `QUONTO_TIMINGS=1` to …",
            &registered,
            &mut f,
        );
        assert!(f.is_empty());
        r4_docs(
            "README.md",
            "set `QUONTO_OLD_KNOB=1` to …",
            &registered,
            &mut f,
        );
        assert_eq!(rules_of(&f), vec!["R4.unregistered"]);
    }

    #[test]
    fn r4_accepts_the_ebox_knob() {
        // QUONTO_EBOX is registered (mastro resolves the mode through
        // the registry accessor), so neither code mentions nor doc
        // mentions may fire R4.
        assert!(quonto::env::is_registered("QUONTO_EBOX"));
        let code = "pub fn f() -> Option<String> { quonto::env::ebox_mode() } // QUONTO_EBOX\n";
        assert!(lint_src("crates/obda/src/config.rs", code).is_empty());
        let mut f = Vec::new();
        r4_docs(
            "DESIGN.md",
            "set `QUONTO_EBOX=infer` to re-infer constraints from the data",
            &registered,
            &mut f,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r4_accepts_the_prune_cap_knob() {
        // QUONTO_PRUNE_CAP is registered (the prune-cap accessor reads
        // it through the registry), so neither code mentions nor doc
        // mentions may fire R4.
        assert!(quonto::env::is_registered("QUONTO_PRUNE_CAP"));
        let code =
            "pub fn f() -> usize { quonto::env::prune_cap().unwrap_or(512) } // QUONTO_PRUNE_CAP\n";
        assert!(lint_src("crates/obda/src/rewrite/subsume.rs", code).is_empty());
        let mut f = Vec::new();
        r4_docs(
            "DESIGN.md",
            "gated at `QUONTO_PRUNE_CAP` (default 512)",
            &registered,
            &mut f,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r5_ignore_and_print() {
        let src = "#[ignore]\nfn slow() {}\n#[ignore = \"needs 30s\"]\nfn slower() {}\n";
        assert_eq!(
            rules_of(&lint_src("crates/core/src/fx.rs", src)),
            vec!["R5.ignore"]
        );
        let lib_print = "pub fn f() { println!(\"x\"); }\n";
        assert_eq!(
            rules_of(&lint_src("crates/core/src/fx.rs", lib_print)),
            vec!["R5.print"]
        );
        // Binaries and eprintln are fine.
        assert!(lint_src("crates/core/src/bin/tool.rs", lib_print).is_empty());
        let eprint = "pub fn f() { eprintln!(\"x\"); }\n";
        assert!(lint_src("crates/core/src/fx.rs", eprint).is_empty());
    }

    #[test]
    fn r6_bans_raw_stderr_in_traced_library_code() {
        let src = "pub fn f() { eprintln!(\"mastro-timings total_ms=1\"); }\n";
        for path in [
            "crates/obda/src/fx.rs",
            "crates/sqlstore/src/fx.rs",
            "crates/mapping/src/fx.rs",
            "crates/server/src/fx.rs",
            "crates/obs/src/fx.rs",
        ] {
            assert_eq!(rules_of(&lint_src(path, src)), vec!["R6.print"], "{path}");
        }
        // The sink module, binaries, core, and tests are out of scope.
        assert!(lint_src("crates/obs/src/sink.rs", src).is_empty());
        assert!(lint_src("crates/server/src/bin/quonto_server.rs", src).is_empty());
        assert!(lint_src("crates/core/src/fx.rs", src).is_empty());
        assert!(lint_src("crates/obda/tests/fx.rs", src).is_empty());
        let in_test = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { eprintln!(\"debugging\"); }
}
";
        assert!(lint_src("crates/obda/src/fx.rs", in_test).is_empty());
        // An allow with a reason still works.
        let allowed = "\
pub fn f() {
    // lint: allow(R6.print, \"operator-facing notice, not timing output\")
    eprintln!(\"draining\");
}
";
        assert!(lint_src("crates/server/src/fx.rs", allowed).is_empty());
    }

    #[test]
    fn quonto_name_extraction() {
        assert_eq!(
            quonto_names("QUONTO_THREADS and QUONTO_TIMINGS=1"),
            vec!["QUONTO_THREADS", "QUONTO_TIMINGS"]
        );
        // A bare prefix (pattern string) is not a name.
        assert!(quonto_names("starts with QUONTO_ only").is_empty());
    }
}
