//! CLI shell for the xtask library: `lint`, `analyze`, `env-docs`,
//! and `obs-docs`.

use std::process::ExitCode;

use xtask::{analyze, baseline, docs, render_json, render_text, repo_root, run_lint};

const USAGE: &str = "\
usage: cargo run -p xtask -- <command> [flags]

commands:
  lint [--json] [--update-baseline]
      Run the per-line workspace static-analysis pass.
      --json              machine-readable output
      --update-baseline   rewrite lint-baseline.txt from current findings
  analyze [--json]
      Run the whole-workspace graph analyses: lock order (A1),
      telemetry-name drift (A2), invalidation soundness (A3).
      --json              machine-readable output
  env-docs [--write]
      Check (or with --write, refresh) the env-knob tables embedded in
      README.md and DESIGN.md from quonto::env::KNOBS.
  obs-docs [--write]
      Check (or with --write, refresh) the telemetry-name tables
      embedded in README.md and DESIGN.md from the collected literals.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<&str> = args.iter().map(String::as_str).collect();
    let cmd = if args.is_empty() { "" } else { args.remove(0) };
    match cmd {
        "lint" => lint(&args),
        "analyze" => analyze_cmd(&args),
        "env-docs" => env_docs(&args),
        "obs-docs" => obs_docs(&args),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn analyze_cmd(args: &[&str]) -> ExitCode {
    let mut json = false;
    for a in args {
        match *a {
            "--json" => json = true,
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match analyze::run_analyze(&repo_root()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", analyze::render_json(&report));
    } else {
        print!("{}", analyze::render_text(&report));
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn obs_docs(args: &[&str]) -> ExitCode {
    let mut write = false;
    for a in args {
        match *a {
            "--write" => write = true,
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = repo_root();
    let table = match analyze::workspace_telemetry_table(&root) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask obs-docs: {e}");
            return ExitCode::from(2);
        }
    };
    let mut stale = 0usize;
    for doc in docs::DOC_FILES {
        let path = root.join(doc);
        let content = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("xtask obs-docs: reading {doc}: {e}");
                return ExitCode::from(2);
            }
        };
        match docs::sync_block_between(&content, &table, docs::OBS_BEGIN, docs::OBS_END) {
            docs::SyncOutcome::UpToDate => println!("{doc}: up to date"),
            docs::SyncOutcome::Stale(updated) => {
                if write {
                    if let Err(e) = std::fs::write(&path, updated) {
                        eprintln!("xtask obs-docs: writing {doc}: {e}");
                        return ExitCode::from(2);
                    }
                    println!("{doc}: rewritten");
                } else {
                    println!("{doc}: STALE (run with --write)");
                    stale += 1;
                }
            }
            docs::SyncOutcome::MissingMarkers => {
                eprintln!(
                    "xtask obs-docs: {doc} is missing the `{}` / `{}` markers",
                    docs::OBS_BEGIN,
                    docs::OBS_END
                );
                stale += 1;
            }
        }
    }
    if stale == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn lint(args: &[&str]) -> ExitCode {
    let mut json = false;
    let mut update_baseline = false;
    for a in args {
        match *a {
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = repo_root();
    let report = match run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    if update_baseline {
        let path = root.join("lint-baseline.txt");
        if let Err(e) = baseline::save(&path, &report.fingerprints) {
            eprintln!("xtask lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "xtask lint: baselined {} fingerprint(s) into lint-baseline.txt",
            report.fingerprints.len()
        );
        return ExitCode::SUCCESS;
    }
    if json {
        println!("{}", render_json(&report));
    } else {
        print!("{}", render_text(&report));
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn env_docs(args: &[&str]) -> ExitCode {
    let mut write = false;
    for a in args {
        match *a {
            "--write" => write = true,
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = repo_root();
    let table = quonto::env::markdown_table();
    let mut stale = 0usize;
    for doc in docs::DOC_FILES {
        let path = root.join(doc);
        let content = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("xtask env-docs: reading {doc}: {e}");
                return ExitCode::from(2);
            }
        };
        match docs::sync_block(&content, &table) {
            docs::SyncOutcome::UpToDate => println!("{doc}: up to date"),
            docs::SyncOutcome::Stale(updated) => {
                if write {
                    if let Err(e) = std::fs::write(&path, updated) {
                        eprintln!("xtask env-docs: writing {doc}: {e}");
                        return ExitCode::from(2);
                    }
                    println!("{doc}: rewritten");
                } else {
                    println!("{doc}: STALE (run with --write)");
                    stale += 1;
                }
            }
            docs::SyncOutcome::MissingMarkers => {
                eprintln!(
                    "xtask env-docs: {doc} is missing the `{}` / `{}` markers",
                    docs::BEGIN,
                    docs::END
                );
                stale += 1;
            }
        }
    }
    if stale == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
