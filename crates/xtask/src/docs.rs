//! Env-knob documentation sync: the README/DESIGN knob tables are
//! rendered from `quonto::env::markdown_table()` into marker-delimited
//! blocks, so the docs cannot drift from the registry.
//!
//! ```text
//! <!-- quonto-env:begin -->
//! | Variable | Values | Default | What it does |
//! …
//! <!-- quonto-env:end -->
//! ```
//!
//! `xtask env-docs` reports stale blocks (exit 1); `--write` refreshes
//! them in place. `xtask lint` runs the same check as rule `R4.docs`.

pub const BEGIN: &str = "<!-- quonto-env:begin -->";
pub const END: &str = "<!-- quonto-env:end -->";

/// Markers for the generated telemetry-name table (`xtask obs-docs`,
/// checked by `xtask analyze` as rule `A2.table`).
pub const OBS_BEGIN: &str = "<!-- quonto-obs:begin -->";
pub const OBS_END: &str = "<!-- quonto-obs:end -->";

/// The documents that must carry the knob table.
pub const DOC_FILES: &[&str] = &["README.md", "DESIGN.md"];

/// Result of syncing one document's table block.
pub enum SyncOutcome {
    UpToDate,
    /// New content to write.
    Stale(String),
    MissingMarkers,
}

/// Replaces the env-knob marker block's interior with `table`.
pub fn sync_block(content: &str, table: &str) -> SyncOutcome {
    sync_block_between(content, table, BEGIN, END)
}

/// Replaces the interior of an arbitrary marker pair with `table`;
/// detects drift.
pub fn sync_block_between(content: &str, table: &str, begin: &str, end: &str) -> SyncOutcome {
    let Some(b) = content.find(begin) else {
        return SyncOutcome::MissingMarkers;
    };
    let Some(e) = content.find(end) else {
        return SyncOutcome::MissingMarkers;
    };
    if e < b {
        return SyncOutcome::MissingMarkers;
    }
    let block_start = b + begin.len();
    let current = &content[block_start..e];
    let wanted = format!("\n{table}");
    if current == wanted {
        SyncOutcome::UpToDate
    } else {
        let mut out = String::with_capacity(content.len() + table.len());
        out.push_str(&content[..block_start]);
        out.push_str(&wanted);
        out.push_str(&content[e..]);
        SyncOutcome::Stale(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_blocks_are_rewritten_in_place() {
        let table = quonto::env::markdown_table();
        let doc = format!("intro\n\n{BEGIN}\nold table\n{END}\n\noutro\n");
        let SyncOutcome::Stale(updated) = sync_block(&doc, &table) else {
            panic!("stale block must be detected");
        };
        assert!(updated.contains("QUONTO_TIMINGS"));
        assert!(updated.starts_with("intro"));
        assert!(updated.ends_with("outro\n"));
        // Idempotent: the rewritten doc is up to date.
        assert!(matches!(
            sync_block(&updated, &table),
            SyncOutcome::UpToDate
        ));
    }

    #[test]
    fn obs_markers_sync_independently_of_env_markers() {
        let doc = format!("{BEGIN}\nenv table\n{END}\n\n{OBS_BEGIN}\nold names\n{OBS_END}\n");
        let SyncOutcome::Stale(updated) = sync_block_between(&doc, "| new |\n", OBS_BEGIN, OBS_END)
        else {
            panic!("stale obs block must be detected");
        };
        assert!(updated.contains("| new |"));
        assert!(updated.contains("env table"), "env block untouched");
        assert!(matches!(
            sync_block_between(&updated, "| new |\n", OBS_BEGIN, OBS_END),
            SyncOutcome::UpToDate
        ));
    }

    #[test]
    fn missing_markers_are_reported() {
        assert!(matches!(
            sync_block("no markers here", "t"),
            SyncOutcome::MissingMarkers
        ));
        let reversed = format!("{END} {BEGIN}");
        assert!(matches!(
            sync_block(&reversed, "t"),
            SyncOutcome::MissingMarkers
        ));
    }
}
