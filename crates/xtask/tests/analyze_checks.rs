//! The graph analyses' acceptance tests: the committed tree must run
//! clean, and an injected violation per analysis must be caught — a
//! deliberate lock-order inversion, the PR 5 `AboxSystem::stats`
//! self-deadlock reconstructed, a typo'd counter name, and an unpaired
//! epoch bump — so a green run can't be a silently broken extractor.

use xtask::analyze::{analyze_sources, render_text, run_analyze};
use xtask::repo_root;
use xtask::rules::Finding;
use xtask::scanner::{scan, ScannedFile};

#[test]
fn workspace_is_analyze_clean() {
    let report = run_analyze(&repo_root()).expect("analyze pass runs");
    assert!(
        report.findings.is_empty(),
        "the committed tree must be analyze-clean:\n{}",
        render_text(&report)
    );
    // Sanity: the extraction actually saw the workspace — a graph with
    // no functions or a sweep with no telemetry names means the
    // extractor broke, not that the tree is clean.
    assert!(report.files > 100, "only {} files scanned", report.files);
    assert!(report.fns > 500, "only {} fns extracted", report.fns);
    assert!(report.names > 30, "only {} telemetry names", report.names);
}

fn findings_for(sources: &[(&str, &str)]) -> Vec<Finding> {
    let scanned: Vec<ScannedFile> = sources.iter().map(|(p, s)| scan(p, s)).collect();
    analyze_sources(&scanned).0
}

/// The PR 5 self-deadlock, reconstructed: `stats` built its return
/// struct with a live `rewrite_cache` guard in one field initializer
/// while another initializer called a helper that locked the same
/// mutex. The struct-literal temporary is the subtle part — it stays
/// alive across the remaining field initializers.
#[test]
fn pr5_stats_self_deadlock_is_detected() {
    let found = findings_for(&[(
        "crates/obda/src/inject.rs",
        "\
impl AboxSystem {
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            tbox_epoch: lock_or_recover(&self.rewrite_cache).epoch,
            cache: self.rewrite_cache_stats(),
            abox_size: self.abox.len(),
        }
    }
    fn rewrite_cache_stats(&self) -> CacheStats {
        lock_or_recover(&self.rewrite_cache).stats
    }
}
",
    )]);
    let re: Vec<&Finding> = found.iter().filter(|f| f.rule == "A1.reacquire").collect();
    assert_eq!(re.len(), 1, "got {found:?}");
    assert!(
        re[0].message.contains("AboxSystem.rewrite_cache"),
        "{}",
        re[0].message
    );
    assert!(
        re[0].message.contains("rewrite_cache_stats"),
        "{}",
        re[0].message
    );
}

/// A deliberate inversion: one function orders `inner` before `data`,
/// another (via a helper, so the edge crosses a call) orders `data`
/// before `inner`.
#[test]
fn injected_lock_order_inversion_is_detected() {
    let found = findings_for(&[(
        "crates/server/src/inject.rs",
        "\
impl Server {
    fn enqueue(&self) {
        let q = lock_or_recover(&self.inner);
        let d = lock_or_recover(&self.data);
    }
    fn drain(&self) {
        let d = lock_or_recover(&self.data);
        self.queue_len();
    }
    fn queue_len(&self) -> usize {
        lock_or_recover(&self.inner).len()
    }
}
",
    )]);
    assert!(
        found.iter().any(|f| f.rule == "A1.inversion"),
        "got {found:?}"
    );
}

/// A typo'd counter: the trace sink reads `ucq_rwa` but production
/// code only ever records `ucq_raw`.
#[test]
fn typoed_counter_is_detected_as_orphan_and_neardup() {
    let found = findings_for(&[
        (
            "crates/obs/src/trace.rs",
            "\
impl QueryTrace {
    pub fn render(&self) -> u64 {
        self.counter(\"ucq_rwa\")
    }
}
",
        ),
        (
            "crates/obda/src/inject.rs",
            "\
pub fn record(g: &SpanGuard) {
    g.count(\"ucq_raw\", 1);
}
",
        ),
    ]);
    assert!(
        found
            .iter()
            .any(|f| f.rule == "A2.orphan" && f.message.contains("ucq_rwa")),
        "got {found:?}"
    );
}

/// An unpaired epoch bump: the version advances but no memo
/// maintenance is reachable, so warm view extents would serve stale
/// answers while claiming the new epoch.
#[test]
fn unpaired_epoch_bump_is_detected() {
    let found = findings_for(&[(
        "crates/obda/src/inject.rs",
        "\
impl ObdaSystem {
    pub fn touch(&self) -> u64 {
        self.abox_version.fetch_add(1, Ordering::Relaxed) + 1
    }
}
",
    )]);
    assert!(
        found.iter().any(|f| f.rule == "A3.unpaired"),
        "got {found:?}"
    );
    // The PR 8 shape — bump plus reachable maintenance — is clean.
    let paired = findings_for(&[(
        "crates/obda/src/inject.rs",
        "\
impl ObdaSystem {
    pub fn apply(&self, delta: &Delta) -> u64 {
        let version = self.abox_version.fetch_add(1, Ordering::Relaxed) + 1;
        self.maintain(version);
        version
    }
    fn maintain(&self, version: u64) {
        maintain_memo(&self.ndl_memo, version);
    }
}
",
    )]);
    assert!(paired.is_empty(), "got {paired:?}");
}

#[test]
fn reasoned_analyze_allows_suppress_and_unused_allows_fire() {
    let suppressed = findings_for(&[(
        "crates/obda/src/inject.rs",
        "\
impl S {
    fn touch(&self) {
        // analyze: allow(A3.unpaired, \"epoch probe for tests; no cached extents exist yet\")
        self.version.fetch_add(1, Ordering::Relaxed);
    }
}
",
    )]);
    assert!(suppressed.is_empty(), "got {suppressed:?}");

    let unused = findings_for(&[(
        "crates/obda/src/inject.rs",
        "// analyze: allow(A1.reacquire, \"nothing to suppress\")\npub fn f() {}\n",
    )]);
    assert!(
        unused.iter().any(|f| f.rule == "A0.allow"),
        "got {unused:?}"
    );
}
