//! The lint's own acceptance tests: the committed tree must be clean,
//! and an injected violation must be caught (so a green run can't be a
//! silently broken scanner).

use xtask::rules::{check_file, Finding};
use xtask::scanner::scan;
use xtask::{render_text, repo_root, run_lint};

#[test]
fn workspace_is_lint_clean() {
    let report = run_lint(&repo_root()).expect("lint pass runs");
    assert!(
        report.findings.is_empty(),
        "the committed tree must be lint-clean:\n{}",
        render_text(&report)
    );
    // The committed baseline is kept empty — violations get fixed or
    // explicitly allowed, not ratcheted.
    assert_eq!(report.baselined, 0, "lint-baseline.txt must stay empty");
    // Sanity: the walk actually visited the workspace (not an empty dir).
    assert!(report.files > 100, "only {} files scanned", report.files);
}

fn findings_for(path: &str, src: &str) -> Vec<Finding> {
    let scanned = scan(path, src);
    check_file(&scanned, &|name| quonto::env::is_registered(name))
}

#[test]
fn injected_violations_are_caught() {
    // Each injected source must produce exactly the expected rule —
    // proving the green run above is meaningful.
    let cases: &[(&str, &str, &str)] = &[
        (
            "crates/server/src/inject.rs",
            "pub fn f(v: &[u8]) -> u8 { v.first().copied().unwrap() }",
            "R1.unwrap",
        ),
        (
            "crates/obda/src/inject.rs",
            "pub fn f() { panic!(\"boom\"); }",
            "R1.panic",
        ),
        (
            "crates/obda/src/inject.rs",
            "pub fn f(v: &[u8], i: usize) -> u8 { v[i] }",
            "R1.index",
        ),
        (
            "crates/core/src/inject.rs",
            "pub fn f(m: &std::sync::Mutex<u8>) -> u8 { *m.lock().unwrap() }",
            "R2.lock-unwrap",
        ),
        (
            "crates/core/src/inject.rs",
            "pub unsafe fn f(p: *const u8) -> u8 { *p }",
            "R3.safety",
        ),
        (
            "crates/core/src/inject.rs",
            "pub fn f() -> Option<String> { std::env::var(\"QUONTO_BOGUS\").ok() }",
            "R4.read",
        ),
        (
            "crates/core/src/inject.rs",
            "pub fn f() { println!(\"debug\"); }",
            "R5.print",
        ),
        (
            "crates/obda/src/inject.rs",
            "// lint: allow(R1.unwrap)\npub fn f() {}",
            "R0.allow",
        ),
    ];
    for (path, src, rule) in cases {
        let found = findings_for(path, src);
        assert!(
            found.iter().any(|f| f.rule == *rule),
            "{rule} not raised for {src:?}; got {:?}",
            found.iter().map(|f| f.rule).collect::<Vec<_>>()
        );
    }
}

#[test]
fn reasoned_allows_suppress_and_unused_allows_fire() {
    let suppressed = findings_for(
        "crates/obda/src/inject.rs",
        "pub fn f(v: &[u8], i: usize) -> u8 {\n    // lint: allow(R1.index, \"caller guarantees i < v.len()\")\n    v[i]\n}",
    );
    assert!(suppressed.is_empty(), "got {suppressed:?}");

    // The same allow with nothing to suppress is itself a finding.
    let unused = findings_for(
        "crates/obda/src/inject.rs",
        "// lint: allow(R1.index, \"caller guarantees i < v.len()\")\npub fn f() {}",
    );
    assert!(
        unused.iter().any(|f| f.rule == "R0.allow"),
        "got {unused:?}"
    );
}
