//! Determinism of the sharded tableau classifier: at any thread count
//! the result must be identical to the sequential run, and repeated
//! threaded runs must be identical to each other (no scheduling
//! dependence leaks into the output).

use obda_genont::OntologySpec;
use obda_owl::tbox_to_owl;
use obda_reasoners::{classify_tableau, classify_tableau_threaded, Budget, TableauProfile};

fn spec(concepts: usize, seed: u64) -> OntologySpec {
    OntologySpec {
        name: format!("det{concepts}"),
        concepts,
        roles: 4,
        roots: 2,
        existentials: concepts / 4,
        qualified_existentials: concepts / 8,
        disjointness: concepts / 10,
        seed,
        ..OntologySpec::default()
    }
}

#[test]
fn threaded_runs_are_deterministic_and_match_sequential() {
    // One generated ontology per profile keeps the all-pairs profiles
    // affordable in debug builds while still exercising every phase.
    for (profile, seed, concepts) in [
        (TableauProfile::Naive, 7u64, 24usize),
        (TableauProfile::Told, 41, 24),
        (TableauProfile::Enhanced, 23, 40),
    ] {
        let tbox = spec(concepts, seed).generate();
        let onto = tbox_to_owl(&tbox);
        let sequential = classify_tableau(&onto, profile, Budget::default()).unwrap();
        let run1 = classify_tableau_threaded(&onto, profile, Budget::default(), 4).unwrap();
        let run2 = classify_tableau_threaded(&onto, profile, Budget::default(), 4).unwrap();
        assert_eq!(
            run1,
            run2,
            "{} seed {seed}: two threads=4 runs differ",
            profile.name()
        );
        assert_eq!(
            sequential,
            run1,
            "{} seed {seed}: threads=4 differs from sequential",
            profile.name()
        );
    }
}

#[test]
fn thread_counts_agree_on_handwritten_ontology() {
    let src = "SubClassOf(A B)\nSubClassOf(B C)\nSubClassOf(D ObjectUnionOf(A B))\n\
               EquivalentClasses(E C)\nSubClassOf(F A)\nSubClassOf(F ObjectComplementOf(A))\n\
               SubObjectPropertyOf(p r)";
    let onto = obda_owl::parse_owl(src).unwrap();
    for profile in [
        TableauProfile::Naive,
        TableauProfile::Told,
        TableauProfile::Enhanced,
    ] {
        let reference = classify_tableau(&onto, profile, Budget::default()).unwrap();
        for threads in [2, 3, 4, 8] {
            let got =
                classify_tableau_threaded(&onto, profile, Budget::default(), threads).unwrap();
            assert_eq!(got, reference, "{} threads={threads}", profile.name());
        }
    }
}
