//! A reasoner-independent classification result, used to compare the
//! output of the graph-based classifier (`quonto`), the tableau profiles
//! and the consequence-based classifier in the Figure 1 benchmark and in
//! cross-validation tests.

use std::collections::{BTreeSet, HashSet};

use obda_dllite::{ConceptId, RoleId};

/// Classification restricted to *named* predicates: non-reflexive
/// subsumption pairs between satisfiable atomic concepts (and optionally
/// atomic roles), plus the unsatisfiable sets.
///
/// `role_pairs == None` means the reasoner does not compute the property
/// hierarchy at all — the completeness gap the paper points out for the
/// CB reasoner ("it does not compute property hierarchy").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NamedClassification {
    /// `a ⊑ b` pairs between distinct satisfiable atomic concepts.
    pub concept_pairs: BTreeSet<(ConceptId, ConceptId)>,
    /// `p ⊑ r` pairs between distinct satisfiable atomic roles (direct
    /// polarity only), or `None` if the reasoner skips the property
    /// hierarchy.
    pub role_pairs: Option<BTreeSet<(RoleId, RoleId)>>,
    /// Unsatisfiable atomic concepts.
    pub unsat_concepts: BTreeSet<ConceptId>,
    /// Unsatisfiable atomic roles (empty when the property hierarchy is
    /// skipped).
    pub unsat_roles: BTreeSet<RoleId>,
}

impl NamedClassification {
    /// Number of concept pairs (the usual headline count).
    pub fn num_concept_pairs(&self) -> usize {
        self.concept_pairs.len()
    }

    /// Compares the concept-level parts (pairs + unsat) of two results.
    pub fn concepts_agree(&self, other: &NamedClassification) -> bool {
        self.concept_pairs == other.concept_pairs && self.unsat_concepts == other.unsat_concepts
    }
}

/// Deduplicates and sorts raw pair lists into the canonical form.
pub fn canonical_pairs(
    pairs: impl IntoIterator<Item = (ConceptId, ConceptId)>,
) -> BTreeSet<(ConceptId, ConceptId)> {
    pairs.into_iter().filter(|(a, b)| a != b).collect()
}

/// Utility: transitive closure of a told-subsumer adjacency (small graphs;
/// used by the tableau profiles and tests).
pub fn reachability_closure(n: usize, edges: &HashSet<(u32, u32)>) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a as usize].push(b);
    }
    let mut out = vec![Vec::new(); n];
    let mut mark = vec![u32::MAX; n];
    for src in 0..n as u32 {
        let mut stack: Vec<u32> = adj[src as usize].clone();
        let mut reach = Vec::new();
        while let Some(v) = stack.pop() {
            if mark[v as usize] == src {
                continue;
            }
            mark[v as usize] = src;
            reach.push(v);
            stack.extend_from_slice(&adj[v as usize]);
        }
        reach.sort_unstable();
        out[src as usize] = reach;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_pairs_drop_reflexive() {
        let pairs = canonical_pairs(vec![
            (ConceptId(0), ConceptId(1)),
            (ConceptId(1), ConceptId(1)),
            (ConceptId(0), ConceptId(1)),
        ]);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn reachability_closure_small() {
        let mut edges = HashSet::new();
        edges.insert((0u32, 1u32));
        edges.insert((1, 2));
        let out = reachability_closure(3, &edges);
        assert_eq!(out[0], vec![1, 2]);
        assert_eq!(out[2], Vec::<u32>::new());
    }

    #[test]
    fn concepts_agree_ignores_role_side() {
        let mut a = NamedClassification::default();
        let mut b = NamedClassification::default();
        a.concept_pairs.insert((ConceptId(0), ConceptId(1)));
        b.concept_pairs.insert((ConceptId(0), ConceptId(1)));
        a.role_pairs = Some(BTreeSet::new());
        b.role_pairs = None;
        assert!(a.concepts_agree(&b));
    }
}
