//! Bounded restricted chase for DL-Lite_R/A.
//!
//! The chase expands an ABox with the positive inclusions of a TBox,
//! inventing labelled nulls as witnesses of existential axioms. For
//! DL-Lite the full chase (the canonical model) can be infinite, but
//! certain answers of a conjunctive query `q` only depend on the part of
//! the canonical model within distance `|q|` of the original constants —
//! so a depth-bounded chase is a sound and complete certain-answer oracle
//! for queries up to that size. `mastro`'s property tests use it to
//! validate the PerfectRef rewriting.
//!
//! Nulls are named `_:n<k>` and flagged by [`ChasedAbox::is_null`]; answer
//! tuples must range over original constants only.

use std::collections::HashSet;

use obda_dllite::{
    Abox, Assertion, Axiom, BasicConcept, BasicRole, GeneralConcept, GeneralRole, IndividualId,
    Tbox,
};

/// Result of chasing an ABox: the expanded ABox plus null bookkeeping.
#[derive(Debug, Clone)]
pub struct ChasedAbox {
    /// The expanded ABox (shares individual ids with the input for the
    /// original constants).
    pub abox: Abox,
    /// Number of original (non-null) individuals; ids below this bound are
    /// constants, ids at or above are nulls.
    pub num_constants: u32,
}

impl ChasedAbox {
    /// Whether an individual is an invented null.
    pub fn is_null(&self, i: IndividualId) -> bool {
        i.0 >= self.num_constants
    }
}

/// Membership tests used by the chase applicability checks.
struct Facts {
    concept: HashSet<(u32, u32)>,      // (concept, individual)
    role: HashSet<(u32, u32, u32)>,    // (role, subject, object)
    attr_subject: HashSet<(u32, u32)>, // (attribute, individual)
}

impl Facts {
    fn from_abox(ab: &Abox) -> Self {
        let mut f = Facts {
            concept: HashSet::new(),
            role: HashSet::new(),
            attr_subject: HashSet::new(),
        };
        for a in ab.assertions() {
            match a {
                Assertion::Concept(c, i) => {
                    f.concept.insert((c.0, i.0));
                }
                Assertion::Role(p, s, o) => {
                    f.role.insert((p.0, s.0, o.0));
                }
                Assertion::Attribute(u, s, _) => {
                    f.attr_subject.insert((u.0, s.0));
                }
            }
        }
        f
    }

    fn holds_basic(&self, b: BasicConcept, i: u32) -> bool {
        match b {
            BasicConcept::Atomic(a) => self.concept.contains(&(a.0, i)),
            BasicConcept::Exists(BasicRole::Direct(p)) => {
                self.role.iter().any(|&(r, s, _)| r == p.0 && s == i)
            }
            BasicConcept::Exists(BasicRole::Inverse(p)) => {
                self.role.iter().any(|&(r, _, o)| r == p.0 && o == i)
            }
            BasicConcept::AttrDomain(u) => self.attr_subject.contains(&(u.0, i)),
        }
    }

    fn role_pairs(&self, q: BasicRole) -> Vec<(u32, u32)> {
        let p = q.role().0;
        self.role
            .iter()
            .filter(|&&(r, _, _)| r == p)
            .map(|&(_, s, o)| if q.is_inverse() { (o, s) } else { (s, o) })
            .collect()
    }
}

/// Chases `abox` with the positive inclusions of `tbox`, bounding null
/// generation at `max_depth` hops from the original constants.
///
/// The implementation is the *restricted* chase: an existential axiom
/// fires on an individual only if no witness already exists.
pub fn chase(tbox: &Tbox, abox: &Abox, max_depth: usize) -> ChasedAbox {
    let mut out = abox.clone();
    let num_constants = abox.num_individuals() as u32;
    // depth[i] = distance of individual i from the original constants.
    let mut depth: Vec<usize> = vec![0; abox.num_individuals()];
    let mut next_null = 0usize;

    loop {
        let facts = Facts::from_abox(&out);
        let mut additions: Vec<Assertion> = Vec::new();
        let mut new_nulls: Vec<(usize, Assertion, Assertion)> = Vec::new(); // (depth, role fact, filler fact placeholder)

        let n = out.num_individuals() as u32;
        for ax in tbox.positive_inclusions() {
            match *ax {
                Axiom::ConceptIncl(lhs, GeneralConcept::Basic(rhs)) => {
                    for i in 0..n {
                        if facts.holds_basic(lhs, i) && !facts.holds_basic(rhs, i) {
                            match rhs {
                                BasicConcept::Atomic(a) => {
                                    additions.push(Assertion::Concept(a, IndividualId(i)));
                                }
                                BasicConcept::Exists(q) => {
                                    if depth[i as usize] < max_depth {
                                        new_nulls.push((
                                            depth[i as usize] + 1,
                                            role_fact(q, IndividualId(i), IndividualId(u32::MAX)),
                                            Assertion::Concept(
                                                obda_dllite::ConceptId(u32::MAX),
                                                IndividualId(u32::MAX),
                                            ),
                                        ));
                                        // The filler placeholder is unused for
                                        // unqualified existentials; marked by
                                        // the MAX concept id.
                                    }
                                }
                                BasicConcept::AttrDomain(u) => {
                                    additions.push(Assertion::Attribute(
                                        u,
                                        IndividualId(i),
                                        obda_dllite::Value::Text(format!("_:v{next_null}")),
                                    ));
                                }
                            }
                        }
                    }
                }
                Axiom::ConceptIncl(lhs, GeneralConcept::QualExists(q, a)) => {
                    for i in 0..n {
                        if facts.holds_basic(lhs, i) {
                            // Witness must be both a q-successor and in a.
                            let has_witness = facts
                                .role_pairs(q)
                                .iter()
                                .any(|&(s, o)| s == i && facts.concept.contains(&(a.0, o)));
                            if !has_witness && depth[i as usize] < max_depth {
                                new_nulls.push((
                                    depth[i as usize] + 1,
                                    role_fact(q, IndividualId(i), IndividualId(u32::MAX)),
                                    Assertion::Concept(a, IndividualId(u32::MAX)),
                                ));
                            }
                        }
                    }
                }
                Axiom::RoleIncl(q1, GeneralRole::Basic(q2)) => {
                    for (s, o) in facts.role_pairs(q1) {
                        let (p2, s2, o2) = match q2 {
                            BasicRole::Direct(p) => (p, s, o),
                            BasicRole::Inverse(p) => (p, o, s),
                        };
                        if !facts.role.contains(&(p2.0, s2, o2)) {
                            additions.push(Assertion::Role(p2, IndividualId(s2), IndividualId(o2)));
                        }
                    }
                }
                Axiom::AttrIncl(u1, u2) => {
                    let pairs: Vec<_> = out
                        .attribute_instances(u1)
                        .map(|(s, v)| (s, v.clone()))
                        .collect();
                    for (s, v) in pairs {
                        let a = Assertion::Attribute(u2, s, v);
                        if !out.contains(&a) {
                            additions.push(a);
                        }
                    }
                }
                _ => {}
            }
        }

        if additions.is_empty() && new_nulls.is_empty() {
            break;
        }
        for a in additions {
            out.add(a);
        }
        for (d, role_fact, filler_fact) in new_nulls {
            let null_name = format!("_:n{next_null}");
            next_null += 1;
            let null = out.individual(&null_name);
            if null.index() >= depth.len() {
                depth.push(d);
            }
            match role_fact {
                Assertion::Role(p, s, o) => {
                    let (s, o) = (
                        if s.0 == u32::MAX { null } else { s },
                        if o.0 == u32::MAX { null } else { o },
                    );
                    out.add(Assertion::Role(p, s, o));
                }
                _ => unreachable!(),
            }
            if let Assertion::Concept(a, _) = filler_fact {
                if a.0 != u32::MAX {
                    out.add(Assertion::Concept(a, null));
                }
            }
        }
    }

    ChasedAbox {
        abox: out,
        num_constants,
    }
}

fn role_fact(q: BasicRole, subj: IndividualId, null: IndividualId) -> Assertion {
    match q {
        BasicRole::Direct(p) => Assertion::Role(p, subj, null),
        BasicRole::Inverse(p) => Assertion::Role(p, null, subj),
    }
}

/// Checks ABox consistency w.r.t. the TBox by chasing to depth
/// `max_depth` and testing every negative inclusion and unsatisfiable
/// membership on the result. For DL-Lite a depth-1 chase is sufficient
/// for consistency (negative inclusions only inspect single individuals
/// and their immediate role memberships), but callers may pass more.
pub fn is_consistent(tbox: &Tbox, abox: &Abox, max_depth: usize) -> bool {
    let chased = chase(tbox, abox, max_depth);
    let facts = Facts::from_abox(&chased.abox);
    let n = chased.abox.num_individuals() as u32;
    for ax in tbox.negative_inclusions() {
        match *ax {
            Axiom::ConceptIncl(b1, GeneralConcept::Neg(b2)) => {
                for i in 0..n {
                    if facts.holds_basic(b1, i) && facts.holds_basic(b2, i) {
                        return false;
                    }
                }
            }
            Axiom::RoleIncl(q1, GeneralRole::Neg(q2)) => {
                let pairs2: HashSet<(u32, u32)> = facts.role_pairs(q2).into_iter().collect();
                if facts.role_pairs(q1).iter().any(|p| pairs2.contains(p)) {
                    return false;
                }
            }
            Axiom::AttrNegIncl(u1, u2) => {
                // Disjoint attributes clash when an individual shares the
                // same value in both.
                for (s, v) in chased.abox.attribute_instances(u1) {
                    if chased
                        .abox
                        .attribute_instances(u2)
                        .any(|(s2, v2)| s2 == s && v2 == v)
                    {
                        return false;
                    }
                }
            }
            _ => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{parse_abox, parse_tbox};

    #[test]
    fn atomic_inclusions_propagate() {
        let t = parse_tbox("concept A B\nA [= B").unwrap();
        let ab = parse_abox("A(x)", &t.sig).unwrap();
        let chased = chase(&t, &ab, 3);
        let b = t.sig.find_concept("B").unwrap();
        let x = chased.abox.find_individual("x").unwrap();
        assert!(chased.abox.contains(&Assertion::Concept(b, x)));
    }

    #[test]
    fn existentials_invent_nulls_up_to_depth() {
        let t = parse_tbox("concept A\nrole p\nA [= exists p").unwrap();
        let ab = parse_abox("A(x)", &t.sig).unwrap();
        let chased = chase(&t, &ab, 2);
        // One null created for x's witness; witness has no A so no chain.
        assert_eq!(chased.abox.num_individuals(), 2);
        assert!(chased.is_null(IndividualId(1)));
    }

    #[test]
    fn qualified_existentials_type_their_witness_and_chain() {
        let t = parse_tbox("concept A\nrole p\nA [= exists p . A").unwrap();
        let ab = parse_abox("A(x)", &t.sig).unwrap();
        let chased = chase(&t, &ab, 3);
        // x -> n1 -> n2 -> n3, each in A; nulls stop at depth 3.
        assert_eq!(chased.abox.num_individuals(), 4);
        let a = t.sig.find_concept("A").unwrap();
        assert_eq!(chased.abox.concept_instances(a).count(), 4);
    }

    #[test]
    fn restricted_chase_reuses_existing_witnesses() {
        let t = parse_tbox("concept A B\nrole p\nA [= exists p . B").unwrap();
        let ab = parse_abox("A(x)\np(x, y)\nB(y)", &t.sig).unwrap();
        let chased = chase(&t, &ab, 3);
        // y already witnesses the axiom: no null needed.
        assert_eq!(chased.abox.num_individuals(), 2);
    }

    #[test]
    fn role_inclusions_copy_pairs() {
        let t = parse_tbox("role p r\np [= inv(r)").unwrap();
        let ab = parse_abox("p(x, y)", &t.sig).unwrap();
        let chased = chase(&t, &ab, 1);
        let r = t.sig.find_role("r").unwrap();
        let x = chased.abox.find_individual("x").unwrap();
        let y = chased.abox.find_individual("y").unwrap();
        assert!(chased.abox.contains(&Assertion::Role(r, y, x)));
    }

    #[test]
    fn consistency_detects_concept_clash() {
        let t = parse_tbox("concept A B C\nA [= B\nB [= not C").unwrap();
        let ab = parse_abox("A(x)\nC(x)", &t.sig).unwrap();
        assert!(!is_consistent(&t, &ab, 1));
        let ab2 = parse_abox("A(x)\nC(y)", &t.sig).unwrap();
        assert!(is_consistent(&t, &ab2, 1));
    }

    #[test]
    fn consistency_detects_existential_clash() {
        // p(x,y) puts x in ∃p which is disjoint from A.
        let t = parse_tbox("concept A\nrole p\nexists p [= not A").unwrap();
        let ab = parse_abox("p(x, y)\nA(x)", &t.sig).unwrap();
        assert!(!is_consistent(&t, &ab, 1));
    }

    #[test]
    fn consistency_detects_role_clash() {
        let t = parse_tbox("role p r s\np [= r\np [= s\nr [= not s").unwrap();
        let ab = parse_abox("p(x, y)", &t.sig).unwrap();
        assert!(!is_consistent(&t, &ab, 1));
    }

    #[test]
    fn attribute_domain_invents_value() {
        let t = parse_tbox("concept A\nattribute u\nA [= domain(u)").unwrap();
        let ab = parse_abox("A(x)", &t.sig).unwrap();
        let chased = chase(&t, &ab, 2);
        let u = t.sig.find_attribute("u").unwrap();
        assert_eq!(chased.abox.attribute_instances(u).count(), 1);
    }
}
