//! A **consequence-based classifier** in the style of the CB reasoner
//! (Kazakov), the fourth competitor of Figure 1.
//!
//! Instead of testing subsumptions pairwise (tableau) or materializing a
//! reachability closure (QuOnto), a consequence-based reasoner maintains a
//! *subsumer set* `S(B)` per basic concept and propagates derived
//! inclusions through a worklist until saturation — linear-ish in the
//! number of derived subsumptions for Horn inputs, which DL-Lite is.
//!
//! Faithful to the paper's observation about CB ("it does not compute
//! property hierarchy"), this classifier outputs **concept classification
//! only**: [`classify_consequence`] returns `role_pairs == None`. It uses
//! the role hierarchy internally (it must, to propagate `∃Q` subsumers
//! correctly) but never reports it. Attributes are likewise skipped,
//! mirroring CB's focus on class hierarchies.

use std::collections::BTreeSet;

use obda_dllite::{
    Axiom, BasicConcept, BasicRole, ConceptId, GeneralConcept, GeneralRole, RoleId, Tbox,
};

use crate::classification::NamedClassification;

/// Dense encoding of basic concepts for the worklist sets:
/// `0..nc` = atomic, `nc + 2p` = `∃P`, `nc + 2p + 1` = `∃P⁻`.
#[derive(Clone, Copy)]
struct Enc {
    nc: u32,
}

impl Enc {
    fn encode(self, b: BasicConcept) -> Option<u32> {
        match b {
            BasicConcept::Atomic(a) => Some(a.0),
            BasicConcept::Exists(q) => Some(self.nc + 2 * q.role().0 + q.is_inverse() as u32),
            BasicConcept::AttrDomain(_) => None, // attributes skipped (CB-style)
        }
    }

    fn atomic(self, v: u32) -> Option<ConceptId> {
        (v < self.nc).then_some(ConceptId(v))
    }
}

/// Dense membership bitmap plus insertion-ordered list: the subsumer-set
/// representation of the CB worklist.
struct SubsumerSet {
    bits: Vec<u64>,
    list: Vec<u32>,
}

impl SubsumerSet {
    fn new(n: usize) -> Self {
        SubsumerSet {
            bits: vec![0; n.div_ceil(64)],
            list: Vec::new(),
        }
    }

    #[inline]
    fn insert(&mut self, v: u32) -> bool {
        let (w, b) = ((v / 64) as usize, v % 64);
        if self.bits[w] & (1 << b) != 0 {
            return false;
        }
        self.bits[w] |= 1 << b;
        self.list.push(v);
        true
    }

    #[inline]
    fn contains(&self, v: u32) -> bool {
        let (w, b) = ((v / 64) as usize, v % 64);
        self.bits[w] & (1 << b) != 0
    }

    #[inline]
    fn list(&self) -> &[u32] {
        &self.list
    }
}

/// Classifies the atomic concepts of `t` with consequence-based
/// saturation. See the module docs for the (deliberate) completeness gap
/// on the property hierarchy.
pub fn classify_consequence(t: &Tbox) -> NamedClassification {
    let (subsumers, unsat, enc, nc) = saturate(t);
    // Report: named concept pairs among satisfiable concepts; no roles.
    let mut out = NamedClassification {
        role_pairs: None,
        ..NamedClassification::default()
    };
    for a in 0..nc {
        if unsat[a as usize] {
            out.unsat_concepts.insert(ConceptId(a));
            continue;
        }
        for &s in subsumers[a as usize].list() {
            if s != a {
                if let Some(b) = enc.atomic(s) {
                    if !unsat[s as usize] {
                        out.concept_pairs.insert((ConceptId(a), b));
                    }
                }
            }
        }
    }
    out
}

/// Runs the consequence-based saturation and returns only
/// `(satisfiable-pair count, unsat-concept count)` — the benchmark entry
/// point, which (like the graph classifier's timed section) excludes the
/// cost of materializing an ordered pair set.
pub fn consequence_stats(t: &Tbox) -> (usize, usize) {
    let (subsumers, unsat, enc, nc) = saturate(t);
    let mut pairs = 0usize;
    let mut unsat_count = 0usize;
    for a in 0..nc {
        if unsat[a as usize] {
            unsat_count += 1;
            continue;
        }
        for &s in subsumers[a as usize].list() {
            if s != a && enc.atomic(s).is_some() && !unsat[s as usize] {
                pairs += 1;
            }
        }
    }
    (pairs, unsat_count)
}

/// The saturation core shared by [`classify_consequence`] and
/// [`consequence_stats`].
fn saturate(t: &Tbox) -> (Vec<SubsumerSet>, Vec<bool>, Enc, u32) {
    let nc = t.sig.num_concepts() as u32;
    let nr = t.sig.num_roles() as u32;
    let enc = Enc { nc };
    let n = (nc + 2 * nr) as usize;

    // Index axioms by encoded LHS.
    let mut incl_by_lhs: Vec<Vec<u32>> = vec![Vec::new(); n]; // B → encoded RHS basics
    let mut qual_by_lhs: Vec<Vec<(BasicRole, ConceptId)>> = vec![Vec::new(); n];
    let mut neg_by_lhs: Vec<Vec<u32>> = vec![Vec::new(); n];
    // Role hierarchy worklist closure (internal use only).
    let role_index = |q: BasicRole| -> usize { (2 * q.role().0 + q.is_inverse() as u32) as usize };
    let mut role_edges: Vec<Vec<BasicRole>> = vec![Vec::new(); (2 * nr) as usize];
    let mut role_neg: Vec<(BasicRole, BasicRole)> = Vec::new();

    for ax in t.axioms() {
        match *ax {
            Axiom::ConceptIncl(lhs, GeneralConcept::Basic(rhs)) => {
                if let (Some(l), Some(r)) = (enc.encode(lhs), enc.encode(rhs)) {
                    incl_by_lhs[l as usize].push(r);
                }
            }
            Axiom::ConceptIncl(lhs, GeneralConcept::QualExists(q, a)) => {
                if let Some(l) = enc.encode(lhs) {
                    qual_by_lhs[l as usize].push((q, a));
                    incl_by_lhs[l as usize].push(enc.encode(BasicConcept::Exists(q)).unwrap());
                }
            }
            Axiom::ConceptIncl(lhs, GeneralConcept::Neg(rhs)) => {
                if let (Some(l), Some(r)) = (enc.encode(lhs), enc.encode(rhs)) {
                    neg_by_lhs[l as usize].push(r);
                    neg_by_lhs[r as usize].push(l);
                }
            }
            Axiom::RoleIncl(q1, GeneralRole::Basic(q2)) => {
                role_edges[role_index(q1)].push(q2);
                role_edges[role_index(q1.inverse())].push(q2.inverse());
            }
            Axiom::RoleIncl(q1, GeneralRole::Neg(q2)) => {
                role_neg.push((q1, q2));
                role_neg.push((q1.inverse(), q2.inverse()));
            }
            // Attributes are outside CB's scope.
            Axiom::AttrIncl(_, _) | Axiom::AttrNegIncl(_, _) => {}
        }
    }

    // Close the role hierarchy (reflexive-transitive) per basic role.
    let all_roles: Vec<BasicRole> = (0..nr)
        .flat_map(|p| [BasicRole::Direct(RoleId(p)), BasicRole::Inverse(RoleId(p))])
        .collect();
    let mut role_supers: Vec<Vec<BasicRole>> = vec![Vec::new(); (2 * nr) as usize];
    for &q in &all_roles {
        let mut seen: BTreeSet<BasicRole> = BTreeSet::new();
        let mut stack = vec![q];
        while let Some(r) = stack.pop() {
            if seen.insert(r) {
                stack.extend(role_edges[role_index(r)].iter().copied());
            }
        }
        role_supers[role_index(q)] = seen.into_iter().collect();
    }
    // Role unsatisfiability from role disjointness.
    let mut role_unsat = vec![false; (2 * nr) as usize];
    for &q in &all_roles {
        let supers = &role_supers[role_index(q)];
        let clash = role_neg.iter().any(|&(r, s)| {
            (supers.contains(&r) && supers.contains(&s)) || (r == s && supers.contains(&r))
        });
        if clash {
            role_unsat[role_index(q)] = true;
        }
    }
    // Cluster closure: P unsat ⟺ P⁻ unsat.
    for p in 0..nr {
        let d = (2 * p) as usize;
        let i = (2 * p + 1) as usize;
        if role_unsat[d] || role_unsat[i] {
            role_unsat[d] = true;
            role_unsat[i] = true;
        }
    }

    // ∃Q ⊑ ∃Q' for Q ⊑* Q' enters the axiom index so the worklist rule
    // can traverse it like any asserted inclusion.
    for &q in &all_roles {
        let from = enc.encode(BasicConcept::Exists(q)).unwrap();
        for &sup in &role_supers[role_index(q)] {
            if sup != q {
                let to = enc.encode(BasicConcept::Exists(sup)).unwrap();
                incl_by_lhs[from as usize].push(to);
            }
        }
    }

    // Subsumer sets with a worklist of (concept, new subsumer). Dense
    // bitmap + insertion list per concept: O(1) membership and insert,
    // cheap iteration — BTree sets made the dense biomedical closures
    // (10⁸ derived pairs) minutes-slow.
    let mut subsumers: Vec<SubsumerSet> = (0..n).map(|_| SubsumerSet::new(n)).collect();
    let mut unsat = vec![false; n];
    let mut work: Vec<(u32, u32)> = Vec::with_capacity(n);
    for v in 0..n as u32 {
        subsumers[v as usize].insert(v);
        work.push((v, v));
    }
    // Unsat roles empty their existentials.
    for &q in &all_roles {
        if role_unsat[role_index(q)] {
            let from = enc.encode(BasicConcept::Exists(q)).unwrap();
            unsat[from as usize] = true;
        }
    }

    let has_negatives = !role_neg.is_empty() || neg_by_lhs.iter().any(|v| !v.is_empty());
    while let Some((b, s)) = work.pop() {
        // Rule 1: s ⊑ r axiom ⟹ b ⊑ r.
        for &r in &incl_by_lhs[s as usize] {
            if subsumers[b as usize].insert(r) {
                work.push((b, r));
            }
        }
        // Rule 2: qualified axioms on s contribute their existentials
        // through every super-role (the `∃Q` weakenings were indexed at
        // build time via incl_by_lhs + role seeding, so nothing extra is
        // needed here beyond unsat filler tracking).
        for &(q, a) in &qual_by_lhs[s as usize] {
            if unsat[a.0 as usize] || role_unsat[role_index(q)] {
                unsat[b as usize] = true;
            }
        }
        // Rule 3: disjointness in the subsumer set ⟹ unsatisfiable.
        for &d in &neg_by_lhs[s as usize] {
            if subsumers[b as usize].contains(d) {
                unsat[b as usize] = true;
            }
        }
    }

    // Unsat propagation to fixpoint: subsumption into an unsat concept,
    // unsat fillers, and role clusters (a second cheap pass; the worklist
    // above discovers most cases, this closes the rest). Without negative
    // inclusions nothing can ever be unsatisfiable, so skip the whole
    // phase — this matters on the NI-free biomedical suites.
    let mut more = has_negatives;
    while more {
        let mut changed = false;
        for b in 0..n {
            if unsat[b] {
                continue;
            }
            if subsumers[b].list().iter().any(|&s| unsat[s as usize]) {
                unsat[b] = true;
                changed = true;
                continue;
            }
            for i in 0..subsumers[b].list().len() {
                let s = subsumers[b].list()[i];
                for &(q, a) in &qual_by_lhs[s as usize] {
                    if unsat[a.0 as usize] || role_unsat[role_index(q)] {
                        unsat[b] = true;
                        changed = true;
                    }
                    // Pair rule: the witness lies in A ⊓ ∃Q⁻; an NI
                    // between any of their subsumers empties the LHS.
                    if has_negatives && !unsat[b] {
                        let range = enc.encode(BasicConcept::Exists(q.inverse())).unwrap();
                        let a_enc = a.0;
                        let cross = subsumers[a_enc as usize].list().iter().any(|&sa| {
                            neg_by_lhs[sa as usize]
                                .iter()
                                .any(|&d| subsumers[range as usize].contains(d))
                        });
                        if cross {
                            unsat[b] = true;
                            changed = true;
                        }
                    }
                }
                if unsat[b] {
                    break;
                }
                for &d in &neg_by_lhs[s as usize] {
                    if subsumers[b].contains(d) {
                        unsat[b] = true;
                        changed = true;
                        break;
                    }
                }
                if unsat[b] {
                    break;
                }
            }
        }
        // ∃P unsat ⟹ P, P⁻, ∃P⁻ unsat.
        for p in 0..nr {
            let ep = (nc + 2 * p) as usize;
            let ei = (nc + 2 * p + 1) as usize;
            if (unsat[ep] || unsat[ei]) && !(unsat[ep] && unsat[ei]) {
                unsat[ep] = true;
                unsat[ei] = true;
                changed = true;
            }
        }
        more = changed;
    }

    (subsumers, unsat, enc, nc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::parse_tbox;

    fn classify(src: &str) -> (Tbox, NamedClassification) {
        let t = parse_tbox(src).unwrap();
        let c = classify_consequence(&t);
        (t, c)
    }

    #[test]
    fn transitive_chain() {
        let (t, c) = classify("concept A B C\nA [= B\nB [= C");
        let id = |n: &str| t.sig.find_concept(n).unwrap();
        assert!(c.concept_pairs.contains(&(id("A"), id("B"))));
        assert!(c.concept_pairs.contains(&(id("A"), id("C"))));
        assert!(!c.concept_pairs.contains(&(id("C"), id("A"))));
        assert!(c.role_pairs.is_none(), "CB must not report role pairs");
    }

    #[test]
    fn existential_reachability() {
        // A ⊑ ∃p, ∃p ⊑ B, with p ⊑ r and ∃r ⊑ C.
        let (t, c) = classify(
            "concept A B C\nrole p r\nA [= exists p\nexists p [= B\np [= r\nexists r [= C",
        );
        let id = |n: &str| t.sig.find_concept(n).unwrap();
        assert!(c.concept_pairs.contains(&(id("A"), id("B"))));
        assert!(c.concept_pairs.contains(&(id("A"), id("C"))));
    }

    #[test]
    fn unsat_via_disjointness() {
        let (t, c) = classify("concept A B C\nA [= B\nA [= C\nB [= not C");
        let a = t.sig.find_concept("A").unwrap();
        assert!(c.unsat_concepts.contains(&a));
        assert_eq!(c.unsat_concepts.len(), 1);
    }

    #[test]
    fn unsat_via_qualified_filler() {
        let (t, c) = classify("concept A D\nrole q\nA [= not A\nD [= exists q . A");
        let d = t.sig.find_concept("D").unwrap();
        assert!(c.unsat_concepts.contains(&d));
    }

    #[test]
    fn unsat_via_role_disjointness() {
        let (t, c) = classify("concept D\nrole p r s\ns [= p\ns [= r\np [= not r\nD [= exists s");
        let d = t.sig.find_concept("D").unwrap();
        assert!(c.unsat_concepts.contains(&d));
    }

    #[test]
    fn inverse_role_reachability() {
        let (t, c) =
            classify("concept A B\nrole p r\np [= inv(r)\nA [= exists p\nexists inv(r) [= B");
        let id = |n: &str| t.sig.find_concept(n).unwrap();
        assert!(c.concept_pairs.contains(&(id("A"), id("B"))));
    }
}
