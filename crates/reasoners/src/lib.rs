//! # obda-reasoners
//!
//! Baseline and oracle reasoners surrounding the graph-based classifier:
//!
//! * [`saturation`]: an independent rule-based DL-Lite_R/A closure — the
//!   workspace's correctness oracle and the slow side of the implication
//!   ablation (A5);
//! * [`chase`]: a depth-bounded restricted chase — the certain-answer
//!   oracle behind the query-rewriting property tests;
//! * [`tableau`] / [`tableau_classify`]: an ALCHI tableau reasoner with
//!   three classification profiles, standing in for FaCT++, HermiT and
//!   Pellet in the Figure 1 reproduction, and serving as the entailment
//!   oracle of semantic approximation (Section 7);
//! * [`consequence`]: a consequence-based Horn classifier standing in for
//!   the CB reasoner — fast, but (faithfully to the paper's remark) it
//!   does not compute the property hierarchy;
//! * [`classification`]: the reasoner-independent classification result
//!   the Figure 1 benchmark compares.

pub mod chase;
pub mod classification;
pub mod consequence;
pub mod saturation;
pub mod tableau;
pub mod tableau_classify;

pub use chase::{chase, is_consistent, ChasedAbox};
pub use classification::NamedClassification;
pub use consequence::{classify_consequence, consequence_stats};
pub use saturation::Saturation;
pub use tableau::{Budget, Tableau, TableauKb, Timeout};
pub use tableau_classify::{classify_tableau, classify_tableau_threaded, TableauProfile};
