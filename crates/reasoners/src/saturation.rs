//! An independent, rule-based **saturation reasoner** for DL-Lite_R/A.
//!
//! This is the workspace's primary correctness oracle: it derives the
//! deductive closure of a TBox by exhaustively applying inference rules to
//! a fixpoint, sharing *no code or data structures* with the graph-based
//! `quonto` reasoner. Cross-checks between the two (see the integration
//! tests) validate both.
//!
//! Derived relations (over basic concepts `B`, basic roles `Q`,
//! attributes `U`, atomic concepts `A`):
//!
//! * `Pos(B₁, B₂)`, `RolePos(Q₁, Q₂)`, `AttrPos(U₁, U₂)` — positive
//!   subsumptions (reflexive);
//! * `Qual(B, Q, A)` — derived `B ⊑ ∃Q.A`;
//! * `Neg(B₁, B₂)`, `RoleNeg(Q₁, Q₂)`, `AttrNeg(U₁, U₂)` — disjointness;
//! * `UnsatC(B)`, `UnsatR(Q)`, `UnsatA(U)` — unsatisfiability.
//!
//! The rule set is listed next to its implementation in
//! [`Saturation::saturate`]. The loop is a naive
//! apply-until-nothing-changes fixpoint — quadratic and proud of it; this
//! reasoner is an oracle for tests and the "saturation" side of the
//! implication ablation (A5), not a production classifier.

use std::collections::HashSet;

use obda_dllite::{
    AttributeId, Axiom, BasicConcept, BasicRole, ConceptId, GeneralConcept, GeneralRole, Tbox,
};

/// The saturated closure of a TBox. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Saturation {
    /// `Pos(B₁, B₂)`: `B₁ ⊑ B₂` among basic concepts (reflexive).
    pub pos: HashSet<(BasicConcept, BasicConcept)>,
    /// `Qual(B, Q, A)`: `B ⊑ ∃Q.A`.
    pub qual: HashSet<(BasicConcept, BasicRole, ConceptId)>,
    /// `Neg(B₁, B₂)`: `B₁ ⊑ ¬B₂` (kept symmetric).
    pub neg: HashSet<(BasicConcept, BasicConcept)>,
    /// `RolePos(Q₁, Q₂)` (reflexive).
    pub role_pos: HashSet<(BasicRole, BasicRole)>,
    /// `RoleNeg(Q₁, Q₂)` (kept symmetric and inverse-closed).
    pub role_neg: HashSet<(BasicRole, BasicRole)>,
    /// `AttrPos(U₁, U₂)` (reflexive).
    pub attr_pos: HashSet<(AttributeId, AttributeId)>,
    /// `AttrNeg(U₁, U₂)` (kept symmetric).
    pub attr_neg: HashSet<(AttributeId, AttributeId)>,
    /// Unsatisfiable basic concepts.
    pub unsat_c: HashSet<BasicConcept>,
    /// Unsatisfiable basic roles.
    pub unsat_r: HashSet<BasicRole>,
    /// Unsatisfiable attributes.
    pub unsat_a: HashSet<AttributeId>,
}

/// All basic concepts over a signature: atomic concepts, `∃Q` for every
/// basic role, `δ(U)` for every attribute.
fn basic_universe(t: &Tbox) -> Vec<BasicConcept> {
    let mut out = Vec::new();
    for a in t.sig.concepts() {
        out.push(BasicConcept::Atomic(a));
    }
    for p in t.sig.roles() {
        out.push(BasicConcept::exists(p));
        out.push(BasicConcept::exists_inv(p));
    }
    for u in t.sig.attributes() {
        out.push(BasicConcept::AttrDomain(u));
    }
    out
}

fn basic_roles(t: &Tbox) -> Vec<BasicRole> {
    let mut out = Vec::new();
    for p in t.sig.roles() {
        out.push(BasicRole::Direct(p));
        out.push(BasicRole::Inverse(p));
    }
    out
}

impl Saturation {
    /// Saturates `t` to fixpoint.
    pub fn saturate(t: &Tbox) -> Self {
        let mut s = Saturation::default();
        let universe = basic_universe(t);
        let roles = basic_roles(t);

        // Reflexive seeds.
        for &b in &universe {
            s.pos.insert((b, b));
        }
        for &q in &roles {
            s.role_pos.insert((q, q));
        }
        for u in t.sig.attributes() {
            s.attr_pos.insert((u, u));
        }
        // Axiom seeds.
        for ax in t.axioms() {
            match *ax {
                Axiom::ConceptIncl(b, GeneralConcept::Basic(b2)) => {
                    s.pos.insert((b, b2));
                }
                Axiom::ConceptIncl(b, GeneralConcept::Neg(b2)) => {
                    s.neg.insert((b, b2));
                    s.neg.insert((b2, b));
                }
                Axiom::ConceptIncl(b, GeneralConcept::QualExists(q, a)) => {
                    s.qual.insert((b, q, a));
                }
                Axiom::RoleIncl(q, GeneralRole::Basic(q2)) => {
                    s.role_pos.insert((q, q2));
                }
                Axiom::RoleIncl(q, GeneralRole::Neg(q2)) => {
                    s.role_neg.insert((q, q2));
                    s.role_neg.insert((q2, q));
                    s.role_neg.insert((q.inverse(), q2.inverse()));
                    s.role_neg.insert((q2.inverse(), q.inverse()));
                }
                Axiom::AttrIncl(u, w) => {
                    s.attr_pos.insert((u, w));
                }
                Axiom::AttrNegIncl(u, w) => {
                    s.attr_neg.insert((u, w));
                    s.attr_neg.insert((w, u));
                }
            }
        }

        // Naive fixpoint: apply every rule, collect additions, repeat.
        loop {
            let mut new_pos: Vec<(BasicConcept, BasicConcept)> = Vec::new();
            let mut new_qual: Vec<(BasicConcept, BasicRole, ConceptId)> = Vec::new();
            let mut new_neg: Vec<(BasicConcept, BasicConcept)> = Vec::new();
            let mut new_role_pos: Vec<(BasicRole, BasicRole)> = Vec::new();
            let mut new_role_neg: Vec<(BasicRole, BasicRole)> = Vec::new();
            let mut new_attr_pos: Vec<(AttributeId, AttributeId)> = Vec::new();
            let mut new_attr_neg: Vec<(AttributeId, AttributeId)> = Vec::new();
            let mut new_unsat_c: Vec<BasicConcept> = Vec::new();
            let mut new_unsat_r: Vec<BasicRole> = Vec::new();
            let mut new_unsat_a: Vec<AttributeId> = Vec::new();

            // (T1) transitivity of Pos / RolePos / AttrPos.
            for &(b1, b2) in &s.pos {
                for &(c2, c3) in &s.pos {
                    if b2 == c2 && !s.pos.contains(&(b1, c3)) {
                        new_pos.push((b1, c3));
                    }
                }
            }
            for &(q1, q2) in &s.role_pos {
                for &(r2, r3) in &s.role_pos {
                    if q2 == r2 && !s.role_pos.contains(&(q1, r3)) {
                        new_role_pos.push((q1, r3));
                    }
                }
            }
            for &(u1, u2) in &s.attr_pos {
                for &(w2, w3) in &s.attr_pos {
                    if u2 == w2 && !s.attr_pos.contains(&(u1, w3)) {
                        new_attr_pos.push((u1, w3));
                    }
                }
            }
            // (T2) role inclusion consequences: inverses and existentials.
            for &(q1, q2) in &s.role_pos {
                let inv = (q1.inverse(), q2.inverse());
                if !s.role_pos.contains(&inv) {
                    new_role_pos.push(inv);
                }
                let e = (BasicConcept::Exists(q1), BasicConcept::Exists(q2));
                if !s.pos.contains(&e) {
                    new_pos.push(e);
                }
            }
            // (T3) attribute inclusion propagates to domains.
            for &(u1, u2) in &s.attr_pos {
                let d = (BasicConcept::AttrDomain(u1), BasicConcept::AttrDomain(u2));
                if !s.pos.contains(&d) {
                    new_pos.push(d);
                }
            }
            // (Q1) Qual weakens to the unqualified existential.
            for &(b, q, _) in &s.qual {
                let e = (b, BasicConcept::Exists(q));
                if !s.pos.contains(&e) {
                    new_pos.push(e);
                }
            }
            // (Q2) Pos(B', B), Qual(B, Q, A) → Qual(B', Q, A).
            for &(b1, b2) in &s.pos {
                for &(qb, q, a) in &s.qual {
                    if b2 == qb && !s.qual.contains(&(b1, q, a)) {
                        new_qual.push((b1, q, a));
                    }
                }
            }
            // (Q3) Qual(B, Q, A), RolePos(Q, Q') → Qual(B, Q', A).
            for &(b, q, a) in &s.qual {
                for &(r1, r2) in &s.role_pos {
                    if q == r1 && !s.qual.contains(&(b, r2, a)) {
                        new_qual.push((b, r2, a));
                    }
                }
            }
            // (Q4) Qual(B, Q, A), Pos(A, A') with A' atomic → Qual(B, Q, A').
            for &(b, q, a) in &s.qual {
                for &(c1, c2) in &s.pos {
                    if c1 == BasicConcept::Atomic(a) {
                        if let BasicConcept::Atomic(a2) = c2 {
                            if !s.qual.contains(&(b, q, a2)) {
                                new_qual.push((b, q, a2));
                            }
                        }
                    }
                }
            }
            // (Q5) range forcing: Pos(B, ∃Q), Pos(∃Q⁻, A) atomic →
            // Qual(B, Q, A).
            for &(b, e) in &s.pos {
                if let BasicConcept::Exists(q) = e {
                    for &(r, a) in &s.pos {
                        if r == BasicConcept::Exists(q.inverse()) {
                            if let BasicConcept::Atomic(a) = a {
                                if !s.qual.contains(&(b, q, a)) {
                                    new_qual.push((b, q, a));
                                }
                            }
                        }
                    }
                }
            }
            // (N1) Pos(B₁, B₂), Neg(B₂, B₃) → Neg(B₁, B₃) (+ symmetric
            // closure below).
            for &(b1, b2) in &s.pos {
                for &(c2, c3) in &s.neg {
                    if b2 == c2 && !s.neg.contains(&(b1, c3)) {
                        new_neg.push((b1, c3));
                        new_neg.push((c3, b1));
                    }
                }
            }
            for &(q1, q2) in &s.role_pos {
                for &(r2, r3) in &s.role_neg {
                    if q2 == r2 && !s.role_neg.contains(&(q1, r3)) {
                        new_role_neg.push((q1, r3));
                        new_role_neg.push((r3, q1));
                    }
                }
            }
            for &(u1, u2) in &s.attr_pos {
                for &(w2, w3) in &s.attr_neg {
                    if u2 == w2 && !s.attr_neg.contains(&(u1, w3)) {
                        new_attr_neg.push((u1, w3));
                        new_attr_neg.push((w3, u1));
                    }
                }
            }
            // (U1) self-disjointness is unsatisfiability.
            for &(b1, b2) in &s.neg {
                if b1 == b2 && !s.unsat_c.contains(&b1) {
                    new_unsat_c.push(b1);
                }
            }
            for &(q1, q2) in &s.role_neg {
                if q1 == q2 && !s.unsat_r.contains(&q1) {
                    new_unsat_r.push(q1);
                }
            }
            for &(u1, u2) in &s.attr_neg {
                if u1 == u2 && !s.unsat_a.contains(&u1) {
                    new_unsat_a.push(u1);
                }
            }
            // (U2) cluster propagation between roles/attributes and their
            // existentials/domains.
            for &q in &roles {
                let role_unsat = s.unsat_r.contains(&q);
                let exists_unsat = s.unsat_c.contains(&BasicConcept::Exists(q));
                if role_unsat || exists_unsat || s.unsat_r.contains(&q.inverse()) {
                    if !role_unsat {
                        new_unsat_r.push(q);
                    }
                    if !exists_unsat {
                        new_unsat_c.push(BasicConcept::Exists(q));
                    }
                }
            }
            for u in t.sig.attributes() {
                let au = s.unsat_a.contains(&u);
                let du = s.unsat_c.contains(&BasicConcept::AttrDomain(u));
                if au != du {
                    if !au {
                        new_unsat_a.push(u);
                    }
                    if !du {
                        new_unsat_c.push(BasicConcept::AttrDomain(u));
                    }
                }
            }
            // (U3) backward propagation.
            for &(b1, b2) in &s.pos {
                if s.unsat_c.contains(&b2) && !s.unsat_c.contains(&b1) {
                    new_unsat_c.push(b1);
                }
            }
            for &(q1, q2) in &s.role_pos {
                if s.unsat_r.contains(&q2) && !s.unsat_r.contains(&q1) {
                    new_unsat_r.push(q1);
                }
            }
            for &(u1, u2) in &s.attr_pos {
                if s.unsat_a.contains(&u2) && !s.unsat_a.contains(&u1) {
                    new_unsat_a.push(u1);
                }
            }
            // (U4) unsat filler or role empties the qualified existential.
            for &(b, q, a) in &s.qual {
                if (s.unsat_c.contains(&BasicConcept::Atomic(a)) || s.unsat_r.contains(&q))
                    && !s.unsat_c.contains(&b)
                {
                    new_unsat_c.push(b);
                }
            }
            // (U5) pair rule: the witness of B ⊑ ∃Q.A lies in A ⊓ ∃Q⁻,
            // so derived disjointness between them empties B. `neg` is
            // closed under Pos-composition and symmetry, so a single
            // membership test covers every cross combination.
            for &(b, q, a) in &s.qual {
                let witness_pair = (BasicConcept::Atomic(a), BasicConcept::Exists(q.inverse()));
                if s.neg.contains(&witness_pair) && !s.unsat_c.contains(&b) {
                    new_unsat_c.push(b);
                }
            }

            let mut changed = false;
            for x in new_pos {
                changed |= s.pos.insert(x);
            }
            for x in new_qual {
                changed |= s.qual.insert(x);
            }
            for x in new_neg {
                changed |= s.neg.insert(x);
            }
            for x in new_role_pos {
                changed |= s.role_pos.insert(x);
            }
            for x in new_role_neg {
                changed |= s.role_neg.insert(x);
            }
            for x in new_attr_pos {
                changed |= s.attr_pos.insert(x);
            }
            for x in new_attr_neg {
                changed |= s.attr_neg.insert(x);
            }
            for x in new_unsat_c {
                changed |= s.unsat_c.insert(x);
            }
            for x in new_unsat_r {
                changed |= s.unsat_r.insert(x);
            }
            for x in new_unsat_a {
                changed |= s.unsat_a.insert(x);
            }
            if !changed {
                break;
            }
        }
        s
    }

    /// Decides `T ⊨ α` from the saturated relations (same semantics as
    /// `quonto::Implication`).
    pub fn entails(&self, ax: &Axiom) -> bool {
        match *ax {
            Axiom::ConceptIncl(b1, GeneralConcept::Basic(b2)) => {
                self.unsat_c.contains(&b1) || self.pos.contains(&(b1, b2))
            }
            Axiom::ConceptIncl(b1, GeneralConcept::Neg(b2)) => {
                self.unsat_c.contains(&b1)
                    || self.unsat_c.contains(&b2)
                    || self.neg.contains(&(b1, b2))
            }
            Axiom::ConceptIncl(b1, GeneralConcept::QualExists(q, a)) => {
                self.unsat_c.contains(&b1) || self.qual.contains(&(b1, q, a))
            }
            Axiom::RoleIncl(q1, GeneralRole::Basic(q2)) => {
                self.unsat_r.contains(&q1) || self.role_pos.contains(&(q1, q2))
            }
            Axiom::RoleIncl(q1, GeneralRole::Neg(q2)) => {
                self.unsat_r.contains(&q1)
                    || self.unsat_r.contains(&q2)
                    || self.role_neg.contains(&(q1, q2))
            }
            Axiom::AttrIncl(u, w) => self.unsat_a.contains(&u) || self.attr_pos.contains(&(u, w)),
            Axiom::AttrNegIncl(u, w) => {
                self.unsat_a.contains(&u)
                    || self.unsat_a.contains(&w)
                    || self.attr_neg.contains(&(u, w))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::parse_tbox;

    fn entails(src: &str, probe: &str) -> bool {
        let t = parse_tbox(src).unwrap();
        let decls: String = src
            .lines()
            .filter(|l| {
                let l = l.trim_start();
                l.starts_with("concept") || l.starts_with("role") || l.starts_with("attribute")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let probe_t = parse_tbox(&format!("{decls}\n{probe}")).unwrap();
        Saturation::saturate(&t).entails(&probe_t.axioms()[0])
    }

    #[test]
    fn transitivity() {
        let src = "concept A B C\nA [= B\nB [= C";
        assert!(entails(src, "A [= C"));
        assert!(!entails(src, "C [= A"));
        assert!(entails(src, "B [= B"));
    }

    #[test]
    fn role_hierarchy_expands() {
        let src = "concept A\nrole p r\np [= r\nA [= exists p";
        assert!(entails(src, "A [= exists r"));
        assert!(entails(src, "inv(p) [= inv(r)"));
        assert!(entails(src, "exists inv(p) [= exists inv(r)"));
    }

    #[test]
    fn qualified_rules() {
        let src = "concept A B B2\nrole q r\nA [= exists q . B\nB [= B2\nq [= r";
        assert!(entails(src, "A [= exists r . B2"));
        assert!(!entails(src, "A [= exists inv(r) . B2"));
    }

    #[test]
    fn range_forcing() {
        let src = "concept A B\nrole q\nA [= exists q\nexists inv(q) [= B";
        assert!(entails(src, "A [= exists q . B"));
    }

    #[test]
    fn unsat_propagation() {
        let src = "concept A B C D\nA [= B\nA [= C\nB [= not C\nD [= exists q . A\nrole q";
        assert!(entails(src, "A [= not A"));
        assert!(entails(src, "D [= not D")); // D ⊑ ∃q.A with A unsat
        assert!(entails(src, "A [= D")); // unsat LHS entails anything
    }

    #[test]
    fn role_disjointness() {
        let src = "role p r s\ns [= p\ns [= r\np [= not r";
        assert!(entails(src, "s [= not s"));
        assert!(entails(src, "exists s [= not exists s"));
        assert!(entails(src, "inv(s) [= not inv(s)"));
    }

    #[test]
    fn attribute_rules() {
        let src = "concept A\nattribute u w\nu [= w\ndomain(w) [= A";
        assert!(entails(src, "domain(u) [= domain(w)"));
        assert!(entails(src, "domain(u) [= A"));
    }
}
